// Tests for the extension modules: the AAP-style throughput baseline, the
// weighted bicriteria algorithm, and the extra generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/randomized_admission.h"
#include "core/throughput_admission.h"
#include "core/weighted_bicriteria.h"
#include "graph/generators.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "util/rng.h"
#include "util/stats.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// ThroughputAdmission
// ---------------------------------------------------------------------------

TEST(Throughput, AcceptsEverythingUnderLightLoad) {
  // Well below the AAP utilization knee (~1 − ln m / ln μ), everything is
  // admitted.
  Graph g = make_line_graph(4, 10);
  ThroughputAdmission alg(g);
  for (int i = 0; i < 3; ++i) {
    const ArrivalResult r = alg.process(Request({0, 1, 2, 3}, 1.0));
    EXPECT_TRUE(r.accepted) << "arrival " << i;
  }
  EXPECT_EQ(alg.accepted_count(), 3u);
  EXPECT_DOUBLE_EQ(alg.rejected_cost(), 0.0);
}

TEST(Throughput, NeverPreempts) {
  Rng rng(1);
  AdmissionInstance inst =
      make_single_edge_burst(2, 12, CostModel::unit_costs(), rng);
  ThroughputAdmission alg(inst.graph());
  for (const Request& r : inst.requests()) {
    const ArrivalResult result = alg.process(r);
    EXPECT_TRUE(result.preempted.empty());
  }
}

TEST(Throughput, RespectsCapacity) {
  Rng rng(2);
  AdmissionInstance inst = make_line_workload(
      8, 2, 60, 1, 4, CostModel::unit_costs(), rng);
  ThroughputAdmission alg(inst.graph());
  run_admission(alg, inst);  // base class enforces per-arrival feasibility
  SUCCEED();
}

TEST(Throughput, RejectsNearCapacityOnLongPaths) {
  // The motivating behaviour: on a long line near saturation, the
  // exponential cost of a spanning request exceeds the unit-benefit
  // threshold, so some spanning requests are rejected even though they
  // would fit — OPT rejects 0.
  const std::size_t m = 64;
  const std::int64_t c = 8;
  Graph g = make_line_graph(m, c);
  ThroughputAdmission alg(g);
  std::size_t rejected = 0;
  for (std::int64_t i = 0; i < c; ++i) {
    const ArrivalResult r = alg.process(make_line_request(g, 0, m, 1.0));
    rejected += !r.accepted;
  }
  EXPECT_GT(rejected, 0u) << "AAP accepted everything — motivation gone";
}

TEST(Throughput, AcceptanceCompetitiveOnSpanningStream) {
  // ...but its accepted benefit stays within a log factor of the optimum.
  const std::size_t m = 64;
  const std::int64_t c = 8;
  Graph g = make_line_graph(m, c);
  ThroughputAdmission alg(g);
  for (std::int64_t i = 0; i < 2 * c; ++i) {
    alg.process(make_line_request(g, 0, m, 1.0));
  }
  const double opt_accept = static_cast<double>(c);
  // AAP guarantee: accepted benefit within O(log μ) of the optimum.
  const double logmu =
      std::log2(2.0 * static_cast<double>(m * /*edges per request*/ 1) + 1.0);
  EXPECT_GE(alg.accepted_benefit() * (2.0 * logmu + 2.0), opt_accept);
}

TEST(Throughput, ConfigValidation) {
  Graph g = make_single_edge_graph(1);
  ThroughputConfig bad;
  bad.threshold = -1.0;
  EXPECT_THROW(ThroughputAdmission(g, bad), InvalidArgument);
  ThroughputConfig mu_bad;
  mu_bad.mu = 0.5;
  EXPECT_THROW(ThroughputAdmission(g, mu_bad), InvalidArgument);
}

// ---------------------------------------------------------------------------
// WeightedBicriteriaSetCover
// ---------------------------------------------------------------------------

TEST(WeightedBicriteria, CoverageContractHolds) {
  Rng rng(3);
  SetSystem sys = with_random_costs(
      random_uniform_system(10, 12, 3, 5, rng), 1.0, 8.0, rng);
  WeightedBicriteriaSetCover alg(sys, BicriteriaConfig{0.25});
  const auto arrivals = arrivals_each_k_times(10, 4, true, rng);
  // Base class enforces covered >= ceil(0.75 k) after every arrival.
  run_setcover(alg, arrivals);
  for (ElementId j = 0; j < 10; ++j) {
    EXPECT_GE(alg.covered(j),
              static_cast<std::int64_t>(std::ceil(0.75 * 4.0 - 1e-9)));
  }
}

TEST(WeightedBicriteria, ReducesToUnitRuleOnUnitCosts) {
  // On unit costs the weighted update equals the paper's §5 rule, so both
  // classes must produce identical covers on the same stream.
  Rng rng(4);
  SetSystem sys = random_uniform_system(12, 10, 4, 4, rng);
  const auto arrivals = arrivals_each_k_times(12, 3, true, rng);
  BicriteriaSetCover unit_alg(sys, BicriteriaConfig{0.5});
  WeightedBicriteriaSetCover weighted_alg(sys, BicriteriaConfig{0.5});
  run_setcover(unit_alg, arrivals);
  run_setcover(weighted_alg, arrivals);
  EXPECT_EQ(unit_alg.chosen(), weighted_alg.chosen());
}

TEST(WeightedBicriteria, PotentialStaysBounded) {
  Rng rng(5);
  SetSystem sys = with_random_costs(
      random_uniform_system(10, 8, 3, 4, rng), 1.0, 4.0, rng);
  WeightedBicriteriaSetCover alg(sys, BicriteriaConfig{0.5});
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  for (ElementId j : arrivals) {
    alg.on_element(j);
    EXPECT_LE(alg.potential(), 100.0 * (1 + 1e-9));
  }
}

TEST(WeightedBicriteria, PrefersCheapSets) {
  // Element 0 covered by a cost-1 and a cost-100 set; one arrival with
  // eps=0.5 needs a single set — the multiplicative asymmetry must pick
  // the cheap one.
  SetSystem sys(2, {{0, 1}, {0, 1}}, {1.0, 100.0});
  WeightedBicriteriaSetCover alg(sys, BicriteriaConfig{0.5});
  alg.on_element(0);
  EXPECT_TRUE(alg.chosen()[0]);
  EXPECT_FALSE(alg.chosen()[1]);
}

TEST(WeightedBicriteria, RatioReasonableVsWeightedOpt) {
  Rng rng(6);
  RunningStats ratios;
  for (int trial = 0; trial < 6; ++trial) {
    SetSystem sys = with_random_costs(
        random_uniform_system(12, 10, 4, 3, rng), 1.0, 16.0, rng);
    const auto arrivals = arrivals_each_k_times(12, 2, true, rng);
    CoverInstance inst(sys, arrivals);
    const MulticoverResult opt = solve_multicover_opt(inst, 10'000'000);
    if (!opt.exact || opt.cost <= 0) continue;
    WeightedBicriteriaSetCover alg(sys, BicriteriaConfig{0.5});
    ratios.add(run_setcover(alg, arrivals).cost / opt.cost);
  }
  ASSERT_GT(ratios.count(), 0u);
  const double bound = std::log2(10.0) * std::log2(12.0);
  EXPECT_LE(ratios.mean(), 10.0 * bound);
}

// ---------------------------------------------------------------------------
// New generators
// ---------------------------------------------------------------------------

TEST(NewGenerators, HypercubeShape) {
  Graph g = make_hypercube_graph(3, 2);
  EXPECT_EQ(g.vertex_count(), 8u);
  EXPECT_EQ(g.edge_count(), 24u);  // d * 2^d
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 3u);
    for (EdgeId e : g.out_edges(v)) {
      const auto diff = g.edge(e).from ^ g.edge(e).to;
      EXPECT_EQ(diff & (diff - 1), 0u) << "neighbours differ in one bit";
    }
  }
}

TEST(NewGenerators, RegularGraphDegrees) {
  Rng rng(7);
  Graph g = make_regular_graph(20, 4, 3, rng);
  EXPECT_EQ(g.edge_count(), 80u);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 4u);
    for (EdgeId e : g.out_edges(v)) EXPECT_NE(g.edge(e).to, v);
  }
}

TEST(NewGenerators, RegularGraphValidation) {
  Rng rng(8);
  EXPECT_THROW(make_regular_graph(1, 1, 1, rng), InvalidArgument);
  EXPECT_THROW(make_regular_graph(5, 5, 1, rng), InvalidArgument);
}

TEST(NewGenerators, PowerLawSystemShape) {
  Rng rng(9);
  SetSystem sys = power_law_system(64, 32, 1.0, 2, rng);
  EXPECT_EQ(sys.element_count(), 64u);
  EXPECT_EQ(sys.set_count(), 32u);
  // Head sets are much larger than tail sets.
  EXPECT_GT(sys.elements_of(0).size(), sys.elements_of(31).size());
  for (ElementId j = 0; j < 64; ++j) EXPECT_GE(sys.degree(j), 2u);
}

TEST(NewGenerators, HypercubeWorkloadRunsEndToEnd) {
  Rng rng(10);
  Graph g = make_hypercube_graph(4, 2);
  std::vector<Request> requests;
  for (int i = 0; i < 60; ++i) {
    requests.push_back(random_walk_request(g, rng, 4, 1.0));
  }
  AdmissionInstance inst(std::move(g), std::move(requests));
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  RandomizedAdmission alg(inst.graph(), cfg);
  run_admission(alg, inst);  // contract enforced by the base class
  SUCCEED();
}

}  // namespace
}  // namespace minrej

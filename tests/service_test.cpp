// Tests for src/service: shard routing, the batch pump, sharded-vs-
// unsharded identity on shard-disjoint instances (DESIGN.md §6.1), and
// stat aggregation.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/baselines.h"
#include "core/randomized_admission.h"
#include "service/admission_service.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

/// Deterministic engine-backed configuration: the §3 algorithm with the
/// random rejection step disabled.  Every decision is then a function of
/// the fractional weights alone, which evolve per-edge-locally, so on a
/// shard-disjoint instance the sharded and unsharded trajectories must be
/// bit-identical (the §6.1 partitioning invariant).
ShardAlgorithmFactory deterministic_unit_factory() {
  return [](const Graph& graph, std::size_t) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.step3_random = false;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
}

ShardAlgorithmFactory greedy_factory() {
  return [](const Graph& graph, std::size_t) {
    return std::make_unique<GreedyNoPreempt>(graph);
  };
}

ShardAlgorithmFactory preempt_cheapest_factory() {
  return [](const Graph& graph, std::size_t) {
    return std::make_unique<PreemptCheapest>(graph);
  };
}

/// Runs the instance through a service and returns the final per-arrival
/// acceptance states.
std::vector<bool> final_decisions(AdmissionService& service,
                                  const AdmissionInstance& instance) {
  service.run(instance);
  std::vector<bool> accepted(instance.request_count());
  for (std::size_t i = 0; i < instance.request_count(); ++i) {
    accepted[i] = service.is_accepted(i);
  }
  return accepted;
}

void expect_identical_runs(const AdmissionInstance& instance,
                           const ShardAlgorithmFactory& factory,
                           const ServiceConfig& sharded_cfg) {
  AdmissionService sharded(instance.graph(), factory, sharded_cfg);
  ServiceConfig unsharded_cfg = sharded_cfg;
  unsharded_cfg.shards = 1;
  unsharded_cfg.partition = nullptr;
  AdmissionService unsharded(instance.graph(), factory, unsharded_cfg);
  const std::vector<bool> a = final_decisions(sharded, instance);
  const std::vector<bool> b = final_decisions(unsharded, instance);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "arrival " << i;
  }
  const ServiceStats sa = sharded.aggregate();
  const ServiceStats sb = unsharded.aggregate();
  EXPECT_EQ(sa.accepted, sb.accepted);
  EXPECT_EQ(sa.rejected, sb.rejected);
  // Decisions are bitwise identical; the aggregate cost is the same
  // multiset of request costs summed in per-shard instead of arrival
  // order, so it matches up to floating-point reassociation (DESIGN.md
  // §6.2) — exactly equal in the unit-cost scenarios.
  EXPECT_NEAR(sa.rejected_cost, sb.rejected_cost,
              test::COST_TOLERANCE * std::max(1.0, sb.rejected_cost));
  EXPECT_EQ(sa.augmentation_steps, sb.augmentation_steps);
}

// ---------------------------------------------------------------------------
// Shard routing
// ---------------------------------------------------------------------------

TEST(ShardRouting, HashPartitionIsStableAndInRange) {
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (EdgeId e = 0; e < 100; ++e) {
      const std::size_t s = AdmissionService::hash_edge_to_shard(e, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, AdmissionService::hash_edge_to_shard(e, shards));
    }
  }
}

TEST(ShardRouting, HashPartitionSpreadsConsecutiveEdges) {
  // The Zipf head lives at low edge ids; a partition that clusters them in
  // one shard defeats the point of sharding skewed traffic.
  const std::size_t shards = 4;
  std::vector<std::size_t> hits(shards, 0);
  for (EdgeId e = 0; e < 64; ++e) {
    ++hits[AdmissionService::hash_edge_to_shard(e, shards)];
  }
  for (const std::size_t h : hits) {
    EXPECT_GT(h, 4u);   // no shard starves...
    EXPECT_LT(h, 40u);  // ...and none hoards.
  }
}

TEST(ShardRouting, PartitionOverrideIsRespected) {
  Rng rng(3);
  const AdmissionInstance inst = make_multi_tenant_workload(
      4, 4, 2, 40, 2, 1.0, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.partition = [](EdgeId e) { return static_cast<std::size_t>(e) / 4; };
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  for (EdgeId e = 0; e < inst.graph().edge_count(); ++e) {
    EXPECT_EQ(service.shard_of_edge(e), e / 4);
  }
  // Requests route to the shard of their first (lowest) edge.
  for (const Request& r : inst.requests()) {
    EXPECT_EQ(service.shard_of_request(r), r.edges.front() / 4);
  }
}

TEST(ShardRouting, OutOfRangePartitionThrows) {
  Rng rng(4);
  const AdmissionInstance inst =
      make_dense_burst_workload(8, 2, 16, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.partition = [](EdgeId) { return std::size_t{7}; };
  // The out-of-range mapping is now caught at construction (the partition
  // is validated over every edge), not lazily on the first routed request.
  EXPECT_THROW(AdmissionService(inst.graph(), greedy_factory(), cfg),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Construction contracts
// ---------------------------------------------------------------------------

TEST(ServiceContracts, RejectsBadConfigAndFactories) {
  Rng rng(5);
  const AdmissionInstance inst =
      make_dense_burst_workload(8, 2, 16, CostModel::unit_costs(), rng);
  ServiceConfig zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(
      AdmissionService(inst.graph(), greedy_factory(), zero_shards),
      InvalidArgument);
  // The factory must build on the service graph, not a private copy: the
  // shards share the topology so per-shard guarantees refer to the same
  // m and c.
  const auto rogue_graph =
      std::make_shared<Graph>(make_star_graph(8, 2));
  EXPECT_THROW(AdmissionService(
                   inst.graph(),
                   [rogue_graph](const Graph&, std::size_t) {
                     return std::make_unique<GreedyNoPreempt>(*rogue_graph);
                   },
                   ServiceConfig{}),
               InvalidArgument);
}

TEST(ServiceContracts, ShardTaskExceptionsPropagate) {
  Rng rng(6);
  const AdmissionInstance inst =
      make_dense_burst_workload(8, 2, 16, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.shards = 2;
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  // An out-of-range edge id passes routing (any id hashes somewhere) but
  // fails validation inside the shard's process(); the pump must surface
  // that error, not swallow it in a worker.
  const std::vector<Request> poison{Request({3, 200}, 1.0)};
  EXPECT_THROW(service.submit_batch(poison), InvalidArgument);
  // The unprocessed arrival's placement is voided — is_accepted refuses
  // to answer for it instead of aliasing a later request...
  ASSERT_EQ(service.arrivals(), 1u);
  EXPECT_EQ(service.placement(0).second, kInvalidId);
  EXPECT_THROW(service.is_accepted(0), InvalidArgument);
  // ...and the service stays usable: a healthy follow-up batch processes
  // normally and maps to fresh, non-aliased local ids.
  const std::vector<Request> good{Request({3}, 1.0), Request({5}, 1.0)};
  const std::vector<bool> accepted = service.submit_batch(good);
  EXPECT_EQ(accepted, (std::vector<bool>{true, true}));
  EXPECT_TRUE(service.is_accepted(1));
  EXPECT_TRUE(service.is_accepted(2));
  EXPECT_THROW(service.is_accepted(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Sharded ≡ unsharded on shard-disjoint instances (DESIGN.md §6.1)
// ---------------------------------------------------------------------------

class ShardIdentity : public test::SeededTest {};

TEST_F(ShardIdentity, EngineBackedDeterministicOnDenseBurst) {
  // Single-edge requests: disjoint under any partition.  The deterministic
  // engine-backed configuration must be bit-identical sharded/unsharded.
  ScenarioParams params;
  params.requests = 3000;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.batch = 128;
  expect_identical_runs(inst, deterministic_unit_factory(), cfg);
}

TEST_F(ShardIdentity, EngineBackedDeterministicOnDiurnal) {
  const AdmissionInstance inst = make_diurnal_workload(
      16, 20, 2000, 2.0, 2, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.batch = 64;
  expect_identical_runs(inst, deterministic_unit_factory(), cfg);
}

TEST_F(ShardIdentity, GreedyBaselineOnDenseBurst) {
  ScenarioParams params;
  params.requests = 2000;
  params.edges = 8;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 4;
  expect_identical_runs(inst, greedy_factory(), cfg);
}

TEST_F(ShardIdentity, PreemptCheapestOnTenantAlignedMultiTenant) {
  // Multi-edge requests, but confined to tenant blocks: disjoint under the
  // tenant-aligned partition even though the hash partition would split
  // them.
  const std::size_t tenants = 4;
  const std::size_t block = 4;
  const AdmissionInstance inst = make_multi_tenant_workload(
      tenants, block, 3, 2000, 3, 1.0, CostModel::spread(1.0, 8.0), rng);
  ServiceConfig cfg;
  cfg.shards = tenants;
  cfg.batch = 100;
  cfg.partition = [block, tenants](EdgeId e) {
    return (static_cast<std::size_t>(e) / block) % tenants;
  };
  expect_identical_runs(inst, preempt_cheapest_factory(), cfg);
}

// ---------------------------------------------------------------------------
// Batch-pump determinism
// ---------------------------------------------------------------------------

class PumpDeterminism : public test::SeededTest {};

TEST_F(PumpDeterminism, SameSeedSameDecisionsAcrossRuns) {
  ScenarioParams params;
  params.requests = 2000;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("power_law", params, rng);
  const auto factory = [](const Graph& graph, std::size_t shard) {
    RandomizedConfig cfg;
    cfg.seed = 11 + shard;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.batch = 96;
  AdmissionService first(inst.graph(), factory, cfg);
  AdmissionService second(inst.graph(), factory, cfg);
  const std::vector<bool> a = final_decisions(first, inst);
  const std::vector<bool> b = final_decisions(second, inst);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(first.aggregate().rejected_cost,
                   second.aggregate().rejected_cost);
  EXPECT_EQ(first.aggregate().augmentation_steps,
            second.aggregate().augmentation_steps);
}

TEST_F(PumpDeterminism, DecisionsIndependentOfBatchSizeAndThreads) {
  // Batch boundaries and worker counts change scheduling, never the
  // per-shard arrival order — so final state must not move.
  ScenarioParams params;
  params.requests = 1500;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("diurnal", params, rng);
  const auto factory = [](const Graph& graph, std::size_t shard) {
    RandomizedConfig cfg;
    cfg.seed = 3 + shard;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
  std::vector<std::vector<bool>> outcomes;
  for (const auto& [batch, threads] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {64, 2}, {512, 4}, {5000, 1}}) {
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.batch = batch;
    cfg.threads = threads;
    AdmissionService service(inst.graph(), factory, cfg);
    outcomes.push_back(final_decisions(service, inst));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i], outcomes.front()) << "variant " << i;
  }
}

// ---------------------------------------------------------------------------
// Stats aggregation
// ---------------------------------------------------------------------------

class ServiceStatsTest : public test::SeededTest {};

TEST_F(ServiceStatsTest, AggregateMatchesShardSums) {
  ScenarioParams params;
  params.requests = 2000;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.collect_latencies = true;
  AdmissionService service(inst.graph(), deterministic_unit_factory(), cfg);
  const ServiceStats total = service.run(inst);

  std::size_t arrivals = 0, accepted = 0, rejected = 0, latencies = 0;
  double rejected_cost = 0.0;
  std::uint64_t augmentations = 0;
  for (std::size_t s = 0; s < service.shard_count(); ++s) {
    const ShardStats shard = service.shard_stats(s);
    EXPECT_EQ(shard.shard, s);
    EXPECT_EQ(shard.accepted + shard.rejected, shard.arrivals);
    EXPECT_EQ(shard.latencies_s.size(), shard.arrivals);
    arrivals += shard.arrivals;
    accepted += shard.accepted;
    rejected += shard.rejected;
    rejected_cost += shard.rejected_cost;
    augmentations += shard.augmentation_steps;
    latencies += shard.latencies_s.size();
  }
  EXPECT_EQ(total.arrivals, inst.request_count());
  EXPECT_EQ(total.arrivals, arrivals);
  EXPECT_EQ(total.accepted, accepted);
  EXPECT_EQ(total.rejected, rejected);
  EXPECT_DOUBLE_EQ(total.rejected_cost, rejected_cost);
  EXPECT_EQ(total.augmentation_steps, augmentations);
  EXPECT_EQ(latencies, inst.request_count());
  // Latency quantiles come from real timings: ordered and positive.
  EXPECT_GT(total.p50_arrival_s, 0.0);
  EXPECT_LE(total.p50_arrival_s, total.p95_arrival_s);
  EXPECT_LE(total.p95_arrival_s, total.max_arrival_s);
  EXPECT_GT(total.seconds, 0.0);
  EXPECT_GT(total.max_shard_busy_s, 0.0);
}

TEST_F(ServiceStatsTest, PlacementTracksOwningShardAndLocalOrder) {
  ScenarioParams params;
  params.requests = 400;
  params.edges = 8;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.batch = 64;
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  service.run(inst);
  ASSERT_EQ(service.arrivals(), inst.request_count());
  std::vector<RequestId> next_local(3, 0);
  for (std::size_t i = 0; i < service.arrivals(); ++i) {
    const auto [shard, local] = service.placement(i);
    EXPECT_EQ(shard, service.shard_of_request(inst.requests()[i]));
    // Shard-local ids are assigned in global arrival order.
    EXPECT_EQ(local, next_local[shard]);
    ++next_local[shard];
  }
  EXPECT_THROW(service.placement(service.arrivals()), InvalidArgument);
  EXPECT_THROW(service.is_accepted(service.arrivals()), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Concurrent pump (PumpMode::kRings) — DESIGN.md §11
// ---------------------------------------------------------------------------

class ConcurrentPump : public test::SeededTest {};

TEST_F(ConcurrentPump, BitIdenticalAcrossWorkerCountsSeedsAndScenarios) {
  // The §11.2 contract: for every worker count the rings pump's decision
  // stream equals the sequential (kTasks, one thread) pump's, bit for bit
  // — routing fixes each shard's arrival subsequence before workers run,
  // and each shard is consumed by exactly one worker in ring order.
  for (const std::uint64_t seed : {5u, 11u, 23u}) {
    for (const char* scenario : {"dense_burst", "power_law", "diurnal"}) {
      ScenarioParams params;
      params.requests = 1200;
      params.edges = 16;
      Rng scenario_rng(seed);
      const AdmissionInstance inst =
          make_scenario(scenario, params, scenario_rng);
      const auto factory = [seed](const Graph& graph, std::size_t shard) {
        RandomizedConfig cfg;
        cfg.seed = seed + shard;
        return std::make_unique<RandomizedAdmission>(graph, cfg);
      };
      ServiceConfig sequential_cfg;
      sequential_cfg.shards = 5;
      sequential_cfg.batch = 128;
      sequential_cfg.threads = 1;
      AdmissionService sequential(inst.graph(), factory, sequential_cfg);
      const std::vector<bool> reference = final_decisions(sequential, inst);
      const ServiceStats ref_stats = sequential.aggregate();
      for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        ServiceConfig cfg = sequential_cfg;
        cfg.pump = PumpMode::kRings;
        cfg.threads = workers;
        AdmissionService rings(inst.graph(), factory, cfg);
        EXPECT_GE(rings.worker_count(), 1u);
        EXPECT_LE(rings.worker_count(), workers);
        const std::vector<bool> got = final_decisions(rings, inst);
        ASSERT_EQ(got, reference) << scenario << " seed " << seed
                                  << " workers " << workers;
        const ServiceStats stats = rings.aggregate();
        EXPECT_EQ(stats.arrivals, ref_stats.arrivals);
        EXPECT_EQ(stats.accepted, ref_stats.accepted);
        EXPECT_EQ(stats.rejected, ref_stats.rejected);
        EXPECT_EQ(stats.augmentation_steps, ref_stats.augmentation_steps);
      }
    }
  }
}

TEST_F(ConcurrentPump, SmallRingCapacityBackpressuresWithoutDeadlock) {
  // A ring much smaller than the batch forces the routing thread through
  // the full-ring spin path; decisions must be unaffected.
  ScenarioParams params;
  params.requests = 800;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.batch = 512;
  ServiceConfig tiny = cfg;
  tiny.pump = PumpMode::kRings;
  tiny.threads = 2;
  tiny.ring_capacity = 8;
  AdmissionService reference(inst.graph(), deterministic_unit_factory(), cfg);
  AdmissionService rings(inst.graph(), deterministic_unit_factory(), tiny);
  EXPECT_EQ(final_decisions(rings, inst), final_decisions(reference, inst));
}

TEST_F(ConcurrentPump, LatenciesAndPlacementsMatchSequential) {
  ScenarioParams params;
  params.requests = 600;
  params.edges = 8;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.batch = 100;
  cfg.collect_latencies = true;
  cfg.pump = PumpMode::kRings;
  cfg.threads = 4;
  AdmissionService service(inst.graph(), deterministic_unit_factory(), cfg);
  service.run(inst);
  std::size_t latencies = 0;
  for (std::size_t s = 0; s < service.shard_count(); ++s) {
    const ShardStats shard = service.shard_stats(s);
    EXPECT_EQ(shard.latencies_s.size(), shard.arrivals);
    latencies += shard.latencies_s.size();
  }
  EXPECT_EQ(latencies, inst.request_count());
  std::vector<RequestId> next_local(3, 0);
  for (std::size_t i = 0; i < service.arrivals(); ++i) {
    const auto [shard, local] = service.placement(i);
    EXPECT_EQ(shard, service.shard_of_request(inst.requests()[i]));
    EXPECT_EQ(local, next_local[shard]);
    ++next_local[shard];
  }
}

/// Accepts everything until the configured arrival, then throws on every
/// process() call — exercises the pump's shard-failure semantics without
/// the fault-tolerance layer.
class FailsAtArrival : public OnlineAdmissionAlgorithm {
 public:
  FailsAtArrival(const Graph& graph, std::size_t fail_at)
      : OnlineAdmissionAlgorithm(graph), fail_at_(fail_at) {}
  std::string name() const override { return "fails_at"; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override {
    if (id >= fail_at_) throw std::runtime_error("scripted shard failure");
    ArrivalResult result;
    result.accepted = !would_overflow(request);
    return result;
  }

 private:
  std::size_t fail_at_;
};

TEST_F(ConcurrentPump, ShardFailureVoidsPlacementsLikeSequential) {
  // Shard 1 dies at its 10th arrival in both pump modes; the surviving
  // shards must keep their results, the dead shard's unprocessed arrivals
  // must be voided, and the error must surface on the caller.
  ScenarioParams params;
  params.requests = 500;
  params.edges = 16;
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  const auto factory = [](const Graph& graph, std::size_t shard) {
    return std::make_unique<FailsAtArrival>(
        graph, shard == 1 ? 10 : std::numeric_limits<std::size_t>::max());
  };
  for (const PumpMode pump : {PumpMode::kTasks, PumpMode::kRings}) {
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.batch = 500;
    cfg.threads = 2;
    cfg.pump = pump;
    AdmissionService service(inst.graph(), factory, cfg);
    EXPECT_THROW(
        service.submit_batch(std::span<const Request>(inst.requests())),
        std::runtime_error);
    std::size_t voided = 0;
    for (std::size_t i = 0; i < service.arrivals(); ++i) {
      const auto [shard, local] = service.placement(i);
      if (local == kInvalidId) {
        ++voided;
        EXPECT_EQ(shard, 1u);
        EXPECT_THROW(service.is_accepted(i), InvalidArgument);
      } else {
        service.is_accepted(i);  // must not throw
      }
    }
    EXPECT_GT(voided, 0u);
    // Exactly shard 1's arrivals past its 10 processed ones are voided.
    EXPECT_EQ(service.shard_stats(1).arrivals, 10u);
  }
}

// ---------------------------------------------------------------------------
// LCA cross-shard reconcile lane (ServiceConfig::lca_reconcile) — §11.4
// ---------------------------------------------------------------------------

class LcaReconcile : public test::SeededTest {};

/// Multi-tenant workload under the *hash* partition: tenant blocks do not
/// align with shards, so multi-edge requests regularly cross shards.
AdmissionInstance make_cross_shard_instance(Rng& rng) {
  return make_multi_tenant_workload(4, 4, 3, 1500, 3, 1.0,
                                    CostModel::unit_costs(), rng);
}

TEST_F(LcaReconcile, ReconciledDecisionsEqualSequentialEngine) {
  // The differential pin: the reconcile lane's decisions must equal a
  // bare sequential engine (same factory, lane index K) fed exactly the
  // diverted subsequence in arrival order — for every pump mode and
  // worker count.
  const AdmissionInstance inst = make_cross_shard_instance(rng);
  const ShardAlgorithmFactory factory = deterministic_unit_factory();
  for (const PumpMode pump : {PumpMode::kTasks, PumpMode::kRings}) {
    for (const std::size_t workers : {1u, 4u}) {
      ServiceConfig cfg;
      cfg.shards = 4;
      cfg.batch = 128;
      cfg.threads = workers;
      cfg.pump = pump;
      cfg.lca_reconcile = true;
      AdmissionService service(inst.graph(), factory, cfg);
      service.run(inst);
      ASSERT_EQ(service.arrivals(), inst.request_count());

      // Replay the diverted subsequence through the reference engine
      // first, then compare *final* states: is_accepted reflects later
      // preemptions, so the comparison is only meaningful after the whole
      // subsequence has been processed on both sides.
      const std::unique_ptr<OnlineAdmissionAlgorithm> reference =
          factory(inst.graph(), cfg.shards);
      std::vector<std::size_t> diverted_arrivals;
      for (std::size_t i = 0; i < service.arrivals(); ++i) {
        const auto [shard, local] = service.placement(i);
        if (shard != AdmissionService::kLcaLane) continue;
        EXPECT_EQ(local, static_cast<RequestId>(diverted_arrivals.size()));
        reference->process(inst.requests()[i]);
        diverted_arrivals.push_back(i);
      }
      const std::size_t diverted = diverted_arrivals.size();
      for (std::size_t d = 0; d < diverted; ++d) {
        EXPECT_EQ(service.is_accepted(diverted_arrivals[d]),
                  reference->is_accepted(static_cast<RequestId>(d)))
            << "arrival " << diverted_arrivals[d];
      }
      EXPECT_EQ(service.lca_algorithm().rejected_count(),
                reference->rejected_count());
      ASSERT_GT(diverted, 0u) << "instance never crossed shards";
      EXPECT_EQ(service.lca_arrivals(), diverted);
      EXPECT_LE(service.lca_speculation_hits(), diverted);
      const ServiceStats stats = service.aggregate();
      EXPECT_EQ(stats.lca_arrivals, diverted);
      EXPECT_EQ(stats.arrivals, inst.request_count());
    }
  }
}

TEST_F(LcaReconcile, DecisionsInvariantAcrossWorkerCounts) {
  const AdmissionInstance inst = make_cross_shard_instance(rng);
  std::vector<std::vector<bool>> outcomes;
  std::vector<std::size_t> hits;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.batch = 96;
    cfg.threads = workers;
    cfg.pump = PumpMode::kRings;
    cfg.lca_reconcile = true;
    AdmissionService service(inst.graph(), deterministic_unit_factory(),
                             cfg);
    outcomes.push_back(final_decisions(service, inst));
    hits.push_back(service.lca_speculation_hits());
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i], outcomes.front()) << "worker variant " << i;
    EXPECT_EQ(hits[i], hits.front()) << "worker variant " << i;
  }
}

TEST_F(LcaReconcile, RejectsIncompatibleConfigurations) {
  Rng local(7);
  const AdmissionInstance inst = make_cross_shard_instance(local);
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lca_reconcile = true;
  cfg.fault_tolerance.enabled = true;
  EXPECT_THROW(
      AdmissionService(inst.graph(), deterministic_unit_factory(), cfg),
      InvalidArgument);
  cfg.fault_tolerance.enabled = false;
  AdmissionService service(inst.graph(), deterministic_unit_factory(), cfg);
  EXPECT_THROW(service.snapshot(), InvalidArgument);
  EXPECT_NO_THROW(service.lca_algorithm());  // the lane exists here
  // …but not on a service without the flag.
  cfg.lca_reconcile = false;
  AdmissionService plain(inst.graph(), deterministic_unit_factory(), cfg);
  EXPECT_THROW(plain.lca_algorithm(), InvalidArgument);
}

}  // namespace
}  // namespace minrej

// Tests for src/util: rng, stats, table, thread_pool, cli.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/spsc_ring.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(3));
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(4, 3), InvalidArgument);
}

TEST(Rng, IndexIsUnbiasedAcrossSmallRange) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.index(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.01);
  }
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.log_uniform(1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, LogUniformDegenerateRange) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.log_uniform(5.0, 5.0), 5.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(37);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : unique) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesFullRange) {
  Rng rng(41);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_indices(3, 4), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child stream should not reproduce the parent stream.
  Rng parent_copy(99);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == parent());
  EXPECT_LT(equal, 4);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3, 7);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, QuantilesOfKnownSample) {
  const Summary s = summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_NEAR(s.p25, 3.25, 1e-12);
  EXPECT_NEAR(s.p75, 7.75, 1e-12);
}

TEST(Summary, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile_sorted({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), InvalidArgument);
}

TEST(LinearFit, ExactLine) {
  const LinearFit f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 10 + rng.uniform(-1, 1));
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(LinearFit, DegenerateXIsFlat) {
  const LinearFit f = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(LinearFit, RequiresTwoPoints) {
  EXPECT_THROW(fit_linear({1}, {1}), InvalidArgument);
  EXPECT_THROW(fit_linear({1, 2}, {1}), InvalidArgument);
}

TEST(GeometricMean, KnownValues) {
  EXPECT_NEAR(geometric_mean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2, 2, 2}), 2.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), InvalidArgument);
  EXPECT_THROW(geometric_mean({}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, AsciiContainsTitleColumnsAndData) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", 3});
  t.add_row({"beta", Cell(2.5, 1)});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("demo"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("2.5"), std::string::npos);
  EXPECT_NE(ascii.find("value"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("csv", {"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("bad", {"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, EmptyColumnsThrow) {
  EXPECT_THROW(Table("empty", {}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// ThreadPool / parallel_for_index
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, ComputesAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for_index(1000, [&](std::size_t i) { hits[i] = 1; }, 8);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for_index(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<std::size_t> order;
  parallel_for_index(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for_index(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// CliFlags
// ---------------------------------------------------------------------------

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--name", "x", "--flag"};
  const CliFlags flags =
      CliFlags::parse(5, argv, {"alpha", "name", "flag"});
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_string("name", ""), "x");
  EXPECT_TRUE(flags.get_bool("flag", false));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliFlags flags = CliFlags::parse(1, argv, {"x"});
  EXPECT_EQ(flags.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(flags.has("x"));
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(CliFlags::parse(2, argv, {"real"}), InvalidArgument);
}

TEST(Cli, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  const CliFlags flags = CliFlags::parse(2, argv, {"n"});
  EXPECT_THROW(flags.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(flags.get_double("n", 0), InvalidArgument);
}

TEST(Cli, BooleanParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=maybe"};
  const CliFlags flags = CliFlags::parse(4, argv, {"a", "b", "c"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_THROW(flags.get_bool("c", false), InvalidArgument);
}

// ---------------------------------------------------------------------------
// SpscRing (util/spsc_ring.h) — the concurrent shard pump's ingest lane
// ---------------------------------------------------------------------------

TEST(SpscRing, SingleThreadedFifoAndCapacity) {
  SpscRing<int> ring(5);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i)) << i;
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty again
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundWithoutLosingOrder) {
  SpscRing<std::uint32_t> ring(4);
  std::uint32_t next_push = 0, next_pop = 0, out = 0;
  // Push/pop in ragged strides so head and tail lap the buffer many times.
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 3 && ring.try_push(next_push); ++k) ++next_push;
    for (int k = 0; k < 2 && ring.try_pop(out); ++k) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, TransfersEverythingAcrossThreadsInOrder) {
  // One producer, one consumer, a ring much smaller than the stream: both
  // sides hit the full/empty paths constantly.  The consumer must see
  // exactly 0..N-1 in order (the determinism contract the shard pump
  // builds on).
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    std::uint64_t out;
    while (expect < kItems) {
      if (!ring.try_pop(out)) {
        std::this_thread::yield();
        continue;
      }
      if (out != expect) {
        failed.store(true);
        return;
      }
      ++expect;
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.empty());
}

TEST(CacheAlignedAllocator, AlignsToTheCacheLine) {
  std::vector<std::uint8_t, CacheAlignedAllocator<std::uint8_t>> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes,
            0u);
}

}  // namespace
}  // namespace minrej

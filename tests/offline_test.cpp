// Tests for src/offline: exact and greedy solvers, cross-checked against
// brute force and the LP relaxation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/reduction.h"
#include "graph/generators.h"
#include "lp/covering_lp.h"
#include "offline/admission_opt.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace minrej {
namespace {

/// Brute-force optimum by enumerating all 2^r acceptance vectors.
double brute_force_admission(const AdmissionInstance& inst) {
  const std::size_t r = inst.request_count();
  EXPECT_LE(r, 20u) << "brute force too large";
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << r); ++mask) {
    std::vector<bool> accepted(r);
    bool pins_ok = true;
    for (std::size_t i = 0; i < r; ++i) {
      accepted[i] = (mask >> i) & 1;
      if (inst.request(static_cast<RequestId>(i)).must_accept &&
          !accepted[i]) {
        pins_ok = false;
      }
    }
    if (!pins_ok || !is_feasible_acceptance(inst, accepted)) continue;
    best = std::min(best, rejected_cost(inst, accepted));
  }
  return best;
}

/// Brute-force multicover optimum over all 2^m set choices.
double brute_force_multicover(const CoverInstance& inst) {
  const std::size_t m = inst.system().set_count();
  EXPECT_LE(m, 20u) << "brute force too large";
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    std::vector<bool> chosen(m);
    for (std::size_t s = 0; s < m; ++s) chosen[s] = (mask >> s) & 1;
    if (!covers_demands(inst, chosen)) continue;
    best = std::min(best, chosen_cost(inst.system(), chosen));
  }
  return best;
}

// ---------------------------------------------------------------------------
// Admission OPT
// ---------------------------------------------------------------------------

TEST(AdmissionOpt, NoOverloadAcceptsEverything) {
  Graph g = make_line_graph(4, 10);
  AdmissionInstance inst(std::move(g),
                         {Request({0, 1}, 1.0), Request({2, 3}, 2.0)});
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.rejected_cost, 0.0);
  EXPECT_TRUE(opt.accepted[0]);
  EXPECT_TRUE(opt.accepted[1]);
}

TEST(AdmissionOpt, SingleEdgeBurstRejectsExcess) {
  Rng rng(3);
  AdmissionInstance inst =
      make_single_edge_burst(3, 8, CostModel::unit_costs(), rng);
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.rejected_cost, 5.0);  // 8 requests, capacity 3
}

TEST(AdmissionOpt, WeightedPicksCheapRejections) {
  Graph g = make_single_edge_graph(1);
  AdmissionInstance inst(
      std::move(g),
      {Request({0}, 5.0), Request({0}, 1.0), Request({0}, 3.0)});
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.rejected_cost, 4.0);  // reject costs 1 and 3
  EXPECT_TRUE(opt.accepted[0]);
}

TEST(AdmissionOpt, MatchesBruteForceOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    AdmissionInstance inst = make_line_workload(
        5, 2, 12, 1, 4, CostModel::spread(1.0, 10.0), rng);
    const AdmissionOpt opt = solve_admission_opt(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_NEAR(opt.rejected_cost, brute_force_admission(inst), 1e-9)
        << "trial " << trial;
  }
}

TEST(AdmissionOpt, MatchesBruteForceWithSharedEdges) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    AdmissionInstance inst = make_star_workload(
        6, 1, 12, 3, CostModel::spread(1.0, 4.0), rng);
    const AdmissionOpt opt = solve_admission_opt(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_NEAR(opt.rejected_cost, brute_force_admission(inst), 1e-9);
  }
}

TEST(AdmissionOpt, RespectsMustAccept) {
  Graph g = make_single_edge_graph(1);
  AdmissionInstance inst(
      std::move(g), {Request({0}, 1.0), Request({0}, 9.0, true)});
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_TRUE(opt.exact);
  // The cheap request must be rejected because the pin takes the capacity.
  EXPECT_DOUBLE_EQ(opt.rejected_cost, 1.0);
  EXPECT_FALSE(opt.accepted[0]);
  EXPECT_TRUE(opt.accepted[1]);
}

TEST(AdmissionOpt, ThrowsWhenPinsAloneInfeasible) {
  Graph g = make_single_edge_graph(1);
  AdmissionInstance inst(
      std::move(g),
      {Request({0}, 1.0, true), Request({0}, 1.0, true)});
  EXPECT_THROW(solve_admission_opt(inst), InvalidArgument);
}

TEST(AdmissionOpt, SandwichedByLpAndGreedy) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    AdmissionInstance inst = make_line_workload(
        6, 2, 18, 1, 4, CostModel::spread(1.0, 8.0), rng);
    const LpSolution lp = solve_admission_lp(inst);
    const AdmissionOpt opt = solve_admission_opt(inst);
    const AdmissionOpt greedy = greedy_admission_rejection(inst);
    ASSERT_TRUE(lp.optimal());
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(lp.objective, opt.rejected_cost + 1e-7);
    EXPECT_LE(opt.rejected_cost, greedy.rejected_cost + 1e-9);
    EXPECT_TRUE(is_feasible_acceptance(inst, greedy.accepted));
  }
}

TEST(AdmissionOpt, ExcessLowerBound) {
  Rng rng(17);
  AdmissionInstance inst =
      make_single_edge_burst(2, 9, CostModel::unit_costs(), rng);
  EXPECT_EQ(excess_lower_bound(inst), 7);
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_GE(opt.rejected_cost,
            static_cast<double>(excess_lower_bound(inst)) - 1e-9);
}

TEST(GreedyAdmission, FeasibleOnAdversarialKiller) {
  AdmissionInstance inst = make_greedy_killer(6, 2);
  const AdmissionOpt greedy = greedy_admission_rejection(inst);
  EXPECT_TRUE(is_feasible_acceptance(inst, greedy.accepted));
  // Greedy should find the small solution here: rejecting the 2 spanning
  // requests covers every edge's excess.
  EXPECT_DOUBLE_EQ(greedy.rejected_cost, 2.0);
}

TEST(AdmissionOpt, NodeBudgetCapReturnsIncumbent) {
  // A tiny node budget cannot certify optimality; the solver must still
  // return a feasible incumbent and flag exact == false.
  Rng rng(53);
  AdmissionInstance inst = make_line_workload(
      8, 2, 40, 1, 5, CostModel::spread(1.0, 8.0), rng);
  const AdmissionOpt capped = solve_admission_opt(inst, /*node_budget=*/4);
  EXPECT_FALSE(capped.exact);
  EXPECT_TRUE(is_feasible_acceptance(inst, capped.accepted));
  // The incumbent can only improve with a real budget.
  const AdmissionOpt full = solve_admission_opt(inst);
  EXPECT_LE(full.rejected_cost, capped.rejected_cost + 1e-9);
}

// ---------------------------------------------------------------------------
// Multicover
// ---------------------------------------------------------------------------

TEST(GreedyMulticover, CoversAllDemands) {
  Rng rng(19);
  SetSystem sys = random_uniform_system(15, 10, 4, 3, rng);
  CoverInstance inst(sys, arrivals_each_k_times(15, 2, true, rng));
  const MulticoverResult greedy = greedy_multicover(inst);
  EXPECT_TRUE(covers_demands(inst, greedy.chosen));
  EXPECT_FALSE(greedy.exact);
}

TEST(MulticoverOpt, MatchesBruteForceOnRandomInstances) {
  Rng rng(23);
  for (int trial = 0; trial < 15; ++trial) {
    SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
    CoverInstance inst(sys, arrivals_each_k_times(10, 1, true, rng));
    const MulticoverResult opt = solve_multicover_opt(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_NEAR(opt.cost, brute_force_multicover(inst), 1e-9)
        << "trial " << trial;
  }
}

TEST(MulticoverOpt, MatchesBruteForceWithRepetitions) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    SetSystem sys = random_uniform_system(8, 10, 3, 3, rng);
    CoverInstance inst(sys, arrivals_each_k_times(8, 2, true, rng));
    const MulticoverResult opt = solve_multicover_opt(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_NEAR(opt.cost, brute_force_multicover(inst), 1e-9);
  }
}

TEST(MulticoverOpt, SandwichedByLpAndGreedy) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    SetSystem sys = random_uniform_system(12, 9, 4, 2, rng);
    CoverInstance inst(sys, arrivals_each_k_times(12, 2, true, rng));
    const LpSolution lp = solve_multicover_lp(inst);
    const MulticoverResult opt = solve_multicover_opt(inst);
    const MulticoverResult greedy = greedy_multicover(inst);
    ASSERT_TRUE(lp.optimal());
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(lp.objective, opt.cost + 1e-7);
    EXPECT_LE(opt.cost, greedy.cost + 1e-9);
  }
}

TEST(MulticoverOpt, PlantedInstanceFindsPlantedCost) {
  Rng rng(37);
  SetSystem sys = planted_cover_system(12, 16, 3, 1, 2, rng);
  CoverInstance inst(sys, arrivals_each_once(12, rng));
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  // The planted partition gives cost exactly 3 (decoys cannot beat it
  // since any cover needs >= ceil(12 / max set size) sets).
  EXPECT_LE(opt.cost, 3.0 + 1e-9);
}

TEST(MulticoverOpt, InfeasibleThrows) {
  SetSystem sys(2, {{0}, {0, 1}});
  CoverInstance inst(sys, {1, 1});
  EXPECT_THROW(solve_multicover_opt(inst), InvalidArgument);
  EXPECT_THROW(greedy_multicover(inst), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cross-check: the §4 reduction preserves the optimum.
// ---------------------------------------------------------------------------

TEST(ReductionOpt, MulticoverOptEqualsAdmissionOptOfReducedInstance) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    SetSystem sys = random_uniform_system(8, 8, 3, 2, rng);
    const auto arrivals = arrivals_each_k_times(8, 2, true, rng);
    CoverInstance cover_inst(sys, arrivals);
    const MulticoverResult cover_opt = solve_multicover_opt(cover_inst);

    const AdmissionInstance reduced =
        reduced_admission_instance(sys, arrivals);
    const AdmissionOpt admission_opt = solve_admission_opt(reduced);

    ASSERT_TRUE(cover_opt.exact);
    ASSERT_TRUE(admission_opt.exact);
    EXPECT_NEAR(cover_opt.cost, admission_opt.rejected_cost, 1e-9)
        << "trial " << trial;
  }
}

TEST(ReductionOpt, WeightedInstanceAgrees) {
  Rng rng(43);
  SetSystem base = random_uniform_system(6, 7, 3, 2, rng);
  SetSystem sys = with_random_costs(base, 1.0, 9.0, rng);
  const auto arrivals = arrivals_each_once(6, rng);
  CoverInstance cover_inst(sys, arrivals);
  const MulticoverResult cover_opt = solve_multicover_opt(cover_inst);
  const AdmissionOpt admission_opt =
      solve_admission_opt(reduced_admission_instance(sys, arrivals));
  ASSERT_TRUE(cover_opt.exact && admission_opt.exact);
  EXPECT_NEAR(cover_opt.cost, admission_opt.rejected_cost, 1e-9);
}

}  // namespace
}  // namespace minrej

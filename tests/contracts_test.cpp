// Tests for the enforcement machinery itself: the online-contract base
// classes must catch misbehaving algorithms, since every property test in
// the suite leans on exactly these checks.
#include <gtest/gtest.h>

#include "core/online_admission.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "graph/generators.h"
#include "setcover/generators.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Misbehaving admission algorithms
// ---------------------------------------------------------------------------

/// Accepts everything, capacity be damned.
class AcceptAll : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "accept-all"; }

 protected:
  ArrivalResult handle(RequestId, const Request&) override {
    return {true, {}};
  }
};

TEST(AdmissionContract, OverflowAcceptanceThrows) {
  Graph g = make_single_edge_graph(1);
  AcceptAll alg(g);
  alg.process(Request({0}, 1.0));
  EXPECT_THROW(alg.process(Request({0}, 1.0)), InternalError);
}

/// Tries to preempt a request that was already rejected.
class DoublePreempt : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "double-preempt"; }

 protected:
  ArrivalResult handle(RequestId id, const Request&) override {
    ArrivalResult r;
    r.accepted = true;
    if (id >= 1) r.preempted.push_back(0);  // preempt request 0 every time
    return r;
  }
};

TEST(AdmissionContract, PreemptingRejectedRequestThrows) {
  Graph g = make_line_graph(3, 5);
  DoublePreempt alg(g);
  alg.process(Request({0}, 1.0));
  alg.process(Request({1}, 1.0));  // legal: preempts 0 (accepted)
  EXPECT_THROW(alg.process(Request({2}, 1.0)), InternalError);
}

/// Preempts the arriving request itself (a future id) — must be caught.
class PreemptSelf : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "preempt-self"; }

 protected:
  ArrivalResult handle(RequestId id, const Request&) override {
    return {true, {id}};
  }
};

TEST(AdmissionContract, PreemptingSelfThrows) {
  Graph g = make_single_edge_graph(3);
  PreemptSelf alg(g);
  EXPECT_THROW(alg.process(Request({0}, 1.0)), InternalError);
}

/// Rejects a must_accept request.
class RejectAll : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "reject-all"; }

 protected:
  ArrivalResult handle(RequestId, const Request&) override {
    return {false, {}};
  }
};

TEST(AdmissionContract, RejectingMustAcceptThrows) {
  Graph g = make_single_edge_graph(3);
  RejectAll alg(g);
  alg.process(Request({0}, 1.0));  // fine: reject a normal request
  EXPECT_THROW(alg.process(Request({0}, 1.0, /*must_accept=*/true)),
               InternalError);
}

/// Preempting a must_accept request must also be caught.
class PreemptPinned : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "preempt-pinned"; }

 protected:
  ArrivalResult handle(RequestId id, const Request&) override {
    ArrivalResult r;
    r.accepted = true;
    if (id == 1) r.preempted.push_back(0);
    return r;
  }
};

TEST(AdmissionContract, PreemptingMustAcceptThrows) {
  Graph g = make_line_graph(2, 5);
  PreemptPinned alg(g);
  alg.process(Request({0}, 1.0, /*must_accept=*/true));
  EXPECT_THROW(alg.process(Request({1}, 1.0)), InternalError);
}

TEST(AdmissionContract, DuplicatePreemptionsAreDeduplicated) {
  // Returning the same victim twice must not corrupt usage accounting.
  class DupPreempt : public OnlineAdmissionAlgorithm {
   public:
    using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
    std::string name() const override { return "dup-preempt"; }

   protected:
    ArrivalResult handle(RequestId id, const Request&) override {
      ArrivalResult r;
      r.accepted = true;
      if (id == 1) r.preempted = {0, 0, 0};
      return r;
    }
  };
  Graph g = make_single_edge_graph(1);
  DupPreempt alg(g);
  alg.process(Request({0}, 2.0));
  const ArrivalResult r = alg.process(Request({0}, 1.0));
  EXPECT_EQ(r.preempted.size(), 1u);
  EXPECT_DOUBLE_EQ(alg.rejected_cost(), 2.0);
  EXPECT_EQ(alg.edge_usage()[0], 1);
}

TEST(AdmissionContract, InputValidation) {
  Graph g = make_single_edge_graph(1);
  AcceptAll alg(g);
  EXPECT_THROW(alg.process(Request({}, 1.0)), InvalidArgument);
  EXPECT_THROW(alg.process(Request({0}, -1.0)), InvalidArgument);
  EXPECT_THROW(alg.process(Request({7}, 1.0)), InvalidArgument);
  EXPECT_THROW(alg.state(99), InvalidArgument);
}

TEST(AdmissionContract, StateTransitionsVisible) {
  Graph g = make_single_edge_graph(1);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  RandomizedAdmission alg(g, cfg);
  alg.process(Request({0}, 1.0));
  EXPECT_EQ(alg.state(0), RequestState::kAccepted);
  // Force the edge over capacity repeatedly; eventually request 0 flips to
  // rejected and can never flip back (checked by the property suite).
  for (int i = 0; i < 5; ++i) alg.process(Request({0}, 1.0));
  std::size_t accepted = 0;
  for (RequestId i = 0; i < 6; ++i) {
    accepted += alg.state(i) == RequestState::kAccepted;
  }
  EXPECT_LE(accepted, 1u);  // capacity 1
}

// ---------------------------------------------------------------------------
// Misbehaving set cover algorithms
// ---------------------------------------------------------------------------

/// Never chooses anything.
class LazyCover : public OnlineSetCoverAlgorithm {
 public:
  using OnlineSetCoverAlgorithm::OnlineSetCoverAlgorithm;
  std::string name() const override { return "lazy"; }

 protected:
  std::vector<SetId> handle_element(ElementId) override { return {}; }
};

TEST(CoverContract, UncoveredArrivalThrows) {
  SetSystem sys(2, {{0}, {1}});
  LazyCover alg(sys);
  EXPECT_THROW(alg.on_element(0), InternalError);
}

/// Chooses the same set on every arrival.
class RepeatChooser : public OnlineSetCoverAlgorithm {
 public:
  using OnlineSetCoverAlgorithm::OnlineSetCoverAlgorithm;
  std::string name() const override { return "repeat"; }

 protected:
  std::vector<SetId> handle_element(ElementId) override { return {0}; }
};

TEST(CoverContract, ReChoosingASetThrows) {
  SetSystem sys(1, {{0}, {0}});
  RepeatChooser alg(sys);
  alg.on_element(0);
  EXPECT_THROW(alg.on_element(0), InternalError);
}

TEST(CoverContract, OverDemandThrows) {
  SetSystem sys(1, {{0}});
  RepeatChooser alg(sys);
  alg.on_element(0);
  // Demand would exceed the element's degree — infeasible by definition.
  EXPECT_THROW(alg.on_element(0), InvalidArgument);
}

TEST(CoverContract, UnknownElementThrows) {
  SetSystem sys(2, {{0, 1}});
  LazyCover alg(sys);
  EXPECT_THROW(alg.on_element(9), InvalidArgument);
  EXPECT_THROW(alg.demand(9), InvalidArgument);
  EXPECT_THROW(alg.covered(9), InvalidArgument);
}

TEST(CoverContract, CostAccountingMatchesChosen) {
  Rng rng(1);
  SetSystem sys = with_random_costs(
      random_uniform_system(6, 5, 3, 2, rng), 1.0, 9.0, rng);
  RandomizedConfig cfg;
  cfg.seed = 3;
  ReductionSetCover alg(sys, cfg);
  for (ElementId j = 0; j < 6; ++j) alg.on_element(j);
  double expected = 0.0;
  for (SetId s = 0; s < 5; ++s) {
    if (alg.chosen()[s]) expected += sys.cost(s);
  }
  EXPECT_NEAR(alg.cost(), expected, 1e-9);
}

}  // namespace
}  // namespace minrej

// Property-based tests: randomized sweeps asserting the structural
// invariants of the paper's algorithms on every arrival, across seeds
// (parameterized with TEST_P over the seed space).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bicriteria_setcover.h"
#include "core/fractional_admission.h"
#include "core/fractional_engine.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "offline/admission_opt.h"
#include "offline/certificate.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace minrej {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Fractional engine invariants under random streams
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, EngineCoveringInvariantHoldsAfterEveryArrival) {
  Rng rng(GetParam());
  AdmissionInstance inst = make_line_workload(
      6, 2, 30, 1, 4, CostModel::unit_costs(), rng);
  FractionalEngine engine(inst.graph(), 0.25);
  for (const Request& r : inst.requests()) {
    engine.arrive(r.edges, 1.0, 1.0);
    // The §2 invariant must hold on the edges of the arriving request.
    for (EdgeId e : r.edges) {
      EXPECT_TRUE(engine.constraint_satisfied(e));
    }
  }
}

TEST_P(SeededProperty, EngineWeightsMonotoneAndCapped) {
  Rng rng(GetParam() + 1000);
  AdmissionInstance inst = make_star_workload(
      5, 2, 30, 3, CostModel::unit_costs(), rng);
  FractionalEngine engine(inst.graph(), 0.25);
  std::vector<double> prev;
  for (const Request& r : inst.requests()) {
    engine.arrive(r.edges, 1.0, 1.0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      EXPECT_GE(engine.weight(static_cast<RequestId>(i)), prev[i] - 1e-12);
    }
    prev.clear();
    for (std::size_t i = 0; i < engine.request_count(); ++i) {
      prev.push_back(engine.weight(static_cast<RequestId>(i)));
      // Weights never exceed 2 (the paper: at most 1 + 1/p <= 2).
      EXPECT_LE(prev.back(), 2.0 + 1e-9);
    }
  }
}

TEST_P(SeededProperty, FractionalCostNeverDecreases) {
  Rng rng(GetParam() + 2000);
  AdmissionInstance inst = make_grid_workload(
      3, 3, 2, 40, CostModel::spread(1.0, 8.0), rng);
  FractionalAdmission alg(inst.graph());
  double last = 0.0;
  for (const Request& r : inst.requests()) {
    alg.on_request(r);
    EXPECT_GE(alg.fractional_cost(), last - 1e-9);
    last = alg.fractional_cost();
  }
}

// ---------------------------------------------------------------------------
// Randomized admission invariants
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, RandomizedNeverUnrejects) {
  Rng rng(GetParam() + 3000);
  AdmissionInstance inst = make_line_workload(
      8, 2, 40, 1, 5, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = GetParam();
  RandomizedAdmission alg(inst.graph(), cfg);
  std::vector<bool> was_rejected;
  for (const Request& r : inst.requests()) {
    alg.process(r);
    for (std::size_t i = 0; i < was_rejected.size(); ++i) {
      if (was_rejected[i]) {
        EXPECT_EQ(alg.state(static_cast<RequestId>(i)),
                  RequestState::kRejected)
            << "request " << i << " came back from rejection";
      }
    }
    was_rejected.clear();
    for (std::size_t i = 0; i < alg.arrivals(); ++i) {
      was_rejected.push_back(alg.state(static_cast<RequestId>(i)) ==
                             RequestState::kRejected);
    }
  }
}

TEST_P(SeededProperty, RandomizedRejectedCostMatchesStates) {
  Rng rng(GetParam() + 4000);
  AdmissionInstance inst = make_star_workload(
      6, 2, 40, 2, CostModel::spread(1.0, 6.0), rng);
  RandomizedConfig cfg;
  cfg.seed = GetParam() * 31 + 7;
  RandomizedAdmission alg(inst.graph(), cfg);
  run_admission(alg, inst);
  double recomputed = 0.0;
  for (RequestId i = 0; i < inst.request_count(); ++i) {
    if (alg.state(i) == RequestState::kRejected) {
      recomputed += inst.request(i).cost;
    }
  }
  EXPECT_NEAR(recomputed, alg.rejected_cost(), 1e-9);
}

TEST_P(SeededProperty, RandomizedUsageMatchesAcceptedStates) {
  Rng rng(GetParam() + 5000);
  AdmissionInstance inst = make_line_workload(
      6, 3, 36, 1, 3, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = GetParam();
  RandomizedAdmission alg(inst.graph(), cfg);
  run_admission(alg, inst);
  std::vector<std::int64_t> usage(inst.graph().edge_count(), 0);
  for (RequestId i = 0; i < inst.request_count(); ++i) {
    if (alg.state(i) == RequestState::kAccepted) {
      for (EdgeId e : inst.request(i).edges) ++usage[e];
    }
  }
  for (std::size_t e = 0; e < usage.size(); ++e) {
    EXPECT_EQ(usage[e], alg.edge_usage()[e]);
    EXPECT_LE(usage[e], inst.graph().capacity(static_cast<EdgeId>(e)));
  }
}

// ---------------------------------------------------------------------------
// Set cover invariants
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, ReductionCoverMonotoneAndSufficient) {
  Rng rng(GetParam() + 6000);
  SetSystem sys = random_uniform_system(10, 8, 3, 3, rng);
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  RandomizedConfig cfg;
  cfg.seed = GetParam();
  ReductionSetCover alg(sys, cfg);
  std::size_t last_chosen = 0;
  for (ElementId j : arrivals) {
    alg.on_element(j);
    EXPECT_GE(alg.chosen_count(), last_chosen);  // covers only grow
    last_chosen = alg.chosen_count();
    EXPECT_GE(alg.covered(j), alg.demand(j));
  }
}

TEST_P(SeededProperty, BicriteriaPotentialBoundedThroughout) {
  Rng rng(GetParam() + 7000);
  SetSystem sys = random_uniform_system(10, 8, 3, 4, rng);
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  BicriteriaSetCover alg(sys, BicriteriaConfig{0.4});
  const double n2 = 100.0;
  for (ElementId j : arrivals) {
    alg.on_element(j);
    EXPECT_LE(alg.potential(), n2 * (1 + 1e-9));
    EXPECT_GE(alg.covered(j),
              std::min<std::int64_t>(
                  alg.required_coverage(alg.demand(j)),
                  static_cast<std::int64_t>(sys.degree(j))));
  }
}

TEST_P(SeededProperty, BicriteriaChosenCountMatchesCost) {
  Rng rng(GetParam() + 8000);
  SetSystem sys = random_uniform_system(8, 10, 3, 3, rng);
  BicriteriaSetCover alg(sys, BicriteriaConfig{0.5});
  run_setcover(alg, arrivals_each_k_times(8, 2, true, rng));
  // Unit costs: cost equals the number of chosen sets, which equals the
  // sum of the two instrumentation counters.
  EXPECT_DOUBLE_EQ(alg.cost(), static_cast<double>(alg.chosen_count()));
  EXPECT_EQ(alg.chosen_count(),
            alg.threshold_additions() + alg.rounding_additions());
}

// ---------------------------------------------------------------------------
// Offline ground-truth sandwich (DESIGN.md §10): for every catalog
// scenario, certificate ≤ OPT ≤ online cost — the certificate is a sound
// lower bound by weak duality, and the engine's final acceptance is
// feasible, so its rejected cost can never undercut the optimum.
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, CertificateOptAndEngineCostSandwichOnTheCatalog) {
  for (const ScenarioInfo& info : scenario_catalog()) {
    ScenarioParams params;
    params.requests = 400;
    params.edges = 16;
    Rng rng(GetParam() + 9000);
    const AdmissionInstance inst = make_scenario(info.name, params, rng);

    const DualCertificate cert = build_dual_certificate(inst);
    const CertificateVerdict verdict = verify_certificate(inst, cert);
    ASSERT_TRUE(verdict.feasible) << info.name << ": " << verdict.error;
    ASSERT_TRUE(verdict.claim_ok) << info.name << ": " << verdict.error;

    RandomizedConfig cfg;
    cfg.unit_costs = all_unit_costs(inst);
    cfg.seed = GetParam() * 31 + 7;
    RandomizedAdmission alg(inst.graph(), cfg);
    const double cost = run_admission(alg, inst).rejected_cost;
    const double slack = 1e-6 * (1.0 + cost);

    EXPECT_LE(verdict.value, cost + slack) << info.name;
    if (maxflow_solvable(inst)) {
      const double opt =
          solve_admission_opt(inst, OptBackend::kMaxFlow).rejected_cost;
      EXPECT_LE(verdict.value, opt + slack) << info.name;
      EXPECT_LE(opt, cost + slack) << info.name;
    }
  }
}

TEST_P(SeededProperty, CertificateVerifierRejectsPerturbedDuals) {
  ScenarioParams params;
  params.requests = 400;
  params.edges = 16;
  Rng rng(GetParam() + 10000);
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  const DualCertificate cert = build_dual_certificate(inst);
  ASSERT_FALSE(cert.edges.empty());
  const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(cert.edges.size()) - 1));

  {  // A negative dual variable breaks feasibility outright.
    DualCertificate bad = cert;
    bad.y[victim] = -bad.y[victim] - 1.0;
    const CertificateVerdict verdict = verify_certificate(inst, bad);
    EXPECT_FALSE(verdict.feasible);
    EXPECT_EQ(verdict.error, "dual variable must be finite and non-negative");
  }
  {  // A duplicated edge would double-count its dual mass.
    DualCertificate bad = cert;
    bad.edges.push_back(bad.edges[victim]);
    bad.y.push_back(bad.y[victim]);
    const CertificateVerdict verdict = verify_certificate(inst, bad);
    EXPECT_FALSE(verdict.feasible);
    EXPECT_EQ(verdict.error, "duplicate edge in certificate");
  }
  {  // Inflating the claim leaves y feasible but the claim unbacked: the
    // verifier recomputes D(y) and refuses the overstated value.
    DualCertificate bad = cert;
    bad.claimed_value = bad.claimed_value * 1.1 + 1.0;
    const CertificateVerdict verdict = verify_certificate(inst, bad);
    EXPECT_TRUE(verdict.feasible);
    EXPECT_FALSE(verdict.claim_ok);
    EXPECT_EQ(verdict.error, "claimed value overstates D(y)");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace minrej

// opt_differential_test.cpp — the combinatorial OPT backend against the
// solvers it must agree with.
//
// Three layers, mirroring DESIGN.md §10:
//   * the Dinic solver itself on classic flow networks (known values,
//     zero-capacity arcs, disconnected terminals, min-cut consistency);
//   * the kMaxFlow admission backend differentially against the
//     branch-and-bound OPT and the simplex LP on randomized single-edge
//     instances (where the covering LP is integral, all three agree), plus
//     the degenerate shapes and the out-of-class refusals;
//   * the adversarial_lower_bound pin: measured ratio grows with n across
//     three sizes while staying under the paper's Theorem 4 envelope.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/randomized_admission.h"
#include "lp/covering_lp.h"
#include "offline/admission_opt.h"
#include "offline/certificate.h"
#include "offline/maxflow.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/check.h"

namespace minrej {
namespace {

using test::COST_TOLERANCE;
using test::SeededTest;

// ---------------------------------------------------------------------------
// Dinic on classic networks
// ---------------------------------------------------------------------------

TEST(MaxFlowNetwork, ClassicNetworkReachesTheKnownValue) {
  // The CLRS figure-26 network: max flow 23.
  MaxFlowNetwork net(6);
  const std::size_t s = 0, v1 = 1, v2 = 2, v3 = 3, v4 = 4, t = 5;
  net.add_arc(s, v1, 16);
  net.add_arc(s, v2, 13);
  net.add_arc(v1, v3, 12);
  net.add_arc(v2, v1, 4);
  net.add_arc(v3, v2, 9);
  net.add_arc(v2, v4, 14);
  net.add_arc(v4, v3, 7);
  net.add_arc(v3, t, 20);
  net.add_arc(v4, t, 4);
  EXPECT_EQ(net.solve(s, t), 23);
  EXPECT_GT(net.augmentations(), 0u);
}

TEST(MaxFlowNetwork, ZeroCapacityArcsCarryNoFlow) {
  MaxFlowNetwork net(3);
  const std::size_t dead = net.add_arc(0, 1, 0);
  net.add_arc(1, 2, 5);
  EXPECT_EQ(net.solve(0, 2), 0);
  EXPECT_EQ(net.flow_on(dead), 0);
  EXPECT_EQ(net.augmentations(), 0u);
}

TEST(MaxFlowNetwork, DisconnectedSinkGivesZeroFlow) {
  MaxFlowNetwork net(4);
  net.add_arc(0, 1, 7);  // sink 3 unreachable
  net.add_arc(2, 3, 7);
  EXPECT_EQ(net.solve(0, 3), 0);
}

TEST(MaxFlowNetwork, MinCutSeparatesTerminalsAndMatchesTheFlow) {
  MaxFlowNetwork net(4);
  std::vector<std::size_t> arcs;
  arcs.push_back(net.add_arc(0, 1, 3));
  arcs.push_back(net.add_arc(0, 2, 2));
  arcs.push_back(net.add_arc(1, 2, 1));
  arcs.push_back(net.add_arc(1, 3, 2));
  arcs.push_back(net.add_arc(2, 3, 3));
  const std::int64_t flow = net.solve(0, 3);
  EXPECT_EQ(flow, 5);
  const std::vector<bool> side = net.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
  // Max-flow/min-cut duality: the forward capacity crossing the cut
  // equals the flow value.
  const std::int64_t caps[] = {3, 2, 1, 2, 3};
  const std::size_t tails[] = {0, 0, 1, 1, 2};
  const std::size_t heads[] = {1, 2, 2, 3, 3};
  std::int64_t crossing = 0;
  for (std::size_t k = 0; k < arcs.size(); ++k) {
    if (side[tails[k]] && !side[heads[k]]) crossing += caps[k];
  }
  EXPECT_EQ(crossing, flow);
}

TEST(MaxFlowNetwork, ContractViolationsThrow) {
  MaxFlowNetwork net(2);
  EXPECT_THROW(net.add_arc(0, 2, 1), InvalidArgument);
  EXPECT_THROW(net.add_arc(0, 1, -1), InvalidArgument);
  net.add_arc(0, 1, 1);
  EXPECT_THROW(net.solve(0, 0), InvalidArgument);
  EXPECT_THROW(net.flow_on(0), InvalidArgument);  // before solve
  EXPECT_EQ(net.solve(0, 1), 1);
  EXPECT_THROW(net.solve(0, 1), InvalidArgument);  // once per network
  EXPECT_THROW(net.add_arc(0, 1, 1), InvalidArgument);  // after solve
}

// ---------------------------------------------------------------------------
// kMaxFlow vs branch-and-bound vs simplex
// ---------------------------------------------------------------------------

/// Random single-edge-disjoint instance: star of `edges` spokes with
/// random capacities, every rejectable request on one random spoke, plus
/// a sprinkle of must_accept requests (single- and multi-edge) that never
/// break feasibility.
AdmissionInstance random_flow_instance(Rng& rng, std::size_t edges,
                                       std::size_t requests,
                                       bool unit_costs) {
  std::vector<std::int64_t> capacities(edges);
  std::vector<std::int64_t> must_load(edges, 0);
  for (auto& c : capacities) c = rng.uniform_int(1, 5);
  Graph graph = Graph::star(capacities);
  std::vector<Request> reqs;
  reqs.reserve(requests);
  const CostModel costs =
      unit_costs ? CostModel::unit_costs() : CostModel::spread(1.0, 16.0);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto e = static_cast<EdgeId>(rng.index(edges));
    if (rng.bernoulli(0.15)) {
      // must_accept, possibly multi-edge; only where spare capacity
      // remains so the instance stays feasible.
      std::vector<EdgeId> span;
      for (EdgeId cand : {e, static_cast<EdgeId>(rng.index(edges))}) {
        if (must_load[cand] < capacities[cand] &&
            std::find(span.begin(), span.end(), cand) == span.end()) {
          span.push_back(cand);
          ++must_load[cand];
        }
      }
      if (!span.empty()) {
        std::sort(span.begin(), span.end());
        reqs.emplace_back(std::move(span), costs.sample(rng), true);
        continue;
      }
    }
    reqs.emplace_back(std::vector<EdgeId>{e}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(reqs));
}

class OptDifferential : public SeededTest {};

TEST_F(OptDifferential, MaxFlowMatchesBranchAndBoundAndSimplex) {
  for (std::size_t trial = 0; trial < 40; ++trial) {
    const bool unit = trial % 2 == 0;
    const AdmissionInstance inst =
        random_flow_instance(rng, 3 + trial % 5, 12 + trial, unit);
    ASSERT_TRUE(maxflow_solvable(inst));
    const AdmissionOpt flow = solve_admission_opt_maxflow(inst);
    const AdmissionOpt bnb = solve_admission_opt(inst);
    ASSERT_TRUE(flow.exact);
    ASSERT_TRUE(bnb.exact) << "trial " << trial;
    EXPECT_NEAR(flow.rejected_cost, bnb.rejected_cost, COST_TOLERANCE)
        << "trial " << trial;
    EXPECT_TRUE(is_feasible_acceptance(inst, flow.accepted));
    EXPECT_NEAR(rejected_cost(inst, flow.accepted), flow.rejected_cost,
                COST_TOLERANCE);
    // Single-edge disjoint rows make the covering LP integral, so the
    // simplex optimum is the same number, not just a lower bound.
    const LpSolution lp = solve_admission_lp(inst);
    ASSERT_TRUE(lp.optimal()) << "trial " << trial;
    EXPECT_NEAR(lp.objective, flow.rejected_cost,
                1e-7 * std::max(1.0, flow.rejected_cost))
        << "trial " << trial;
  }
}

TEST_F(OptDifferential, AutoBackendAgreesWithExplicitBackends) {
  const AdmissionInstance inst = random_flow_instance(rng, 4, 30, false);
  const AdmissionOpt via_auto = solve_admission_opt(inst, OptBackend::kAuto);
  const AdmissionOpt via_flow =
      solve_admission_opt(inst, OptBackend::kMaxFlow);
  const AdmissionOpt via_bnb =
      solve_admission_opt(inst, OptBackend::kBranchAndBound);
  EXPECT_NEAR(via_auto.rejected_cost, via_flow.rejected_cost,
              COST_TOLERANCE);
  EXPECT_NEAR(via_auto.rejected_cost, via_bnb.rejected_cost,
              COST_TOLERANCE);
}

TEST_F(OptDifferential, DegenerateShapes) {
  // Empty instance: nothing to reject.
  const AdmissionInstance empty = test::empty_admission_instance();
  EXPECT_TRUE(maxflow_solvable(empty));
  const AdmissionOpt none = solve_admission_opt_maxflow(empty);
  EXPECT_EQ(none.rejected_cost, 0.0);
  EXPECT_TRUE(none.accepted.empty());
  EXPECT_TRUE(none.exact);

  // Single request within capacity: accepted.
  {
    Graph g = make_single_edge_graph(2);
    AdmissionInstance one(std::move(g),
                          {Request({0}, 3.5)});
    const AdmissionOpt opt = solve_admission_opt_maxflow(one);
    EXPECT_EQ(opt.rejected_cost, 0.0);
    ASSERT_EQ(opt.accepted.size(), 1u);
    EXPECT_TRUE(opt.accepted[0]);
  }

  // Overloaded single edge: the cheapest excess is rejected.
  {
    Graph g = make_single_edge_graph(1);
    AdmissionInstance burst(
        std::move(g), {Request({0}, 5.0), Request({0}, 1.0),
                       Request({0}, 3.0)});
    const AdmissionOpt opt = solve_admission_opt_maxflow(burst);
    EXPECT_NEAR(opt.rejected_cost, 4.0, COST_TOLERANCE);  // reject 1 and 3
    EXPECT_TRUE(opt.accepted[0]);
  }

  // must_accept load over capacity: infeasible, same error as the B&B.
  {
    Graph g = make_single_edge_graph(1);
    AdmissionInstance infeasible(
        std::move(g),
        {Request({0}, 1.0, true), Request({0}, 1.0, true)});
    EXPECT_THROW(solve_admission_opt_maxflow(infeasible), InvalidArgument);
    EXPECT_THROW(solve_admission_opt(infeasible), InvalidArgument);
  }
}

TEST_F(OptDifferential, MultiEdgeRejectableIsOutOfClass) {
  // A rejectable request spanning two edges embeds set cover — the flow
  // backend must refuse rather than silently answer wrong, and kAuto must
  // fall back to the branch-and-bound.
  const AdmissionInstance inst = test::small_line_instance(rng);
  ASSERT_FALSE(maxflow_solvable(inst));
  EXPECT_THROW(solve_admission_opt_maxflow(inst), InvalidArgument);
  const AdmissionOpt via_auto = solve_admission_opt(inst, OptBackend::kAuto);
  const AdmissionOpt via_bnb = solve_admission_opt(inst);
  EXPECT_NEAR(via_auto.rejected_cost, via_bnb.rejected_cost,
              COST_TOLERANCE);
}

// ---------------------------------------------------------------------------
// The adversarial lower-bound pin (ISSUE 9 satellite 3)
// ---------------------------------------------------------------------------

/// log2 clamped to >= 1, the paper's convention for bound formulas.
double clog2(double x) { return std::max(1.0, std::log2(x)); }

TEST(AdversarialLowerBound, MeasuredRatioGrowsWithNUnderThePaperBound) {
  // Three sizes, fixed seeds: the construction's capacity knob grows
  // ⌈log₂ n⌉ and the §3 randomized algorithm pays Θ(c·log c) per block
  // before each special saturates (workloads.h), so the measured ratio
  // must grow monotonically with n — while staying under the Theorem 4
  // envelope O(log m · log c) (constant fixed generously; the point of
  // the pin is the *shape*, growth without escape).
  const std::size_t sizes[] = {1500, 6000, 24000};
  double previous = 0.0;
  for (const std::size_t n : sizes) {
    ScenarioParams params;
    params.requests = n;
    Rng rng(17);
    const AdmissionInstance inst =
        make_scenario("adversarial_lower_bound", params, rng);
    ASSERT_TRUE(all_unit_costs(inst));

    // OPT is analytic: one rejection per block (the spanning special),
    // and the blocks are exactly the multi-edge requests.
    double blocks = 0.0;
    for (const Request& r : inst.requests()) {
      if (r.edges.size() > 1) blocks += 1.0;
    }
    ASSERT_GT(blocks, 0.0);
    // The certificate agrees exactly here (quantile dual is tight on this
    // construction) — the bench's lower bound is honest OPT, not a gap.
    const DualCertificate cert = build_dual_certificate(inst);
    const CertificateVerdict verdict = verify_certificate(inst, cert);
    ASSERT_TRUE(verdict.feasible);
    ASSERT_TRUE(verdict.claim_ok);
    EXPECT_NEAR(verdict.value, blocks, 1e-6 * blocks);

    // Average two seeds: the §3 rounding is randomized and the pin should
    // assert the trend, not one coin-flip trajectory.
    double cost = 0.0;
    const std::uint64_t seeds[] = {101, 202};
    for (const std::uint64_t seed : seeds) {
      RandomizedConfig cfg;
      cfg.unit_costs = true;
      cfg.seed = seed;
      RandomizedAdmission alg(inst.graph(), cfg);
      cost += run_admission(alg, inst).rejected_cost;
    }
    cost /= 2.0;
    const double ratio = competitive_ratio(cost, blocks);

    const auto m = static_cast<double>(inst.graph().edge_count());
    // Round-edge capacity, not max_capacity(): the slack edge is sized to
    // the padding and never overloads, so it plays no part in the bound.
    const auto c = static_cast<double>(inst.graph().capacity(0));
    const double envelope = 8.0 * clog2(m) * clog2(2.0 * c);
    EXPECT_GT(ratio, previous)
        << "ratio must grow with n (n=" << n << ")";
    EXPECT_LT(ratio, envelope) << "n=" << n;
    previous = ratio;
  }
}

}  // namespace
}  // namespace minrej

// Tests for src/io: instance serialization round-trips and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/instance_io.h"
#include "setcover/generators.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

bool same_admission(const AdmissionInstance& a, const AdmissionInstance& b) {
  if (a.graph().vertex_count() != b.graph().vertex_count()) return false;
  if (a.graph().edge_count() != b.graph().edge_count()) return false;
  for (EdgeId e = 0; e < a.graph().edge_count(); ++e) {
    const Edge& ea = a.graph().edge(e);
    const Edge& eb = b.graph().edge(e);
    if (ea.from != eb.from || ea.to != eb.to || ea.capacity != eb.capacity) {
      return false;
    }
  }
  if (a.request_count() != b.request_count()) return false;
  for (RequestId i = 0; i < a.request_count(); ++i) {
    const Request& ra = a.request(i);
    const Request& rb = b.request(i);
    if (ra.edges != rb.edges || ra.must_accept != rb.must_accept) return false;
    if (std::abs(ra.cost - rb.cost) > 1e-12 * std::max(1.0, ra.cost)) {
      return false;
    }
  }
  return true;
}

TEST(InstanceIo, AdmissionRoundTrip) {
  Rng rng(1);
  const AdmissionInstance original = make_line_workload(
      6, 3, 25, 1, 4, CostModel::spread(1.0, 16.0), rng);
  std::stringstream buffer;
  save_admission_instance(buffer, original);
  const AdmissionInstance loaded = load_admission_instance(buffer);
  EXPECT_TRUE(same_admission(original, loaded));
  EXPECT_EQ(original.max_excess(), loaded.max_excess());
}

TEST(InstanceIo, AdmissionRoundTripWithMustAccept) {
  Graph g(3, {{0, 1, 2}, {1, 2, 4}});
  AdmissionInstance original(
      std::move(g),
      {Request({0}, 1.5), Request({0, 1}, 2.25, /*must_accept=*/true)});
  std::stringstream buffer;
  save_admission_instance(buffer, original);
  const AdmissionInstance loaded = load_admission_instance(buffer);
  EXPECT_TRUE(same_admission(original, loaded));
  EXPECT_TRUE(loaded.request(1).must_accept);
}

TEST(InstanceIo, AdmissionCommentStampRoundTrips) {
  Rng rng(2);
  const AdmissionInstance original = make_line_workload(
      4, 2, 10, 1, 3, CostModel::unit_costs(), rng);
  std::stringstream buffer;
  save_admission_instance(buffer, original,
                          "scenario: dense_burst seed: 7\nsecond line");
  const std::string text = buffer.str();
  EXPECT_EQ(text.rfind("# scenario: dense_burst seed: 7\n# second line\n", 0),
            0u);
  const AdmissionInstance loaded = load_admission_instance(buffer);
  EXPECT_TRUE(same_admission(original, loaded));
}

TEST(InstanceIo, CoverRoundTrip) {
  Rng rng(2);
  SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  sys = with_random_costs(sys, 1.0, 9.0, rng);
  const auto arrivals = arrivals_each_k_times(10, 2, true, rng);
  CoverInstance original(sys, arrivals);

  std::stringstream buffer;
  save_cover_instance(buffer, original);
  const CoverInstance loaded = load_cover_instance(buffer);

  EXPECT_EQ(loaded.system().element_count(), 10u);
  EXPECT_EQ(loaded.system().set_count(), 8u);
  EXPECT_EQ(loaded.arrivals(), original.arrivals());
  EXPECT_EQ(loaded.demand(), original.demand());
  for (SetId s = 0; s < 8; ++s) {
    const auto a = original.system().elements_of(s);
    const auto b = loaded.system().elements_of(s);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    EXPECT_NEAR(original.system().cost(s), loaded.system().cost(s), 1e-9);
  }
}

TEST(InstanceIo, CommentsAndWhitespaceTolerated) {
  const char* text =
      "minrej-admission 1\n"
      "# a comment line\n"
      "graph 3 2\n"
      "e 0 1 2   # inline comment\n"
      "e 1 2 1\n"
      "r 1.5 0 2 0 1\n";
  std::stringstream in(text);
  const AdmissionInstance inst = load_admission_instance(in);
  EXPECT_EQ(inst.request_count(), 1u);
  EXPECT_DOUBLE_EQ(inst.request(0).cost, 1.5);
}

TEST(InstanceIo, RejectsWrongHeader) {
  std::stringstream in("minrej-banana 1\n");
  EXPECT_THROW(load_admission_instance(in), InvalidArgument);
}

TEST(InstanceIo, RejectsWrongVersion) {
  std::stringstream in("minrej-admission 7\ngraph 2 0\n");
  EXPECT_THROW(load_admission_instance(in), InvalidArgument);
}

TEST(InstanceIo, RejectsTruncatedFile) {
  std::stringstream in("minrej-admission 1\ngraph 3 2\ne 0 1 2\n");
  EXPECT_THROW(load_admission_instance(in), InvalidArgument);
}

TEST(InstanceIo, RejectsMalformedNumbers) {
  std::stringstream in(
      "minrej-admission 1\ngraph 3 1\ne 0 1 abc\n");
  EXPECT_THROW(load_admission_instance(in), InvalidArgument);
}

TEST(InstanceIo, RejectsBadMustAcceptFlag) {
  std::stringstream in(
      "minrej-admission 1\ngraph 2 1\ne 0 1 1\nr 1.0 7 1 0\n");
  EXPECT_THROW(load_admission_instance(in), InvalidArgument);
}

TEST(InstanceIo, CoverRejectsInvalidStructure) {
  // Empty set.
  std::stringstream bad_set(
      "minrej-setcover 1\nsystem 2 1\ns 1.0 0\narrivals 0\n");
  EXPECT_THROW(load_cover_instance(bad_set), InvalidArgument);
  // Arrival references unknown element (validated by CoverInstance).
  std::stringstream bad_arrival(
      "minrej-setcover 1\nsystem 2 1\ns 1.0 1 0\narrivals 1 9\n");
  EXPECT_THROW(load_cover_instance(bad_arrival), InvalidArgument);
}

TEST(InstanceIo, FileHelpersAndKindDetection) {
  Rng rng(3);
  const std::string admission_path = "/tmp/minrej_io_test_admission.txt";
  const std::string cover_path = "/tmp/minrej_io_test_cover.txt";
  save_admission_file(admission_path,
                      make_single_edge_burst(2, 6, CostModel::unit_costs(),
                                             rng));
  SetSystem sys = random_uniform_system(5, 4, 2, 1, rng);
  save_cover_file(cover_path, CoverInstance(sys, arrivals_each_once(5, rng)));

  EXPECT_EQ(detect_instance_kind(admission_path), "admission");
  EXPECT_EQ(detect_instance_kind(cover_path), "setcover");
  EXPECT_EQ(load_admission_file(admission_path).request_count(), 6u);
  EXPECT_EQ(load_cover_file(cover_path).arrivals().size(), 5u);
  std::remove(admission_path.c_str());
  std::remove(cover_path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(load_admission_file("/nonexistent/nowhere.txt"),
               InvalidArgument);
  EXPECT_THROW(detect_instance_kind("/nonexistent/nowhere.txt"),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Write → read → equality round trips (shared fixtures from test_util.h)
// ---------------------------------------------------------------------------

class IoRoundTrip : public test::SeededTest {};

TEST_F(IoRoundTrip, RandomAdmissionInstance) {
  const AdmissionInstance original = test::small_line_instance(rng);
  std::stringstream stream;
  save_admission_instance(stream, original);
  const AdmissionInstance loaded = load_admission_instance(stream);
  test::expect_same_instance(original, loaded);
}

TEST_F(IoRoundTrip, RandomCoverInstance) {
  const CoverInstance original = test::small_cover_instance(rng);
  std::stringstream stream;
  save_cover_instance(stream, original);
  const CoverInstance loaded = load_cover_instance(stream);
  test::expect_same_instance(original, loaded);
}

TEST_F(IoRoundTrip, EmptyAdmissionInstance) {
  const AdmissionInstance original = test::empty_admission_instance();
  std::stringstream stream;
  save_admission_instance(stream, original);
  const AdmissionInstance loaded = load_admission_instance(stream);
  EXPECT_EQ(loaded.request_count(), 0u);
  test::expect_same_instance(original, loaded);
}

TEST_F(IoRoundTrip, EmptyCoverArrivals) {
  const CoverInstance original = test::empty_cover_instance();
  std::stringstream stream;
  save_cover_instance(stream, original);
  const CoverInstance loaded = load_cover_instance(stream);
  EXPECT_TRUE(loaded.arrivals().empty());
  test::expect_same_instance(original, loaded);
}

TEST_F(IoRoundTrip, SecondSaveIsByteIdentical) {
  // Saving what was loaded must reproduce the file byte for byte: the
  // format stores doubles with max_digits10, so nothing drifts.
  const AdmissionInstance original = test::small_line_instance(rng);
  std::stringstream first;
  save_admission_instance(first, original);
  const AdmissionInstance loaded = load_admission_instance(first);
  std::stringstream second;
  save_admission_instance(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace minrej

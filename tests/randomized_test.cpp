// Tests for the §3 randomized admission algorithm and the baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/randomized_admission.h"
#include "graph/generators.h"
#include "offline/admission_opt.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "util/rng.h"
#include "util/stats.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Contract enforcement (the base class throws on violations, so simply
// running the algorithms over adversarial instances is itself a test).
// ---------------------------------------------------------------------------

TEST(Randomized, FeasibleOnBurst) {
  Rng rng(1);
  AdmissionInstance inst =
      make_single_edge_burst(3, 30, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = 7;
  RandomizedAdmission alg(inst.graph(), cfg);
  run_admission(alg, inst);
  // Feasibility is enforced per arrival by the base class; check the
  // terminal state explicitly as well.
  for (std::size_t e = 0; e < inst.graph().edge_count(); ++e) {
    EXPECT_LE(alg.edge_usage()[e],
              inst.graph().capacity(static_cast<EdgeId>(e)));
  }
}

TEST(Randomized, DeterministicPerSeed) {
  Rng rng(2);
  AdmissionInstance inst = make_line_workload(
      6, 2, 40, 1, 4, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = 123;
  RandomizedAdmission a(inst.graph(), cfg), b(inst.graph(), cfg);
  const AdmissionRun ra = run_admission(a, inst);
  const AdmissionRun rb = run_admission(b, inst);
  EXPECT_DOUBLE_EQ(ra.rejected_cost, rb.rejected_cost);
  EXPECT_EQ(ra.rejected_count, rb.rejected_count);
  for (RequestId i = 0; i < inst.request_count(); ++i) {
    EXPECT_EQ(a.state(i), b.state(i));
  }
}

TEST(Randomized, SeedsDiffer) {
  // With the paper's constants the rejection probabilities clamp to 1 on
  // tiny instances and all seeds coincide; a small factor keeps the coin
  // flips fractional so the seed actually matters.
  Rng rng(3);
  AdmissionInstance inst = make_line_workload(
      8, 2, 60, 1, 4, CostModel::unit_costs(), rng);
  double first = -1;
  bool varies = false;
  for (std::uint64_t seed = 0; seed < 8 && !varies; ++seed) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.factor = 0.25;
    cfg.seed = seed;
    RandomizedAdmission alg(inst.graph(), cfg);
    const AdmissionRun run = run_admission(alg, inst);
    if (first < 0) first = run.rejected_cost;
    else if (run.rejected_cost != first) varies = true;
  }
  EXPECT_TRUE(varies) << "all seeds produced identical rejections";
}

TEST(Randomized, ZeroOptZeroRejections) {
  Rng rng(4);
  AdmissionInstance inst = make_line_workload(
      6, 40, 30, 1, 3, CostModel::unit_costs(), rng);
  ASSERT_EQ(inst.max_excess(), 0);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  RandomizedAdmission alg(inst.graph(), cfg);
  const AdmissionRun run = run_admission(alg, inst);
  EXPECT_DOUBLE_EQ(run.rejected_cost, 0.0);
}

// ---------------------------------------------------------------------------
// Competitive ratio envelopes (Theorems 3 and 4).
// ---------------------------------------------------------------------------

TEST(Randomized, UnweightedWithinTheorem4Envelope) {
  // Mean ratio across seeds must stay within a constant times
  // log(m)·log(c) on unit-cost line workloads.
  Rng rng(5);
  const std::size_t m = 8;
  const std::int64_t c = 2;
  AdmissionInstance inst = make_line_workload(
      m, c, 36, 1, 4, CostModel::unit_costs(), rng);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);
  if (opt.rejected_cost <= 0) GTEST_SKIP() << "instance has zero OPT";

  RunningStats ratios;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.seed = seed;
    RandomizedAdmission alg(inst.graph(), cfg);
    const AdmissionRun run = run_admission(alg, inst);
    ratios.add(competitive_ratio(run.rejected_cost, opt.rejected_cost));
  }
  const double logm = std::max(1.0, std::log2(static_cast<double>(m)));
  const double logc = std::max(1.0, std::log2(static_cast<double>(c)));
  // Generous constant: the paper's constants (4, 12) already inflate the
  // practical ratio; anything within 40·logm·logc confirms the envelope.
  EXPECT_LE(ratios.mean(), 40.0 * logm * logc) << ratios.mean();
}

TEST(Randomized, WeightedWithinTheorem3Envelope) {
  Rng rng(6);
  const std::size_t m = 8;
  const std::int64_t c = 2;
  AdmissionInstance inst = make_line_workload(
      m, c, 48, 1, 4, CostModel::spread(1.0, 16.0), rng);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);
  if (opt.rejected_cost <= 0) GTEST_SKIP() << "instance has zero OPT";

  RunningStats ratios;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomizedConfig cfg;
    cfg.seed = seed;
    RandomizedAdmission alg(inst.graph(), cfg);
    const AdmissionRun run = run_admission(alg, inst);
    ratios.add(competitive_ratio(run.rejected_cost, opt.rejected_cost));
  }
  const double logmc =
      std::max(1.0, std::log2(static_cast<double>(m) * static_cast<double>(c)));
  EXPECT_LE(ratios.mean(), 60.0 * logmc * logmc) << ratios.mean();
}

TEST(Randomized, CalibratedFactorStillFeasible) {
  // The factor override trades constants for sharper shape measurements;
  // it must never break feasibility (enforced by the base class).
  Rng rng(7);
  AdmissionInstance inst = make_line_workload(
      10, 2, 60, 1, 5, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.factor = 1.0;
  RandomizedAdmission alg(inst.graph(), cfg);
  run_admission(alg, inst);
  SUCCEED();
}

TEST(Randomized, MustAcceptAlwaysAccepted) {
  Graph g = make_single_edge_graph(2);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  RandomizedAdmission alg(g, cfg);
  alg.process(Request({0}, 1.0));
  alg.process(Request({0}, 1.0));
  // Edge full; a must_accept arrival must be admitted, preempting at
  // least one accepted request (the threshold rule of step 2 may reject
  // both, which is legal — §3 pays for over-rejection in the analysis).
  const ArrivalResult r = alg.process(Request({0}, 1.0, true));
  EXPECT_TRUE(r.accepted);
  EXPECT_GE(r.preempted.size(), 1u);
  EXPECT_LE(alg.edge_usage()[0], 2);
}

TEST(Randomized, GreedyKillerStaysPolylog) {
  const std::size_t m = 32;
  AdmissionInstance inst = make_greedy_killer(m, 1);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_DOUBLE_EQ(opt.rejected_cost, 1.0);  // reject the spanning request

  RunningStats ratios;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.seed = seed;
    RandomizedAdmission alg(inst.graph(), cfg);
    const AdmissionRun run = run_admission(alg, inst);
    ratios.add(run.rejected_cost);  // OPT = 1
  }
  const double logm = std::log2(static_cast<double>(m));
  // Polylog, far below the Ω(m) the no-preempt baseline pays.
  EXPECT_LE(ratios.mean(), 10.0 * logm * logm);
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

TEST(Baselines, GreedyNoPreemptPaysLinearOnKiller) {
  const std::size_t m = 16;
  AdmissionInstance inst = make_greedy_killer(m, 1);
  GreedyNoPreempt alg(inst.graph());
  const AdmissionRun run = run_admission(alg, inst);
  // Greedy accepts the spanning request and rejects every singleton.
  EXPECT_DOUBLE_EQ(run.rejected_cost, static_cast<double>(m));
}

TEST(Baselines, GreedyNoPreemptZeroWhenFeasible) {
  Rng rng(8);
  AdmissionInstance inst = make_line_workload(
      5, 10, 20, 1, 3, CostModel::unit_costs(), rng);
  ASSERT_EQ(inst.max_excess(), 0);
  GreedyNoPreempt alg(inst.graph());
  EXPECT_DOUBLE_EQ(run_admission(alg, inst).rejected_cost, 0.0);
}

TEST(Baselines, PreemptCheapestHandlesKillerWell) {
  const std::size_t m = 16;
  AdmissionInstance inst = make_greedy_killer(m, 1);
  PreemptCheapest alg(inst.graph());
  const AdmissionRun run = run_admission(alg, inst);
  // Equal costs: the exchange rule (victims strictly cheaper) refuses to
  // preempt, so it behaves like greedy here — documenting the baseline's
  // weakness on the killer family.
  EXPECT_GE(run.rejected_cost, static_cast<double>(m) - 1e-9);
}

TEST(Baselines, PreemptCheapestExchangesForExpensive) {
  Graph g = make_single_edge_graph(1);
  PreemptCheapest alg(g);
  alg.process(Request({0}, 1.0));
  const ArrivalResult r = alg.process(Request({0}, 5.0));
  EXPECT_TRUE(r.accepted);
  ASSERT_EQ(r.preempted.size(), 1u);
  EXPECT_EQ(r.preempted[0], 0u);
  EXPECT_DOUBLE_EQ(alg.rejected_cost(), 1.0);
}

TEST(Baselines, PreemptRandomAlwaysMakesRoom) {
  Rng rng(9);
  AdmissionInstance inst =
      make_single_edge_burst(2, 20, CostModel::unit_costs(), rng);
  PreemptRandom alg(inst.graph(), /*seed=*/5);
  const AdmissionRun run = run_admission(alg, inst);
  // Every arrival beyond capacity preempts exactly one: 18 rejections.
  EXPECT_DOUBLE_EQ(run.rejected_cost, 18.0);
  EXPECT_LE(alg.edge_usage()[0], 2);
}

TEST(Baselines, AllRespectCapacityOnRandomWorkloads) {
  Rng rng(10);
  AdmissionInstance inst = make_grid_workload(
      4, 4, 2, 60, CostModel::spread(1.0, 8.0), rng);
  GreedyNoPreempt greedy(inst.graph());
  PreemptCheapest cheap(inst.graph());
  PreemptRandom random(inst.graph(), 3);
  run_admission(greedy, inst);
  run_admission(cheap, inst);
  run_admission(random, inst);
  SUCCEED();  // per-arrival checks are inside the base class
}

}  // namespace
}  // namespace minrej

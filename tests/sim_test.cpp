// Tests for src/sim: workload builders and the runner utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <algorithm>

#include "core/baselines.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "setcover/generators.h"
#include "service/admission_service.h"
#include "sim/feedbacksim.h"
#include "sim/runner.h"
#include "sim/trace.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModel, UnitAlwaysOne) {
  Rng rng(1);
  const CostModel unit = CostModel::unit_costs();
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(unit.sample(rng), 1.0);
}

TEST(CostModel, SpreadStaysInRange) {
  Rng rng(2);
  const CostModel spread = CostModel::spread(2.0, 32.0);
  for (int i = 0; i < 1000; ++i) {
    const double c = spread.sample(rng);
    EXPECT_GE(c, 2.0);
    EXPECT_LE(c, 32.0);
  }
}

// ---------------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------------

TEST(Workloads, LineWorkloadShape) {
  Rng rng(3);
  AdmissionInstance inst = make_line_workload(
      10, 3, 40, 2, 5, CostModel::unit_costs(), rng);
  EXPECT_EQ(inst.graph().edge_count(), 10u);
  EXPECT_EQ(inst.request_count(), 40u);
  for (const Request& r : inst.requests()) {
    EXPECT_GE(r.edges.size(), 2u);
    EXPECT_LE(r.edges.size(), 5u);
  }
}

TEST(Workloads, StarWorkloadSpokeBounds) {
  Rng rng(4);
  AdmissionInstance inst = make_star_workload(
      6, 2, 30, 3, CostModel::unit_costs(), rng);
  for (const Request& r : inst.requests()) {
    EXPECT_GE(r.edges.size(), 1u);
    EXPECT_LE(r.edges.size(), 3u);
  }
}

TEST(Workloads, TreeWorkloadUsesRootToLeafPaths) {
  Rng rng(5);
  AdmissionInstance inst = make_tree_workload(
      3, 2, 20, CostModel::unit_costs(), rng);
  for (const Request& r : inst.requests()) {
    EXPECT_EQ(r.edges.size(), 3u);  // depth-length paths
  }
}

TEST(Workloads, SingleEdgeBurstAllOnOneEdge) {
  Rng rng(6);
  AdmissionInstance inst =
      make_single_edge_burst(3, 12, CostModel::unit_costs(), rng);
  EXPECT_EQ(inst.max_excess(), 9);
  for (const Request& r : inst.requests()) {
    EXPECT_EQ(r.edges, (std::vector<EdgeId>{0}));
  }
}

TEST(Workloads, GreedyKillerStructure) {
  AdmissionInstance inst = make_greedy_killer(6, 3);
  // 3 spanning + 6*3 singles.
  EXPECT_EQ(inst.request_count(), 21u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(inst.request(static_cast<RequestId>(i)).edges.size(), 6u);
  }
  for (std::size_t i = 3; i < 21; ++i) {
    EXPECT_EQ(inst.request(static_cast<RequestId>(i)).edges.size(), 1u);
  }
  // Every edge's load: 3 spanning + 3 singles = 6 vs capacity 3.
  EXPECT_EQ(inst.max_excess(), 3);
}

TEST(Workloads, BadParametersThrow) {
  Rng rng(7);
  EXPECT_THROW(make_greedy_killer(1, 1), InvalidArgument);
  EXPECT_THROW(
      make_star_workload(4, 1, 10, 9, CostModel::unit_costs(), rng),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// Runner utilities
// ---------------------------------------------------------------------------

TEST(Runner, CompetitiveRatioConventions) {
  EXPECT_DOUBLE_EQ(competitive_ratio(0.0, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(competitive_ratio(1.0, 0.0)));
  EXPECT_DOUBLE_EQ(competitive_ratio(6.0, 2.0), 3.0);
}

TEST(Runner, RunAdmissionReportsTotals) {
  Rng rng(8);
  AdmissionInstance inst =
      make_single_edge_burst(2, 10, CostModel::unit_costs(), rng);
  GreedyNoPreempt alg(inst.graph());
  const AdmissionRun run = run_admission(alg, inst);
  EXPECT_EQ(run.arrivals, 10u);
  EXPECT_DOUBLE_EQ(run.rejected_cost, 8.0);
  EXPECT_EQ(run.rejected_count, 8u);
  EXPECT_GE(run.seconds, 0.0);
  // Greedy has no primal-dual core: no augmentation steps to report.
  EXPECT_EQ(run.augmentation_steps, 0u);
}

TEST(Runner, RunAdmissionSurfacesEngineAndLatencyCounters) {
  Rng rng(9);
  AdmissionInstance inst =
      make_single_edge_burst(2, 24, CostModel::unit_costs(), rng);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = 5;
  RandomizedAdmission alg(inst.graph(), cfg);
  const AdmissionRun run =
      run_admission(alg, inst, RunOptions{.collect_latencies = true});
  // An overloaded burst forces weight augmentations, and the run must
  // report exactly what the algorithm counted.
  EXPECT_GT(run.augmentation_steps, 0u);
  EXPECT_EQ(run.augmentation_steps, alg.augmentation_steps());
  // Latency quantiles come from real timings: ordered and positive.
  EXPECT_GT(run.p50_arrival_s, 0.0);
  EXPECT_LE(run.p50_arrival_s, run.p95_arrival_s);
  EXPECT_LE(run.p95_arrival_s, run.max_arrival_s);
  EXPECT_GT(run.arrivals_per_sec(), 0.0);
}

TEST(Runner, RunSetcoverSurfacesEngineCounters) {
  Rng rng(10);
  SetSystem sys = random_uniform_system(8, 8, 4, 3, rng);
  const auto arrivals = arrivals_each_k_times(8, 2, true, rng);
  RandomizedConfig cfg;
  cfg.seed = 3;
  ReductionSetCover alg(sys, cfg);
  const CoverRun run =
      run_setcover(alg, arrivals, RunOptions{.collect_latencies = true});
  EXPECT_EQ(run.arrivals, arrivals.size());
  EXPECT_EQ(run.augmentation_steps, alg.augmentation_steps());
  EXPECT_LE(run.p50_arrival_s, run.p95_arrival_s);
}

TEST(Workloads, PowerLawWorkloadShape) {
  Rng rng(12);
  AdmissionInstance inst = make_power_law_workload(
      16, 2, 200, 3, 1.5, CostModel::unit_costs(), rng);
  EXPECT_EQ(inst.graph().edge_count(), 16u);
  EXPECT_EQ(inst.request_count(), 200u);
  std::size_t max_edges_seen = 0;
  for (const Request& r : inst.requests()) {
    ASSERT_GE(r.edges.size(), 1u);
    ASSERT_LE(r.edges.size(), 3u);
    max_edges_seen = std::max(max_edges_seen, r.edges.size());
  }
  EXPECT_GT(max_edges_seen, 1u);
  // Zipf skew: the hottest edge must carry far more than the coolest.
  const auto& load = inst.edge_load();
  EXPECT_GT(load[0], 4 * std::max<std::int64_t>(1, load[15]));
  EXPECT_THROW(make_power_law_workload(4, 1, 10, 9, 1.0,
                                       CostModel::unit_costs(), rng),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// New workload families (scenario catalog backing generators)
// ---------------------------------------------------------------------------

TEST(Workloads, DenseBurstIsSingleEdgePerRequest) {
  Rng rng(21);
  AdmissionInstance inst =
      make_dense_burst_workload(8, 4, 400, CostModel::unit_costs(), rng);
  EXPECT_EQ(inst.graph().edge_count(), 8u);
  EXPECT_EQ(inst.request_count(), 400u);
  for (const Request& r : inst.requests()) {
    EXPECT_EQ(r.edges.size(), 1u);
  }
  // Uniform spread: every edge sees traffic well past its capacity.
  for (const std::int64_t load : inst.edge_load()) {
    EXPECT_GT(load, 4);
  }
}

TEST(Workloads, DiurnalWaveConcentratesOnHotSet) {
  Rng rng(22);
  const std::size_t hot = 2;
  AdmissionInstance inst = make_diurnal_workload(
      16, 4, 4000, 3.0, hot, CostModel::unit_costs(), rng);
  const auto& load = inst.edge_load();
  std::int64_t hot_load = 0, cold_load = 0;
  for (std::size_t e = 0; e < load.size(); ++e) {
    (e < hot ? hot_load : cold_load) += load[e];
  }
  // 2 of 16 edges receive the hot share (≈ 0.5 + the uniform residue).
  EXPECT_GT(hot_load, cold_load);
  for (const Request& r : inst.requests()) EXPECT_EQ(r.edges.size(), 1u);
  EXPECT_THROW(make_diurnal_workload(4, 1, 10, 1.0, 9,
                                     CostModel::unit_costs(), rng),
               InvalidArgument);
}

TEST(Workloads, AdversarialSingleEdgeEscalatesDeterministically) {
  AdmissionInstance inst = make_adversarial_single_edge(4, 100, 64.0);
  EXPECT_EQ(inst.graph().edge_count(), 1u);
  ASSERT_EQ(inst.request_count(), 100u);
  EXPECT_DOUBLE_EQ(inst.requests().front().cost, 1.0);
  EXPECT_DOUBLE_EQ(inst.requests().back().cost, 64.0);
  for (std::size_t i = 1; i < inst.request_count(); ++i) {
    EXPECT_GT(inst.requests()[i].cost, inst.requests()[i - 1].cost);
  }
  // Deterministic: two builds are identical.
  test::expect_same_instance(inst, make_adversarial_single_edge(4, 100, 64.0));
}

TEST(Workloads, MultiTenantRequestsStayInsideTenantBlocks) {
  Rng rng(23);
  const std::size_t tenants = 4, block = 8;
  AdmissionInstance inst = make_multi_tenant_workload(
      tenants, block, 2, 500, 3, 1.0, CostModel::unit_costs(), rng);
  EXPECT_EQ(inst.graph().edge_count(), tenants * block);
  std::vector<std::int64_t> tenant_load(tenants, 0);
  for (const Request& r : inst.requests()) {
    ASSERT_GE(r.edges.size(), 1u);
    ASSERT_LE(r.edges.size(), 3u);
    const std::size_t tenant = r.edges.front() / block;
    for (const EdgeId e : r.edges) {
      EXPECT_EQ(e / block, tenant) << "request crosses tenant blocks";
    }
    tenant_load[tenant] += 1;
  }
  // Zipf(1.0) head: the first tenant outdraws the last.
  EXPECT_GT(tenant_load.front(), 2 * std::max<std::int64_t>(1, tenant_load.back()));
}

// ---------------------------------------------------------------------------
// Scenario catalog
// ---------------------------------------------------------------------------

TEST(ScenarioCatalog, EveryEntryBuildsAtRequestedSize) {
  ASSERT_EQ(scenario_catalog().size(), 11u);
  ScenarioParams params;
  params.requests = 300;
  params.edges = 16;
  for (const ScenarioInfo& info : scenario_catalog()) {
    EXPECT_TRUE(is_scenario(info.name));
    Rng rng(31);
    const AdmissionInstance inst = make_scenario(info.name, params, rng);
    EXPECT_EQ(inst.request_count(), 300u) << info.name;
    EXPECT_GE(inst.graph().edge_count(), 1u) << info.name;
    EXPECT_GE(inst.graph().min_capacity(), 1) << info.name;
  }
}

TEST(ScenarioCatalog, CapacityOverrideAndDefaults) {
  ScenarioParams params;
  params.requests = 600;
  params.edges = 8;
  params.capacity = 5;
  Rng rng(32);
  const AdmissionInstance forced = make_scenario("dense_burst", params, rng);
  EXPECT_EQ(forced.graph().max_capacity(), 5);
  params.capacity = 0;  // scenario default: a third of the per-edge load
  Rng rng2(32);
  const AdmissionInstance dflt = make_scenario("dense_burst", params, rng2);
  EXPECT_EQ(dflt.graph().max_capacity(), 600 / 8 / 3);
}

TEST(ScenarioCatalog, UnknownNameThrowsAndListsCatalog) {
  EXPECT_FALSE(is_scenario("nope"));
  ScenarioParams params;
  Rng rng(33);
  try {
    make_scenario("nope", params, rng);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("dense_burst"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("multi_tenant"), std::string::npos);
  }
}

TEST(ScenarioCatalog, SharedSetsOverlapIsWideAndShared) {
  // The scenario exists to exercise the wide-row/shared-member regime
  // (DESIGN.md §8): phase-1 rows must be far wider than the journal's
  // eager-fix-up boundary, and edges must be shared across many rows.
  ScenarioParams params;
  params.requests = 400;
  Rng rng(34);
  const AdmissionInstance inst =
      make_scenario("shared_sets_overlap", params, rng);
  EXPECT_EQ(inst.request_count(), 400u);
  EXPECT_TRUE(all_unit_costs(inst));
  // Phase-1 requests (one per set) carry the set's full element list; at
  // 25% density over n = ceil(sqrt(8·400)) ≈ 57 elements the widest rows
  // hold dozens of edges.
  std::size_t widest = 0;
  std::vector<std::size_t> edge_rows(inst.graph().edge_count(), 0);
  for (const Request& r : inst.requests()) {
    widest = std::max(widest, r.edges.size());
    for (EdgeId e : r.edges) ++edge_rows[e];
  }
  EXPECT_GT(widest, 8u);  // beyond any eager fix-up boundary
  std::size_t shared_edges = 0;
  for (std::size_t c : edge_rows) shared_edges += c >= 8 ? 1 : 0;
  // Essentially every element is a member of many sets.
  EXPECT_GT(shared_edges, inst.graph().edge_count() / 2);
}

TEST(ScenarioCatalog, AdversarialLowerBoundHasTheBlockStructure) {
  // The Ω-style construction (DESIGN.md §10.3): each block is one special
  // spanning its round edges plus capacity decoys per round, every round
  // edge at excess exactly 1, and a never-overloaded slack edge absorbing
  // the padding.  Deterministic, unit costs, exact request budget.
  ScenarioParams params;
  params.requests = 300;
  Rng rng(39);
  const AdmissionInstance inst =
      make_scenario("adversarial_lower_bound", params, rng);
  ASSERT_EQ(inst.request_count(), 300u);
  EXPECT_TRUE(all_unit_costs(inst));
  const Graph& g = inst.graph();
  const std::size_t round_edges = g.edge_count() - 1;  // last edge = slack
  ASSERT_GE(round_edges, 1u);
  const std::int64_t cap = g.capacity(0);
  for (std::size_t e = 0; e < round_edges; ++e) {
    EXPECT_EQ(g.capacity(static_cast<EdgeId>(e)), cap);
    // Excess exactly 1 on every round edge.
    EXPECT_EQ(inst.edge_load()[e], cap + 1) << "round edge " << e;
  }
  // Slack edge never overloads.
  EXPECT_LE(inst.edge_load()[round_edges],
            g.capacity(static_cast<EdgeId>(round_edges)));
  // Specials are the only multi-edge requests, one per block, each
  // spanning a contiguous run of round edges.
  std::size_t specials = 0;
  std::size_t spanned = 0;
  for (const Request& r : inst.requests()) {
    if (r.edges.size() > 1) {
      ++specials;
      spanned += r.edges.size();
      EXPECT_EQ(r.edges.back() - r.edges.front() + 1, r.edges.size());
    }
  }
  EXPECT_GE(specials, 2u);  // several independent blocks at this size
  EXPECT_EQ(spanned, round_edges);  // blocks partition the round edges
  // Rejecting one special per block is feasible — OPT = #blocks.
  std::vector<bool> accepted(inst.request_count(), true);
  for (std::size_t i = 0; i < inst.request_count(); ++i) {
    if (inst.request(static_cast<RequestId>(i)).edges.size() > 1) {
      accepted[i] = false;
    }
  }
  EXPECT_TRUE(is_feasible_acceptance(inst, accepted));
}

TEST(ScenarioCatalog, FlashCrowdConcentratesLoadInsideTheWindow) {
  // 90% of in-window arrivals land on the hot set; outside the window the
  // hot edges draw only their uniform share.
  Rng rng(35);
  const std::size_t edges = 32;
  const std::size_t hot = 2;
  const AdmissionInstance inst = make_flash_crowd_workload(
      edges, 4, 1000, 0.40, 0.55, hot, CostModel::unit_costs(), rng);
  ASSERT_EQ(inst.request_count(), 1000u);
  std::size_t window_hot = 0, window_total = 0, outside_hot = 0,
              outside_total = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const Request& r = inst.request(static_cast<RequestId>(i));
    ASSERT_EQ(r.edges.size(), 1u);  // shard-disjoint: single-edge requests
    const bool in_window = i >= 400 && i < 550;
    const bool is_hot = r.edges.front() < hot;
    (in_window ? window_total : outside_total) += 1;
    if (is_hot) (in_window ? window_hot : outside_hot) += 1;
  }
  // In-window hot share ~0.9 vs the uniform 2/32 baseline outside.
  EXPECT_GT(window_hot * 10, window_total * 7);
  EXPECT_LT(outside_hot * 4, outside_total);
}

TEST(ScenarioCatalog, CascadingFailureRollsTheHotspotAcrossBlocks) {
  Rng rng(36);
  const std::size_t edges = 32;
  const std::size_t groups = 4;
  const AdmissionInstance inst = make_cascading_failure_workload(
      edges, 8, 800, groups, CostModel::unit_costs(), rng);
  ASSERT_EQ(inst.request_count(), 800u);
  // During window g, block g absorbs ~80% of arrivals.
  const std::size_t block = edges / groups;
  for (std::size_t g = 0; g < groups; ++g) {
    std::size_t in_block = 0;
    for (std::size_t i = g * 200; i < (g + 1) * 200; ++i) {
      const EdgeId e =
          inst.request(static_cast<RequestId>(i)).edges.front();
      if (e >= g * block && (g + 1 == groups || e < (g + 1) * block)) {
        ++in_block;
      }
    }
    EXPECT_GT(in_block, 200u * 6 / 10) << "window " << g;
  }
}

// ---------------------------------------------------------------------------
// Closed-loop feedback driver
// ---------------------------------------------------------------------------

TEST(Feedback, AdmittedPlusAbandonedCoversEveryFreshRequest) {
  Rng rng(37);
  // Tight capacity so a good fraction of requests are rejected and retry.
  const AdmissionInstance inst = make_flash_crowd_workload(
      16, 2, 400, 0.30, 0.60, 2, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.fault_tolerance.enabled = true;
  AdmissionService service(
      inst.graph(),
      [](const Graph& g, std::size_t) {
        return std::make_unique<GreedyNoPreempt>(g);
      },
      cfg);
  FeedbackConfig fc;
  fc.epochs = 8;
  fc.retry.max_attempts = 3;
  const FeedbackResult result = run_feedback(service, inst, fc);
  // Drain mode: every fresh request is eventually admitted or abandoned.
  EXPECT_EQ(result.backlog, 0u);
  std::size_t fresh = 0, retried = 0;
  for (const FeedbackEpochStats& es : result.epochs) {
    fresh += es.fresh;
    retried += es.retried;
    EXPECT_EQ(es.offered, es.fresh + es.retried) << "epoch " << es.epoch;
  }
  EXPECT_EQ(fresh, 400u);
  EXPECT_GT(retried, 0u);  // tight capacity must force retries
  EXPECT_EQ(result.offered, fresh + retried);
  // admitted + abandoned partition the fresh requests: each is observed
  // until it is accepted or runs out of attempts.
  EXPECT_EQ(result.admitted + result.abandoned, 400u);
  // Every arrival the service saw came from this loop.
  EXPECT_EQ(service.arrivals(), result.offered);
}

TEST(Feedback, RetriesAreCappedByMaxAttempts) {
  Rng rng(38);
  // Capacity 1 on one edge: after the first admit, everything rejects.
  const AdmissionInstance inst =
      make_single_edge_burst(1, 40, CostModel::unit_costs(), rng);
  ServiceConfig cfg;
  cfg.fault_tolerance.enabled = true;
  AdmissionService service(
      inst.graph(),
      [](const Graph& g, std::size_t) {
        return std::make_unique<GreedyNoPreempt>(g);
      },
      cfg);
  FeedbackConfig fc;
  fc.epochs = 4;
  fc.retry.max_attempts = 2;
  const FeedbackResult result = run_feedback(service, inst, fc);
  EXPECT_EQ(result.backlog, 0u);
  // Each rejected request is offered at most max_attempts times.
  EXPECT_LE(result.offered, 40u * 2);
  EXPECT_GT(result.offered, 40u);  // but rejections did retry at least once
  EXPECT_EQ(result.admitted + result.abandoned, 40u);
}

TEST(ScenarioCatalog, GenerationIsSeedStable) {
  ScenarioParams params;
  params.requests = 200;
  params.edges = 16;
  for (const ScenarioInfo& info : scenario_catalog()) {
    Rng a(7), b(7);
    test::expect_same_instance(make_scenario(info.name, params, a),
                               make_scenario(info.name, params, b));
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(Trace, CapturesEveryArrival) {
  Rng rng(9);
  AdmissionInstance inst =
      make_single_edge_burst(2, 8, CostModel::unit_costs(), rng);
  GreedyNoPreempt alg(inst.graph());
  TraceRecorder recorder;
  const auto& rows = recorder.record(alg, inst);
  ASSERT_EQ(rows.size(), 8u);
  // First two accepted, the rest rejected (no preemption, capacity 2).
  EXPECT_TRUE(rows[0].accepted);
  EXPECT_TRUE(rows[1].accepted);
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_FALSE(rows[i].accepted);
    EXPECT_EQ(rows[i].preempted, 0u);
  }
  // Running totals are monotone and end at the algorithm's totals.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].rejected_cost_total, rows[i - 1].rejected_cost_total);
  }
  EXPECT_DOUBLE_EQ(rows.back().rejected_cost_total, alg.rejected_cost());
}

TEST(Trace, CsvHasHeaderAndRows) {
  Rng rng(10);
  AdmissionInstance inst =
      make_single_edge_burst(1, 3, CostModel::unit_costs(), rng);
  GreedyNoPreempt alg(inst.graph());
  TraceRecorder recorder;
  recorder.record(alg, inst);
  const std::string csv = recorder.to_csv();
  EXPECT_NE(csv.find("arrival,cost"), std::string::npos);
  // Header + 3 data rows = 4 newlines.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 4);
}

TEST(Runner, ParallelTrialsReturnsPerTrialValues) {
  const auto results = parallel_trials(
      10, [](std::size_t i) { return static_cast<double>(i * i); }, 4);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i * i));
  }
}

// ---------------------------------------------------------------------------
// Determinism: one seed, one trajectory
// ---------------------------------------------------------------------------

class Determinism : public test::SeededTest {};

TEST_F(Determinism, WorkloadGenerationIsSeedStable) {
  Rng a = fresh_rng();
  Rng b = fresh_rng();
  const AdmissionInstance ia = test::small_line_instance(a);
  const AdmissionInstance ib = test::small_line_instance(b);
  test::expect_same_instance(ia, ib);
}

TEST_F(Determinism, RandomizedAdmissionTrajectoryIsSeedStable) {
  const AdmissionInstance inst = test::small_line_instance(rng);
  RandomizedConfig cfg;
  cfg.seed = 42;
  RandomizedAdmission first(inst.graph(), cfg);
  RandomizedAdmission second(inst.graph(), cfg);
  TraceRecorder trace_first;
  TraceRecorder trace_second;
  trace_first.record(first, inst);
  trace_second.record(second, inst);

  ASSERT_EQ(trace_first.rows().size(), trace_second.rows().size());
  for (std::size_t i = 0; i < trace_first.rows().size(); ++i) {
    const TraceRow& a = trace_first.rows()[i];
    const TraceRow& b = trace_second.rows()[i];
    EXPECT_EQ(a.accepted, b.accepted) << "arrival " << i;
    EXPECT_EQ(a.preempted, b.preempted) << "arrival " << i;
    EXPECT_DOUBLE_EQ(a.rejected_cost_total, b.rejected_cost_total)
        << "arrival " << i;
    EXPECT_EQ(a.rejected_count_total, b.rejected_count_total)
        << "arrival " << i;
  }
  EXPECT_DOUBLE_EQ(first.rejected_cost(), second.rejected_cost());
  EXPECT_EQ(first.rejected_count(), second.rejected_count());
  EXPECT_EQ(first.edge_usage(), second.edge_usage());
}

TEST_F(Determinism, ParallelTrialsAreScheduleIndependent) {
  // Trial i always seeds its own generators from the trial index, so the
  // per-trial costs must not depend on how trials are scheduled.
  const auto body = [](std::size_t trial) {
    Rng trial_rng(1234 + trial);
    const AdmissionInstance inst = make_single_edge_burst(
        2, 12, CostModel::spread(1.0, 4.0), trial_rng);
    RandomizedConfig cfg;
    cfg.seed = trial + 1;
    RandomizedAdmission alg(inst.graph(), cfg);
    return run_admission(alg, inst).rejected_cost;
  };
  const std::vector<double> serial = parallel_trials(8, body, /*threads=*/1);
  const std::vector<double> threaded = parallel_trials(8, body, /*threads=*/4);
  EXPECT_EQ(serial, threaded);
}

}  // namespace
}  // namespace minrej

// test_util.h — shared support for the minrej test suites.
//
// Centralizes what suites used to re-derive locally:
//   * COST_TOLERANCE — the single numeric tolerance for cost/weight
//     comparisons (suites previously hard-coded 1e-9 in dozens of places);
//   * SeededTest — a fixture whose Rng always starts from one documented
//     seed, so a failing test reproduces from its name alone;
//   * small instance builders wrapping graph/generators, sim/workloads and
//     setcover/generators with suite-sized defaults;
//   * deep-equality helpers for instances (used by the io round-trip and
//     determinism tests).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/request.h"
#include "setcover/generators.h"
#include "setcover/instance.h"
#include "setcover/set_system.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace minrej {
namespace test {

/// Single numeric tolerance for cost/weight comparisons across the suites.
inline constexpr double COST_TOLERANCE = 1e-9;

/// Fixture providing a deterministically seeded Rng.  Tests needing a
/// second stream with the same start state call fresh_rng().
class SeededTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSeed = 0x5EEDC0DEULL;

  static Rng fresh_rng(std::uint64_t seed = kSeed) { return Rng(seed); }

  Rng rng{kSeed};
};

// ---------------------------------------------------------------------------
// Instance builders
// ---------------------------------------------------------------------------

/// Line-graph admission workload with spread costs, sized to overload a few
/// edges without making any suite slow.
inline AdmissionInstance small_line_instance(Rng& rng, std::size_t edges = 8,
                                             std::int64_t capacity = 3,
                                             std::size_t requests = 40) {
  return make_line_workload(edges, capacity, requests, /*min_len=*/1,
                            /*max_len=*/4, CostModel::spread(1.0, 8.0), rng);
}

/// Admission instance with a graph but no requests at all.
inline AdmissionInstance empty_admission_instance() {
  return AdmissionInstance(make_line_graph(2, 1), {});
}

/// Random multicover instance with non-unit costs where every element
/// arrives once.
inline CoverInstance small_cover_instance(Rng& rng, std::size_t elements = 12,
                                          std::size_t sets = 20) {
  SetSystem system = with_random_costs(
      random_uniform_system(elements, sets, /*set_size=*/4, /*min_degree=*/2,
                            rng),
      1.0, 10.0, rng);
  return CoverInstance(std::move(system), arrivals_each_once(elements, rng));
}

/// Cover instance with a set system but an empty arrival sequence.
inline CoverInstance empty_cover_instance() {
  return CoverInstance(dyadic_interval_system(4), {});
}

// ---------------------------------------------------------------------------
// Deep-equality helpers
// ---------------------------------------------------------------------------

inline void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edges()[e].from, b.edges()[e].from) << "edge " << e;
    EXPECT_EQ(a.edges()[e].to, b.edges()[e].to) << "edge " << e;
    EXPECT_EQ(a.edges()[e].capacity, b.edges()[e].capacity) << "edge " << e;
  }
}

inline void expect_same_instance(const AdmissionInstance& a,
                                 const AdmissionInstance& b) {
  expect_same_graph(a.graph(), b.graph());
  ASSERT_EQ(a.request_count(), b.request_count());
  for (std::size_t i = 0; i < a.request_count(); ++i) {
    const Request& ra = a.requests()[i];
    const Request& rb = b.requests()[i];
    EXPECT_EQ(ra.edges, rb.edges) << "request " << i;
    // The text format round-trips doubles exactly (max_digits10), so
    // equality here is bit-exact, not tolerance-based.
    EXPECT_DOUBLE_EQ(ra.cost, rb.cost) << "request " << i;
    EXPECT_EQ(ra.must_accept, rb.must_accept) << "request " << i;
  }
}

inline void expect_same_instance(const CoverInstance& a,
                                 const CoverInstance& b) {
  const SetSystem& sa = a.system();
  const SetSystem& sb = b.system();
  ASSERT_EQ(sa.element_count(), sb.element_count());
  ASSERT_EQ(sa.set_count(), sb.set_count());
  for (std::size_t s = 0; s < sa.set_count(); ++s) {
    const auto ma = sa.elements_of(static_cast<SetId>(s));
    const auto mb = sb.elements_of(static_cast<SetId>(s));
    EXPECT_EQ(std::vector<ElementId>(ma.begin(), ma.end()),
              std::vector<ElementId>(mb.begin(), mb.end()))
        << "set " << s;
    EXPECT_DOUBLE_EQ(sa.cost(static_cast<SetId>(s)),
                     sb.cost(static_cast<SetId>(s)))
        << "set " << s;
  }
  EXPECT_EQ(a.arrivals(), b.arrivals());
}

}  // namespace test
}  // namespace minrej

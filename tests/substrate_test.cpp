// Tests for the CSR covering substrate (core/covering_instance.h), the
// SetSystem facade over it, the zero-copy §4 ReductionView, and the
// engine's compile-time substrate binding (DESIGN.md §7).
//
// The two load-bearing suites are differential: ReductionView must be
// *decision-identical* to the retained materializing reduction path on
// randomized set systems (including repeated arrivals), and the engine
// bound to a CoveringInstance (capacity = degree) must behave exactly like
// the engine bound to the reduction's star graph.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/covering_instance.h"
#include "core/fractional_engine.h"
#include "core/fractional_setcover.h"
#include "core/naive_engine.h"
#include "core/online_admission.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "core/reduction.h"
#include "core/substrate_traits.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// CoveringInstance: structure, both incidence directions, capacity modes
// ---------------------------------------------------------------------------

TEST(CoveringInstance, HotRowsAreThirtyTwoBytes) {
  // Compile-time guaranteed (static_assert in the header); restated here
  // so a layout regression fails a named test, not just the build.
  EXPECT_EQ(sizeof(CoveringRow), 32u);
  EXPECT_EQ(sizeof(CoveringCol), 32u);
}

TEST(CoveringInstance, BothDirectionsIndexTheSameIncidence) {
  CoveringInstance::Builder builder(4);
  const std::vector<std::uint32_t> r0{0, 2}, r1{1, 2, 3}, r2{2};
  builder.add_row(r0, 1.0).add_row(r1, 2.0).add_row(r2, 1.0);
  const CoveringInstance ci =
      std::move(builder).build_degree_capacities();

  ASSERT_EQ(ci.row_count(), 3u);
  ASSERT_EQ(ci.col_count(), 4u);
  EXPECT_EQ(ci.entry_count(), 6u);

  EXPECT_EQ(std::vector<std::uint32_t>(ci.cols_of(1).begin(),
                                       ci.cols_of(1).end()),
            r1);
  // Transpose: column 2 is in every row, column 0 only in row 0.
  EXPECT_EQ(std::vector<std::uint32_t>(ci.rows_of(2).begin(),
                                       ci.rows_of(2).end()),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(std::vector<std::uint32_t>(ci.rows_of(0).begin(),
                                       ci.rows_of(0).end()),
            (std::vector<std::uint32_t>{0}));

  // Degree-capacity binding: capacity == degree, flat span matches.
  EXPECT_EQ(ci.col_capacity(2), 3);
  EXPECT_EQ(ci.col_degree(2), 3u);
  EXPECT_EQ(ci.capacities()[2], 3);
  EXPECT_EQ(ci.max_capacity(), 3);
  EXPECT_FALSE(ci.unit_costs());
  EXPECT_DOUBLE_EQ(ci.total_cost(), 4.0);
}

TEST(CoveringInstance, ExplicitCapacitiesBinding) {
  CoveringInstance::Builder builder(2);
  builder.add_row(std::vector<std::uint32_t>{0, 1}, 1.0);
  const std::vector<std::int64_t> caps{5, 7};
  const CoveringInstance ci =
      std::move(builder).build_with_capacities(caps);
  EXPECT_EQ(ci.col_capacity(0), 5);
  EXPECT_EQ(ci.col_capacity(1), 7);
  EXPECT_EQ(ci.max_capacity(), 7);
}

TEST(CoveringInstance, BuilderRejectsBadRows) {
  CoveringInstance::Builder b1(2);
  EXPECT_THROW(b1.add_row(std::vector<std::uint32_t>{}, 1.0),
               InvalidArgument);
  EXPECT_THROW(b1.add_row(std::vector<std::uint32_t>{2}, 1.0),
               InvalidArgument);  // column out of range
  EXPECT_THROW(b1.add_row(std::vector<std::uint32_t>{1, 0}, 1.0),
               InvalidArgument);  // unsorted
  EXPECT_THROW(b1.add_row(std::vector<std::uint32_t>{0, 0}, 1.0),
               InvalidArgument);  // duplicate
  EXPECT_THROW(b1.add_row(std::vector<std::uint32_t>{0}, 0.0),
               InvalidArgument);  // non-positive cost
  CoveringInstance::Builder empty(3);
  EXPECT_THROW(std::move(empty).build_degree_capacities(), InvalidArgument);
}

TEST(CoveringInstance, AdmissionInstanceBulkBuild) {
  Rng rng(5);
  AdmissionInstance inst =
      make_star_workload(6, 3, 40, 3, CostModel::spread(1.0, 4.0), rng);
  const CoveringInstance ci = make_covering_substrate(inst);
  ASSERT_EQ(ci.row_count(), inst.request_count());
  ASSERT_EQ(ci.col_count(), inst.graph().edge_count());
  for (RequestId i = 0; i < inst.request_count(); ++i) {
    const Request& r = inst.request(i);
    EXPECT_EQ(std::vector<EdgeId>(ci.cols_of(i).begin(), ci.cols_of(i).end()),
              r.edges);
    EXPECT_DOUBLE_EQ(ci.row_cost(i), r.cost);
    EXPECT_EQ(ci.row_must_accept(i), r.must_accept);
  }
  for (EdgeId e = 0; e < inst.graph().edge_count(); ++e) {
    EXPECT_EQ(ci.col_capacity(e), inst.graph().capacity(e));
    EXPECT_EQ(static_cast<std::int64_t>(ci.col_degree(e)),
              inst.edge_load()[e]);
  }
}

// ---------------------------------------------------------------------------
// SetSystem facade: CSR round-trip
// ---------------------------------------------------------------------------

void expect_same_system(const SetSystem& a, const SetSystem& b) {
  ASSERT_EQ(a.element_count(), b.element_count());
  ASSERT_EQ(a.set_count(), b.set_count());
  EXPECT_EQ(a.unit_costs(), b.unit_costs());
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
  for (SetId s = 0; s < a.set_count(); ++s) {
    EXPECT_EQ(std::vector<ElementId>(a.elements_of(s).begin(),
                                     a.elements_of(s).end()),
              std::vector<ElementId>(b.elements_of(s).begin(),
                                     b.elements_of(s).end()));
    EXPECT_DOUBLE_EQ(a.cost(s), b.cost(s));
  }
  for (ElementId j = 0; j < a.element_count(); ++j) {
    EXPECT_EQ(std::vector<SetId>(a.sets_of(j).begin(), a.sets_of(j).end()),
              std::vector<SetId>(b.sets_of(j).begin(), b.sets_of(j).end()));
    EXPECT_EQ(a.degree(j), b.degree(j));
  }
}

TEST(SetSystemSubstrate, CsrRoundTrip) {
  Rng rng(7);
  const SetSystem original = with_random_costs(
      random_uniform_system(14, 11, 4, 3, rng), 1.0, 8.0, rng);
  // Rebuild a SetSystem from the original's substrate (a copy of it) and
  // compare every public observable.
  const SetSystem rebuilt = SetSystem::from_substrate(
      original.element_count(), original.substrate());
  expect_same_system(original, rebuilt);
}

TEST(SetSystemSubstrate, FacadeMatchesNestedConstruction) {
  // The facade accessors must return exactly what the nested-vector input
  // described (sorted, deduplicated).
  SetSystem sys(4, {{2, 0, 2}, {1, 3}, {3, 1, 0}}, {2.0, 1.0, 4.0});
  EXPECT_EQ(std::vector<ElementId>(sys.elements_of(0).begin(),
                                   sys.elements_of(0).end()),
            (std::vector<ElementId>{0, 2}));
  EXPECT_EQ(std::vector<SetId>(sys.sets_of(3).begin(), sys.sets_of(3).end()),
            (std::vector<SetId>{1, 2}));
  EXPECT_EQ(sys.degree(0), 2u);
  EXPECT_DOUBLE_EQ(sys.cost(2), 4.0);
  EXPECT_DOUBLE_EQ(sys.total_cost(), 7.0);
  EXPECT_FALSE(sys.unit_costs());
  // Degree-capacity identity on the substrate (the §4 invariant).
  for (ElementId j = 0; j < 4; ++j) {
    EXPECT_EQ(sys.substrate().col_capacity(j),
              static_cast<std::int64_t>(sys.degree(j)));
  }
}

TEST(SetSystemSubstrate, FromSubstrateRejectsNonDegreeCapacities) {
  CoveringInstance::Builder builder(2);
  builder.add_row(std::vector<std::uint32_t>{0, 1}, 1.0);
  const std::vector<std::int64_t> caps{5, 7};  // not the degrees
  CoveringInstance ci = std::move(builder).build_with_capacities(caps);
  EXPECT_THROW(SetSystem::from_substrate(2, std::move(ci)), InvalidArgument);
}

// ---------------------------------------------------------------------------
// ReductionView vs the materialized reduction: structure
// ---------------------------------------------------------------------------

TEST(ReductionView, MirrorsMaterializedReduction) {
  Rng rng(11);
  const SetSystem sys = with_random_costs(
      random_uniform_system(10, 8, 3, 2, rng), 1.0, 4.0, rng);
  const ReductionView view(sys);
  const ReductionInstance mat = build_reduction(sys);

  ASSERT_EQ(view.edge_count(), mat.graph.edge_count());
  ASSERT_EQ(view.phase1_count(), mat.phase1.size());
  for (EdgeId e = 0; e < view.edge_count(); ++e) {
    EXPECT_EQ(view.capacity(e), mat.graph.capacity(e));
  }
  for (SetId s = 0; s < view.phase1_count(); ++s) {
    EXPECT_EQ(std::vector<EdgeId>(view.phase1_edges(s).begin(),
                                  view.phase1_edges(s).end()),
              mat.phase1[s].edges);
    EXPECT_DOUBLE_EQ(view.phase1_cost(s), mat.phase1[s].cost);
    EXPECT_FALSE(mat.phase1[s].must_accept);
  }
  for (ElementId j = 0; j < view.edge_count(); ++j) {
    const Request a = view.element_request(j);
    const Request b = mat.element_request(j);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_TRUE(a.must_accept);
    EXPECT_EQ(a.must_accept, b.must_accept);
    EXPECT_EQ(std::vector<EdgeId>(view.element_edges(j).begin(),
                                  view.element_edges(j).end()),
              (std::vector<EdgeId>{j}));
  }
  // The view's realized star graph is the materialized graph.
  test::expect_same_graph(view.star_graph(), mat.graph);
}

TEST(ReductionView, RejectsZeroDegreeElements) {
  SetSystem sys(3, {{0}, {1}});  // element 2 uncovered
  EXPECT_THROW(ReductionView{sys}, InvalidArgument);
  EXPECT_THROW(build_reduction(sys), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Decision identity: view-backed vs materialized FractionalSetCover
// ---------------------------------------------------------------------------

/// Runs the same arrival sequence through both reduction bindings and
/// asserts identical observable state after every arrival.  Exact
/// equality on purpose: both paths drive the same engine arithmetic over
/// the same capacities, so any divergence is a real reduction bug.
void expect_view_matches_materialized(const SetSystem& sys,
                                      const std::vector<ElementId>& arrivals) {
  FractionalSetCover via_view(sys, {}, ReductionMode::kView);
  FractionalSetCover via_mat(sys, {}, ReductionMode::kMaterialized);
  ASSERT_EQ(via_view.mode(), ReductionMode::kView);
  ASSERT_EQ(via_mat.mode(), ReductionMode::kMaterialized);
  for (std::size_t t = 0; t < arrivals.size(); ++t) {
    const ElementId j = arrivals[t];
    via_view.on_element(j);
    via_mat.on_element(j);
    ASSERT_EQ(via_view.demand(j), via_mat.demand(j));
    EXPECT_DOUBLE_EQ(via_view.fractional_cost(), via_mat.fractional_cost())
        << "arrival " << t;
    EXPECT_EQ(via_view.augmentations(), via_mat.augmentations())
        << "arrival " << t;
    for (SetId s = 0; s < sys.set_count(); ++s) {
      EXPECT_DOUBLE_EQ(via_view.fraction(s), via_mat.fraction(s))
          << "arrival " << t << " set " << s;
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "view and materialized reduction diverged at arrival " << t;
    }
  }
}

TEST(ReductionDifferential, UnitCostRandomSystemsWithRepetitions) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(100 + seed);
    SetSystem sys = random_uniform_system(12, 9, 4, 3, rng);
    const auto arrivals = arrivals_each_k_times(12, 3, true, rng);
    expect_view_matches_materialized(sys, arrivals);
  }
}

TEST(ReductionDifferential, WeightedRandomSystems) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(200 + seed);
    SetSystem sys = with_random_costs(
        random_uniform_system(10, 8, 3, 2, rng), 1.0, 16.0, rng);
    const auto arrivals = arrivals_each_k_times(10, 2, true, rng);
    expect_view_matches_materialized(sys, arrivals);
  }
}

TEST(ReductionDifferential, ZipfArrivalsOnPowerLawSystem) {
  Rng rng(31);
  SetSystem sys = power_law_system(24, 20, 1.3, 2, rng);
  const auto arrivals = arrivals_zipf(sys, 48, 1.1, rng);
  ASSERT_FALSE(arrivals.empty());
  expect_view_matches_materialized(sys, arrivals);
}

// ---------------------------------------------------------------------------
// Decision identity: the randomized rounding layer over the view
// ---------------------------------------------------------------------------

TEST(ReductionDifferential, RandomizedRoundingMatchesMaterializedFeed) {
  // ReductionSetCover (view-backed) must take the same decisions as the
  // §3 algorithm fed the materialized reduction by hand — same star, same
  // arrival stream, same seed, so the random streams align step for step.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(300 + seed);
    SetSystem sys = random_uniform_system(12, 9, 4, 3, rng);
    const auto arrivals = arrivals_each_k_times(12, 2, true, rng);

    RandomizedConfig cfg;
    cfg.unit_costs = sys.unit_costs();
    cfg.seed = 900 + seed;
    ReductionSetCover via_view(sys, cfg);

    const ReductionInstance mat = build_reduction(sys);
    RandomizedAdmission manual(mat.graph, cfg);
    for (const Request& r : mat.phase1) manual.process(r);

    for (ElementId j : arrivals) {
      const auto added = via_view.on_element(j);
      const ArrivalResult res = manual.process(mat.element_request(j));
      std::vector<SetId> manual_added(res.preempted.begin(),
                                      res.preempted.end());
      EXPECT_EQ(added, manual_added) << "seed " << seed;
    }
    EXPECT_DOUBLE_EQ(via_view.cost(), [&] {
      double cost = 0.0;
      for (SetId s = 0; s < sys.set_count(); ++s) {
        if (!manual.is_accepted(s)) cost += sys.cost(s);
      }
      return cost;
    }());
  }
}

// ---------------------------------------------------------------------------
// Engine substrate binding: CoveringInstance vs the equivalent star graph
// ---------------------------------------------------------------------------

TEST(EngineSubstrateBinding, CoveringInstanceEqualsDegreeStarGraph) {
  Rng rng(17);
  const SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  const Graph star = Graph::star(sys.substrate().capacities());

  static_assert(CoveringSubstrateTraits<CoveringInstance>::kCapacityIsDegree);
  static_assert(!CoveringSubstrateTraits<Graph>::kCapacityIsDegree);

  FlatFractionalEngine bound_substrate(sys.substrate(), 0.25);
  FlatFractionalEngine bound_graph(star, 0.25);
  NaiveFractionalEngine bound_naive(sys.substrate(), 0.25);

  // Phase 1 (sets as requests), then overload each element once.
  for (SetId s = 0; s < sys.set_count(); ++s) {
    const auto edges = sys.elements_of(s);
    bound_substrate.admit_existing(edges, 1.0, 1.0);
    bound_graph.admit_existing(edges, 1.0, 1.0);
    bound_naive.admit_existing(edges, 1.0, 1.0);
  }
  for (ElementId j = 0; j < sys.element_count(); ++j) {
    const EdgeId e = j;
    bound_substrate.pin({e});
    bound_graph.pin({e});
    bound_naive.pin({e});
    const auto& da = bound_substrate.restore_edges({e});
    const auto& db = bound_graph.restore_edges({e});
    const auto& dn = bound_naive.restore_edges({e});
    ASSERT_EQ(da.size(), db.size());
    ASSERT_EQ(da.size(), dn.size());
    for (std::size_t k = 0; k < da.size(); ++k) {
      EXPECT_EQ(da[k].id, db[k].id);
      EXPECT_DOUBLE_EQ(da[k].delta, db[k].delta);
      EXPECT_EQ(da[k].id, dn[k].id);
      EXPECT_DOUBLE_EQ(da[k].delta, dn[k].delta);
    }
  }
  EXPECT_DOUBLE_EQ(bound_substrate.fractional_cost(),
                   bound_graph.fractional_cost());
  EXPECT_EQ(bound_substrate.augmentations(), bound_graph.augmentations());
  EXPECT_DOUBLE_EQ(bound_substrate.fractional_cost(),
                   bound_naive.fractional_cost());
  EXPECT_EQ(bound_substrate.augmentations(), bound_naive.augmentations());
}

// ---------------------------------------------------------------------------
// Small-list fast path: behavior across the threshold crossing
// ---------------------------------------------------------------------------

TEST(SmallListFastPath, CacheStaysCoherentAcrossThresholdCrossing) {
  // Grow one edge's member list from empty to well past
  // kSmallListThreshold while killing members along the way; the public
  // alive_weight_sum must match a from-scratch rescan at every step (the
  // crossing resync of DESIGN.md §7.3).
  // Capacity just above the threshold keeps the alive membership parked
  // past it, so the list genuinely crosses into the incremental regime.
  Graph g = make_single_edge_graph(
      static_cast<std::int64_t>(FlatFractionalEngine::kSmallListThreshold) +
      16);
  FlatFractionalEngine flat(g, 0.25);
  NaiveFractionalEngine naive(g, 0.25);
  const std::size_t total = 4 * FlatFractionalEngine::kSmallListThreshold;
  for (std::size_t i = 0; i < total; ++i) {
    flat.arrive({0}, 1.0, 1.0);
    naive.arrive({0}, 1.0, 1.0);
    double rescan = 0.0;
    for (RequestId r = 0; r < flat.request_count(); ++r) {
      if (!flat.fully_rejected(r) && !flat.is_pinned(r)) {
        rescan += flat.weight(r);
      }
    }
    EXPECT_NEAR(flat.alive_weight_sum(0), rescan, 1e-9) << "arrival " << i;
    EXPECT_NEAR(flat.alive_weight_sum(0), naive.alive_weight_sum(0), 1e-9);
    EXPECT_EQ(flat.augmentations(), naive.augmentations()) << "arrival " << i;
    EXPECT_EQ(flat.alive_requests(0), naive.alive_requests(0));
  }
  // The run must actually have exercised both regimes.
  EXPECT_GT(flat.member_list_size(0),
            FlatFractionalEngine::kSmallListThreshold);
}

TEST(SmallListFastPath, WeightedDifferentialAcrossCrossing) {
  // Weighted burst whose member list oscillates around the threshold
  // (deaths shrink it, arrivals regrow it): flat must stay bit-identical
  // to the naive reference through every small↔large transition.
  Rng rng(23);
  AdmissionInstance inst = make_single_edge_burst(
      static_cast<std::int64_t>(FlatFractionalEngine::kSmallListThreshold),
      6 * FlatFractionalEngine::kSmallListThreshold,
      CostModel::spread(1.0, 8.0), rng);
  FlatFractionalEngine flat(inst.graph(), 0.05);
  NaiveFractionalEngine naive(inst.graph(), 0.05);
  for (const Request& r : inst.requests()) {
    const auto& df = flat.arrive(r.edges, r.cost, r.cost);
    const auto& dn = naive.arrive(r.edges, r.cost, r.cost);
    ASSERT_EQ(df.size(), dn.size());
    for (std::size_t k = 0; k < df.size(); ++k) {
      EXPECT_EQ(df[k].id, dn[k].id);
      EXPECT_DOUBLE_EQ(df[k].delta, dn[k].delta);
    }
  }
  EXPECT_DOUBLE_EQ(flat.fractional_cost(), naive.fractional_cost());
  EXPECT_EQ(flat.augmentations(), naive.augmentations());
}

// ---------------------------------------------------------------------------
// Augmentation budget guard (sim/runner.h)
// ---------------------------------------------------------------------------

TEST(AugmentationBudget, SurfacedInRunsAndScalesWithInstance) {
  EXPECT_GT(augmentation_step_budget(1000, 64, 8),
            augmentation_step_budget(1000, 1, 1));
  Rng rng(41);
  SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  ReductionSetCover alg(sys);
  const auto arrivals = arrivals_each_once(10, rng);
  const CoverRun run = run_setcover(alg, arrivals);
  EXPECT_GT(run.augmentation_budget, 0u);
  EXPECT_FALSE(run.augmentation_budget_exceeded);
  EXPECT_LE(run.augmentation_steps, run.augmentation_budget);
  EXPECT_EQ(run.budget_crossing_arrival, kBudgetNeverCrossed);
}

// Rejects everything and reports a fixed number of augmentation steps per
// arrival, so the exact arrival at which a run crosses its budget is a
// closed-form function of the budget — the deterministic probe the
// crossing-context test needs.
class FixedStepAlgorithm final : public OnlineAdmissionAlgorithm {
 public:
  FixedStepAlgorithm(const Graph& graph, std::uint64_t steps_per_arrival)
      : OnlineAdmissionAlgorithm(graph), per_arrival_(steps_per_arrival) {}
  std::string name() const override { return "fixed-step stub"; }
  std::uint64_t augmentation_steps() const noexcept override {
    return per_arrival_ * arrivals();
  }

 protected:
  ArrivalResult handle(RequestId, const Request&) override {
    return {false, {}};
  }

 private:
  std::uint64_t per_arrival_;
};

TEST(AugmentationBudget, CrossingContextRecordedInRuns) {
  Rng rng(7);
  const AdmissionInstance instance =
      make_single_edge_burst(1, 10, CostModel::unit_costs(), rng);
  const std::uint64_t budget = augmentation_step_budget(10, 1, 1);
  constexpr std::uint64_t kStepsPerArrival = 100;
  ASSERT_GT(budget, kStepsPerArrival);           // crossing happens mid-run
  ASSERT_LT(budget, 10 * kStepsPerArrival);      // ... but does happen
  // After arrival i the stub reports 100·(i+1) steps, so the first index
  // past the budget is budget / 100.
  const auto expect_crossing = static_cast<std::size_t>(budget / kStepsPerArrival);

  FixedStepAlgorithm alg(instance.graph(), kStepsPerArrival);
  const AdmissionRun run = run_admission(alg, instance);
  EXPECT_TRUE(run.augmentation_budget_exceeded);
  EXPECT_EQ(run.augmentation_budget, budget);
  EXPECT_EQ(run.augmentation_steps, 10 * kStepsPerArrival);
  EXPECT_EQ(run.budget_crossing_arrival, expect_crossing);
  EXPECT_EQ(run.budget_crossing_edge, 0u);  // the burst's only edge
}

TEST(AugmentationBudget, WarningMessageCarriesFullContext) {
  const std::string msg = augmentation_budget_warning(
      600, 507, 5, 10, 3, "edge", "capacity regime hint");
  EXPECT_NE(msg.find("600 steps"), std::string::npos) << msg;
  EXPECT_NE(msg.find("budget 507"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arrival 5 of 10"), std::string::npos) << msg;
  EXPECT_NE(msg.find("edge 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("capacity regime hint"), std::string::npos) << msg;

  // Defensive path: a run can exceed in total without any single probe
  // having seen the crossing (e.g. options recorded no context) — the
  // crossing clause is simply omitted.
  const std::string no_ctx = augmentation_budget_warning(
      600, 507, kBudgetNeverCrossed, 10, 0, "edge", "hint");
  EXPECT_EQ(no_ctx.find("arrival"), std::string::npos) << no_ctx;
  EXPECT_NE(no_ctx.find("600 steps"), std::string::npos) << no_ctx;
}

}  // namespace
}  // namespace minrej

// Differential property suite for the weight-augmentation engine: drives
// FlatFractionalEngine (production, flat-storage, incremental sums) and
// NaiveFractionalEngine (retained reference, five-pass rescans) through
// identical operation sequences and asserts identical observable state
// after every step.  The two implementations perform the same floating-
// point operations in the same order by construction (DESIGN.md §3.3), so
// weights, deltas, and objectives are compared for exact equality — any
// divergence, however small, means one of them took a different
// augmentation decision and is a real bug, not noise.
#include <gtest/gtest.h>

#include <vector>

#include "core/fractional_engine.h"
#include "core/naive_engine.h"
#include "core/simd_sweep.h"
#include "graph/generators.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

/// Asserts every piece of observable engine state matches.
void expect_engines_equal(const FlatFractionalEngine& flat,
                          const NaiveFractionalEngine& naive,
                          const Graph& graph, const char* where) {
  ASSERT_EQ(flat.request_count(), naive.request_count()) << where;
  for (RequestId i = 0; i < flat.request_count(); ++i) {
    EXPECT_DOUBLE_EQ(flat.weight(i), naive.weight(i))
        << where << " weight of request " << i;
    EXPECT_EQ(flat.is_pinned(i), naive.is_pinned(i)) << where << " " << i;
    EXPECT_EQ(flat.fully_rejected(i), naive.fully_rejected(i))
        << where << " rejection of request " << i;
  }
  EXPECT_DOUBLE_EQ(flat.fractional_cost(), naive.fractional_cost()) << where;
  EXPECT_EQ(flat.augmentations(), naive.augmentations()) << where;
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    EXPECT_EQ(flat.excess(e), naive.excess(e)) << where << " edge " << e;
    EXPECT_EQ(flat.saturated(e), naive.saturated(e)) << where << " " << e;
    EXPECT_EQ(flat.constraint_satisfied(e), naive.constraint_satisfied(e))
        << where << " edge " << e;
    // The flat sum is incremental; agreement within the covering-check
    // tolerance is the contract (exact agreement is not).
    EXPECT_NEAR(flat.alive_weight_sum(e), naive.alive_weight_sum(e), 1e-9)
        << where << " edge " << e;
    EXPECT_EQ(flat.alive_requests(e), naive.alive_requests(e))
        << where << " edge " << e;
  }
}

void expect_deltas_equal(const std::vector<WeightDelta>& a,
                         const std::vector<WeightDelta>& b,
                         const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].id, b[k].id) << where << " delta " << k;
    EXPECT_DOUBLE_EQ(a[k].delta, b[k].delta) << where << " delta " << k;
  }
}

/// Replays an instance into both engines.  `pin_probability` interleaves
/// pinned (must-accept-style) registrations; `carry_probability` admits
/// some requests passively with a carried weight and restores their edges
/// afterwards, the α-phase-rebuild call pattern.  `small_list_threshold`
/// feeds the flat engine's tunable small-list cutoff — the naive engine
/// has no such knob, so equality at any setting proves the cutoff only
/// selects a strategy, never a decision.
void run_differential(const AdmissionInstance& inst, double zero_init,
                      double pin_probability, double carry_probability,
                      std::uint64_t seed,
                      std::size_t small_list_threshold =
                          FlatFractionalEngine::kSmallListThreshold) {
  FlatFractionalEngine flat(inst.graph(), zero_init, small_list_threshold);
  NaiveFractionalEngine naive(inst.graph(), zero_init);
  Rng choices(seed);
  for (RequestId i = 0; i < inst.request_count(); ++i) {
    const Request& r = inst.request(i);
    const double roll = choices.uniform();
    if (roll < pin_probability) {
      EXPECT_EQ(flat.pin(r.edges), naive.pin(r.edges));
      expect_deltas_equal(flat.restore_edges(r.edges),
                          naive.restore_edges(r.edges), "pin+restore");
    } else if (roll < pin_probability + carry_probability) {
      const double carried = choices.uniform() * 0.9;
      EXPECT_EQ(flat.admit_existing(r.edges, r.cost, r.cost, carried),
                naive.admit_existing(r.edges, r.cost, r.cost, carried));
      expect_deltas_equal(flat.restore_edges(r.edges),
                          naive.restore_edges(r.edges), "carry+restore");
    } else {
      expect_deltas_equal(flat.arrive(r.edges, r.cost, r.cost),
                          naive.arrive(r.edges, r.cost, r.cost), "arrive");
    }
    expect_engines_equal(flat, naive, inst.graph(), "after arrival");
    if (::testing::Test::HasFailure()) {
      FAIL() << "engines diverged at arrival " << i << " (seed " << seed
             << ")";
    }
  }
}

class DifferentialSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSeeds, UnweightedLineWorkload) {
  Rng rng(GetParam());
  AdmissionInstance inst = make_line_workload(
      6, 2, 60, 1, 4, CostModel::unit_costs(), rng);
  run_differential(inst, 0.25, 0.0, 0.0, GetParam());
}

TEST_P(DifferentialSeeds, WeightedStarWorkloadWithPins) {
  Rng rng(GetParam() + 100);
  AdmissionInstance inst = make_star_workload(
      5, 2, 60, 3, CostModel::spread(1.0, 16.0), rng);
  run_differential(inst, 0.1, 0.15, 0.0, GetParam());
}

TEST_P(DifferentialSeeds, DenseSingleEdgeBurst) {
  Rng rng(GetParam() + 200);
  AdmissionInstance inst = make_single_edge_burst(
      4, 80, CostModel::unit_costs(), rng);
  run_differential(inst, 0.25, 0.0, 0.0, GetParam());
}

TEST_P(DifferentialSeeds, WeightedBurstWithCarriedWeights) {
  Rng rng(GetParam() + 300);
  AdmissionInstance inst = make_single_edge_burst(
      3, 60, CostModel::spread(1.0, 8.0), rng);
  run_differential(inst, 0.05, 0.1, 0.2, GetParam());
}

TEST_P(DifferentialSeeds, PowerLawWorkload) {
  Rng rng(GetParam() + 400);
  AdmissionInstance inst = make_power_law_workload(
      12, 2, 80, 3, 1.2, CostModel::spread(1.0, 4.0), rng);
  run_differential(inst, 0.2, 0.05, 0.05, GetParam());
}

TEST_P(DifferentialSeeds, InstantRejectionZeroInitOne) {
  // zero_init 1.0 makes step (a) fully reject instantly: the death-heavy
  // extreme that stresses dead-count tracking and compaction gating.
  Rng rng(GetParam() + 500);
  AdmissionInstance inst = make_single_edge_burst(
      2, 30, CostModel::unit_costs(), rng);
  run_differential(inst, 1.0, 0.1, 0.0, GetParam());
}

TEST_P(DifferentialSeeds, SharedSetsOverlapScenario) {
  // The scenario every request row of which is wide and heavily shared —
  // the shape that exercises the cross-arrival fix-up journal (large
  // incident row degrees, many edges touched per arrival).  Phase-2
  // reduction arrivals ride along as ordinary weighted arrivals; the
  // engines only see identical operation sequences.
  Rng rng(GetParam() + 600);
  ScenarioParams params;
  params.requests = 260;
  AdmissionInstance inst = make_scenario("shared_sets_overlap", params, rng);
  run_differential(inst, 0.1, 0.05, 0.0, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeeds,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// Small-list threshold band (the ctor-tunable eager/journal cutoff)
// ---------------------------------------------------------------------------

TEST(ThresholdBand, DifferentialHoldsAtBoundaryThresholds) {
  // Thresholds straddling the default band (47/48/49 around the default
  // 48) and the degenerate extremes: 0 routes every edge through the
  // journal/rescan machinery, 1<<30 keeps every edge on the eager exact
  // path.  All must be decision-identical to the naive engine — the
  // threshold may only change *how* sums are maintained.
  const std::size_t thresholds[] = {0, 1, 47, 48, 49, std::size_t{1} << 30};
  for (std::size_t threshold : thresholds) {
    {
      // Single edge whose member list grows straight through the band.
      Rng rng(33);
      AdmissionInstance inst =
          make_single_edge_burst(4, 120, CostModel::spread(1.0, 8.0), rng);
      run_differential(inst, 0.05, 0.1, 0.1, 33, threshold);
    }
    {
      // Multi-edge rows: fix-up strategy differs per incident edge.
      Rng rng(34);
      AdmissionInstance inst = make_power_law_workload(
          10, 2, 150, 3, 1.2, CostModel::spread(1.0, 4.0), rng);
      run_differential(inst, 0.1, 0.05, 0.05, 34, threshold);
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged at small_list_threshold " << threshold;
    }
  }
}

// ---------------------------------------------------------------------------
// Sweep-kernel tiers (core/simd_sweep.h): scalar vs SIMD bit-identity
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, EveryTierMatchesNaiveBitForBit) {
  // Each engine snapshots the active kernel at construction, so forcing
  // the override before constructing pins the flat engine to one tier.
  // set_sweep_isa_for_tests clamps to what the CPU supports (and to
  // scalar under MINREJ_NO_SIMD), so this passes — vacuously narrower —
  // everywhere.  Weighted costs matter: they are what an FMA-contraction
  // or reassociation bug in a vector tier would corrupt first.
  const simd::SweepIsa tiers[] = {simd::SweepIsa::kScalar,
                                  simd::SweepIsa::kAvx2,
                                  simd::SweepIsa::kAvx512};
  for (simd::SweepIsa isa : tiers) {
    simd::set_sweep_isa_for_tests(isa);
    {
      Rng rng(55);
      AdmissionInstance inst = make_power_law_workload(
          12, 2, 200, 3, 1.2, CostModel::spread(1.0, 8.0), rng);
      run_differential(inst, 0.1, 0.05, 0.05, 55);
    }
    {
      // Dense burst: long member lists keep the vector main loop (not
      // just the scalar tail) on the hot path.
      Rng rng(56);
      AdmissionInstance inst =
          make_single_edge_burst(8, 160, CostModel::spread(1.0, 16.0), rng);
      run_differential(inst, 0.05, 0.0, 0.1, 56);
    }
    simd::clear_sweep_isa_override();
    if (::testing::Test::HasFailure()) {
      FAIL() << "tier " << simd::sweep_isa_name(isa)
             << " diverged from the naive engine";
    }
  }
}

// ---------------------------------------------------------------------------
// Compaction gating (the flat engine's threshold-based lazy deletion)
// ---------------------------------------------------------------------------

TEST(EngineCompaction, NoDeathsMeansNoCompactions) {
  // Three unit arrivals on a capacity-2 edge: one augmentation step, no
  // request dies.  The flat engine must not have compacted (nothing was
  // dead), while the naive engine rescans on every loop iteration.
  Graph g = make_single_edge_graph(2);
  FlatFractionalEngine flat(g, 0.3);
  NaiveFractionalEngine naive(g, 0.3);
  for (int i = 0; i < 3; ++i) {
    flat.arrive({0}, 1.0, 1.0);
    naive.arrive({0}, 1.0, 1.0);
  }
  ASSERT_GT(flat.augmentations(), 0u);
  for (RequestId i = 0; i < 3; ++i) {
    ASSERT_FALSE(flat.fully_rejected(i));
  }
  EXPECT_EQ(flat.compactions(), 0u);
  EXPECT_GT(naive.compactions(), 0u);
}

TEST(EngineCompaction, SweptEdgeSelfCompactsForFree) {
  // On a single-edge burst every death happens during a sweep of that
  // edge, so the in-place sweep removes the entries as part of the work it
  // was doing anyway: the member list stays fully compacted and the
  // explicit compaction pass never runs.
  Rng rng(7);
  AdmissionInstance inst = make_single_edge_burst(
      8, 200, CostModel::unit_costs(), rng);
  FlatFractionalEngine flat(inst.graph(), 1.0 / 8.0);
  for (const Request& r : inst.requests()) flat.arrive(r.edges, 1.0, 1.0);
  std::uint64_t deaths = 0;
  for (RequestId i = 0; i < flat.request_count(); ++i) {
    deaths += flat.fully_rejected(i) ? 1 : 0;
  }
  ASSERT_GT(deaths, 0u);
  EXPECT_EQ(flat.member_list_size(0), flat.alive_requests(0).size());
  EXPECT_EQ(flat.compactions(), 0u);
}

TEST(EngineCompaction, CrossEdgeDeathsAreChargedToDeaths) {
  // Multi-edge requests leave dead entries on the edges that were NOT
  // being swept when they died; those are reclaimed by the threshold-gated
  // compaction.  Every such pass needs the dead fraction to reach 1/2, so
  // the count is bounded by the deaths (times the request degree) — while
  // the naive engine pays a compaction scan on every loop iteration.
  Rng rng(8);
  AdmissionInstance inst = make_power_law_workload(
      10, 2, 300, 3, 1.2, CostModel::spread(1.0, 8.0), rng);
  FlatFractionalEngine flat(inst.graph(), 0.05);
  NaiveFractionalEngine naive(inst.graph(), 0.05);
  for (const Request& r : inst.requests()) {
    flat.arrive(r.edges, r.cost, r.cost);
    naive.arrive(r.edges, r.cost, r.cost);
  }
  std::uint64_t deaths = 0;
  for (RequestId i = 0; i < flat.request_count(); ++i) {
    deaths += flat.fully_rejected(i) ? 1 : 0;
  }
  ASSERT_GT(deaths, 0u);
  EXPECT_LE(flat.compactions(), 3 * deaths);  // max request degree is 3
  EXPECT_GE(naive.compactions(), naive.augmentations());
  EXPECT_LT(flat.compactions(), naive.compactions() / 4);
}

TEST(EngineCompaction, CompactedViewStaysConsistent) {
  // After heavy churn the lazily-maintained member list must still produce
  // the exact alive set and a covering sum in agreement with a fresh
  // rescan (the incremental-sum drift contract).
  Rng rng(11);
  AdmissionInstance inst = make_single_edge_burst(
      4, 120, CostModel::spread(1.0, 8.0), rng);
  FlatFractionalEngine flat(inst.graph(), 0.05);
  for (const Request& r : inst.requests()) flat.arrive(r.edges, r.cost, r.cost);
  double rescan = 0.0;
  std::vector<RequestId> alive;
  for (RequestId i = 0; i < flat.request_count(); ++i) {
    if (!flat.fully_rejected(i) && !flat.is_pinned(i)) {
      alive.push_back(i);
      rescan += flat.weight(i);
    }
  }
  EXPECT_EQ(flat.alive_requests(0), alive);
  EXPECT_NEAR(flat.alive_weight_sum(0), rescan, 1e-9);
}

}  // namespace
}  // namespace minrej

// Tests for the §5 deterministic bicriteria online set cover algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bicriteria_setcover.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace minrej {
namespace {

BicriteriaConfig eps(double e) {
  BicriteriaConfig cfg;
  cfg.epsilon = e;
  return cfg;
}

TEST(Bicriteria, RejectsBadConfig) {
  SetSystem sys(2, {{0, 1}});
  EXPECT_THROW(BicriteriaSetCover(sys, eps(0.0)), InvalidArgument);
  EXPECT_THROW(BicriteriaSetCover(sys, eps(1.0)), InvalidArgument);
}

TEST(Bicriteria, RequiresUnitCosts) {
  SetSystem sys(2, {{0}, {1}}, {1.0, 2.0});
  EXPECT_THROW(BicriteriaSetCover(sys, eps(0.5)), InvalidArgument);
}

TEST(Bicriteria, RequiredCoverageIsCeil) {
  SetSystem sys(2, {{0, 1}});
  BicriteriaSetCover alg(sys, eps(0.5));
  EXPECT_EQ(alg.required_coverage(1), 1);  // ceil(0.5)
  EXPECT_EQ(alg.required_coverage(2), 1);  // ceil(1.0)
  EXPECT_EQ(alg.required_coverage(3), 2);  // ceil(1.5)
  EXPECT_EQ(alg.required_coverage(4), 2);
}

TEST(Bicriteria, SingleArrivalAlwaysCovered) {
  // k=1 and any ε<1 requires 1 covering set: the classic online set cover
  // specialization.
  Rng rng(1);
  SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  for (double e : {0.1, 0.5, 0.9}) {
    BicriteriaSetCover alg(sys, eps(e));
    for (ElementId j = 0; j < 10; ++j) {
      alg.on_element(j);
      EXPECT_GE(alg.covered(j), 1) << "eps=" << e;
    }
  }
}

TEST(Bicriteria, CoverageGuaranteeUnderRepetitions) {
  Rng rng(2);
  SetSystem sys = random_uniform_system(8, 12, 3, 6, rng);
  BicriteriaSetCover alg(sys, eps(0.25));
  const auto arrivals = arrivals_each_k_times(8, 5, true, rng);
  // The base class enforces covered >= ceil((1-ε)k) after every arrival.
  run_setcover(alg, arrivals);
  for (ElementId j = 0; j < 8; ++j) {
    EXPECT_GE(alg.covered(j),
              static_cast<std::int64_t>(std::ceil(0.75 * 5.0) - 1e-9));
  }
}

TEST(Bicriteria, PotentialNeverExceedsNSquared) {
  Rng rng(3);
  SetSystem sys = random_uniform_system(12, 10, 4, 4, rng);
  BicriteriaSetCover alg(sys, eps(0.5));
  const auto arrivals = arrivals_each_k_times(12, 3, true, rng);
  const double n2 = 12.0 * 12.0;
  for (ElementId j : arrivals) {
    alg.on_element(j);
    EXPECT_LE(alg.potential(), n2 * (1.0 + 1e-9));
  }
}

TEST(Bicriteria, WeightsStayBelowOnePointFive) {
  // Lemma 5's proof relies on w_S < 1.5 at all times.
  Rng rng(4);
  SetSystem sys = random_uniform_system(10, 8, 3, 4, rng);
  BicriteriaSetCover alg(sys, eps(0.3));
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  for (ElementId j : arrivals) {
    alg.on_element(j);
    for (SetId s = 0; s < 8; ++s) {
      EXPECT_LT(alg.set_weight(s), 1.5 + 1e-9);
    }
  }
}

TEST(Bicriteria, ElementWeightsConsistent) {
  Rng rng(5);
  SetSystem sys = random_uniform_system(8, 6, 3, 2, rng);
  BicriteriaSetCover alg(sys, eps(0.5));
  const auto arrivals = arrivals_each_k_times(8, 2, true, rng);
  for (ElementId j : arrivals) alg.on_element(j);
  for (ElementId j = 0; j < 8; ++j) {
    double sum = 0.0;
    for (SetId s : sys.sets_of(j)) sum += alg.set_weight(s);
    EXPECT_NEAR(alg.element_weight(j), sum, 1e-9);
  }
}

TEST(Bicriteria, CostWithinTheorem7Envelope) {
  Rng rng(6);
  SetSystem sys = random_uniform_system(16, 12, 4, 4, rng);
  const auto arrivals = arrivals_each_k_times(16, 2, true, rng);
  CoverInstance inst(sys, arrivals);
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.cost, 0.0);

  BicriteriaSetCover alg(sys, eps(0.5));
  const CoverRun run = run_setcover(alg, arrivals);
  const double logm = std::max(1.0, std::log2(12.0));
  const double logn = std::max(1.0, std::log2(16.0));
  // OPT covers k, the algorithm covers ceil(k/2): its cost is compared to
  // the full-coverage OPT exactly as in Theorem 7.
  EXPECT_LE(competitive_ratio(run.cost, opt.cost), 20.0 * logm * logn);
}

TEST(Bicriteria, AugmentationsWithinLemma5Envelope) {
  Rng rng(7);
  SetSystem sys = random_uniform_system(12, 10, 4, 3, rng);
  const auto arrivals = arrivals_each_k_times(12, 2, true, rng);
  CoverInstance inst(sys, arrivals);
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);

  BicriteriaSetCover alg(sys, eps(0.5));
  run_setcover(alg, arrivals);
  const double logm = std::max(1.0, std::log2(10.0));
  // Lemma 5: O(α log m) augmentations; ε-dependent constant absorbed.
  EXPECT_LE(static_cast<double>(alg.augmentations()),
            32.0 * opt.cost * logm + 16.0);
}

TEST(Bicriteria, RoundingOvershootIsRare) {
  Rng rng(8);
  SetSystem sys = random_uniform_system(16, 14, 4, 4, rng);
  BicriteriaSetCover alg(sys, eps(0.4));
  run_setcover(alg, arrivals_each_k_times(16, 3, true, rng));
  // Lemma 6 promises 2·log n picks suffice; the greedy implementation
  // should essentially never need more.
  EXPECT_LE(alg.rounding_overshoot(), alg.rounding_additions() / 4 + 2);
}

TEST(Bicriteria, SingletonsPlusBlockStaysPolylog) {
  const std::size_t n = 32;
  SetSystem sys = singletons_plus_block_system(n, n);
  BicriteriaSetCover alg(sys, eps(0.5));
  std::vector<ElementId> arrivals(n);
  for (std::size_t j = 0; j < n; ++j) arrivals[j] = static_cast<ElementId>(j);
  const CoverRun run = run_setcover(alg, arrivals);
  // OPT = 1 (the block); the deterministic algorithm must stay polylog.
  const double logm = std::log2(static_cast<double>(n + 1));
  const double logn = std::log2(static_cast<double>(n));
  EXPECT_LE(run.cost, 12.0 * logm * logn);
}

TEST(Bicriteria, AdaptiveAdversaryHonoursContract) {
  SetSystem sys = dyadic_interval_system(16);
  BicriteriaSetCover alg(sys, eps(0.5));
  const auto played = run_adaptive_adversary(alg, 30);
  EXPECT_FALSE(played.empty());
  for (ElementId j = 0; j < 16; ++j) {
    const std::int64_t need = std::min<std::int64_t>(
        alg.required_coverage(alg.demand(j)),
        static_cast<std::int64_t>(sys.degree(j)));
    EXPECT_GE(alg.covered(j), need);
  }
}

TEST(Bicriteria, SmallerEpsilonCoversMore) {
  Rng rng(9);
  SetSystem sys = random_uniform_system(10, 12, 4, 6, rng);
  const auto arrivals = arrivals_each_k_times(10, 4, true, rng);
  BicriteriaSetCover tight(sys, eps(0.1));
  BicriteriaSetCover loose(sys, eps(0.9));
  run_setcover(tight, arrivals);
  {
    // Fresh copy of arrivals for the second run (same sequence).
    BicriteriaSetCover& alg = loose;
    for (ElementId j : arrivals) alg.on_element(j);
  }
  // Tight ε must cover at least as much per element and cost at least as
  // much in aggregate (weak monotonicity; equality is possible).
  double tight_cov = 0, loose_cov = 0;
  for (ElementId j = 0; j < 10; ++j) {
    tight_cov += static_cast<double>(tight.covered(j));
    loose_cov += static_cast<double>(loose.covered(j));
  }
  EXPECT_GE(tight_cov, loose_cov);
  EXPECT_GE(tight.cost(), loose.cost());
}

}  // namespace
}  // namespace minrej

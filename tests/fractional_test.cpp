// Tests for the §2 fractional machinery: FractionalEngine (weight
// augmentation) and FractionalAdmission (classification + α-doubling).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/fractional_admission.h"
#include "core/fractional_engine.h"
#include "graph/generators.h"
#include "lp/covering_lp.h"
#include "offline/admission_opt.h"
#include "sim/workloads.h"
#include "test_util.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// FractionalEngine
// ---------------------------------------------------------------------------

TEST(Engine, NoOverloadMeansNoWeights) {
  Graph g = make_line_graph(3, 2);
  FractionalEngine engine(g, 0.1);
  engine.arrive({0, 1}, 1.0, 1.0);
  engine.arrive({1, 2}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(engine.fractional_cost(), 0.0);
  EXPECT_EQ(engine.augmentations(), 0u);
  EXPECT_DOUBLE_EQ(engine.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.weight(1), 0.0);
}

TEST(Engine, ConstraintRestoredAfterOverload) {
  Graph g = make_single_edge_graph(1);
  FractionalEngine engine(g, 0.25);
  engine.arrive({0}, 1.0, 1.0);
  EXPECT_TRUE(engine.constraint_satisfied(0));
  engine.arrive({0}, 1.0, 1.0);  // excess 1
  EXPECT_TRUE(engine.constraint_satisfied(0));
  EXPECT_GE(engine.alive_weight_sum(0), 1.0 - 1e-9);
  EXPECT_GT(engine.augmentations(), 0u);
}

TEST(Engine, WeightsAreMonotoneNonDecreasing) {
  Graph g = make_single_edge_graph(2);
  FractionalEngine engine(g, 0.1);
  std::vector<double> last;
  for (int i = 0; i < 8; ++i) {
    engine.arrive({0}, 1.0, 1.0);
    for (std::size_t r = 0; r < last.size(); ++r) {
      EXPECT_GE(engine.weight(static_cast<RequestId>(r)), last[r] - 1e-12);
    }
    last.clear();
    for (std::size_t r = 0; r < engine.request_count(); ++r) {
      last.push_back(engine.weight(static_cast<RequestId>(r)));
    }
  }
}

TEST(Engine, DeltasSumToCostIncrease) {
  Graph g = make_single_edge_graph(1);
  FractionalEngine engine(g, 0.2);
  double tracked = 0.0;
  for (int i = 0; i < 6; ++i) {
    const auto& deltas = engine.arrive({0}, 1.0, 1.0);
    for (const auto& d : deltas) tracked += d.delta;  // unit report costs
  }
  EXPECT_NEAR(tracked, engine.fractional_cost(), 1e-9);
}

TEST(Engine, FullyRejectedLeavesAliveSets) {
  Graph g = make_single_edge_graph(1);
  // zero_init 1.0: the first augmentation fully rejects instantly.
  FractionalEngine engine(g, 1.0);
  engine.arrive({0}, 1.0, 1.0);
  engine.arrive({0}, 1.0, 1.0);
  std::size_t rejected = 0;
  for (RequestId i = 0; i < 2; ++i) rejected += engine.fully_rejected(i);
  EXPECT_GE(rejected, 1u);
  const auto alive = engine.alive_requests(0);
  for (RequestId i : alive) EXPECT_FALSE(engine.fully_rejected(i));
}

TEST(Engine, PinnedRequestsRaiseExcessButCarryNoWeight) {
  Graph g = make_single_edge_graph(2);
  FractionalEngine engine(g, 0.1);
  const RequestId pin = engine.pin({0});
  EXPECT_TRUE(engine.is_pinned(pin));
  EXPECT_EQ(engine.excess(0), 1 - 2);
  engine.arrive({0}, 1.0, 1.0);
  engine.arrive({0}, 1.0, 1.0);  // alive 2 + pin 1 vs capacity 2: excess 1
  EXPECT_EQ(engine.excess(0), 1);
  EXPECT_TRUE(engine.constraint_satisfied(0));
  EXPECT_DOUBLE_EQ(engine.weight(pin), 0.0);
  EXPECT_FALSE(engine.fully_rejected(pin));
}

TEST(Engine, CheaperRequestsGetLargerMultiplier) {
  // With n_e = 1 and update costs {1, 10}, the cheap request's weight grows
  // by factor (1 + 1/1) vs (1 + 1/10) per augmentation — after the same
  // floor start, cheap > expensive.
  Graph g = make_single_edge_graph(1);
  FractionalEngine engine(g, 1e-3);
  engine.arrive({0}, 10.0, 10.0);
  engine.arrive({0}, 1.0, 1.0);
  EXPECT_GT(engine.weight(1), engine.weight(0));
}

TEST(Engine, SaturatedEdgeStopsAugmenting) {
  // Capacity 1, zero_init 1: every arrival instantly fully rejects all
  // augmentable requests; after they are gone the loop must exit even
  // though the constraint is unsatisfiable.
  Graph g = make_single_edge_graph(1);
  FractionalEngine engine(g, 1.0);
  for (int i = 0; i < 5; ++i) engine.arrive({0}, 1.0, 1.0);
  SUCCEED();  // no hang, no throw
}

TEST(Engine, RejectsBadInputs) {
  Graph g = make_single_edge_graph(1);
  EXPECT_THROW(FractionalEngine(g, 0.0), InvalidArgument);
  EXPECT_THROW(FractionalEngine(g, 1.5), InvalidArgument);
  FractionalEngine engine(g, 0.5);
  EXPECT_THROW(engine.arrive({}, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(engine.arrive({0}, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(engine.arrive({5}, 1.0, 1.0), InvalidArgument);
}

TEST(Engine, AugmentationCountMatchesLemma1Shape) {
  // Lemma 1: #augmentations = O(α log(gc)).  On a unit-cost single edge
  // with capacity c and r > c requests, α = r − c.  Verify the count stays
  // within a small constant of α·log2(2c) for a few (r, c) points.
  for (std::int64_t c : {2, 4, 8, 16}) {
    Graph g = make_single_edge_graph(c);
    FractionalEngine engine(g, 1.0 / static_cast<double>(c));
    const std::int64_t r = 3 * c;
    for (std::int64_t i = 0; i < r; ++i) engine.arrive({0}, 1.0, 1.0);
    const double alpha = static_cast<double>(r - c);
    const double bound = alpha * std::max(1.0, std::log2(2.0 * static_cast<double>(c)));
    EXPECT_LE(static_cast<double>(engine.augmentations()), 8.0 * bound + 8.0)
        << "c=" << c;
  }
}

TEST(Engine, Lemma1PotentialDoublesPerAugmentation) {
  // White-box test of Lemma 1's mechanism.  With f* an optimal fractional
  // solution, the potential
  //     Φ = Π_i max(f_i, 1/(gc))^{f*_i · p_i}
  // (a) starts at (gc)^{-α}, (b) never exceeds 2^α, and (c) is multiplied
  // by at least 2 in every weight-augmentation step.  We replay a
  // unit-cost burst (g = 1), take f* from the LP, and check (c) through
  // the engine's augmentation observer.
  const std::int64_t c = 4;
  const std::size_t r = 16;
  Rng rng(61);
  AdmissionInstance inst = make_single_edge_burst(
      c, r, CostModel::unit_costs(), rng);
  const LpSolution lp = solve_admission_lp(inst);
  ASSERT_TRUE(lp.optimal());
  const double alpha = lp.objective;
  const double gc = static_cast<double>(c);  // g = 1 for unit costs

  FractionalEngine engine(inst.graph(), 1.0 / gc);

  // Φ over the requests that have arrived so far.
  std::size_t arrived = 0;
  auto compute_phi = [&]() {
    long double phi = 1.0L;
    for (RequestId i = 0; i < arrived; ++i) {
      const long double base = std::max(
          static_cast<long double>(engine.weight(i)),
          static_cast<long double>(1.0 / gc));
      phi *= std::pow(base, static_cast<long double>(lp.x[i]));  // p_i = 1
    }
    return phi;
  };

  long double last_phi = 1.0L;
  std::size_t checked = 0;
  engine.set_augmentation_observer([&](EdgeId) {
    const long double now = compute_phi();
    EXPECT_GE(static_cast<double>(now / last_phi), 1.95)
        << "augmentation " << checked << " did not double the potential";
    last_phi = now;
    ++checked;
  });

  for (std::size_t i = 0; i < r; ++i) {
    // The arriving request multiplies Φ by (1/gc)^{f*_i} before any
    // augmentation runs; fold that into the baseline.
    last_phi *= std::pow(static_cast<long double>(1.0 / gc),
                         static_cast<long double>(lp.x[i]));
    ++arrived;
    engine.arrive(inst.request(static_cast<RequestId>(i)).edges, 1.0, 1.0);
    last_phi = compute_phi();
  }
  EXPECT_GT(checked, 0u) << "no augmentation ever ran";
  // (b): the final potential respects the 2^α ceiling.
  EXPECT_LE(static_cast<double>(std::log2(compute_phi())), alpha + 1e-6);
}

// ---------------------------------------------------------------------------
// FractionalAdmission — unit-cost mode
// ---------------------------------------------------------------------------

TEST(FracAdmission, UnitModeZeroOptZeroCost) {
  Graph g = make_line_graph(4, 3);
  FractionalConfig cfg;
  cfg.unit_costs = true;
  FractionalAdmission alg(g, cfg);
  for (int i = 0; i < 3; ++i) {
    alg.on_request(Request({0, 1, 2, 3}, 1.0));
  }
  EXPECT_DOUBLE_EQ(alg.fractional_cost(), 0.0);
}

TEST(FracAdmission, UnitModeCompetitiveOnBurst) {
  Rng rng(3);
  for (std::int64_t c : {2, 8}) {
    AdmissionInstance inst =
        make_single_edge_burst(c, static_cast<std::size_t>(4 * c),
                               CostModel::unit_costs(), rng);
    FractionalConfig cfg;
    cfg.unit_costs = true;
    FractionalAdmission alg(inst.graph(), cfg);
    for (const Request& r : inst.requests()) alg.on_request(r);
    const LpSolution lp = solve_admission_lp(inst);
    ASSERT_TRUE(lp.optimal());
    // Theorem 2 (unit costs): O(log c)-competitive vs the fractional OPT.
    const double bound =
        8.0 * std::max(1.0, std::log2(2.0 * static_cast<double>(c)));
    EXPECT_GE(alg.fractional_cost(), lp.objective - 1e-9);
    EXPECT_LE(alg.fractional_cost(), bound * lp.objective + 1e-9) << "c=" << c;
  }
}

TEST(FracAdmission, UnitModeRejectsNonUnitCosts) {
  Graph g = make_single_edge_graph(1);
  FractionalConfig cfg;
  cfg.unit_costs = true;
  FractionalAdmission alg(g, cfg);
  EXPECT_THROW(alg.on_request(Request({0}, 2.0)), InvalidArgument);
}

// ---------------------------------------------------------------------------
// FractionalAdmission — weighted auto-α mode
// ---------------------------------------------------------------------------

TEST(FracAdmission, AlphaInitializedAtFirstOverflow) {
  Graph g = make_single_edge_graph(1);
  FractionalAdmission alg(g);
  EXPECT_FALSE(alg.alpha_initialized());
  alg.on_request(Request({0}, 4.0));
  EXPECT_FALSE(alg.alpha_initialized());  // no overflow yet
  const auto arrival = alg.on_request(Request({0}, 6.0));
  EXPECT_TRUE(alg.alpha_initialized());
  EXPECT_TRUE(arrival.phase_reset);
  // α = min cost on the overloaded edge = 4.
  EXPECT_DOUBLE_EQ(alg.alpha(), 4.0);
}

TEST(FracAdmission, ClassificationBuckets) {
  Graph g = make_star_graph(4, 1);
  FractionalConfig cfg;
  cfg.fixed_alpha = 10.0;  // thresholds: small < 10/(4*1)=2.5, big > 20
  FractionalAdmission alg(g, cfg);
  const auto small = alg.on_request(Request({0}, 1.0));
  EXPECT_EQ(small.cost_class, CostClass::kAutoRejected);
  const auto big = alg.on_request(Request({1}, 100.0));
  EXPECT_EQ(big.cost_class, CostClass::kAutoAccepted);
  const auto mid = alg.on_request(Request({2}, 10.0));
  EXPECT_EQ(mid.cost_class, CostClass::kEngine);
  // The small rejection is paid immediately.
  EXPECT_DOUBLE_EQ(alg.fractional_cost(), 1.0);
  EXPECT_TRUE(alg.fully_rejected(0));
  EXPECT_DOUBLE_EQ(alg.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(alg.weight(1), 0.0);
}

TEST(FracAdmission, DoublingBoundsCostOnAdversarialStream) {
  // A stream whose optimum grows forces α to double several times; the
  // total cost must stay within a constant of the known-α run.
  Rng rng(5);
  AdmissionInstance inst = make_single_edge_burst(
      2, 40, CostModel::spread(1.0, 100.0), rng);
  FractionalAdmission unknown(inst.graph());
  for (const Request& r : inst.requests()) unknown.on_request(r);

  const LpSolution lp = solve_admission_lp(inst);
  ASSERT_TRUE(lp.optimal());
  ASSERT_GT(lp.objective, 0.0);
  const double m = 1.0, c = 2.0;
  const double logmc = std::max(1.0, std::log2(2 * m * c));
  // Theorem 2 with the doubling overhead: still O(log(mc)) — allow a
  // generous constant.
  EXPECT_LE(unknown.fractional_cost(), 64.0 * logmc * lp.objective + 1e-9);
  EXPECT_GE(unknown.phase_count(), 1u);
}

TEST(FracAdmission, WeightedCompetitiveVsFractionalOpt) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    AdmissionInstance inst = make_line_workload(
        8, 2, 40, 1, 4, CostModel::spread(1.0, 16.0), rng);
    FractionalAdmission alg(inst.graph());
    for (const Request& r : inst.requests()) alg.on_request(r);
    const LpSolution lp = solve_admission_lp(inst);
    ASSERT_TRUE(lp.optimal());
    if (lp.objective <= 1e-12) {
      EXPECT_DOUBLE_EQ(alg.fractional_cost(), 0.0);
      continue;
    }
    const double mc = 8.0 * 2.0;
    const double bound = 64.0 * std::max(1.0, std::log2(2 * mc));
    EXPECT_LE(alg.fractional_cost(), bound * lp.objective + 1e-9)
        << "trial " << trial;
  }
}

TEST(FracAdmission, ZeroOptMeansZeroCost) {
  // "the online algorithm must reject 0 requests in case the optimal
  // solution rejects 0 requests" — no overload, no cost, in both modes.
  Rng rng(9);
  AdmissionInstance inst = make_line_workload(
      6, 30, 20, 1, 3, CostModel::spread(1.0, 10.0), rng);
  ASSERT_EQ(inst.max_excess(), 0);
  FractionalAdmission weighted(inst.graph());
  FractionalConfig unit_cfg;
  unit_cfg.unit_costs = true;
  for (const Request& r : inst.requests()) weighted.on_request(r);
  EXPECT_DOUBLE_EQ(weighted.fractional_cost(), 0.0);
}

TEST(FracAdmission, MustAcceptNeverWeighted) {
  Graph g = make_single_edge_graph(1);
  FractionalAdmission alg(g);
  alg.on_request(Request({0}, 3.0));
  const auto pin = alg.on_request(Request({0}, 1.0, true));
  EXPECT_EQ(pin.cost_class, CostClass::kMustAccept);
  // The pinned arrival overflows the edge; α initializes from the normal
  // request and the engine must fully reject it (it is the only candidate).
  EXPECT_TRUE(alg.alpha_initialized());
  EXPECT_DOUBLE_EQ(alg.weight(1), 0.0);
  EXPECT_TRUE(alg.fully_rejected(0));
}

TEST(FracAdmission, WeightedOnlineNeverBeatsFractionalOpt) {
  // Regression test for the α-doubling fidelity bugs: the online
  // fractional solution must remain (near-)feasible across phase changes
  // — weights carried over, big requests un-pinned as α grows, saturation
  // forcing a doubling — so its cost can never drop below the fractional
  // optimum.
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    AdmissionInstance inst = make_line_workload(
        8, 2, 40, 1, 4, CostModel::spread(1.0, 64.0), rng);
    const LpSolution lp = solve_admission_lp(inst);
    ASSERT_TRUE(lp.optimal());
    if (lp.objective <= 1e-9) continue;
    FractionalAdmission alg(inst.graph());
    for (const Request& r : inst.requests()) alg.on_request(r);
    EXPECT_GE(alg.fractional_cost(), 0.98 * lp.objective) << "trial "
                                                          << trial;
  }
}

TEST(FracAdmission, SaturationForcesDoubling) {
  // One cheap request then many expensive ones on a capacity-1 edge: the
  // initial α equals the cheap cost, the expensive requests all look
  // "big" and get pinned, and only the saturation signal can push α up.
  Graph g = make_single_edge_graph(1);
  FractionalAdmission alg(g);
  alg.on_request(Request({0}, 1.0));
  for (int i = 0; i < 6; ++i) {
    alg.on_request(Request({0}, 100.0));
  }
  // OPT keeps one expensive request: rejects the cheap one plus five of
  // the expensive ones => 501.  The online cost must be within the
  // O(log(mc)) envelope of that, which is impossible while α stays at 1.
  EXPECT_GT(alg.alpha(), 1.0);
  EXPECT_GE(alg.fractional_cost(), 501.0 * 0.98);
}

TEST(FracAdmission, AugmentationsWithinLemma1Envelope) {
  Rng rng(11);
  AdmissionInstance inst = make_single_edge_burst(
      4, 24, CostModel::unit_costs(), rng);
  FractionalConfig cfg;
  cfg.unit_costs = true;
  FractionalAdmission alg(inst.graph(), cfg);
  for (const Request& r : inst.requests()) alg.on_request(r);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);
  const double alpha = opt.rejected_cost;
  const double log_gc = std::max(1.0, std::log2(2.0 * 4.0));
  EXPECT_LE(static_cast<double>(alg.augmentations()),
            8.0 * alpha * log_gc + 8.0);
}

// ---------------------------------------------------------------------------
// NaN / range-clamp guards on fractional weights
// ---------------------------------------------------------------------------

TEST(EngineGuards, RejectsNonFiniteCosts) {
  Graph g = make_line_graph(2, 1);
  FractionalEngine engine(g, 0.5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(engine.arrive({0}, nan, 1.0), InvalidArgument);
  EXPECT_THROW(engine.arrive({0}, 1.0, nan), InvalidArgument);
  EXPECT_THROW(engine.arrive({0}, inf, 1.0), InvalidArgument);
  EXPECT_THROW(engine.arrive({0}, 1.0, inf), InvalidArgument);
  EXPECT_THROW(engine.admit_existing({0}, nan, 1.0), InvalidArgument);
  // A rejected arrival must not leave a half-registered request behind.
  EXPECT_EQ(engine.request_count(), 0u);
  EXPECT_DOUBLE_EQ(engine.fractional_cost(), 0.0);
}

TEST(EngineGuards, OutOfRangeEdgeLeavesNoPhantomRequest) {
  Graph g = make_line_graph(2, 1);
  FractionalEngine engine(g, 0.5);
  EXPECT_THROW(engine.arrive({0, 7}, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(engine.pin({7}), InvalidArgument);
  EXPECT_EQ(engine.request_count(), 0u);
  // The rejected arrivals must not have touched edge 0's bookkeeping:
  // filling the edge to capacity must still trigger no augmentation.
  engine.arrive({0}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(engine.fractional_cost(), 0.0);
  EXPECT_EQ(engine.augmentations(), 0u);
}

TEST(EngineGuards, RejectsNanZeroInitAndInitialWeight) {
  Graph g = make_line_graph(2, 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN fails every ordered comparison, so the (0, 1] range requirement
  // must reject it rather than let it seep into step (a)'s floor.
  EXPECT_THROW(FractionalEngine(g, nan), InvalidArgument);
  FractionalEngine engine(g, 0.5);
  EXPECT_THROW(engine.admit_existing({0}, 1.0, 1.0, nan), InvalidArgument);
}

TEST(EngineGuards, TinyUpdateCostIsClampedFinite) {
  // An adversarially small update cost makes the multiplicative step's
  // factor huge; the clamp keeps stored weights finite (and semantically
  // unchanged: anything ≥ 1 is fully rejected either way).
  Graph g = make_single_edge_graph(1);
  FractionalEngine engine(g, 0.5);
  engine.arrive({0}, 1e-12, 1.0);  // under capacity: no augmentation
  engine.arrive({0}, 1e-12, 1.0);  // overload: one huge augmentation step
  EXPECT_TRUE(engine.fully_rejected(0));
  EXPECT_TRUE(engine.fully_rejected(1));
  for (RequestId i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::isfinite(engine.weight(i))) << "request " << i;
    EXPECT_LE(engine.weight(i), FractionalEngine::kWeightClamp);
  }
  // Both weights were driven from 0 to ≥ 1, so the reported (capped)
  // objective is exactly 2 at unit report costs.
  EXPECT_NEAR(engine.fractional_cost(), 2.0, test::COST_TOLERANCE);
}

}  // namespace
}  // namespace minrej

// Tests for util/thread_pool failure paths: task exceptions must not kill
// workers, wait_idle must surface exactly the first failure, and the pool
// must stay usable afterwards (the fault-tolerant service pump leans on
// all three — a shard task that throws is retried on the same pool).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/thread_pool.h"

namespace minrej {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsATaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.wait_idle();
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
}

TEST(ThreadPool, AThrowingTaskDoesNotKillItsWorker) {
  // One worker: the throwing task and the follow-up run on the same
  // thread, so the follow-up only runs if the worker survived.
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([&ran] { ran = true; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, OnlyTheFirstExceptionIsReported) {
  // Serialize on one worker so "first" is well-defined.
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
}

TEST(ThreadPool, PoolIsReusableAfterAFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was cleared: the next round runs clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorSwallowsAPendingTaskError) {
  // A captured-but-never-rethrown task error must not terminate the
  // process when the pool is destroyed.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("never observed"); });
  // Destructor runs at scope exit; reaching the assertion below after the
  // scope is the test.
  SUCCEED();
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksBeforeJoining) {
  // The deterministic-drain contract: every task submitted before
  // shutdown() runs to completion, even ones still queued when the stop
  // flag goes up.  One worker + a slow head task guarantees a deep queue.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 50);
  EXPECT_TRUE(pool.is_shutdown());
}

TEST(ThreadPool, ShutdownIsIdempotentAndSubmitAfterItThrows) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.is_shutdown());
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_TRUE(pool.is_shutdown());
  EXPECT_THROW(pool.submit([] {}), std::exception);
}

TEST(ThreadPool, ShutdownRunsTasksThatFailWithoutTerminating) {
  // A queued task that throws during the drain must be swallowed exactly
  // like destructor-time errors, not terminate the process.
  ThreadPool pool(1);
  std::atomic<int> after{0};
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  pool.submit([] { throw std::runtime_error("drain boom"); });
  pool.submit([&after] { after.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(after.load(), 1);
}

TEST(ParallelForIndex, CoversTheRangeAndPropagatesExceptions) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for_index(64, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_THROW(parallel_for_index(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("body boom");
                   },
                   2),
               std::runtime_error);
}

TEST(ParallelForIndex, GrainCoversTheRangeAtEveryGranularity) {
  // The grain knob changes slicing, never coverage: every index runs
  // exactly once for any (threads, grain) combination, including grains
  // larger than the range (which run inline).
  for (const std::size_t grain : {1u, 3u, 16u, 64u, 1000u}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      std::vector<std::atomic<int>> hits(100);
      parallel_for_index(
          100, [&hits](std::size_t i) { hits[i].fetch_add(1); }, threads,
          grain);
      for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "i=" << i << " grain=" << grain << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForIndex, GrainBoundsWorkerFanOut) {
  // grain >= count must run everything inline on the calling thread: no
  // thread is ever spawned for fewer than `grain` indices.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> foreign{0};
  parallel_for_index(
      32,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) foreign.fetch_add(1);
      },
      8, 32);
  EXPECT_EQ(foreign.load(), 0);
}

}  // namespace
}  // namespace minrej

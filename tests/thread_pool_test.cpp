// Tests for util/thread_pool failure paths: task exceptions must not kill
// workers, wait_idle must surface exactly the first failure, and the pool
// must stay usable afterwards (the fault-tolerant service pump leans on
// all three — a shard task that throws is retried on the same pool).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/thread_pool.h"

namespace minrej {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsATaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.wait_idle();
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
}

TEST(ThreadPool, AThrowingTaskDoesNotKillItsWorker) {
  // One worker: the throwing task and the follow-up run on the same
  // thread, so the follow-up only runs if the worker survived.
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([&ran] { ran = true; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, OnlyTheFirstExceptionIsReported) {
  // Serialize on one worker so "first" is well-defined.
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
}

TEST(ThreadPool, PoolIsReusableAfterAFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was cleared: the next round runs clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorSwallowsAPendingTaskError) {
  // A captured-but-never-rethrown task error must not terminate the
  // process when the pool is destroyed.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("never observed"); });
  // Destructor runs at scope exit; reaching the assertion below after the
  // scope is the test.
  SUCCEED();
}

TEST(ParallelForIndex, CoversTheRangeAndPropagatesExceptions) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for_index(64, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_THROW(parallel_for_index(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("body boom");
                   },
                   2),
               std::runtime_error);
}

}  // namespace
}  // namespace minrej

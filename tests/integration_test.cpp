// Integration tests: full pipelines across modules — generator → online
// algorithm → verifier → ratio against exact ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/baselines.h"
#include "core/bicriteria_setcover.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "lp/covering_lp.h"
#include "offline/admission_opt.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Admission pipelines, parameterized over topology/capacity/cost model.
// ---------------------------------------------------------------------------

struct AdmissionCase {
  const char* topology;
  std::int64_t capacity;
  bool unit_costs;
};

std::ostream& operator<<(std::ostream& os, const AdmissionCase& c) {
  return os << c.topology << "_c" << c.capacity
            << (c.unit_costs ? "_unit" : "_weighted");
}

class AdmissionPipelineTest : public ::testing::TestWithParam<AdmissionCase> {
 protected:
  AdmissionInstance make_instance(Rng& rng) const {
    const AdmissionCase& p = GetParam();
    const CostModel costs = p.unit_costs ? CostModel::unit_costs()
                                         : CostModel::spread(1.0, 12.0);
    if (std::string(p.topology) == "line") {
      return make_line_workload(8, p.capacity, 40, 1, 4, costs, rng);
    }
    if (std::string(p.topology) == "star") {
      return make_star_workload(8, p.capacity, 40, 3, costs, rng);
    }
    if (std::string(p.topology) == "tree") {
      return make_tree_workload(3, p.capacity, 40, costs, rng);
    }
    return make_grid_workload(3, 3, p.capacity, 40, costs, rng);
  }
};

TEST_P(AdmissionPipelineTest, RandomizedBeatsTrivialAndRespectsOpt) {
  Rng rng(17);
  const AdmissionInstance inst = make_instance(rng);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);

  RandomizedConfig cfg;
  cfg.unit_costs = GetParam().unit_costs;
  cfg.seed = 23;
  RandomizedAdmission alg(inst.graph(), cfg);
  const AdmissionRun run = run_admission(alg, inst);

  // Sanity: no algorithm can reject less than OPT...
  EXPECT_GE(run.rejected_cost, opt.rejected_cost - 1e-9);
  // ...and rejecting everything is always feasible, so it must not pay
  // more than the whole stream.
  EXPECT_LE(run.rejected_cost, inst.total_cost() + 1e-9);
}

TEST_P(AdmissionPipelineTest, FractionalLowerBoundsIntegralOpt) {
  Rng rng(19);
  const AdmissionInstance inst = make_instance(rng);
  const LpSolution lp = solve_admission_lp(inst);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(lp.optimal());
  ASSERT_TRUE(opt.exact);
  EXPECT_LE(lp.objective, opt.rejected_cost + 1e-7);
  if (GetParam().unit_costs) {
    // The paper's Q bound (Theorem 4 proof): OPT rejects at least the
    // maximum edge excess when all costs are 1.
    EXPECT_GE(opt.rejected_cost,
              static_cast<double>(inst.max_excess()) - 1e-9);
  }
}

TEST_P(AdmissionPipelineTest, BaselinesAreFeasibleEndToEnd) {
  Rng rng(29);
  const AdmissionInstance inst = make_instance(rng);
  GreedyNoPreempt greedy(inst.graph());
  PreemptCheapest cheap(inst.graph());
  PreemptRandom random(inst.graph(), 7);
  const AdmissionOpt opt = solve_admission_opt(inst);
  ASSERT_TRUE(opt.exact);
  for (OnlineAdmissionAlgorithm* alg :
       {static_cast<OnlineAdmissionAlgorithm*>(&greedy),
        static_cast<OnlineAdmissionAlgorithm*>(&cheap),
        static_cast<OnlineAdmissionAlgorithm*>(&random)}) {
    const AdmissionRun run = run_admission(*alg, inst);
    EXPECT_GE(run.rejected_cost, opt.rejected_cost - 1e-9) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AdmissionPipelineTest,
    ::testing::Values(AdmissionCase{"line", 1, true},
                      AdmissionCase{"line", 3, true},
                      AdmissionCase{"line", 3, false},
                      AdmissionCase{"star", 1, true},
                      AdmissionCase{"star", 2, false},
                      AdmissionCase{"tree", 2, true},
                      AdmissionCase{"tree", 2, false},
                      AdmissionCase{"grid", 1, true},
                      AdmissionCase{"grid", 2, false}),
    [](const ::testing::TestParamInfo<AdmissionCase>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

// ---------------------------------------------------------------------------
// Set cover pipelines: both online algorithms against exact OPT on the
// same instances, including the reduction consistency check of E9.
// ---------------------------------------------------------------------------

struct CoverCase {
  std::size_t n;
  std::size_t m;
  std::size_t repetitions;
};

class CoverPipelineTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(CoverPipelineTest, BothAlgorithmsProduceValidCovers) {
  const CoverCase& p = GetParam();
  Rng rng(101 + p.n);
  SetSystem sys = random_uniform_system(
      p.n, p.m, 3, std::max<std::size_t>(2, p.repetitions), rng);
  const auto arrivals =
      arrivals_each_k_times(p.n, p.repetitions, true, rng);
  CoverInstance inst(sys, arrivals);
  ASSERT_TRUE(inst.feasible());

  ReductionSetCover randomized(sys);
  run_setcover(randomized, arrivals);
  EXPECT_TRUE(covers_demands(inst, randomized.chosen()));

  BicriteriaSetCover bicriteria(sys, BicriteriaConfig{0.5});
  run_setcover(bicriteria, arrivals);
  EXPECT_TRUE(covers_demands(inst, bicriteria.chosen(), 0.5));
}

TEST_P(CoverPipelineTest, RatiosOrderedAgainstOpt) {
  const CoverCase& p = GetParam();
  Rng rng(211 + p.m);
  SetSystem sys = random_uniform_system(
      p.n, p.m, 3, std::max<std::size_t>(2, p.repetitions), rng);
  const auto arrivals =
      arrivals_each_k_times(p.n, p.repetitions, true, rng);
  CoverInstance inst(sys, arrivals);
  const MulticoverResult opt = solve_multicover_opt(inst);
  const MulticoverResult greedy = greedy_multicover(inst);
  ASSERT_TRUE(opt.exact);

  ReductionSetCover randomized(sys);
  const CoverRun run = run_setcover(randomized, arrivals);
  // OPT <= greedy <= anything reasonable; online cost >= OPT always.
  EXPECT_LE(opt.cost, greedy.cost + 1e-9);
  EXPECT_GE(run.cost, opt.cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoverPipelineTest,
                         ::testing::Values(CoverCase{8, 6, 1},
                                           CoverCase{10, 8, 2},
                                           CoverCase{12, 10, 3},
                                           CoverCase{16, 8, 2}),
                         [](const ::testing::TestParamInfo<CoverCase>& param_info) {
                           std::ostringstream os;
                           os << "n" << param_info.param.n << "_m" << param_info.param.m
                              << "_k" << param_info.param.repetitions;
                           return os.str();
                         });

// ---------------------------------------------------------------------------
// E9-style consistency: running OSCR natively vs hand-driving the reduced
// admission instance gives covers obeying the same law.
// ---------------------------------------------------------------------------

TEST(ReductionConsistency, NativeAndManualRunsAgreePerSeed) {
  Rng rng(401);
  SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  const auto arrivals = arrivals_each_k_times(10, 2, true, rng);

  RandomizedConfig cfg;
  cfg.seed = 99;
  ReductionSetCover native(sys, cfg);
  run_setcover(native, arrivals);

  // Manual: drive RandomizedAdmission over the reduced instance directly.
  ReductionInstance red = build_reduction(sys);
  RandomizedConfig cfg2;
  cfg2.seed = 99;
  cfg2.unit_costs = sys.unit_costs();
  RandomizedAdmission manual(red.graph, cfg2);
  for (const Request& r : red.phase1) manual.process(r);
  for (ElementId j : arrivals) manual.process(red.element_request(j));

  // Same seed, same stream: the rejected phase-1 sets must coincide.
  for (std::size_t s = 0; s < sys.set_count(); ++s) {
    const bool manual_chosen =
        manual.state(static_cast<RequestId>(s)) == RequestState::kRejected;
    EXPECT_EQ(native.chosen()[s], manual_chosen) << "set " << s;
  }
}

}  // namespace
}  // namespace minrej

// Tests for src/graph: graph construction, requests, generators.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/request.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

TEST(Graph, BuildAndQuery) {
  Graph g(3, {{0, 1, 2}, {1, 2, 5}});
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.capacity(0), 2);
  EXPECT_EQ(g.capacity(1), 5);
  EXPECT_EQ(g.max_capacity(), 5);
  EXPECT_EQ(g.min_capacity(), 2);
}

TEST(Graph, RejectsBadInput) {
  EXPECT_THROW(Graph(0, {}), InvalidArgument);
  EXPECT_THROW(Graph(2, {{0, 5, 1}}), InvalidArgument);  // endpoint range
  EXPECT_THROW(Graph(2, {{0, 1, 0}}), InvalidArgument);  // zero capacity
  EXPECT_THROW(Graph(2, {{0, 1, -3}}), InvalidArgument);
}

TEST(Graph, OutEdgesAdjacency) {
  Graph g(4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.out_edges(1).size(), 1u);
  EXPECT_EQ(g.out_edges(3).size(), 0u);
  // Every out-edge of v must actually start at v.
  for (VertexId v = 0; v < 4; ++v) {
    for (EdgeId e : g.out_edges(v)) EXPECT_EQ(g.edge(e).from, v);
  }
}

TEST(Graph, EdgelessGraphCapacities) {
  Graph g(1, {});
  EXPECT_EQ(g.max_capacity(), 0);
  EXPECT_EQ(g.min_capacity(), 0);
}

// ---------------------------------------------------------------------------
// Request / AdmissionInstance
// ---------------------------------------------------------------------------

TEST(Request, SortsAndDeduplicatesEdges) {
  Request r({3, 1, 2, 1}, 1.0);
  EXPECT_EQ(r.edges, (std::vector<EdgeId>{1, 2, 3}));
}

TEST(AdmissionInstance, ValidatesRequests) {
  Graph g = make_line_graph(3, 1);
  EXPECT_THROW(
      AdmissionInstance(g, {Request({}, 1.0)}), InvalidArgument);
  EXPECT_THROW(
      AdmissionInstance(g, {Request({0}, 0.0)}), InvalidArgument);
  EXPECT_THROW(
      AdmissionInstance(g, {Request({9}, 1.0)}), InvalidArgument);
}

TEST(AdmissionInstance, ComputesMaxExcess) {
  Graph g = make_line_graph(2, 1);
  std::vector<Request> requests;
  for (int i = 0; i < 4; ++i) requests.push_back(Request({0}, 1.0));
  requests.push_back(Request({1}, 1.0));
  AdmissionInstance inst(std::move(g), std::move(requests));
  EXPECT_EQ(inst.max_excess(), 3);  // edge 0: 4 requests, capacity 1
  EXPECT_EQ(inst.edge_load()[0], 4);
  EXPECT_EQ(inst.edge_load()[1], 1);
}

TEST(AdmissionInstance, MaxExcessClampedAtZero) {
  Graph g = make_line_graph(2, 10);
  AdmissionInstance inst(std::move(g), {Request({0}, 1.0)});
  EXPECT_EQ(inst.max_excess(), 0);
}

TEST(AdmissionInstance, TotalCostExcludesMustAccept) {
  Graph g = make_line_graph(2, 1);
  AdmissionInstance inst(std::move(g),
                         {Request({0}, 2.0), Request({1}, 3.0, true)});
  EXPECT_DOUBLE_EQ(inst.total_cost(), 2.0);
}

TEST(FeasibilityCheck, DetectsViolations) {
  Graph g = make_line_graph(2, 1);
  AdmissionInstance inst(std::move(g),
                         {Request({0}, 1.0), Request({0}, 1.0)});
  EXPECT_TRUE(is_feasible_acceptance(inst, {true, false}));
  EXPECT_TRUE(is_feasible_acceptance(inst, {false, false}));
  EXPECT_FALSE(is_feasible_acceptance(inst, {true, true}));
}

TEST(RejectedCost, SumsRejections) {
  Graph g = make_line_graph(2, 1);
  AdmissionInstance inst(std::move(g),
                         {Request({0}, 2.0), Request({1}, 3.5)});
  EXPECT_DOUBLE_EQ(rejected_cost(inst, {false, true}), 2.0);
  EXPECT_DOUBLE_EQ(rejected_cost(inst, {false, false}), 5.5);
  EXPECT_DOUBLE_EQ(rejected_cost(inst, {true, true}), 0.0);
}

// ---------------------------------------------------------------------------
// Generators: topologies
// ---------------------------------------------------------------------------

TEST(Generators, LineGraphShape) {
  Graph g = make_line_graph(5, 3);
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
  for (EdgeId e = 0; e < 5; ++e) {
    EXPECT_EQ(g.edge(e).from, e);
    EXPECT_EQ(g.edge(e).to, e + 1);
    EXPECT_EQ(g.capacity(e), 3);
  }
}

TEST(Generators, StarGraphShape) {
  Graph g = make_star_graph(4, 2);
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(g.edge(e).from, 0u);
}

TEST(Generators, BinaryTreeShape) {
  Graph g = make_binary_tree(3, 1);
  EXPECT_EQ(g.vertex_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  // Root has two children; leaves have none.
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.out_edges(14).size(), 0u);
}

TEST(Generators, GridGraphShape) {
  Graph g = make_grid_graph(3, 4, 2);
  EXPECT_EQ(g.vertex_count(), 12u);
  // Horizontal: 3 rows x 3, vertical: 2 x 4.
  EXPECT_EQ(g.edge_count(), 9u + 8u);
}

TEST(Generators, RandomGraphRespectsParameters) {
  Rng rng(5);
  Graph g = make_random_graph(10, 30, 2, 6, rng);
  EXPECT_EQ(g.vertex_count(), 10u);
  EXPECT_EQ(g.edge_count(), 30u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_GE(e.capacity, 2);
    EXPECT_LE(e.capacity, 6);
    EXPECT_TRUE(seen.emplace(e.from, e.to).second) << "duplicate edge";
  }
}

TEST(Generators, RandomGraphRejectsTooManyEdges) {
  Rng rng(1);
  EXPECT_THROW(make_random_graph(3, 7, 1, 1, rng), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Generators: request samplers
// ---------------------------------------------------------------------------

TEST(Generators, LineRequestIsContiguous) {
  Graph g = make_line_graph(10, 1);
  Request r = make_line_request(g, 3, 4, 2.0);
  EXPECT_EQ(r.edges, (std::vector<EdgeId>{3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(Generators, LineRequestRangeChecked) {
  Graph g = make_line_graph(5, 1);
  EXPECT_THROW(make_line_request(g, 3, 3, 1.0), InvalidArgument);
  EXPECT_THROW(make_line_request(g, 0, 0, 1.0), InvalidArgument);
}

TEST(Generators, RandomLineRequestsInBounds) {
  Graph g = make_line_graph(8, 1);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Request r = random_line_request(g, rng, 2, 5, 1.0);
    EXPECT_GE(r.edges.size(), 2u);
    EXPECT_LE(r.edges.size(), 5u);
    // Contiguity.
    for (std::size_t k = 1; k < r.edges.size(); ++k) {
      EXPECT_EQ(r.edges[k], r.edges[k - 1] + 1);
    }
  }
}

TEST(Generators, RandomWalkProducesSimplePath) {
  Rng rng(11);
  Graph g = make_grid_graph(4, 4, 1);
  for (int i = 0; i < 100; ++i) {
    Request r = random_walk_request(g, rng, 5, 1.0);
    EXPECT_GE(r.edges.size(), 1u);
    EXPECT_LE(r.edges.size(), 5u);
  }
}

TEST(Generators, TreePathGoesRootToLeaf) {
  Rng rng(13);
  Graph g = make_binary_tree(4, 1);
  for (int i = 0; i < 50; ++i) {
    Request r = random_tree_path_request(g, rng, 1.0);
    EXPECT_EQ(r.edges.size(), 4u);  // depth = path length
  }
}

TEST(Generators, GridPathIsMonotone) {
  Rng rng(17);
  Graph g = make_grid_graph(5, 6, 1);
  for (int i = 0; i < 100; ++i) {
    Request r = random_grid_path_request(g, 5, 6, rng, 1.0);
    EXPECT_GE(r.edges.size(), 1u);
    // Edges in a staircase path: endpoint of one edge is start of the next.
    // The Request type sorts edge ids, so recheck connectivity through the
    // underlying edges is not possible directly; just verify edge count
    // bound: at most (rows-1)+(cols-1).
    EXPECT_LE(r.edges.size(), 9u);
  }
}

}  // namespace
}  // namespace minrej

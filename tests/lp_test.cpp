// Tests for src/lp: the simplex solver and the covering-LP builders.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "lp/covering_lp.h"
#include "lp/simplex.h"
#include "setcover/generators.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Simplex on hand-checked LPs
// ---------------------------------------------------------------------------

TEST(Simplex, SimpleMinimization) {
  // min x + y  s.t.  x + y >= 2, x >= 0, y >= 0  ->  opt 2.
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 2.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, WeightedCoveringPrefersCheapVariable) {
  // min 3x + y  s.t.  x + y >= 5, y <= 2  ->  x = 3, y = 2, obj 11.
  LpProblem lp;
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(1.0, 2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 5.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 11.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min 2x + 3y  s.t.  x + y == 4, x <= 1  ->  x = 1, y = 3, obj 11.
  LpProblem lp;
  const auto x = lp.add_variable(2.0, 1.0);
  const auto y = lp.add_variable(3.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 11.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot hold.
  LpProblem lp;
  const auto x = lp.add_variable(1.0, 1.0);
  lp.add_constraint({{{x, 1.0}}, Relation::kGreaterEq, 2.0});
  const LpSolution sol = solve_simplex(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with x unbounded above.
  LpProblem lp;
  (void)lp.add_variable(-1.0);
  const LpSolution sol = solve_simplex(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -3  <=>  x >= 3;  min x -> 3.
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{{x, -1.0}}, Relation::kLessEq, -3.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
}

TEST(Simplex, ZeroIsOptimalWhenUnconstrained) {
  LpProblem lp;
  (void)lp.add_variable(5.0);
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(Simplex, RejectsUnknownVariableInConstraint) {
  LpProblem lp;
  (void)lp.add_variable(1.0);
  EXPECT_THROW(
      lp.add_constraint({{{7, 1.0}}, Relation::kGreaterEq, 1.0}),
      InvalidArgument);
}

TEST(Simplex, MultiConstraintTextbookCase) {
  // min -(3x + 5y)  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18
  // (classic maximization example; opt max = 36 at x=2, y=6).
  LpProblem lp;
  const auto x = lp.add_variable(-3.0);
  const auto y = lp.add_variable(-5.0);
  lp.add_constraint({{{x, 1.0}}, Relation::kLessEq, 4.0});
  lp.add_constraint({{{y, 2.0}}, Relation::kLessEq, 12.0});
  lp.add_constraint({{{x, 3.0}, {y, 2.0}}, Relation::kLessEq, 18.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-9);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic degenerate LP makes naive pivoting cycle forever;
  // Bland's rule must terminate at the optimum (-0.05).
  //   min -0.75a + 150b - 0.02c + 6d
  //   s.t. 0.25a - 60b - 0.04c + 9d <= 0
  //        0.5a - 90b - 0.02c + 3d <= 0
  //        c <= 1
  LpProblem lp;
  const auto a = lp.add_variable(-0.75);
  const auto b = lp.add_variable(150.0);
  const auto c = lp.add_variable(-0.02, 1.0);
  const auto d = lp.add_variable(6.0);
  lp.add_constraint({{{a, 0.25}, {b, -60.0}, {c, -0.04}, {d, 9.0}},
                     Relation::kLessEq, 0.0});
  lp.add_constraint({{{a, 0.5}, {b, -90.0}, {c, -0.02}, {d, 3.0}},
                     Relation::kLessEq, 0.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Simplex, RedundantConstraintsHandled) {
  // The same row twice plus an implied one; phase 1 must cope with the
  // redundancy.
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 3.0});
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 3.0});
  lp.add_constraint({{{x, 2.0}, {y, 2.0}}, Relation::kGreaterEq, 6.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
}

TEST(Simplex, EqualityOnlySystem) {
  // x + y == 2 and x − y == 0 pin x = y = 1 exactly.
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0});
  lp.add_constraint({{{x, 1.0}, {y, -1.0}}, Relation::kEqual, 0.0});
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[x], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Admission covering LP
// ---------------------------------------------------------------------------

TEST(AdmissionLp, SingleEdgeBurstIsExcess) {
  // 5 unit-cost requests on one edge of capacity 2: fractional OPT = 3.
  Graph g = make_single_edge_graph(2);
  std::vector<Request> requests(5, Request({0}, 1.0));
  AdmissionInstance inst(std::move(g), std::move(requests));
  const LpSolution sol = solve_admission_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(AdmissionLp, WeightedPrefersCheapRejections) {
  // Capacity 1, requests cost 1 and 10: OPT rejects the cheap one.
  Graph g = make_single_edge_graph(1);
  AdmissionInstance inst(std::move(g),
                         {Request({0}, 1.0), Request({0}, 10.0)});
  const LpSolution sol = solve_admission_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(AdmissionLp, NoOverloadMeansZero) {
  Graph g = make_line_graph(3, 5);
  AdmissionInstance inst(std::move(g), {Request({0, 1}, 2.0)});
  const LpSolution sol = solve_admission_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

TEST(AdmissionLp, MustAcceptPinsVariableToZero) {
  // Edge capacity 1; a must_accept and a normal request: LP must reject
  // the normal one entirely.
  Graph g = make_single_edge_graph(1);
  AdmissionInstance inst(
      std::move(g), {Request({0}, 5.0, true), Request({0}, 2.0)});
  const LpSolution sol = solve_admission_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-7);
}

TEST(AdmissionLp, SharedEdgeCouplesConstraints) {
  // Line of 2 edges, capacity 1 each.  Requests: {0,1} (long, cost 1),
  // {0} (cost 1), {1} (cost 1).  Each edge has excess 1; rejecting the
  // long request covers both: fractional OPT = 1.
  Graph g = make_line_graph(2, 1);
  AdmissionInstance inst(std::move(g), {Request({0, 1}, 1.0),
                                        Request({0}, 1.0),
                                        Request({1}, 1.0)});
  const LpSolution sol = solve_admission_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Multicover LP
// ---------------------------------------------------------------------------

TEST(MulticoverLp, MatchesHandComputedInstance) {
  // Elements {0,1}; sets {0},{1},{0,1} unit cost; demands 1 each.
  // Fractional OPT = 1 (take the big set).
  SetSystem sys(2, {{0}, {1}, {0, 1}});
  CoverInstance inst(sys, {0, 1});
  const LpSolution sol = solve_multicover_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(MulticoverLp, RepetitionRaisesDemand) {
  // Element 0 demanded twice; three unit sets contain it: OPT = 2.
  SetSystem sys(1, {{0}, {0}, {0}});
  CoverInstance inst(sys, {0, 0});
  const LpSolution sol = solve_multicover_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(MulticoverLp, RequiresFeasibleInstance) {
  SetSystem sys(1, {{0}});
  CoverInstance inst(sys, {0, 0});  // demand 2, degree 1
  EXPECT_FALSE(inst.feasible());
  EXPECT_THROW(solve_multicover_lp(inst), InvalidArgument);
}

TEST(MulticoverLp, WeightedCostsRespected) {
  // Sets: {0} cost 10, {0} cost 1 -> demand 1 is met by the cheap one.
  SetSystem sys(1, {{0}, {0}}, {10.0, 1.0});
  CoverInstance inst(sys, {0});
  const LpSolution sol = solve_multicover_lp(inst);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(MulticoverLp, LowerBoundsGreedyOnRandomInstances) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    SetSystem sys = random_uniform_system(12, 8, 4, 2, rng);
    CoverInstance inst(sys, arrivals_each_k_times(12, 2, true, rng));
    const LpSolution sol = solve_multicover_lp(inst);
    ASSERT_TRUE(sol.optimal());
    // LP relaxation never exceeds the total cost of all sets and is at
    // least max demand (each set covers an element at most once).
    EXPECT_LE(sol.objective, sys.total_cost() + 1e-6);
    EXPECT_GE(sol.objective, 2.0 - 1e-6);
  }
}

}  // namespace
}  // namespace minrej

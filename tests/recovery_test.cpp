// Tests for the fault-tolerance stack (DESIGN.md §9): the snapshot
// container (io/snapshot.h), algorithm save/load continuation, service
// snapshot → restore → continue bit-identity, reshard-on-restore, the
// deterministic fault injector, and the pump's retry/quarantine/shedding
// behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "io/snapshot.h"
#include "service/admission_service.h"
#include "sim/workloads.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

TEST(Snapshot, RoundTripsEveryFieldType) {
  SnapshotWriter w("test.kind", 3);
  w.tag("HEAD");
  w.u8(200);
  w.boolean(true);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(-0.1);  // not representable exactly — must come back bit-identical
  w.str("hello snapshot");
  w.vec(std::vector<std::uint32_t>{1, 2, 3});
  w.vec(std::vector<double>{0.5, -1.5});
  w.bit_vec(std::vector<bool>{true, false, true});
  const std::vector<std::uint8_t> inner{9, 8, 7};
  w.blob(inner);
  const std::vector<std::uint8_t> bytes = w.finish();

  SnapshotReader r(bytes, "test.kind");
  EXPECT_EQ(r.version(), 3u);
  r.expect_tag("HEAD");
  EXPECT_EQ(r.u8(), 200);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  const double d = r.f64();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d),
            std::bit_cast<std::uint64_t>(-0.1));
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.vec<std::uint32_t>(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.vec<double>(), (std::vector<double>{0.5, -1.5}));
  EXPECT_EQ(r.bit_vec(), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(r.blob(), inner);
  r.expect_end();
}

TEST(Snapshot, NanSurvivesBitExactly) {
  SnapshotWriter w("test.kind", 1);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  const auto bytes = w.finish();
  SnapshotReader r(bytes, "test.kind");
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(Snapshot, CorruptionTruncationAndMismatchAllThrow) {
  SnapshotWriter w("test.kind", 1);
  w.u64(77);
  w.str("payload");
  std::vector<std::uint8_t> good = w.finish();

  // Flipping any payload byte fails the checksum before any field parses.
  std::vector<std::uint8_t> corrupt = good;
  corrupt.back() ^= 0x01;
  EXPECT_THROW(SnapshotReader(corrupt, "test.kind"), InvalidArgument);

  // Truncation is detected by the header size check.
  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 3);
  EXPECT_THROW(SnapshotReader(truncated, "test.kind"), InvalidArgument);

  // Kind mismatch names both kinds; magic mismatch rejects foreign bytes.
  EXPECT_THROW(SnapshotReader(good, "other.kind"), InvalidArgument);
  std::vector<std::uint8_t> foreign = good;
  foreign[0] = 'X';
  EXPECT_THROW(SnapshotReader(foreign, "test.kind"), InvalidArgument);

  // A reader that under-consumes fails expect_end; one that over-consumes
  // fails the typed read.
  SnapshotReader under(good, "test.kind");
  under.u64();
  EXPECT_THROW(under.expect_end(), InvalidArgument);
  SnapshotReader over(good, "test.kind");
  over.u64();
  over.str();
  EXPECT_THROW(over.u64(), InvalidArgument);
}

TEST(Snapshot, CorruptedLengthPrefixCannotDriveAHugeAllocation) {
  SnapshotWriter w("test.kind", 1);
  w.u64(std::numeric_limits<std::uint64_t>::max());  // absurd length prefix
  const auto bytes = w.finish();
  SnapshotReader r(bytes, "test.kind");
  EXPECT_THROW(r.vec<std::uint64_t>(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Algorithm save/load continuation
// ---------------------------------------------------------------------------

AdmissionInstance make_mixed_instance(std::size_t requests,
                                      std::uint64_t seed) {
  Rng rng(seed);
  return make_power_law_workload(24, 3, requests, 3, 1.1,
                                 CostModel::spread(1.0, 16.0), rng);
}

TEST(AlgorithmSnapshot, RestoreThenContinueMatchesUninterrupted) {
  const AdmissionInstance inst = make_mixed_instance(400, 11);
  const ShardAlgorithmFactory factory = randomized_shard_factory(false, 21);

  // Uninterrupted run.
  std::unique_ptr<OnlineAdmissionAlgorithm> full = factory(inst.graph(), 0);
  std::vector<bool> full_decisions;
  for (const Request& r : inst.requests()) {
    full_decisions.push_back(full->process(r).accepted);
  }

  // Interrupted run: process half, snapshot, load into a fresh instance,
  // continue there.
  std::unique_ptr<OnlineAdmissionAlgorithm> first = factory(inst.graph(), 0);
  ASSERT_TRUE(first->snapshot_supported());
  std::vector<bool> split_decisions;
  for (std::size_t i = 0; i < 200; ++i) {
    split_decisions.push_back(
        first->process(inst.request(static_cast<RequestId>(i))).accepted);
  }
  SnapshotWriter w("algo", 1);
  first->save_snapshot(w);
  const auto blob = w.finish();
  first.reset();

  std::unique_ptr<OnlineAdmissionAlgorithm> second = factory(inst.graph(), 0);
  SnapshotReader r(blob, "algo");
  second->load_snapshot(r);
  r.expect_end();
  for (std::size_t i = 200; i < 400; ++i) {
    split_decisions.push_back(
        second->process(inst.request(static_cast<RequestId>(i))).accepted);
  }

  EXPECT_EQ(split_decisions, full_decisions);
  EXPECT_DOUBLE_EQ(second->rejected_cost(), full->rejected_cost());
  // The final states are bitwise identical, not just behaviourally close.
  SnapshotWriter wa("algo", 1), wb("algo", 1);
  full->save_snapshot(wa);
  second->save_snapshot(wb);
  EXPECT_EQ(wa.finish(), wb.finish());
}

TEST(AlgorithmSnapshot, LoadRejectsTheWrongAlgorithm) {
  const AdmissionInstance inst = make_mixed_instance(10, 12);
  GreedyNoPreempt greedy(inst.graph());
  SnapshotWriter w("algo", 1);
  greedy.save_snapshot(w);
  const auto blob = w.finish();
  PreemptCheapest other(inst.graph());
  SnapshotReader r(blob, "algo");
  EXPECT_THROW(other.load_snapshot(r), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Service snapshot → restore → continue
// ---------------------------------------------------------------------------

ShardAlgorithmFactory greedy_factory() {
  return [](const Graph& g, std::size_t) {
    return std::make_unique<GreedyNoPreempt>(g);
  };
}

void pump(AdmissionService& service, const AdmissionInstance& inst,
          std::size_t from, std::size_t to, std::size_t batch) {
  const std::vector<Request>& requests = inst.requests();
  for (std::size_t offset = from; offset < to; offset += batch) {
    const std::size_t count = std::min(batch, to - offset);
    service.submit_batch(
        std::span<const Request>(requests.data() + offset, count));
  }
}

TEST(ServiceSnapshot, RestoreThenContinueIsBitIdenticalAcrossTheCatalog) {
  // Every deterministic catalog scenario: split the pump at the midpoint,
  // snapshot, restore into a fresh service, continue, and require the
  // final service snapshot to equal the uninterrupted run's bitwise.
  ScenarioParams params;
  params.requests = 600;
  params.edges = 24;
  for (const ScenarioInfo& info : scenario_catalog()) {
    Rng rng(41);
    const AdmissionInstance inst = make_scenario(info.name, params, rng);
    const ShardAlgorithmFactory factory =
        randomized_shard_factory(all_unit_costs(inst), 5);
    ServiceConfig cfg;
    cfg.shards = 3;
    cfg.batch = 64;
    cfg.collect_latencies = false;  // timings are not part of the contract
    cfg.fault_tolerance.enabled = true;

    AdmissionService full(inst.graph(), factory, cfg);
    pump(full, inst, 0, 600, cfg.batch);

    AdmissionService first(inst.graph(), factory, cfg);
    pump(first, inst, 0, 300, cfg.batch);
    const std::vector<std::uint8_t> blob = first.snapshot();

    AdmissionService resumed(inst.graph(), factory, cfg);
    resumed.restore(blob);
    // The restore itself is lossless…
    EXPECT_EQ(resumed.snapshot(), blob) << info.name;
    pump(resumed, inst, 300, 600, cfg.batch);
    // …and the continuation walks the uninterrupted trajectory.
    EXPECT_EQ(resumed.snapshot(), full.snapshot()) << info.name;
    ASSERT_EQ(resumed.arrivals(), full.arrivals()) << info.name;
    for (std::size_t i = 0; i < full.arrivals(); ++i) {
      ASSERT_EQ(resumed.is_accepted(i), full.is_accepted(i))
          << info.name << " arrival " << i;
    }
    const ServiceStats a = resumed.aggregate();
    const ServiceStats b = full.aggregate();
    EXPECT_EQ(a.accepted, b.accepted) << info.name;
    EXPECT_DOUBLE_EQ(a.rejected_cost, b.rejected_cost) << info.name;
  }
}

TEST(ServiceSnapshot, RestoreValidatesTheGraphAndFreshness) {
  const AdmissionInstance inst = make_mixed_instance(100, 13);
  ServiceConfig cfg;
  cfg.fault_tolerance.enabled = true;
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  pump(service, inst, 0, 100, 32);
  const auto blob = service.snapshot();

  // A service that already pumped arrivals refuses to restore over them.
  EXPECT_THROW(service.restore(blob), InvalidArgument);

  // A graph with different capacities fails the fingerprint check.
  const std::vector<std::int64_t> caps(24, 4);
  const Graph other = Graph::star(caps);
  AdmissionService mismatched(other, greedy_factory(), cfg);
  EXPECT_THROW(mismatched.restore(blob), InvalidArgument);
}

TEST(ServiceSnapshot, ReshardOnRestoreMatchesAFreshRunAtTheNewWidth) {
  // Shard-disjoint traffic (single-edge requests): a K=2 snapshot restored
  // into a K=4 service must match a from-scratch K=4 run bit for bit.
  ScenarioParams params;
  params.requests = 500;
  params.edges = 32;
  Rng rng(42);
  const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
  const ShardAlgorithmFactory factory = randomized_shard_factory(true, 9);

  ServiceConfig narrow;
  narrow.shards = 2;
  narrow.batch = 64;
  narrow.collect_latencies = false;
  narrow.fault_tolerance.enabled = true;  // reshard needs the arrival log
  AdmissionService source(inst.graph(), factory, narrow);
  pump(source, inst, 0, 500, narrow.batch);
  const auto blob = source.snapshot();

  ServiceConfig wide = narrow;
  wide.shards = 4;
  AdmissionService resharded(inst.graph(), factory, wide);
  resharded.restore(blob);

  AdmissionService fresh(inst.graph(), factory, wide);
  pump(fresh, inst, 0, 500, wide.batch);

  EXPECT_EQ(resharded.snapshot(), fresh.snapshot());
  ASSERT_EQ(resharded.arrivals(), fresh.arrivals());
  for (std::size_t i = 0; i < fresh.arrivals(); ++i) {
    ASSERT_EQ(resharded.is_accepted(i), fresh.is_accepted(i)) << i;
  }
  // And the resharded service keeps serving.
  pump(resharded, inst, 0, 100, wide.batch);
  EXPECT_EQ(resharded.arrivals(), 600u);
}

TEST(ServiceSnapshot, ReshardWithoutALogIsRejected) {
  const AdmissionInstance inst = make_mixed_instance(80, 14);
  ServiceConfig narrow;
  narrow.shards = 2;  // fault tolerance off: no arrival log
  AdmissionService source(inst.graph(), greedy_factory(), narrow);
  pump(source, inst, 0, 80, 32);
  const auto blob = source.snapshot();
  ServiceConfig wide = narrow;
  wide.shards = 3;
  AdmissionService resharded(inst.graph(), greedy_factory(), wide);
  EXPECT_THROW(resharded.restore(blob), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

TEST(FaultInjectorOracle, IsDeterministicRetryAwareAndRateBounded) {
  FaultPlan plan;
  plan.exception_rate = 0.25;
  plan.seed = 77;
  const FaultInjector a(plan), b(plan);
  std::size_t fired = 0, recovered = 0;
  for (std::size_t arrival = 0; arrival < 2000; ++arrival) {
    const FaultAction first = a.probe(0, arrival, 0);
    EXPECT_EQ(first, b.probe(0, arrival, 0)) << arrival;  // deterministic
    if (first == FaultAction::kException) {
      ++fired;
      // Retry-aware: attempt 1 re-rolls instead of repeating attempt 0.
      if (a.probe(0, arrival, 1) == FaultAction::kNone) ++recovered;
    }
  }
  EXPECT_GT(fired, 2000u / 4 / 2);   // ~500 expected
  EXPECT_LT(fired, 2000u / 4 * 2);
  EXPECT_GT(recovered, fired / 2);   // ~75% of retries clear
}

TEST(FaultInjectorOracle, ScriptedFaultsPinExactCoordinates) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.shard = 1;
  fault.arrival = 5;
  fault.attempts = 2;
  fault.action = FaultAction::kDelay;
  plan.scripted.push_back(fault);
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.probe(1, 5, 0), FaultAction::kDelay);
  EXPECT_EQ(inj.probe(1, 5, 1), FaultAction::kDelay);
  EXPECT_EQ(inj.probe(1, 5, 2), FaultAction::kNone);  // attempts exhausted
  EXPECT_EQ(inj.probe(0, 5, 0), FaultAction::kNone);  // other shard
  EXPECT_EQ(inj.probe(1, 6, 0), FaultAction::kNone);  // other arrival
}

TEST(FaultInjectorOracle, RejectsNonsensePlans) {
  FaultPlan bad_rate;
  bad_rate.exception_rate = 1.5;
  EXPECT_THROW(FaultInjector{bad_rate}, InvalidArgument);
  FaultPlan bad_script;
  bad_script.scripted.push_back(ScriptedFault{0, 0, 0, FaultAction::kNone});
  EXPECT_THROW(FaultInjector{bad_script}, InvalidArgument);
}

// ---------------------------------------------------------------------------
// Fault-tolerant pump: retries, quarantine, shedding, malformed input
// ---------------------------------------------------------------------------

TEST(FaultTolerantPump, InjectedFaultsAreInvisibleAfterRetries) {
  // A fault-injected run whose retries recover everything must make the
  // same decisions as a fault-free control run.
  const AdmissionInstance inst = make_mixed_instance(1500, 15);
  const ShardAlgorithmFactory factory = randomized_shard_factory(false, 33);
  ServiceConfig plain;
  plain.shards = 2;
  plain.batch = 64;
  plain.collect_latencies = false;
  AdmissionService control(inst.graph(), factory, plain);
  pump(control, inst, 0, 1500, plain.batch);

  ServiceConfig faulty = plain;
  faulty.fault_tolerance.enabled = true;
  faulty.fault_tolerance.retry.max_retries = 8;
  faulty.fault_tolerance.retry.backoff_base_s = 0.0;  // fast test
  FaultPlan fault_plan;
  fault_plan.exception_rate = 0.01;
  fault_plan.seed = 99;
  faulty.fault_tolerance.injector =
      std::make_shared<FaultInjector>(fault_plan);
  AdmissionService injected(inst.graph(), factory, faulty);
  pump(injected, inst, 0, 1500, faulty.batch);

  const ServiceStats stats = injected.aggregate();
  EXPECT_GT(stats.task_failures, 0u);  // faults actually fired
  EXPECT_EQ(stats.retries, stats.task_failures);  // …and all recovered
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.quarantined_shards, 0u);
  ASSERT_EQ(injected.arrivals(), control.arrivals());
  for (std::size_t i = 0; i < control.arrivals(); ++i) {
    ASSERT_EQ(injected.is_accepted(i), control.is_accepted(i)) << i;
  }
  EXPECT_DOUBLE_EQ(stats.rejected_cost, control.aggregate().rejected_cost);
}

TEST(FaultTolerantPump, ExhaustedRetriesQuarantineAndRestoreShardHeals) {
  const AdmissionInstance inst = make_mixed_instance(200, 16);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.batch = 50;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.retry.max_retries = 2;
  cfg.fault_tolerance.retry.backoff_base_s = 0.0;
  FaultPlan plan;
  ScriptedFault fault;
  fault.shard = 0;
  fault.arrival = 60;       // second batch trips the fault…
  fault.attempts = 100;     // …on every attempt: quarantine is forced
  plan.scripted.push_back(fault);
  cfg.fault_tolerance.injector = std::make_shared<FaultInjector>(plan);
  AdmissionService service(inst.graph(), greedy_factory(), cfg);

  pump(service, inst, 0, 50, cfg.batch);  // first batch: clean
  EXPECT_FALSE(service.shard_quarantined(0));
  EXPECT_EQ(service.aggregate().accepted, service.shard_stats(0).accepted);

  pump(service, inst, 50, 100, cfg.batch);  // second batch: quarantined
  EXPECT_TRUE(service.shard_quarantined(0));
  ShardStats stats = service.shard_stats(0);
  EXPECT_EQ(stats.task_failures, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.shed, 50u);          // the whole failed batch was shed
  EXPECT_EQ(stats.arrivals, 50u);      // committed state: first batch only
  for (std::size_t i = 50; i < 100; ++i) {
    EXPECT_EQ(service.decision_mode(i), DecisionMode::kQuarantineShed) << i;
    EXPECT_THROW((void)service.is_accepted(i), InvalidArgument) << i;
  }

  pump(service, inst, 100, 150, cfg.batch);  // quarantine sheds at routing
  EXPECT_EQ(service.shard_stats(0).shed, 100u);
  EXPECT_EQ(service.shard_stats(0).arrivals, 50u);

  service.restore_shard(0);  // heal: rebuilt from the committed log
  EXPECT_FALSE(service.shard_quarantined(0));
  pump(service, inst, 150, 200, cfg.batch);
  stats = service.shard_stats(0);
  EXPECT_EQ(stats.arrivals, 100u);  // traffic flows again
  EXPECT_EQ(stats.shed, 100u);      // and no new drops
  EXPECT_EQ(service.decision_mode(160), DecisionMode::kEngine);
}

TEST(FaultTolerantPump, QueueLimitShedsDeterministically) {
  const AdmissionInstance inst = make_mixed_instance(100, 17);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.batch = 100;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.overload.max_shard_queue = 30;
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  pump(service, inst, 0, 100, cfg.batch);
  // One shard, one batch of 100 against a queue limit of 30: exactly the
  // first 30 are processed, the rest are shed with a recorded mode.
  EXPECT_EQ(service.shard_stats(0).arrivals, 30u);
  EXPECT_EQ(service.shard_stats(0).shed, 70u);
  EXPECT_EQ(service.decision_mode(10), DecisionMode::kEngine);
  EXPECT_EQ(service.decision_mode(40), DecisionMode::kShed);
  EXPECT_THROW((void)service.is_accepted(40), InvalidArgument);
}

TEST(FaultTolerantPump, MalformedAndCorruptedArrivalsNeverReachTheEngine) {
  const std::vector<std::int64_t> caps(8, 4);
  const Graph graph = Graph::star(caps);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.fault_tolerance.enabled = true;
  AdmissionService service(graph, greedy_factory(), cfg);

  // Built by member assignment: the Request(vector, cost) constructor
  // normalizes (sorts + dedups), and the whole point is to deliver bytes
  // that violate the contract, as a corrupting transport would.
  const auto raw = [](std::vector<EdgeId> edges, double cost) {
    Request r;
    r.edges = std::move(edges);
    r.cost = cost;
    return r;
  };
  std::vector<Request> batch;
  batch.push_back(raw({0}, 1.0));     // fine
  batch.push_back(raw({}, 1.0));      // no edges
  batch.push_back(raw({1}, -3.0));    // negative cost
  batch.push_back(raw({2, 1}, 1.0));  // unsorted
  batch.push_back(raw({3, 3}, 1.0));  // duplicate edge
  batch.push_back(raw({99}, 1.0));    // out of range
  batch.push_back(raw({4}, std::numeric_limits<double>::quiet_NaN()));
  const std::vector<bool> accepted =
      service.submit_batch(std::span<const Request>(batch));

  EXPECT_TRUE(accepted[0]);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_FALSE(accepted[i]) << i;
    EXPECT_EQ(service.decision_mode(i), DecisionMode::kMalformed) << i;
  }
  EXPECT_EQ(service.aggregate().malformed, batch.size() - 1);
  // aggregate().arrivals counts algorithm-processed arrivals only;
  // arrivals() counts everything routed (drops carry no cost accounting —
  // feedback clients re-arrive them).
  EXPECT_EQ(service.aggregate().arrivals, 1u);
  EXPECT_EQ(service.arrivals(), batch.size());
  EXPECT_EQ(service.shard_stats(0).arrivals +
                service.shard_stats(1).arrivals +
                service.shard_stats(2).arrivals +
                service.shard_stats(3).arrivals,
            1u);

  // corrupt_rate 1: the injector flags every arrival, well-formed or not.
  ServiceConfig corrupting = cfg;
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  corrupting.fault_tolerance.injector = std::make_shared<FaultInjector>(plan);
  AdmissionService corrupted(graph, greedy_factory(), corrupting);
  const std::vector<Request> clean{Request{{0}, 1.0, false},
                                   Request{{1}, 1.0, false}};
  corrupted.submit_batch(std::span<const Request>(clean));
  EXPECT_EQ(corrupted.aggregate().malformed, 2u);
}

TEST(FaultTolerantPump, DelayFaultsTripTheBatchDeadlineIntoDegradedMode) {
  const AdmissionInstance inst = make_mixed_instance(60, 18);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.batch = 30;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.overload.shard_deadline_s = 1e-4;
  FaultPlan plan;
  plan.delay_rate = 1.0;       // every arrival sleeps…
  plan.delay_seconds = 5e-4;   // …past the whole deadline
  cfg.fault_tolerance.injector = std::make_shared<FaultInjector>(plan);
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  pump(service, inst, 0, 30, cfg.batch);
  // The first arrival's delay exceeds the batch deadline, so the tail of
  // the batch is handled by the cheap threshold rule (kShed mode with a
  // live placement — processed, not dropped).
  EXPECT_EQ(service.shard_stats(0).arrivals, 30u);
  EXPECT_GT(service.shard_stats(0).injected_delays, 0u);
  std::size_t degraded_decisions = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (service.decision_mode(i) == DecisionMode::kShed) {
      ++degraded_decisions;
      EXPECT_NE(service.placement(i).second, kInvalidId) << i;
      (void)service.is_accepted(i);  // answers instead of throwing
    }
  }
  EXPECT_GT(degraded_decisions, 0u);
}

TEST(FaultTolerantPump, DisabledFaultToleranceKeepsTheFastPath) {
  // ShardStats surface zeros for the fault-tolerance counters when the
  // layer is off, and the arrival budget is still reported (satellite:
  // augmentation_budget_exceeded is visible per shard either way).
  const AdmissionInstance inst = make_mixed_instance(120, 19);
  ServiceConfig cfg;
  cfg.shards = 2;
  AdmissionService service(inst.graph(), greedy_factory(), cfg);
  pump(service, inst, 0, 120, 60);
  for (std::size_t s = 0; s < 2; ++s) {
    const ShardStats stats = service.shard_stats(s);
    EXPECT_EQ(stats.task_failures, 0u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_FALSE(stats.quarantined);
    EXPECT_GT(stats.augmentation_budget, 0u);
    EXPECT_FALSE(stats.augmentation_budget_exceeded);
  }
  EXPECT_EQ(service.aggregate().budget_exceeded_shards, 0u);
}

TEST(FaultTolerantPump, KillAndHealUnderALiveMultiWorkerPump) {
  // DESIGN.md §11.5: the fault-tolerant pump composes with the concurrent
  // ring workers.  One shard is killed mid-run (scripted fault on every
  // attempt → quarantine) while recoverable faults on three sibling shards
  // land in the same batch, so their committed-log rebuilds run as
  // parallel lane jobs.  restore_shard then heals the dead shard under
  // the same live workers, and the whole run must be bit-identical to the
  // sequential kTasks FT pump under the identical fault plan.
  const AdmissionInstance inst = make_mixed_instance(400, 18);
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.threads = 4;
  cfg.batch = 50;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.retry.max_retries = 1;
  cfg.fault_tolerance.retry.backoff_base_s = 0.0;
  const ShardAlgorithmFactory factory = randomized_shard_factory(false, 44);

  // Scripted faults are keyed by (shard, global arrival); discover the
  // routing with a clean control run so the coordinates actually hit.
  const auto owned_arrival_in = [&](std::size_t shard, std::size_t lo,
                                    std::size_t hi) {
    ServiceConfig probe_cfg = cfg;
    probe_cfg.fault_tolerance.enabled = false;
    AdmissionService control(inst.graph(), factory, probe_cfg);
    pump(control, inst, 0, 400, probe_cfg.batch);
    for (std::size_t i = lo; i < hi; ++i) {
      if (control.placement(i).first == shard) return i;
    }
    ADD_FAILURE() << "no arrival for shard " << shard << " in [" << lo
                  << ", " << hi << ")";
    return lo;
  };
  FaultPlan plan;
  ScriptedFault kill;  // shard 1, mid-run: fails every attempt
  kill.shard = 1;
  kill.arrival = owned_arrival_in(1, 200, 300);
  kill.attempts = 100;
  kill.action = FaultAction::kException;
  plan.scripted.push_back(kill);
  for (const std::size_t s : {0u, 2u, 3u}) {
    ScriptedFault blip;  // first batch on every sibling shard: one
    blip.shard = s;      // dispatch rebuilds all three in parallel
    blip.arrival = owned_arrival_in(s, 0, 50);
    blip.attempts = 1;   // the retry clears
    blip.action = FaultAction::kException;
    plan.scripted.push_back(blip);
  }
  cfg.fault_tolerance.injector = std::make_shared<FaultInjector>(plan);

  const auto run = [&](PumpMode mode) {
    ServiceConfig c = cfg;
    c.pump = mode;
    auto service =
        std::make_unique<AdmissionService>(inst.graph(), factory, c);
    pump(*service, inst, 0, 300, c.batch);
    // The sibling blips recovered; the kill exhausted its retries.
    EXPECT_FALSE(service->shard_quarantined(0));
    EXPECT_TRUE(service->shard_quarantined(1));
    EXPECT_EQ(service->shard_stats(1).task_failures, 2u);  // attempt + retry
    EXPECT_EQ(service->shard_stats(1).retries, 1u);
    for (const std::size_t s : {0u, 2u, 3u}) {
      EXPECT_EQ(service->shard_stats(s).task_failures, 1u) << s;
      EXPECT_EQ(service->shard_stats(s).retries, 1u) << s;
    }
    service->restore_shard(1);  // heal: rebuild from the committed log
    EXPECT_FALSE(service->shard_quarantined(1));
    pump(*service, inst, 300, 400, c.batch);
    EXPECT_GT(service->shard_stats(1).shed, 0u);  // the dead window shed
    return service;
  };
  const auto rings = run(PumpMode::kRings);
  const auto tasks = run(PumpMode::kTasks);

  ASSERT_EQ(rings->arrivals(), tasks->arrivals());
  for (std::size_t i = 0; i < rings->arrivals(); ++i) {
    ASSERT_EQ(rings->decision_mode(i), tasks->decision_mode(i)) << i;
    if (rings->decision_mode(i) == DecisionMode::kEngine) {
      ASSERT_EQ(rings->is_accepted(i), tasks->is_accepted(i)) << i;
    }
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    const ShardStats a = rings->shard_stats(s);
    const ShardStats b = tasks->shard_stats(s);
    EXPECT_EQ(a.arrivals, b.arrivals) << s;
    EXPECT_EQ(a.shed, b.shed) << s;
    EXPECT_EQ(a.rejected, b.rejected) << s;
    EXPECT_DOUBLE_EQ(a.rejected_cost, b.rejected_cost) << s;
  }
  EXPECT_DOUBLE_EQ(rings->aggregate().rejected_cost,
                   tasks->aggregate().rejected_cost);
}

}  // namespace
}  // namespace minrej

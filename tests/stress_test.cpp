// Randomized stress tests: larger batteries cross-checking the solvers
// against each other and against structural ground truth, parameterized
// over seeds (TEST_P).
#include <gtest/gtest.h>

#include <cmath>

#include "core/fractional_admission.h"
#include "core/online_setcover.h"
#include "core/randomized_admission.h"
#include "graph/generators.h"
#include "lp/covering_lp.h"
#include "offline/admission_opt.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace minrej {
namespace {

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// LP solver: solutions must be primal-feasible and dominate every integral
// feasible point we can construct cheaply.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, SimplexSolutionsAreFeasible) {
  Rng rng(GetParam() + 100);
  AdmissionInstance inst = make_star_workload(
      6, 2, 24, 3, CostModel::spread(1.0, 8.0), rng);
  const LpProblem lp = build_admission_lp(inst);
  const LpSolution sol = solve_simplex(lp);
  ASSERT_TRUE(sol.optimal());
  // Variable bounds.
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    EXPECT_GE(sol.x[v], -1e-7);
    EXPECT_LE(sol.x[v], lp.uppers()[v] + 1e-7);
  }
  // Constraint rows.
  for (const LinearConstraint& row : lp.constraints()) {
    double lhs = 0.0;
    for (const auto& [var, coef] : row.terms) lhs += coef * sol.x[var];
    switch (row.relation) {
      case Relation::kGreaterEq:
        EXPECT_GE(lhs, row.rhs - 1e-6);
        break;
      case Relation::kLessEq:
        EXPECT_LE(lhs, row.rhs + 1e-6);
        break;
      case Relation::kEqual:
        EXPECT_NEAR(lhs, row.rhs, 1e-6);
        break;
    }
  }
}

TEST_P(StressSeeds, LpNeverExceedsAnyFeasibleIntegralSolution) {
  Rng rng(GetParam() + 200);
  AdmissionInstance inst = make_line_workload(
      5, 2, 16, 1, 3, CostModel::spread(1.0, 6.0), rng);
  const LpSolution lp = solve_admission_lp(inst);
  ASSERT_TRUE(lp.optimal());
  // Greedy and exact integral solutions are feasible points of the LP.
  const AdmissionOpt greedy = greedy_admission_rejection(inst);
  const AdmissionOpt opt = solve_admission_opt(inst);
  EXPECT_LE(lp.objective, greedy.rejected_cost + 1e-7);
  EXPECT_LE(lp.objective, opt.rejected_cost + 1e-7);
}

// ---------------------------------------------------------------------------
// Offline solvers under weighted multicover (brute-force cross-check).
// ---------------------------------------------------------------------------

double brute_force_weighted_multicover(const CoverInstance& inst) {
  const std::size_t m = inst.system().set_count();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    std::vector<bool> chosen(m);
    for (std::size_t s = 0; s < m; ++s) chosen[s] = (mask >> s) & 1;
    if (!covers_demands(inst, chosen)) continue;
    best = std::min(best, chosen_cost(inst.system(), chosen));
  }
  return best;
}

TEST_P(StressSeeds, WeightedMulticoverMatchesBruteForce) {
  Rng rng(GetParam() + 300);
  SetSystem sys = with_random_costs(
      random_uniform_system(8, 9, 3, 2, rng), 1.0, 7.0, rng);
  CoverInstance inst(sys, arrivals_each_k_times(8, 2, true, rng));
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  EXPECT_NEAR(opt.cost, brute_force_weighted_multicover(inst), 1e-9);
}

// ---------------------------------------------------------------------------
// Fractional engine under mixed multi-edge requests.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, EngineInvariantAcrossTopologies) {
  Rng rng(GetParam() + 400);
  Graph g = make_hypercube_graph(3, 2);
  FractionalEngine engine(g, 0.2);
  for (int i = 0; i < 50; ++i) {
    const Request r = random_walk_request(g, rng, 4, 1.0);
    engine.arrive(r.edges, 1.0, 1.0);
    for (EdgeId e : r.edges) {
      EXPECT_TRUE(engine.constraint_satisfied(e));
    }
  }
  // Deltas are capped: no reported weight exceeds 1 in the objective.
  for (RequestId i = 0; i < engine.request_count(); ++i) {
    if (engine.fully_rejected(i)) {
      EXPECT_GE(engine.weight(i), 1.0 - 1e-12);
    }
  }
}

TEST_P(StressSeeds, RestoreEdgesIsIdempotent) {
  Rng rng(GetParam() + 500);
  Graph g = make_star_graph(4, 1);
  FractionalEngine engine(g, 0.25);
  std::vector<EdgeId> all_edges{0, 1, 2, 3};
  for (int i = 0; i < 12; ++i) {
    const std::size_t spoke = rng.index(4);
    engine.arrive({static_cast<EdgeId>(spoke)}, 1.0, 1.0);
  }
  const double cost_before = engine.fractional_cost();
  const auto& deltas = engine.restore_edges(all_edges);
  // All constraints were already satisfied by the per-arrival loops, so a
  // second restoration must be a no-op.
  EXPECT_TRUE(deltas.empty());
  EXPECT_DOUBLE_EQ(engine.fractional_cost(), cost_before);
}

// ---------------------------------------------------------------------------
// Randomized admission: the §3 edge-request cap.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, EdgeRequestCapRejectsEverythingBeyondIt) {
  // m = 1, c = 1 gives cap 4mc² = 4: from the fourth request on, the edge
  // is "capped" and everything on it is rejected.
  Graph g = make_single_edge_graph(1);
  RandomizedConfig cfg;
  cfg.unit_costs = true;
  cfg.seed = GetParam();
  RandomizedAdmission alg(g, cfg);
  for (int i = 0; i < 8; ++i) alg.process(Request({0}, 1.0));
  for (RequestId i = 3; i < 8; ++i) {
    EXPECT_EQ(alg.state(i), RequestState::kRejected) << "request " << i;
  }
}

// ---------------------------------------------------------------------------
// Parallel sweep determinism: results must not depend on thread count.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, ParallelTrialsIndependentOfThreadCount) {
  Rng rng(GetParam() + 600);
  AdmissionInstance inst = make_line_workload(
      8, 2, 40, 1, 4, CostModel::unit_costs(), rng);
  auto body = [&](std::size_t s) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.seed = s;
    RandomizedAdmission alg(inst.graph(), cfg);
    return run_admission(alg, inst).rejected_cost;
  };
  const auto serial = parallel_trials(16, body, 1);
  const auto parallel = parallel_trials(16, body, 8);
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Adaptive adversary termination and feasibility.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, AdaptiveAdversaryStopsAtDegreeLimits) {
  SetSystem sys(2, {{0}, {0}, {1}});  // degrees: 2 and 1
  RandomizedConfig cfg;
  cfg.seed = GetParam();
  ReductionSetCover alg(sys, cfg);
  const auto played = run_adaptive_adversary(alg, 100);
  // At most degree(0) + degree(1) = 3 arrivals are possible.
  EXPECT_LE(played.size(), 3u);
  CoverInstance inst(sys, played);
  EXPECT_TRUE(inst.feasible());
}

// ---------------------------------------------------------------------------
// Weighted fractional wrapper on bursty weighted streams: cost sandwich.
// ---------------------------------------------------------------------------

TEST_P(StressSeeds, FractionalCostSandwich) {
  Rng rng(GetParam() + 700);
  AdmissionInstance inst = make_single_edge_burst(
      3, 24, CostModel::spread(1.0, 32.0), rng);
  const LpSolution lp = solve_admission_lp(inst);
  ASSERT_TRUE(lp.optimal());
  FractionalAdmission alg(inst.graph());
  for (const Request& r : inst.requests()) alg.on_request(r);
  EXPECT_GE(alg.fractional_cost(), 0.98 * lp.objective);
  const double bound = 64.0 * std::max(1.0, std::log2(2.0 * 3.0));
  EXPECT_LE(alg.fractional_cost(), bound * std::max(lp.objective, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace minrej

// Tests for the §4 reduction and the randomized online set cover built on
// top of it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fractional_setcover.h"
#include "core/online_setcover.h"
#include "core/reduction.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/stats.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// Reduction structure
// ---------------------------------------------------------------------------

TEST(Reduction, EdgeCapacitiesEqualDegrees) {
  SetSystem sys(3, {{0, 1}, {1, 2}, {0, 1, 2}});
  const ReductionInstance red = build_reduction(sys);
  EXPECT_EQ(red.graph.edge_count(), 3u);
  EXPECT_EQ(red.graph.capacity(0), 2);  // element 0 in sets {0, 2}
  EXPECT_EQ(red.graph.capacity(1), 3);
  EXPECT_EQ(red.graph.capacity(2), 2);
}

TEST(Reduction, PhaseOneMirrorsSets) {
  SetSystem sys(3, {{0, 2}, {1}}, {4.0, 7.0});
  const ReductionInstance red = build_reduction(sys);
  ASSERT_EQ(red.phase1.size(), 2u);
  EXPECT_EQ(red.phase1[0].edges, (std::vector<EdgeId>{0, 2}));
  EXPECT_DOUBLE_EQ(red.phase1[0].cost, 4.0);
  EXPECT_EQ(red.phase1[1].edges, (std::vector<EdgeId>{1}));
  EXPECT_DOUBLE_EQ(red.phase1[1].cost, 7.0);
  EXPECT_FALSE(red.phase1[0].must_accept);
}

TEST(Reduction, ElementRequestsAreMustAcceptSingletons) {
  SetSystem sys(2, {{0, 1}});
  const ReductionInstance red = build_reduction(sys);
  const Request r = red.element_request(1);
  EXPECT_EQ(r.edges, (std::vector<EdgeId>{1}));
  EXPECT_TRUE(r.must_accept);
}

TEST(Reduction, RejectsZeroDegreeElements) {
  // Element 2 is in no set.
  SetSystem sys(3, {{0}, {1}});
  EXPECT_THROW(build_reduction(sys), InvalidArgument);
}

TEST(Reduction, ReducedInstanceCountsRequests) {
  Rng rng(1);
  SetSystem sys = random_uniform_system(6, 5, 3, 2, rng);
  const auto arrivals = arrivals_each_once(6, rng);
  const AdmissionInstance inst = reduced_admission_instance(sys, arrivals);
  EXPECT_EQ(inst.request_count(), 5u + 6u);
}

// ---------------------------------------------------------------------------
// ReductionSetCover behaviour
// ---------------------------------------------------------------------------

TEST(ReductionSetCover, CoversEveryArrival) {
  Rng rng(2);
  SetSystem sys = random_uniform_system(12, 10, 4, 3, rng);
  RandomizedConfig cfg;
  cfg.seed = 11;
  ReductionSetCover alg(sys, cfg);
  const auto arrivals = arrivals_each_k_times(12, 2, true, rng);
  // The base class asserts covered(j) >= demand(j) after every arrival.
  run_setcover(alg, arrivals);
  for (ElementId j = 0; j < 12; ++j) {
    EXPECT_GE(alg.covered(j), alg.demand(j));
  }
}

TEST(ReductionSetCover, ChosenSetsFormValidMulticover) {
  Rng rng(3);
  SetSystem sys = random_uniform_system(10, 8, 3, 3, rng);
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  ReductionSetCover alg(sys);
  run_setcover(alg, arrivals);
  CoverInstance inst(sys, arrivals);
  EXPECT_TRUE(covers_demands(inst, alg.chosen()));
}

TEST(ReductionSetCover, RepetitionsUseDistinctSets) {
  // Element 0 in exactly 3 sets, demanded 3 times: all 3 must be chosen.
  SetSystem sys(2, {{0, 1}, {0}, {0, 1}});
  ReductionSetCover alg(sys);
  alg.on_element(0);
  alg.on_element(0);
  alg.on_element(0);
  EXPECT_EQ(alg.covered(0), 3);
  EXPECT_EQ(alg.chosen_count(), 3u);
}

TEST(ReductionSetCover, DeterministicPerSeed) {
  Rng rng(4);
  SetSystem sys = random_uniform_system(10, 8, 3, 2, rng);
  const auto arrivals = arrivals_each_k_times(10, 2, true, rng);
  RandomizedConfig cfg;
  cfg.seed = 77;
  ReductionSetCover a(sys, cfg), b(sys, cfg);
  const CoverRun ra = run_setcover(a, arrivals);
  const CoverRun rb = run_setcover(b, arrivals);
  EXPECT_DOUBLE_EQ(ra.cost, rb.cost);
  EXPECT_EQ(a.chosen(), b.chosen());
}

TEST(ReductionSetCover, InfeasibleDemandThrows) {
  SetSystem sys(1, {{0}});
  ReductionSetCover alg(sys);
  alg.on_element(0);
  EXPECT_THROW(alg.on_element(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// FractionalSetCover — the fractional solution underneath the rounding
// ---------------------------------------------------------------------------

TEST(FractionalSetCover, CoverIdentity) {
  // After every arrival, Σ_{S∋j} min(x_S,1) >= demand_j — the §2 covering
  // invariant translated through the reduction (see the header).
  Rng rng(31);
  SetSystem sys = random_uniform_system(10, 8, 3, 3, rng);
  FractionalSetCover frac(sys);
  const auto arrivals = arrivals_each_k_times(10, 3, true, rng);
  for (ElementId j : arrivals) {
    frac.on_element(j);
    EXPECT_GE(frac.coverage(j),
              static_cast<double>(frac.demand(j)) - 1e-6);
  }
}

TEST(FractionalSetCover, FractionsMonotoneAndBounded) {
  Rng rng(32);
  SetSystem sys = random_uniform_system(8, 6, 3, 2, rng);
  FractionalSetCover frac(sys);
  std::vector<double> last(6, 0.0);
  for (ElementId j : arrivals_each_k_times(8, 2, true, rng)) {
    frac.on_element(j);
    for (SetId s = 0; s < 6; ++s) {
      EXPECT_GE(frac.fraction(s), last[s] - 1e-12);
      EXPECT_LE(frac.fraction(s), 1.0 + 1e-12);
      last[s] = frac.fraction(s);
    }
  }
}

TEST(FractionalSetCover, CostLowerBoundsRandomizedRounding) {
  // The rounding can only pay more than the fractional solution it
  // rounds (in expectation; across seeds the mean dominates).
  Rng rng(33);
  SetSystem sys = random_uniform_system(12, 10, 4, 2, rng);
  const auto arrivals = arrivals_each_k_times(12, 2, true, rng);
  FractionalSetCover frac(sys);
  for (ElementId j : arrivals) frac.on_element(j);

  RunningStats rounded;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomizedConfig cfg;
    cfg.seed = seed;
    ReductionSetCover alg(sys, cfg);
    rounded.add(run_setcover(alg, arrivals).cost);
  }
  EXPECT_GE(rounded.mean(), 0.5 * frac.fractional_cost());
}

TEST(FractionalSetCover, WeightedInstanceIdentityHolds) {
  Rng rng(34);
  SetSystem sys = with_random_costs(
      random_uniform_system(8, 8, 3, 2, rng), 1.0, 8.0, rng);
  FractionalSetCover frac(sys);
  for (ElementId j : arrivals_each_k_times(8, 2, true, rng)) {
    frac.on_element(j);
    EXPECT_GE(frac.coverage(j),
              static_cast<double>(frac.demand(j)) - 1e-6);
  }
}

TEST(FractionalSetCover, OverDemandThrows) {
  SetSystem sys(1, {{0}});
  FractionalSetCover frac(sys);
  frac.on_element(0);
  EXPECT_THROW(frac.on_element(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Competitive behaviour (the O(log m log n) claim, empirically)
// ---------------------------------------------------------------------------

TEST(ReductionSetCover, RatioWithinPolylogOnRandomInstances) {
  Rng rng(5);
  SetSystem sys = random_uniform_system(16, 12, 4, 2, rng);
  const auto arrivals = arrivals_each_k_times(16, 2, true, rng);
  CoverInstance inst(sys, arrivals);
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.cost, 0.0);

  RunningStats ratios;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomizedConfig cfg;
    cfg.seed = seed;
    ReductionSetCover alg(sys, cfg);
    const CoverRun run = run_setcover(alg, arrivals);
    ratios.add(competitive_ratio(run.cost, opt.cost));
  }
  const double logm = std::max(1.0, std::log2(12.0));
  const double logn = std::max(1.0, std::log2(16.0));
  EXPECT_LE(ratios.mean(), 40.0 * logm * logn) << ratios.mean();
}

TEST(ReductionSetCover, SingletonsPlusBlockBeatsNaive) {
  // OPT buys the block (cost 1).  The randomized algorithm should stay
  // polylogarithmic, not linear in the block size.
  const std::size_t n = 32;
  SetSystem sys = singletons_plus_block_system(n, n);
  std::vector<ElementId> arrivals(n);
  for (std::size_t j = 0; j < n; ++j) arrivals[j] = static_cast<ElementId>(j);

  RunningStats costs;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomizedConfig cfg;
    cfg.seed = seed;
    ReductionSetCover alg(sys, cfg);
    costs.add(run_setcover(alg, arrivals).cost);
  }
  const double logm = std::log2(static_cast<double>(n + 1));
  const double logn = std::log2(static_cast<double>(n));
  // OPT = 1; mean cost must be well below n (the naive answer).
  EXPECT_LE(costs.mean(), 12.0 * logm * logn);
}

TEST(ReductionSetCover, WeightedSystemCoversAndStaysPolylog) {
  // The weighted case of the reduction: O(log²(mn)) per the paper.  The
  // admission side runs in weighted mode (auto-α, classification), which
  // exercises the doubling machinery underneath the reduction.
  Rng rng(7);
  SetSystem sys = with_random_costs(
      random_uniform_system(12, 10, 4, 3, rng), 1.0, 16.0, rng);
  ASSERT_FALSE(sys.unit_costs());
  const auto arrivals = arrivals_each_k_times(12, 2, true, rng);
  CoverInstance inst(sys, arrivals);
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.cost, 0.0);

  RunningStats ratios;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomizedConfig cfg;
    cfg.seed = seed;
    ReductionSetCover alg(sys, cfg);
    const CoverRun run = run_setcover(alg, arrivals);
    EXPECT_TRUE(covers_demands(inst, alg.chosen())) << "seed " << seed;
    ratios.add(competitive_ratio(run.cost, opt.cost));
  }
  const double lognm = std::max(1.0, std::log2(10.0 * 12.0));
  EXPECT_LE(ratios.mean(), 20.0 * lognm * lognm);
}

TEST(ReductionSetCover, AdaptiveAdversaryStaysBounded) {
  Rng rng(6);
  SetSystem sys = dyadic_interval_system(16);
  RandomizedConfig cfg;
  cfg.seed = 5;
  ReductionSetCover alg(sys, cfg);
  const auto played = run_adaptive_adversary(alg, 24);
  ASSERT_FALSE(played.empty());
  CoverInstance inst(sys, played);
  const MulticoverResult opt = solve_multicover_opt(inst);
  ASSERT_TRUE(opt.exact);
  const double ratio = competitive_ratio(alg.cost(), opt.cost);
  const double logm = std::log2(31.0), logn = std::log2(16.0);
  EXPECT_LE(ratio, 40.0 * logm * logn);
}

}  // namespace
}  // namespace minrej

// Tests for src/setcover: set systems, cover instances, generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "setcover/generators.h"
#include "setcover/instance.h"
#include "setcover/set_system.h"
#include "util/rng.h"

namespace minrej {
namespace {

// ---------------------------------------------------------------------------
// SetSystem
// ---------------------------------------------------------------------------

TEST(SetSystem, BuildsIncidenceBothWays) {
  SetSystem sys(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(sys.element_count(), 4u);
  EXPECT_EQ(sys.set_count(), 4u);
  EXPECT_EQ(sys.degree(0), 2u);
  EXPECT_EQ(sys.degree(1), 2u);
  // sets_of must be consistent with elements_of.
  for (SetId s = 0; s < 4; ++s) {
    for (ElementId j : sys.elements_of(s)) {
      const auto owners = sys.sets_of(j);
      EXPECT_NE(std::find(owners.begin(), owners.end(), s), owners.end());
    }
  }
}

TEST(SetSystem, DeduplicatesMembers) {
  SetSystem sys(3, {{1, 1, 2, 2}});
  EXPECT_EQ(sys.elements_of(0).size(), 2u);
}

TEST(SetSystem, UnitCostDetection) {
  SetSystem unit(2, {{0}, {1}});
  EXPECT_TRUE(unit.unit_costs());
  SetSystem weighted(2, {{0}, {1}}, {1.0, 2.0});
  EXPECT_FALSE(weighted.unit_costs());
  EXPECT_DOUBLE_EQ(weighted.total_cost(), 3.0);
}

TEST(SetSystem, RejectsBadInput) {
  EXPECT_THROW(SetSystem(0, {{0}}), InvalidArgument);
  EXPECT_THROW(SetSystem(2, {}), InvalidArgument);
  EXPECT_THROW(SetSystem(2, {{}}), InvalidArgument);          // empty set
  EXPECT_THROW(SetSystem(2, {{5}}), InvalidArgument);         // range
  EXPECT_THROW(SetSystem(2, {{0}}, {0.0}), InvalidArgument);  // zero cost
  EXPECT_THROW(SetSystem(2, {{0}}, {1.0, 2.0}), InvalidArgument);  // size
}

// ---------------------------------------------------------------------------
// CoverInstance
// ---------------------------------------------------------------------------

TEST(CoverInstance, CountsDemands) {
  SetSystem sys(3, {{0, 1}, {1, 2}, {0, 2}});
  CoverInstance inst(sys, {0, 1, 1, 2});
  EXPECT_EQ(inst.demand()[0], 1);
  EXPECT_EQ(inst.demand()[1], 2);
  EXPECT_EQ(inst.demand()[2], 1);
  EXPECT_EQ(inst.max_demand(), 2);
  EXPECT_TRUE(inst.feasible());
}

TEST(CoverInstance, DetectsInfeasibleDemand) {
  SetSystem sys(2, {{0}, {0, 1}});
  // Element 1 has degree 1 but demanded twice.
  CoverInstance inst(sys, {1, 1});
  EXPECT_FALSE(inst.feasible());
}

TEST(CoverInstance, RejectsUnknownElement) {
  SetSystem sys(2, {{0, 1}});
  EXPECT_THROW(CoverInstance(sys, {5}), InvalidArgument);
}

TEST(CoversDemands, ExactMulticover) {
  SetSystem sys(2, {{0}, {0}, {1}});
  CoverInstance inst(sys, {0, 0, 1});
  EXPECT_TRUE(covers_demands(inst, {true, true, true}));
  EXPECT_FALSE(covers_demands(inst, {true, false, true}));  // 0 needs 2
  EXPECT_FALSE(covers_demands(inst, {true, true, false}));  // 1 needs 1
}

TEST(CoversDemands, BicriteriaFraction) {
  SetSystem sys(1, {{0}, {0}, {0}, {0}});
  CoverInstance inst(sys, {0, 0, 0, 0});  // demand 4
  // (1-0.5)*4 = 2 sets suffice at fraction 0.5.
  EXPECT_TRUE(covers_demands(inst, {true, true, false, false}, 0.5));
  EXPECT_FALSE(covers_demands(inst, {true, false, false, false}, 0.5));
  // Full coverage requires all 4.
  EXPECT_FALSE(covers_demands(inst, {true, true, true, false}, 1.0));
  EXPECT_TRUE(covers_demands(inst, {true, true, true, true}, 1.0));
}

TEST(ChosenCost, SumsCosts) {
  SetSystem sys(2, {{0}, {1}}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(chosen_cost(sys, {true, true}), 5.0);
  EXPECT_DOUBLE_EQ(chosen_cost(sys, {false, true}), 3.0);
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(CoverGenerators, RandomUniformRespectsShape) {
  Rng rng(3);
  SetSystem sys = random_uniform_system(20, 10, 4, 2, rng);
  EXPECT_EQ(sys.element_count(), 20u);
  EXPECT_EQ(sys.set_count(), 10u);
  for (ElementId j = 0; j < 20; ++j) EXPECT_GE(sys.degree(j), 2u);
}

TEST(CoverGenerators, RandomDensityPatchesDegrees) {
  Rng rng(7);
  SetSystem sys = random_density_system(30, 12, 0.05, 3, rng);
  for (ElementId j = 0; j < 30; ++j) EXPECT_GE(sys.degree(j), 3u);
  for (SetId s = 0; s < 12; ++s) EXPECT_GE(sys.elements_of(s).size(), 1u);
}

TEST(CoverGenerators, PlantedCoverHasSmallOpt) {
  Rng rng(11);
  const std::size_t k_opt = 4, copies = 2;
  SetSystem sys = planted_cover_system(24, 20, k_opt, copies, 3, rng);
  EXPECT_EQ(sys.set_count(), 20u);
  // The first k_opt*copies sets partition X with multiplicity `copies`:
  // choosing the first k_opt of them covers everything once.
  std::vector<std::int64_t> covered(24, 0);
  for (std::size_t b = 0; b < k_opt * copies; ++b) {
    for (ElementId j : sys.elements_of(static_cast<SetId>(b))) ++covered[j];
  }
  for (std::int64_t c : covered) EXPECT_EQ(c, static_cast<std::int64_t>(copies));
}

TEST(CoverGenerators, DyadicSystemStructure) {
  SetSystem sys = dyadic_interval_system(8);
  EXPECT_EQ(sys.element_count(), 8u);
  EXPECT_EQ(sys.set_count(), 15u);  // 8 + 4 + 2 + 1
  // Every element lies in exactly log2(8)+1 = 4 dyadic intervals.
  for (ElementId j = 0; j < 8; ++j) EXPECT_EQ(sys.degree(j), 4u);
}

TEST(CoverGenerators, DyadicRequiresPowerOfTwo) {
  EXPECT_THROW(dyadic_interval_system(6), InvalidArgument);
  EXPECT_THROW(dyadic_interval_system(1), InvalidArgument);
}

TEST(CoverGenerators, SingletonsPlusBlock) {
  SetSystem sys = singletons_plus_block_system(10, 6);
  EXPECT_EQ(sys.set_count(), 11u);
  EXPECT_EQ(sys.elements_of(10).size(), 6u);  // the block
  for (SetId s = 0; s < 10; ++s) EXPECT_EQ(sys.elements_of(s).size(), 1u);
}

TEST(CoverGenerators, WithRandomCostsPreservesMembership) {
  Rng rng(13);
  SetSystem base = random_uniform_system(10, 6, 3, 1, rng);
  SetSystem weighted = with_random_costs(base, 1.0, 50.0, rng);
  EXPECT_FALSE(weighted.unit_costs() && weighted.total_cost() == 6.0);
  for (SetId s = 0; s < 6; ++s) {
    const auto a = base.elements_of(s);
    const auto b = weighted.elements_of(s);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    EXPECT_GE(weighted.cost(s), 1.0);
    EXPECT_LE(weighted.cost(s), 50.0);
  }
}

TEST(Arrivals, EachOnceIsAPermutation) {
  Rng rng(17);
  const auto arrivals = arrivals_each_once(10, rng);
  std::set<ElementId> unique(arrivals.begin(), arrivals.end());
  EXPECT_EQ(arrivals.size(), 10u);
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Arrivals, EachKTimesCounts) {
  Rng rng(19);
  for (bool interleave : {false, true}) {
    const auto arrivals = arrivals_each_k_times(6, 3, interleave, rng);
    EXPECT_EQ(arrivals.size(), 18u);
    std::vector<int> counts(6, 0);
    for (ElementId j : arrivals) ++counts[j];
    for (int c : counts) EXPECT_EQ(c, 3);
  }
}

TEST(Arrivals, ConsecutiveModeKeepsRunsTogether) {
  Rng rng(23);
  const auto arrivals = arrivals_each_k_times(5, 4, /*interleave=*/false, rng);
  // Runs of identical elements of length exactly 4.
  for (std::size_t i = 0; i < arrivals.size(); i += 4) {
    for (std::size_t k = 1; k < 4; ++k) {
      EXPECT_EQ(arrivals[i], arrivals[i + k]);
    }
  }
}

TEST(Arrivals, ZipfStaysFeasible) {
  Rng rng(29);
  SetSystem sys = random_uniform_system(20, 10, 4, 2, rng);
  const auto arrivals = arrivals_zipf(sys, 60, 1.0, rng);
  CoverInstance inst(sys, arrivals);
  EXPECT_TRUE(inst.feasible());
}

TEST(Arrivals, ZipfUniformExponentCoversGround) {
  Rng rng(31);
  SetSystem sys = random_uniform_system(12, 30, 5, 4, rng);
  const auto arrivals = arrivals_zipf(sys, 48, 0.0, rng);
  EXPECT_EQ(arrivals.size(), 48u);
  CoverInstance inst(sys, arrivals);
  EXPECT_TRUE(inst.feasible());
}

}  // namespace
}  // namespace minrej

// snapshot.h — versioned, checksummed binary serialization of engine and
// service state (DESIGN.md §9; docs/API.md "Snapshot format").
//
// The robustness layer needs to freeze a running algorithm mid-stream and
// bring it back bit-identically — the restore-then-continue trajectory must
// equal the uninterrupted one.  Text round-trips (io/instance_io.h) cannot
// promise that for doubles, so snapshots are binary: every double travels
// as its IEEE-754 bit pattern, every integer as explicit little-endian
// bytes, and the whole payload is guarded by an FNV-1a 64 checksum that is
// validated before a single field is parsed.
//
// Format (all integers little-endian):
//
//   'M' 'R' 'S' 'N'          magic
//   u32 container version    (kContainerVersion)
//   str kind                 producer-chosen stream kind, e.g. "service"
//   u32 version              producer-chosen stream version
//   u64 payload size
//   u64 payload FNV-1a 64
//   payload bytes
//
// Inside the payload, producers interleave 4-byte structure tags
// (SnapshotWriter::tag / SnapshotReader::expect_tag) so a reader that
// drifts out of sync fails on the next tag with a message naming both
// sides, instead of silently reinterpreting bytes.
//
// Corruption, truncation, a kind mismatch, or an unsupported version all
// throw InvalidArgument from the SnapshotReader constructor or the typed
// read that detects them; nothing is partially applied.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace minrej {

/// FNV-1a 64-bit hash of a byte span (the snapshot payload checksum).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

/// Accumulates one snapshot payload and seals it with the header above.
class SnapshotWriter {
 public:
  /// `kind` names the stream (validated on read); `version` is the
  /// producer's format version for that kind.
  SnapshotWriter(std::string kind, std::uint32_t version);

  void u8(std::uint8_t v) { payload_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern — the exact double comes back, NaNs included.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s);
  /// 4-byte structure tag; the reader resynchronization points.
  void tag(std::string_view four_cc);
  /// Length-prefixed raw byte block.
  void bytes(std::span<const std::uint8_t> b);
  /// How a snapshot embeds another sealed snapshot (the service stream
  /// nests one algorithm stream per shard).  Alias of bytes(), named for
  /// symmetry with SnapshotReader::blob.
  void blob(std::span<const std::uint8_t> b) { bytes(b); }

  /// Length-prefixed vector of an arithmetic element type.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    u64(v.size());
    for (const T& x : v) scalar(x);
  }

  /// vector<bool> (bit-packed, so no span view exists): one byte per bit.
  void bit_vec(const std::vector<bool>& v);

  template <typename T>
  void scalar(T x) {
    if constexpr (std::is_same_v<T, bool>) {
      boolean(x);
    } else if constexpr (std::is_floating_point_v<T>) {
      f64(static_cast<double>(x));
    } else if constexpr (std::is_enum_v<T>) {
      u64(static_cast<std::uint64_t>(x));
    } else if constexpr (std::is_signed_v<T>) {
      i64(static_cast<std::int64_t>(x));
    } else {
      u64(static_cast<std::uint64_t>(x));
    }
  }

  /// Seals header + payload into the final byte stream.
  std::vector<std::uint8_t> finish() const;

  std::size_t payload_size() const noexcept { return payload_.size(); }

 private:
  std::string kind_;
  std::uint32_t version_;
  std::vector<std::uint8_t> payload_;
};

/// Parses a sealed snapshot.  The constructor validates magic, container
/// version, kind, payload size, and checksum up front.
class SnapshotReader {
 public:
  /// `expected_kind` must match the writer's kind exactly.
  SnapshotReader(std::span<const std::uint8_t> bytes,
                 std::string_view expected_kind);

  /// The producer's stream version (callers gate on it before parsing).
  std::uint32_t version() const noexcept { return version_; }

  std::uint8_t u8();
  bool boolean() { return u8() != 0; }
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str();
  /// Consumes 4 bytes and requires them to equal `four_cc`.
  void expect_tag(std::string_view four_cc);
  /// Reads a length-prefixed raw byte block written by SnapshotWriter::blob.
  std::vector<std::uint8_t> blob();

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    const std::uint64_t n = u64();
    guard_count(n, element_size<T>());
    std::vector<T> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(scalar<T>());
    return v;
  }

  std::vector<bool> bit_vec();

  template <typename T>
  T scalar() {
    if constexpr (std::is_same_v<T, bool>) {
      return boolean();
    } else if constexpr (std::is_floating_point_v<T>) {
      return static_cast<T>(f64());
    } else if constexpr (std::is_enum_v<T>) {
      return static_cast<T>(u64());
    } else if constexpr (std::is_signed_v<T>) {
      return static_cast<T>(i64());
    } else {
      return static_cast<T>(u64());
    }
  }

  /// Requires the payload to be fully consumed — a producer/consumer field
  /// mismatch that happens to stay tag-aligned still fails loudly here.
  void expect_end() const;

  std::size_t remaining() const noexcept { return payload_.size() - pos_; }

 private:
  template <typename T>
  static constexpr std::size_t element_size() {
    return (std::is_same_v<T, bool> ? 1 : 8);
  }
  /// Rejects length prefixes larger than the bytes actually present, so a
  /// corrupted count cannot drive a multi-gigabyte reserve.
  void guard_count(std::uint64_t n, std::size_t elem_size);
  std::span<const std::uint8_t> take(std::size_t n);

  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

/// Writes a sealed snapshot to `path` (binary, atomic via rename is NOT
/// attempted — callers own durability policy).  Throws on I/O failure.
void save_snapshot_file(const std::string& path,
                        std::span<const std::uint8_t> bytes);

/// Reads a file produced by save_snapshot_file.  Throws on I/O failure.
std::vector<std::uint8_t> load_snapshot_file(const std::string& path);

}  // namespace minrej

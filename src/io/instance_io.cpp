#include "io/instance_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace minrej {

namespace {

/// Token reader that strips '#' comments and reports position on errors.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  std::string next(const char* what) {
    std::string token;
    while (in_ >> token) {
      if (token[0] == '#') {
        in_.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        continue;
      }
      return token;
    }
    throw InvalidArgument(std::string("instance file truncated: expected ") +
                          what);
  }

  long long next_int(const char* what) {
    const std::string token = next(what);
    std::size_t pos = 0;
    long long value = 0;
    try {
      value = std::stoll(token, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    MINREJ_REQUIRE(pos == token.size(),
                   std::string("bad integer for ") + what + ": " + token);
    return value;
  }

  double next_double(const char* what) {
    const std::string token = next(what);
    std::size_t pos = 0;
    double value = 0;
    try {
      value = std::stod(token, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    MINREJ_REQUIRE(pos == token.size(),
                   std::string("bad number for ") + what + ": " + token);
    return value;
  }

  void expect(const char* literal) {
    const std::string token = next(literal);
    MINREJ_REQUIRE(token == literal, "expected '" + std::string(literal) +
                                         "', got '" + token + "'");
  }

 private:
  std::istream& in_;
};

}  // namespace

void save_admission_instance(std::ostream& out,
                             const AdmissionInstance& instance,
                             const std::string& comment) {
  std::size_t begin = 0;
  while (begin < comment.size()) {
    const std::size_t end = comment.find('\n', begin);
    const std::size_t stop = end == std::string::npos ? comment.size() : end;
    out << "# " << comment.substr(begin, stop - begin) << '\n';
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  save_admission_instance(out, instance);
}

void save_admission_instance(std::ostream& out,
                             const AdmissionInstance& instance) {
  const Graph& g = instance.graph();
  // max_digits10 round-trips every double exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "minrej-admission 1\n";
  out << "graph " << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << "e " << e.from << ' ' << e.to << ' ' << e.capacity << '\n';
  }
  for (const Request& r : instance.requests()) {
    out << "r " << r.cost << ' ' << (r.must_accept ? 1 : 0) << ' '
        << r.edges.size();
    for (EdgeId e : r.edges) out << ' ' << e;
    out << '\n';
  }
}

AdmissionInstance load_admission_instance(std::istream& in) {
  TokenReader reader(in);
  reader.expect("minrej-admission");
  MINREJ_REQUIRE(reader.next_int("format version") == 1,
                 "unsupported admission format version");
  reader.expect("graph");
  const long long vertices = reader.next_int("vertex count");
  const long long edge_count = reader.next_int("edge count");
  MINREJ_REQUIRE(vertices > 0 && edge_count >= 0, "bad graph header");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(edge_count));
  for (long long i = 0; i < edge_count; ++i) {
    reader.expect("e");
    Edge e;
    e.from = static_cast<VertexId>(reader.next_int("edge source"));
    e.to = static_cast<VertexId>(reader.next_int("edge target"));
    e.capacity = reader.next_int("edge capacity");
    edges.push_back(e);
  }
  Graph graph(static_cast<std::size_t>(vertices), std::move(edges));

  std::vector<Request> requests;
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    MINREJ_REQUIRE(token == "r", "expected request line, got '" + token + "'");
    const double cost = reader.next_double("request cost");
    const long long must_accept = reader.next_int("must_accept flag");
    MINREJ_REQUIRE(must_accept == 0 || must_accept == 1,
                   "must_accept must be 0 or 1");
    const long long k = reader.next_int("request edge count");
    MINREJ_REQUIRE(k >= 1, "request needs at least one edge");
    std::vector<EdgeId> request_edges;
    request_edges.reserve(static_cast<std::size_t>(k));
    for (long long i = 0; i < k; ++i) {
      request_edges.push_back(
          static_cast<EdgeId>(reader.next_int("request edge id")));
    }
    requests.emplace_back(std::move(request_edges), cost, must_accept == 1);
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

void save_cover_instance(std::ostream& out, const CoverInstance& instance) {
  const SetSystem& sys = instance.system();
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "minrej-setcover 1\n";
  out << "system " << sys.element_count() << ' ' << sys.set_count() << '\n';
  for (std::size_t s = 0; s < sys.set_count(); ++s) {
    const auto members = sys.elements_of(static_cast<SetId>(s));
    out << "s " << sys.cost(static_cast<SetId>(s)) << ' ' << members.size();
    for (ElementId j : members) out << ' ' << j;
    out << '\n';
  }
  out << "arrivals " << instance.arrivals().size();
  for (ElementId j : instance.arrivals()) out << ' ' << j;
  out << '\n';
}

CoverInstance load_cover_instance(std::istream& in) {
  TokenReader reader(in);
  reader.expect("minrej-setcover");
  MINREJ_REQUIRE(reader.next_int("format version") == 1,
                 "unsupported setcover format version");
  reader.expect("system");
  const long long n = reader.next_int("element count");
  const long long m = reader.next_int("set count");
  MINREJ_REQUIRE(n > 0 && m > 0, "bad system header");

  std::vector<std::vector<ElementId>> sets;
  std::vector<double> costs;
  sets.reserve(static_cast<std::size_t>(m));
  costs.reserve(static_cast<std::size_t>(m));
  for (long long s = 0; s < m; ++s) {
    reader.expect("s");
    costs.push_back(reader.next_double("set cost"));
    const long long k = reader.next_int("set size");
    MINREJ_REQUIRE(k >= 1, "sets must be non-empty");
    std::vector<ElementId> members;
    members.reserve(static_cast<std::size_t>(k));
    for (long long i = 0; i < k; ++i) {
      members.push_back(static_cast<ElementId>(reader.next_int("element id")));
    }
    sets.push_back(std::move(members));
  }
  SetSystem system(static_cast<std::size_t>(n), std::move(sets),
                   std::move(costs));

  reader.expect("arrivals");
  const long long count = reader.next_int("arrival count");
  MINREJ_REQUIRE(count >= 0, "bad arrival count");
  std::vector<ElementId> arrivals;
  arrivals.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    arrivals.push_back(static_cast<ElementId>(reader.next_int("arrival")));
  }
  return CoverInstance(std::move(system), std::move(arrivals));
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  MINREJ_REQUIRE(out.good(), "cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  MINREJ_REQUIRE(in.good(), "cannot open for reading: " + path);
  return in;
}

}  // namespace

void save_admission_file(const std::string& path,
                         const AdmissionInstance& instance) {
  auto out = open_out(path);
  save_admission_instance(out, instance);
}

void save_admission_file(const std::string& path,
                         const AdmissionInstance& instance,
                         const std::string& comment) {
  auto out = open_out(path);
  save_admission_instance(out, instance, comment);
}

AdmissionInstance load_admission_file(const std::string& path) {
  auto in = open_in(path);
  return load_admission_instance(in);
}

void save_cover_file(const std::string& path,
                     const CoverInstance& instance) {
  auto out = open_out(path);
  save_cover_instance(out, instance);
}

CoverInstance load_cover_file(const std::string& path) {
  auto in = open_in(path);
  return load_cover_instance(in);
}

std::string detect_instance_kind(const std::string& path) {
  auto in = open_in(path);
  std::string header;
  in >> header;
  if (header == "minrej-admission") return "admission";
  if (header == "minrej-setcover") return "setcover";
  throw InvalidArgument("unknown instance header in " + path + ": " + header);
}

}  // namespace minrej

// instance_io.h — plain-text serialization of problem instances.
//
// Every instance an experiment runs can be dumped to a self-describing
// text file and replayed later (`examples/replay_instance`), so any
// number in EXPERIMENTS.md can be pinned to a concrete input.  Formats:
//
//   minrej-admission 1
//   graph <vertex_count> <edge_count>
//   e <from> <to> <capacity>              # edge_count lines, EdgeId = order
//   r <cost> <must_accept:0|1> <k> <edge ids...>   # arrival order
//
//   minrej-setcover 1
//   system <element_count> <set_count>
//   s <cost> <k> <element ids...>         # set_count lines, SetId = order
//   arrivals <count> <element ids...>
//
// Whitespace-separated, '#' starts a comment to end of line.  Loading
// validates through the normal instance constructors, so malformed files
// fail with the same InvalidArgument errors as programmatic misuse.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/request.h"
#include "setcover/instance.h"

namespace minrej {

void save_admission_instance(std::ostream& out,
                             const AdmissionInstance& instance);
/// Same, but writes `# <comment>` provenance lines above the header (one
/// per line of `comment`).  Loaders skip comments, so a stamped file
/// round-trips identically; minrej_serve --dump stamps the scenario name
/// and seed this way so a replayed trace is attributable.
void save_admission_instance(std::ostream& out,
                             const AdmissionInstance& instance,
                             const std::string& comment);
AdmissionInstance load_admission_instance(std::istream& in);

void save_cover_instance(std::ostream& out, const CoverInstance& instance);
CoverInstance load_cover_instance(std::istream& in);

/// File-path conveniences; throw InvalidArgument if the file cannot be
/// opened.
void save_admission_file(const std::string& path,
                         const AdmissionInstance& instance);
void save_admission_file(const std::string& path,
                         const AdmissionInstance& instance,
                         const std::string& comment);
AdmissionInstance load_admission_file(const std::string& path);
void save_cover_file(const std::string& path, const CoverInstance& instance);
CoverInstance load_cover_file(const std::string& path);

/// Peeks at a file's header line: "admission", "setcover", or throws.
std::string detect_instance_kind(const std::string& path);

}  // namespace minrej

#include "io/snapshot.h"

#include <fstream>

namespace minrej {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'R', 'S', 'N'};
constexpr std::uint32_t kContainerVersion = 1;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

SnapshotWriter::SnapshotWriter(std::string kind, std::uint32_t version)
    : kind_(std::move(kind)), version_(version) {
  MINREJ_REQUIRE(!kind_.empty(), "snapshot kind must be non-empty");
}

void SnapshotWriter::u32(std::uint32_t v) { append_u32(payload_, v); }

void SnapshotWriter::u64(std::uint64_t v) { append_u64(payload_, v); }

void SnapshotWriter::str(std::string_view s) {
  u64(s.size());
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void SnapshotWriter::tag(std::string_view four_cc) {
  MINREJ_REQUIRE(four_cc.size() == 4, "snapshot tags are exactly 4 bytes");
  payload_.insert(payload_.end(), four_cc.begin(), four_cc.end());
}

void SnapshotWriter::bytes(std::span<const std::uint8_t> b) {
  u64(b.size());
  payload_.insert(payload_.end(), b.begin(), b.end());
}

void SnapshotWriter::bit_vec(const std::vector<bool>& v) {
  u64(v.size());
  for (const bool b : v) boolean(b);
}

std::vector<std::uint8_t> SnapshotWriter::finish() const {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 4 + 8 + kind_.size() + 4 + 8 + 8 + payload_.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  append_u32(out, kContainerVersion);
  append_u64(out, kind_.size());
  out.insert(out.end(), kind_.begin(), kind_.end());
  append_u32(out, version_);
  append_u64(out, payload_.size());
  append_u64(out, fnv1a64(payload_));
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

SnapshotReader::SnapshotReader(std::span<const std::uint8_t> bytes,
                               std::string_view expected_kind) {
  // Parse the fixed header with a local cursor: payload_ is only bound
  // after every header check (including the checksum) has passed.
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (bytes.size() - pos < n) {
      throw InvalidArgument("snapshot truncated: header needs " +
                            std::to_string(n) + " bytes at offset " +
                            std::to_string(pos));
    }
  };
  need(4);
  if (!std::equal(std::begin(kMagic), std::end(kMagic), bytes.begin())) {
    throw InvalidArgument("not a minrej snapshot (bad magic)");
  }
  pos = 4;
  const auto read_u32 = [&] {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  };
  const auto read_u64 = [&] {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  };
  const std::uint32_t container = read_u32();
  if (container != kContainerVersion) {
    throw InvalidArgument("unsupported snapshot container version " +
                          std::to_string(container) + " (expected " +
                          std::to_string(kContainerVersion) + ")");
  }
  const std::uint64_t kind_len = read_u64();
  need(static_cast<std::size_t>(kind_len));
  const std::string kind(
      reinterpret_cast<const char*>(bytes.data() + pos),
      static_cast<std::size_t>(kind_len));
  pos += static_cast<std::size_t>(kind_len);
  if (kind != expected_kind) {
    throw InvalidArgument("snapshot kind mismatch: stream is '" + kind +
                          "', expected '" + std::string(expected_kind) + "'");
  }
  version_ = read_u32();
  const std::uint64_t payload_size = read_u64();
  const std::uint64_t checksum = read_u64();
  if (bytes.size() - pos != payload_size) {
    throw InvalidArgument(
        "snapshot payload size mismatch: header claims " +
        std::to_string(payload_size) + " bytes, stream carries " +
        std::to_string(bytes.size() - pos));
  }
  payload_ = bytes.subspan(pos);
  if (fnv1a64(payload_) != checksum) {
    throw InvalidArgument("snapshot checksum mismatch — corrupted stream");
  }
}

std::span<const std::uint8_t> SnapshotReader::take(std::size_t n) {
  if (remaining() < n) {
    throw InvalidArgument("snapshot truncated: read of " + std::to_string(n) +
                          " bytes at payload offset " + std::to_string(pos_) +
                          " with " + std::to_string(remaining()) + " left");
  }
  const auto s = payload_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint8_t SnapshotReader::u8() { return take(1)[0]; }

std::uint32_t SnapshotReader::u32() {
  const auto b = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t SnapshotReader::u64() {
  const auto b = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::string SnapshotReader::str() {
  const std::uint64_t n = u64();
  guard_count(n, 1);
  const auto b = take(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::vector<std::uint8_t> SnapshotReader::blob() {
  const std::uint64_t n = u64();
  guard_count(n, 1);
  const auto b = take(static_cast<std::size_t>(n));
  return std::vector<std::uint8_t>(b.begin(), b.end());
}

void SnapshotReader::expect_tag(std::string_view four_cc) {
  MINREJ_REQUIRE(four_cc.size() == 4, "snapshot tags are exactly 4 bytes");
  const auto b = take(4);
  if (!std::equal(four_cc.begin(), four_cc.end(), b.begin())) {
    throw InvalidArgument(
        "snapshot structure mismatch: expected tag '" +
        std::string(four_cc) + "', found '" +
        std::string(reinterpret_cast<const char*>(b.data()), 4) + "'");
  }
}

std::vector<bool> SnapshotReader::bit_vec() {
  const std::uint64_t n = u64();
  guard_count(n, 1);
  std::vector<bool> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(boolean());
  return v;
}

void SnapshotReader::expect_end() const {
  if (remaining() != 0) {
    throw InvalidArgument("snapshot has " + std::to_string(remaining()) +
                          " unread trailing payload bytes");
  }
}

void SnapshotReader::guard_count(std::uint64_t n, std::size_t elem_size) {
  if (n > remaining() / elem_size) {
    throw InvalidArgument("snapshot length prefix " + std::to_string(n) +
                          " exceeds the remaining payload — corrupted count");
  }
}

void save_snapshot_file(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MINREJ_REQUIRE(out.good(), "cannot open snapshot file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  MINREJ_REQUIRE(out.good(), "short write to snapshot file: " + path);
}

std::vector<std::uint8_t> load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MINREJ_REQUIRE(in.good(), "cannot open snapshot file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  MINREJ_REQUIRE(in.gcount() == size, "short read from snapshot file: " + path);
  return bytes;
}

}  // namespace minrej

#include "offline/multicover.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace minrej {

namespace {

struct Residuals {
  std::vector<std::int64_t> need;  // per element
  std::int64_t total = 0;

  explicit Residuals(const CoverInstance& instance)
      : need(instance.demand()) {
    for (std::int64_t d : need) total += d;
  }
};

}  // namespace

MulticoverResult greedy_multicover(const CoverInstance& instance) {
  MINREJ_REQUIRE(instance.feasible(), "greedy_multicover: infeasible demands");
  const SetSystem& sys = instance.system();
  Residuals res(instance);

  MulticoverResult result;
  result.chosen.assign(sys.set_count(), false);
  result.exact = false;

  while (res.total > 0) {
    double best_ratio = -1.0;
    SetId best = 0;
    bool found = false;
    for (std::size_t s = 0; s < sys.set_count(); ++s) {
      if (result.chosen[s]) continue;
      std::int64_t gain = 0;
      for (ElementId j : sys.elements_of(static_cast<SetId>(s))) {
        if (res.need[j] > 0) ++gain;
      }
      if (gain == 0) continue;
      const double ratio =
          static_cast<double>(gain) / sys.cost(static_cast<SetId>(s));
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<SetId>(s);
        found = true;
      }
    }
    MINREJ_CHECK(found, "greedy_multicover stuck with unmet demand");
    result.chosen[best] = true;
    result.cost += sys.cost(best);
    for (ElementId j : sys.elements_of(best)) {
      if (res.need[j] > 0) {
        --res.need[j];
        --res.total;
      }
    }
  }
  return result;
}

namespace {

/// Branch-and-bound mirroring the covering search in admission_opt.cpp but
/// over (element, set) incidence.  Kept independent on purpose — see header.
class MulticoverBnB {
 public:
  MulticoverBnB(const CoverInstance& instance, std::uint64_t node_budget)
      : sys_(instance.system()), node_budget_(node_budget),
        state_(sys_.set_count(), State::kFree),
        residual_(instance.demand()) {}

  enum class State : std::uint8_t { kFree, kChosen, kExcluded };

  void set_incumbent(double cost, std::vector<bool> chosen) {
    best_cost_ = cost;
    best_chosen_ = std::move(chosen);
  }

  void run() { dfs(0.0); }

  double best_cost() const noexcept { return best_cost_; }
  const std::vector<bool>& best_chosen() const noexcept {
    return best_chosen_;
  }
  std::uint64_t nodes() const noexcept { return nodes_; }
  bool exhausted() const noexcept { return nodes_ >= node_budget_; }

 private:
  double remaining_bound() {
    // Max over elements of the cost of its `need` cheapest free sets
    // (valid: satisfying that element alone costs at least this).
    double bound = 0.0;
    for (std::size_t j = 0; j < residual_.size(); ++j) {
      const std::int64_t need = residual_[j];
      if (need <= 0) continue;
      scratch_.clear();
      for (SetId s : sys_.sets_of(static_cast<ElementId>(j))) {
        if (state_[s] == State::kFree) scratch_.push_back(sys_.cost(s));
      }
      if (static_cast<std::int64_t>(scratch_.size()) < need) {
        return std::numeric_limits<double>::infinity();
      }
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(need - 1),
                       scratch_.end());
      double elem_cost = 0.0;
      for (std::int64_t k = 0; k < need; ++k) {
        elem_cost += scratch_[static_cast<std::size_t>(k)];
      }
      bound = std::max(bound, elem_cost);
    }
    return bound;
  }

  std::size_t pick_element() {
    std::size_t best = residual_.size();
    std::int64_t best_need = 0;
    std::size_t best_slack = std::numeric_limits<std::size_t>::max();
    for (std::size_t j = 0; j < residual_.size(); ++j) {
      if (residual_[j] <= 0) continue;
      std::size_t free_count = 0;
      for (SetId s : sys_.sets_of(static_cast<ElementId>(j))) {
        if (state_[s] == State::kFree) ++free_count;
      }
      const std::size_t slack =
          free_count - static_cast<std::size_t>(residual_[j]);
      if (best == residual_.size() || residual_[j] > best_need ||
          (residual_[j] == best_need && slack < best_slack)) {
        best = j;
        best_need = residual_[j];
        best_slack = slack;
      }
    }
    return best;
  }

  void choose(SetId s) {
    state_[s] = State::kChosen;
    for (ElementId j : sys_.elements_of(s)) --residual_[j];
  }
  void unchoose(SetId s) {
    state_[s] = State::kFree;
    for (ElementId j : sys_.elements_of(s)) ++residual_[j];
  }

  void dfs(double cost_so_far) {
    if (nodes_ >= node_budget_) return;
    ++nodes_;
    if (cost_so_far >= best_cost_ - 1e-12) return;

    const std::size_t j = pick_element();
    if (j == residual_.size()) {
      best_cost_ = cost_so_far;
      best_chosen_.assign(state_.size(), false);
      for (std::size_t s = 0; s < state_.size(); ++s) {
        best_chosen_[s] = state_[s] == State::kChosen;
      }
      return;
    }

    if (cost_so_far + remaining_bound() >= best_cost_ - 1e-12) return;

    std::vector<SetId> frees;
    for (SetId s : sys_.sets_of(static_cast<ElementId>(j))) {
      if (state_[s] == State::kFree) frees.push_back(s);
    }
    std::sort(frees.begin(), frees.end(), [this](SetId a, SetId b) {
      // Cheapest per currently-useful coverage first: good incumbents early.
      return sys_.cost(a) < sys_.cost(b);
    });

    for (std::size_t idx = 0; idx < frees.size(); ++idx) {
      const SetId s = frees[idx];
      choose(s);
      dfs(cost_so_far + sys_.cost(s));
      unchoose(s);
      state_[s] = State::kExcluded;
      std::size_t still_free = 0;
      for (SetId t : sys_.sets_of(static_cast<ElementId>(j))) {
        if (state_[t] == State::kFree) ++still_free;
      }
      if (static_cast<std::int64_t>(still_free) < residual_[j]) {
        for (std::size_t k = 0; k <= idx; ++k) {
          if (state_[frees[k]] == State::kExcluded) {
            state_[frees[k]] = State::kFree;
          }
        }
        return;
      }
    }
    for (SetId s : frees) {
      if (state_[s] == State::kExcluded) state_[s] = State::kFree;
    }
  }

  const SetSystem& sys_;
  std::uint64_t node_budget_;
  std::uint64_t nodes_ = 0;
  std::vector<State> state_;
  std::vector<std::int64_t> residual_;
  std::vector<double> scratch_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<bool> best_chosen_;
};

}  // namespace

MulticoverResult solve_multicover_opt(const CoverInstance& instance,
                                      std::uint64_t node_budget) {
  MINREJ_REQUIRE(instance.feasible(),
                 "solve_multicover_opt: infeasible demands");
  if (node_budget == 0) node_budget = 50'000'000;

  const MulticoverResult greedy = greedy_multicover(instance);

  MulticoverBnB bnb(instance, node_budget);
  bnb.set_incumbent(greedy.cost, greedy.chosen);
  bnb.run();

  MulticoverResult result;
  result.cost = bnb.best_cost();
  result.chosen = bnb.best_chosen();
  result.nodes = bnb.nodes();
  result.exact = !bnb.exhausted();
  MINREJ_CHECK(covers_demands(instance, result.chosen),
               "offline multicover produced an invalid cover");
  return result;
}

}  // namespace minrej

// admission_opt.h — offline ground truth for admission control.
//
// Every competitive ratio the harness reports divides by one of these:
//  * exact integral OPT (branch-and-bound; small/medium instances),
//  * exact fractional OPT (covering LP; Theorem 2 is stated against it),
//  * the combinatorial bound Q = max_e(|REQ_e| − c_e) ≤ OPT used by the
//    paper's own Theorem 4 proof (any instance size).
//
// Offline min-cost rejection is a weighted multiset-multicover problem:
// choose a set R of requests (the rejections) minimizing Σ cost so that for
// every edge e, |R ∩ REQ_e| ≥ excess_e.  The B&B branches on the edge with
// the largest unmet residual, trying each candidate request in turn with
// the standard inclusion/exclusion ordering that makes the search complete
// without duplicates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/request.h"

namespace minrej {

/// Result of the exact offline solver.
struct AdmissionOpt {
  double rejected_cost = 0.0;
  /// accepted[i] == false means request i is rejected by OPT.
  std::vector<bool> accepted;
  /// Number of branch-and-bound nodes explored (instrumentation).
  std::uint64_t nodes = 0;
  /// True if the search completed within the node budget (result exact);
  /// false means rejected_cost is only the best incumbent found.
  bool exact = true;
};

/// Which exact solver computes the offline optimum.
///
///  * kBranchAndBound — the multicover B&B above: any instance shape, but
///    exponential in the worst case (small/medium instances only).
///  * kMaxFlow — the combinatorial Dinic reduction (maxflow.h): near-linear
///    at 10⁶-request scale, but exact only on the single-edge-disjoint
///    class maxflow_solvable() describes; throws InvalidArgument outside
///    it.
///  * kAuto — kMaxFlow when the instance qualifies, else kBranchAndBound.
enum class OptBackend : std::uint8_t { kAuto, kBranchAndBound, kMaxFlow };

/// Exact (or budget-capped) offline optimum.  must_accept requests are never
/// rejected; throws InvalidArgument if that makes the instance infeasible.
/// `node_budget` == 0 selects a generous default.
AdmissionOpt solve_admission_opt(const AdmissionInstance& instance,
                                 std::uint64_t node_budget = 0);

/// Backend-selecting overload.  node_budget applies to kBranchAndBound
/// only.  The kMaxFlow result reports Dinic augmenting paths in `nodes`
/// and is always exact.
AdmissionOpt solve_admission_opt(const AdmissionInstance& instance,
                                 OptBackend backend,
                                 std::uint64_t node_budget = 0);

/// True iff the instance is in the max-flow backend's exactness class:
/// every rejectable (non-must_accept) request touches exactly one edge.
/// must_accept requests may touch any number of edges — they only lower
/// the per-edge capacity left for the rejectable ones.  Outside this class
/// the problem embeds set cover (paper §4) and no flow reduction can be
/// exact.
bool maxflow_solvable(const AdmissionInstance& instance);

/// The kMaxFlow backend directly: builds the bipartite acceptance network
/// S → request → edge → T, runs Dinic, and converts the per-edge
/// acceptance counts into the min-cost rejection by keeping each edge's
/// most expensive rejectable requests (an exchange argument makes that
/// exact — DESIGN.md §10.1).  Throws InvalidArgument when
/// !maxflow_solvable(instance) or when must_accept load alone exceeds a
/// capacity.
AdmissionOpt solve_admission_opt_maxflow(const AdmissionInstance& instance);

/// Greedy upper bound: repeatedly reject the request with the best
/// (residual coverage / cost) ratio until all excesses are met.  Fast and
/// feasible; used as the B&B incumbent and as a standalone heuristic.
AdmissionOpt greedy_admission_rejection(const AdmissionInstance& instance);

/// The paper's combinatorial lower bound Q = max_e(|REQ_e| − c_e)⁺ on the
/// *number* of rejected requests (hence on cost for unit costs).
std::int64_t excess_lower_bound(const AdmissionInstance& instance);

}  // namespace minrej

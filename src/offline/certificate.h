// certificate.h — machine-checkable LP-duality lower bounds on admission
// OPT.
//
// Every ratio BENCH_e17 reports divides by some notion of OPT.  On the
// single-edge-disjoint scenarios the max-flow backend computes it exactly;
// everywhere else the solver is either heuristic or unaffordable, so the
// measurement ships a *witness* instead: a feasible dual of the covering
// LP (lp/covering_lp.h) whose value D(y) provably lower-bounds OPT.  The
// verifier recomputes D(y) from the instance in O(nnz) — it never trusts
// the solver, the builder, or the claimed value.
//
// Weak duality, in the repo's LP conventions (rows only for overloaded
// edges, must_accept requests pinned to rejection fraction 0): for ANY
// y ≥ 0 over any edge subset,
//
//   D(y) = Σ_e y_e · excess_e − Σ_{i rejectable} (Σ_{e ∋ i} y_e − p_i)⁺
//        ≤ LP-OPT ≤ OPT,
//
// where excess_e = |REQ_e| − c_e counts ALL requests (must_accept load
// included) and may be negative for non-overloaded edges the certificate
// chooses to carry (such entries only lower D, never break soundness).
// Construction and the exactness proof on disjoint instances are in
// DESIGN.md §10.2.
#pragma once

#include <string>
#include <vector>

#include "graph/request.h"

namespace minrej {

/// A dual solution: y[k] ≥ 0 paired with edges[k], plus the value the
/// builder claims for it.  Sparse — edges not listed carry y = 0.
struct DualCertificate {
  std::vector<EdgeId> edges;
  std::vector<double> y;
  double claimed_value = 0.0;
};

/// verify_certificate's verdict.  `value` is the recomputed D(y) (valid
/// whenever `feasible`); `claim_ok` additionally requires the claimed
/// value not to overstate it.
struct CertificateVerdict {
  bool feasible = false;
  bool claim_ok = false;
  double value = 0.0;
  std::string error;
};

/// Builds the best dual this module knows how to construct: the per-edge
/// quantile dual (y_e = the excess_e-th smallest rejectable cost on e —
/// exact on single-edge-disjoint instances), a geometric scale grid over
/// it (overlapping requests can make a damped dual strictly better), and
/// the best single-edge dual, keeping the candidate with the largest
/// recomputed D(y).  claimed_value is set to that recomputed value, so
/// verify_certificate always passes on a fresh certificate.  Throws
/// InvalidArgument on infeasible instances (must_accept load over
/// capacity).
DualCertificate build_dual_certificate(const AdmissionInstance& instance);

/// Checks the certificate against the instance: edge ids in range and
/// unique, every y finite and ≥ 0 (else !feasible), then recomputes D(y)
/// and checks claimed_value ≤ D(y) + tolerance.  Never throws on bad
/// certificates — the verdict carries the reason.
CertificateVerdict verify_certificate(const AdmissionInstance& instance,
                                      const DualCertificate& certificate);

}  // namespace minrej

// maxflow.h — Dinic's max-flow on a flat CSR residual arena.
//
// The combinatorial workhorse behind the kMaxFlow admission-OPT backend
// (admission_opt.h): at 10⁶-request scale the simplex/branch-and-bound
// paths are hopeless, but the acceptance side of the single-edge-disjoint
// admission problem is a bipartite b-matching, which Dinic solves in
// near-linear time on unit-capacity left layers.
//
// Storage follows the house layout (DESIGN.md §7): arcs live in one flat
// array, twinned by index (arc i's residual twin is i ^ 1), and adjacency
// is a CSR built once after the last add_arc — no per-node vectors on the
// solve path.  Levels and arc cursors are flat arrays reused across BFS
// phases.
#pragma once

#include <cstdint>
#include <vector>

namespace minrej {

/// A directed flow network with integer capacities.  Usage: construct with
/// the node count, add_arc() every arc, then solve() once.  Zero-capacity
/// arcs are legal (they simply never carry flow) — callers like the
/// admission reduction emit them rather than special-casing saturated
/// resources.
class MaxFlowNetwork {
 public:
  explicit MaxFlowNetwork(std::size_t node_count);

  /// Adds arc from → to with capacity ≥ 0 and its residual twin (capacity
  /// 0).  Returns the forward arc's index; the twin is index ^ 1.  Must be
  /// called before solve().
  std::size_t add_arc(std::size_t from, std::size_t to,
                      std::int64_t capacity);

  /// Runs Dinic from source to sink and returns the max-flow value.
  /// Callable once per network.
  std::int64_t solve(std::size_t source, std::size_t sink);

  /// Flow carried by a forward arc after solve() (initial capacity minus
  /// residual).
  std::int64_t flow_on(std::size_t arc) const;

  /// Augmenting paths sent (instrumentation, mirrors AdmissionOpt::nodes).
  std::uint64_t augmentations() const noexcept { return augmentations_; }

  std::size_t node_count() const noexcept { return level_.size(); }
  std::size_t arc_count() const noexcept { return to_.size(); }

  /// Indicator of the source side of a minimum cut (nodes reachable from
  /// the source in the final residual graph).  Valid after solve().
  std::vector<bool> min_cut_source_side() const;

 private:
  void build_adjacency();
  bool bfs_levels(std::size_t source, std::size_t sink);
  std::int64_t send_one_path(std::size_t source, std::size_t sink);

  // Arcs, twinned by index: to_[i] is the head, tail_[i] the tail,
  // cap_[i] the residual capacity, initial_cap_[i] the capacity at build.
  std::vector<std::uint32_t> to_;
  std::vector<std::uint32_t> tail_;
  std::vector<std::int64_t> cap_;
  std::vector<std::int64_t> initial_cap_;
  // CSR over arcs keyed by tail, built once by build_adjacency().
  std::vector<std::size_t> adj_offset_;
  std::vector<std::uint32_t> adj_arcs_;
  // Per-phase scratch: BFS levels and the current-arc cursors.
  std::vector<std::uint32_t> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> path_;  // arc stack of the DFS walk
  std::uint64_t augmentations_ = 0;
  bool built_ = false;
  bool solved_ = false;
};

}  // namespace minrej

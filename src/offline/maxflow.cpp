#include "offline/maxflow.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace minrej {

namespace {
constexpr std::uint32_t kNoLevel = std::numeric_limits<std::uint32_t>::max();
}  // namespace

MaxFlowNetwork::MaxFlowNetwork(std::size_t node_count)
    : level_(node_count, kNoLevel), iter_(node_count, 0) {
  MINREJ_REQUIRE(node_count >= 1, "flow network needs at least one node");
  MINREJ_REQUIRE(node_count < kNoLevel, "flow network too large");
}

std::size_t MaxFlowNetwork::add_arc(std::size_t from, std::size_t to,
                                    std::int64_t capacity) {
  MINREJ_REQUIRE(from < node_count() && to < node_count(),
                 "flow arc endpoint out of range");
  MINREJ_REQUIRE(capacity >= 0, "flow arc capacity must be non-negative");
  MINREJ_REQUIRE(!built_, "arcs must be added before solve()");
  const std::size_t arc = to_.size();
  to_.push_back(static_cast<std::uint32_t>(to));
  tail_.push_back(static_cast<std::uint32_t>(from));
  cap_.push_back(capacity);
  initial_cap_.push_back(capacity);
  // Residual twin at arc ^ 1.
  to_.push_back(static_cast<std::uint32_t>(from));
  tail_.push_back(static_cast<std::uint32_t>(to));
  cap_.push_back(0);
  initial_cap_.push_back(0);
  return arc;
}

void MaxFlowNetwork::build_adjacency() {
  // Counting sort of arc ids by tail into one flat CSR.
  adj_offset_.assign(node_count() + 1, 0);
  for (std::uint32_t t : tail_) ++adj_offset_[t + 1];
  for (std::size_t v = 0; v < node_count(); ++v) {
    adj_offset_[v + 1] += adj_offset_[v];
  }
  adj_arcs_.resize(tail_.size());
  std::vector<std::size_t> cursor(adj_offset_.begin(),
                                  adj_offset_.end() - 1);
  for (std::size_t arc = 0; arc < tail_.size(); ++arc) {
    adj_arcs_[cursor[tail_[arc]]++] = static_cast<std::uint32_t>(arc);
  }
  built_ = true;
}

bool MaxFlowNetwork::bfs_levels(std::size_t source, std::size_t sink) {
  std::fill(level_.begin(), level_.end(), kNoLevel);
  queue_.clear();
  queue_.push_back(static_cast<std::uint32_t>(source));
  level_[source] = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t v = queue_[head];
    for (std::size_t k = adj_offset_[v]; k < adj_offset_[v + 1]; ++k) {
      const std::uint32_t arc = adj_arcs_[k];
      const std::uint32_t w = to_[arc];
      if (cap_[arc] > 0 && level_[w] == kNoLevel) {
        level_[w] = level_[v] + 1;
        queue_.push_back(w);
      }
    }
  }
  return level_[sink] != kNoLevel;
}

/// One augmenting path in the current level graph, advancing the shared
/// current-arc cursors (the standard Dinic amortization: an arc is
/// abandoned at most once per phase).  Returns the bottleneck sent, 0 when
/// the level graph is exhausted.
std::int64_t MaxFlowNetwork::send_one_path(std::size_t source,
                                           std::size_t sink) {
  path_.clear();
  std::size_t v = source;
  while (true) {
    if (v == sink) {
      std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
      for (std::uint32_t arc : path_) {
        bottleneck = std::min(bottleneck, cap_[arc]);
      }
      for (std::uint32_t arc : path_) {
        cap_[arc] -= bottleneck;
        cap_[arc ^ 1] += bottleneck;
      }
      ++augmentations_;
      return bottleneck;
    }
    bool advanced = false;
    for (; iter_[v] < adj_offset_[v + 1]; ++iter_[v]) {
      const std::uint32_t arc = adj_arcs_[iter_[v]];
      if (cap_[arc] > 0 && level_[to_[arc]] == level_[v] + 1) {
        path_.push_back(arc);
        v = to_[arc];
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    if (v == source) return 0;
    // Dead end: retreat one arc and skip past it at the predecessor.
    const std::uint32_t dead = path_.back();
    path_.pop_back();
    v = tail_[dead];
    ++iter_[v];
  }
}

std::int64_t MaxFlowNetwork::solve(std::size_t source, std::size_t sink) {
  MINREJ_REQUIRE(source < node_count() && sink < node_count(),
                 "flow terminal out of range");
  MINREJ_REQUIRE(source != sink, "source and sink must differ");
  MINREJ_REQUIRE(!solved_, "solve() may be called once per network");
  if (!built_) build_adjacency();
  std::int64_t total = 0;
  while (bfs_levels(source, sink)) {
    for (std::size_t v = 0; v < node_count(); ++v) iter_[v] = adj_offset_[v];
    while (const std::int64_t sent = send_one_path(source, sink)) {
      total += sent;
    }
  }
  solved_ = true;
  return total;
}

std::int64_t MaxFlowNetwork::flow_on(std::size_t arc) const {
  MINREJ_REQUIRE(arc < to_.size(), "flow arc out of range");
  MINREJ_REQUIRE(solved_, "flow_on() requires a solved network");
  return initial_cap_[arc] - cap_[arc];
}

std::vector<bool> MaxFlowNetwork::min_cut_source_side() const {
  MINREJ_REQUIRE(solved_, "min cut requires a solved network");
  // The final BFS of solve() failed to reach the sink, so level_ holds the
  // residual reachability that defines the cut.
  std::vector<bool> side(node_count(), false);
  for (std::size_t v = 0; v < node_count(); ++v) {
    side[v] = level_[v] != kNoLevel;
  }
  return side;
}

}  // namespace minrej

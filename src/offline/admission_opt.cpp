#include "offline/admission_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "offline/maxflow.h"
#include "util/check.h"

namespace minrej {

namespace {

/// Shared view of the covering structure: which rejectable requests sit on
/// which overloaded edge, and each edge's required rejection count.
struct CoverView {
  // candidates[k] = request ids on overloaded edge k (rejectable only).
  std::vector<std::vector<RequestId>> candidates;
  std::vector<std::int64_t> required;  // residual rejections needed per row
  std::vector<double> cost;            // per request
  std::vector<std::vector<std::size_t>> rows_of_request;
};

CoverView build_cover_view(const AdmissionInstance& instance) {
  const Graph& g = instance.graph();
  const std::size_t r = instance.request_count();

  std::vector<std::vector<RequestId>> on_edge(g.edge_count());
  std::vector<std::int64_t> must_accept_load(g.edge_count(), 0);
  for (std::size_t i = 0; i < r; ++i) {
    const Request& req = instance.request(static_cast<RequestId>(i));
    for (EdgeId e : req.edges) {
      if (req.must_accept) {
        ++must_accept_load[e];
      } else {
        on_edge[e].push_back(static_cast<RequestId>(i));
      }
    }
  }

  CoverView view;
  view.cost.resize(r);
  view.rows_of_request.resize(r);
  for (std::size_t i = 0; i < r; ++i) {
    view.cost[i] = instance.request(static_cast<RequestId>(i)).cost;
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const std::int64_t load =
        static_cast<std::int64_t>(on_edge[e].size()) + must_accept_load[e];
    const std::int64_t excess = load - g.capacity(static_cast<EdgeId>(e));
    if (excess <= 0) continue;
    MINREJ_REQUIRE(
        excess <= static_cast<std::int64_t>(on_edge[e].size()),
        "must_accept requests alone exceed an edge capacity — infeasible");
    const std::size_t row = view.candidates.size();
    view.candidates.push_back(on_edge[e]);
    view.required.push_back(excess);
    for (RequestId i : on_edge[e]) view.rows_of_request[i].push_back(row);
  }
  return view;
}

/// Depth-first branch-and-bound over rejection decisions.
class BranchAndBound {
 public:
  BranchAndBound(const CoverView& view, std::uint64_t node_budget)
      : view_(view), node_budget_(node_budget),
        state_(view.cost.size(), Decision::kFree),
        residual_(view.required) {}

  enum class Decision : std::uint8_t { kFree, kRejected, kAccepted };

  void set_incumbent(double cost, std::vector<bool> rejected) {
    best_cost_ = cost;
    best_rejected_ = std::move(rejected);
  }

  void run() { dfs(0.0); }

  double best_cost() const noexcept { return best_cost_; }
  const std::vector<bool>& best_rejected() const noexcept {
    return best_rejected_;
  }
  std::uint64_t nodes() const noexcept { return nodes_; }
  bool exhausted_budget() const noexcept { return nodes_ >= node_budget_; }

 private:
  /// Lower bound on the additional cost needed from the current state:
  /// the most expensive single row, costed by its cheapest free candidates.
  /// (Rows overlap, so summing rows would over-count; the max is valid.)
  double remaining_bound() {
    double bound = 0.0;
    for (std::size_t row = 0; row < view_.candidates.size(); ++row) {
      const std::int64_t need = residual_[row];
      if (need <= 0) continue;
      scratch_.clear();
      for (RequestId i : view_.candidates[row]) {
        if (state_[i] == Decision::kFree) scratch_.push_back(view_.cost[i]);
      }
      if (static_cast<std::int64_t>(scratch_.size()) < need) {
        return std::numeric_limits<double>::infinity();  // dead branch
      }
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(need - 1),
                       scratch_.end());
      double row_cost = 0.0;
      for (std::int64_t k = 0; k < need; ++k) {
        row_cost += scratch_[static_cast<std::size_t>(k)];
      }
      bound = std::max(bound, row_cost);
    }
    return bound;
  }

  /// Most-constrained unmet row (largest residual, ties by fewest free
  /// candidates) or size() if all rows are met.
  std::size_t pick_row() {
    std::size_t best = view_.candidates.size();
    std::int64_t best_need = 0;
    std::size_t best_slack = std::numeric_limits<std::size_t>::max();
    for (std::size_t row = 0; row < view_.candidates.size(); ++row) {
      if (residual_[row] <= 0) continue;
      std::size_t free_count = 0;
      for (RequestId i : view_.candidates[row]) {
        if (state_[i] == Decision::kFree) ++free_count;
      }
      const std::size_t slack =
          free_count - static_cast<std::size_t>(residual_[row]);
      if (best == view_.candidates.size() || residual_[row] > best_need ||
          (residual_[row] == best_need && slack < best_slack)) {
        best = row;
        best_need = residual_[row];
        best_slack = slack;
      }
    }
    return best;
  }

  void reject(RequestId i) {
    state_[i] = Decision::kRejected;
    for (std::size_t row : view_.rows_of_request[i]) --residual_[row];
  }
  void unreject(RequestId i) {
    state_[i] = Decision::kFree;
    for (std::size_t row : view_.rows_of_request[i]) ++residual_[row];
  }

  void dfs(double cost_so_far) {
    if (nodes_ >= node_budget_) return;
    ++nodes_;
    if (cost_so_far >= best_cost_ - 1e-12) return;

    const std::size_t row = pick_row();
    if (row == view_.candidates.size()) {
      // All rows satisfied: record incumbent.
      best_cost_ = cost_so_far;
      best_rejected_.assign(state_.size(), false);
      for (std::size_t i = 0; i < state_.size(); ++i) {
        best_rejected_[i] = state_[i] == Decision::kRejected;
      }
      return;
    }

    const double bound = remaining_bound();
    if (cost_so_far + bound >= best_cost_ - 1e-12) return;

    // Complete branching for covering: to satisfy `row`, some free candidate
    // must be rejected.  Try each free candidate i in order as "the
    // smallest-index rejected candidate of this row": reject i, and forbid
    // (accept) all free candidates before it.
    std::vector<RequestId> frees;
    for (RequestId i : view_.candidates[row]) {
      if (state_[i] == Decision::kFree) frees.push_back(i);
    }
    // Cheapest-first ordering finds good incumbents sooner.
    std::sort(frees.begin(), frees.end(), [this](RequestId a, RequestId b) {
      return view_.cost[a] < view_.cost[b];
    });

    for (std::size_t idx = 0; idx < frees.size(); ++idx) {
      const RequestId i = frees[idx];
      reject(i);
      dfs(cost_so_far + view_.cost[i]);
      unreject(i);
      // Exclude i from rejection in the remaining branches of this node.
      state_[i] = Decision::kAccepted;
      // Prune: if the row can no longer be satisfied, stop.
      std::size_t still_free = 0;
      for (RequestId j : view_.candidates[row]) {
        if (state_[j] == Decision::kFree) ++still_free;
      }
      if (static_cast<std::int64_t>(still_free) < residual_[row]) {
        // restore and return
        for (std::size_t k = 0; k <= idx; ++k) {
          if (state_[frees[k]] == Decision::kAccepted) {
            state_[frees[k]] = Decision::kFree;
          }
        }
        return;
      }
    }
    for (RequestId i : frees) {
      if (state_[i] == Decision::kAccepted) state_[i] = Decision::kFree;
    }
  }

  const CoverView& view_;
  std::uint64_t node_budget_;
  std::uint64_t nodes_ = 0;
  std::vector<Decision> state_;
  std::vector<std::int64_t> residual_;
  std::vector<double> scratch_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<bool> best_rejected_;
};

}  // namespace

AdmissionOpt greedy_admission_rejection(const AdmissionInstance& instance) {
  const CoverView view = build_cover_view(instance);
  const std::size_t r = instance.request_count();

  std::vector<std::int64_t> residual = view.required;
  std::vector<bool> rejected(r, false);
  auto unmet = [&] {
    for (std::int64_t need : residual) {
      if (need > 0) return true;
    }
    return false;
  };

  double total = 0.0;
  while (unmet()) {
    // Pick the request with the highest residual-coverage per unit cost.
    double best_ratio = -1.0;
    RequestId best = kInvalidId;
    for (std::size_t i = 0; i < r; ++i) {
      if (rejected[i] || view.rows_of_request[i].empty()) continue;
      std::int64_t gain = 0;
      for (std::size_t row : view.rows_of_request[i]) {
        if (residual[row] > 0) ++gain;
      }
      if (gain == 0) continue;
      const double ratio = static_cast<double>(gain) / view.cost[i];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<RequestId>(i);
      }
    }
    MINREJ_CHECK(best != kInvalidId,
                 "greedy stuck: unmet excess with no candidates");
    rejected[best] = true;
    total += view.cost[best];
    for (std::size_t row : view.rows_of_request[best]) --residual[row];
  }

  AdmissionOpt result;
  result.rejected_cost = total;
  result.accepted.resize(r);
  for (std::size_t i = 0; i < r; ++i) result.accepted[i] = !rejected[i];
  result.exact = false;  // heuristic
  return result;
}

AdmissionOpt solve_admission_opt(const AdmissionInstance& instance,
                                 std::uint64_t node_budget) {
  if (node_budget == 0) node_budget = 50'000'000;
  const CoverView view = build_cover_view(instance);
  const std::size_t r = instance.request_count();

  AdmissionOpt result;
  if (view.candidates.empty()) {
    // No overloaded edge: accept everything.
    result.rejected_cost = 0.0;
    result.accepted.assign(r, true);
    result.nodes = 0;
    result.exact = true;
    return result;
  }

  const AdmissionOpt greedy = greedy_admission_rejection(instance);
  std::vector<bool> greedy_rejected(r);
  for (std::size_t i = 0; i < r; ++i) greedy_rejected[i] = !greedy.accepted[i];

  BranchAndBound bb(view, node_budget);
  bb.set_incumbent(greedy.rejected_cost, std::move(greedy_rejected));
  bb.run();

  result.rejected_cost = bb.best_cost();
  result.accepted.resize(r);
  for (std::size_t i = 0; i < r; ++i) {
    result.accepted[i] = !bb.best_rejected()[i];
  }
  result.nodes = bb.nodes();
  result.exact = !bb.exhausted_budget();

  MINREJ_CHECK(is_feasible_acceptance(instance, result.accepted),
               "offline solver produced an infeasible acceptance");
  return result;
}

bool maxflow_solvable(const AdmissionInstance& instance) {
  for (const Request& req : instance.requests()) {
    if (!req.must_accept && req.edges.size() != 1) return false;
  }
  return true;
}

AdmissionOpt solve_admission_opt_maxflow(const AdmissionInstance& instance) {
  MINREJ_REQUIRE(maxflow_solvable(instance),
                 "kMaxFlow backend needs single-edge rejectable requests");
  const Graph& g = instance.graph();
  const std::size_t r = instance.request_count();
  const std::size_t m = g.edge_count();

  // Capacity left for the rejectable requests once must_accept load is
  // pinned.  Same feasibility condition (and message) as build_cover_view.
  std::vector<std::int64_t> remaining(g.capacities().begin(),
                                      g.capacities().end());
  std::vector<std::vector<RequestId>> on_edge(m);
  for (std::size_t i = 0; i < r; ++i) {
    const Request& req = instance.request(static_cast<RequestId>(i));
    if (req.must_accept) {
      for (EdgeId e : req.edges) --remaining[e];
    } else {
      on_edge[req.edges.front()].push_back(static_cast<RequestId>(i));
    }
  }
  for (std::int64_t rem : remaining) {
    MINREJ_REQUIRE(
        rem >= 0,
        "must_accept requests alone exceed an edge capacity — infeasible");
  }

  // Bipartite acceptance network: source → request (cap 1) → its edge →
  // sink (cap = remaining capacity).  Max flow = max number of rejectable
  // requests acceptable simultaneously; with single-edge requests the
  // per-edge flow decomposes, so WHICH requests each edge accepts is a
  // free choice the cost objective settles below.
  const std::size_t source = 0;
  const std::size_t first_request = 1;
  const std::size_t first_edge = first_request + r;
  const std::size_t sink = first_edge + m;
  MaxFlowNetwork net(sink + 1);
  for (std::size_t i = 0; i < r; ++i) {
    const Request& req = instance.request(static_cast<RequestId>(i));
    if (req.must_accept) continue;
    net.add_arc(source, first_request + i, 1);
    net.add_arc(first_request + i, first_edge + req.edges.front(), 1);
  }
  std::vector<std::size_t> edge_arc(m);
  for (std::size_t e = 0; e < m; ++e) {
    edge_arc[e] = net.add_arc(first_edge + e, sink, remaining[e]);
  }
  const std::int64_t flow = net.solve(source, sink);

  AdmissionOpt result;
  result.accepted.assign(r, true);
  result.nodes = net.augmentations();
  result.exact = true;

  std::int64_t accepted_total = 0;
  for (std::size_t e = 0; e < m; ++e) {
    const auto accept_count =
        static_cast<std::size_t>(net.flow_on(edge_arc[e]));
    accepted_total += static_cast<std::int64_t>(accept_count);
    MINREJ_CHECK(accept_count ==
                     std::min(on_edge[e].size(),
                              static_cast<std::size_t>(remaining[e])),
                 "max flow under-filled an edge");
    if (accept_count == on_edge[e].size()) continue;
    // Exchange argument: with every rejectable request on exactly one
    // edge, any optimum accepts exactly accept_count requests here, and
    // swapping an accepted request for a costlier rejected one never hurts
    // — so keeping the accept_count most expensive is optimal.  Ties break
    // deterministically by id.
    std::vector<RequestId>& ids = on_edge[e];
    std::sort(ids.begin(), ids.end(), [&](RequestId a, RequestId b) {
      const double ca = instance.request(a).cost;
      const double cb = instance.request(b).cost;
      return ca != cb ? ca > cb : a < b;
    });
    for (std::size_t k = accept_count; k < ids.size(); ++k) {
      result.accepted[ids[k]] = false;
      result.rejected_cost += instance.request(ids[k]).cost;
    }
  }
  MINREJ_CHECK(flow == accepted_total,
               "per-edge flows disagree with the max-flow value");
  MINREJ_CHECK(is_feasible_acceptance(instance, result.accepted),
               "max-flow backend produced an infeasible acceptance");
  return result;
}

AdmissionOpt solve_admission_opt(const AdmissionInstance& instance,
                                 OptBackend backend,
                                 std::uint64_t node_budget) {
  switch (backend) {
    case OptBackend::kMaxFlow:
      return solve_admission_opt_maxflow(instance);
    case OptBackend::kBranchAndBound:
      return solve_admission_opt(instance, node_budget);
    case OptBackend::kAuto:
      break;
  }
  return maxflow_solvable(instance)
             ? solve_admission_opt_maxflow(instance)
             : solve_admission_opt(instance, node_budget);
}

std::int64_t excess_lower_bound(const AdmissionInstance& instance) {
  return instance.max_excess();
}

}  // namespace minrej

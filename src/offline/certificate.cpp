#include "offline/certificate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace minrej {

namespace {

/// D(y) over a dense y (one entry per edge): Σ y_e·excess_e minus the
/// rejectable-request penalties.  One pass over the edges plus one pass
/// over the request/edge incidences — the verifier's whole cost.
double dual_value(const AdmissionInstance& instance,
                  const std::vector<double>& y_dense,
                  const std::vector<std::int64_t>& excess) {
  double value = 0.0;
  for (std::size_t e = 0; e < y_dense.size(); ++e) {
    if (y_dense[e] != 0.0) {
      value += y_dense[e] * static_cast<double>(excess[e]);
    }
  }
  for (const Request& req : instance.requests()) {
    if (req.must_accept) continue;
    double sum = 0.0;
    for (EdgeId e : req.edges) sum += y_dense[e];
    if (sum > req.cost) value -= sum - req.cost;
  }
  return value;
}

std::vector<std::int64_t> signed_excess(const AdmissionInstance& instance) {
  const Graph& g = instance.graph();
  std::vector<std::int64_t> excess(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    excess[e] =
        instance.edge_load()[e] - g.capacity(static_cast<EdgeId>(e));
  }
  return excess;
}

/// Damping factors tried over the quantile dual.  On disjoint instances
/// t = 1 is provably optimal; with overlapping requests the penalty term
/// sums y over several edges per request, and a damped (or occasionally
/// amplified) dual trades first-term mass against penalty mass.  D(t·y)
/// is concave piecewise-linear in t, so a geometric grid brackets the
/// maximum well.
constexpr double kScales[] = {1.0,          1.25,         1.5,
                              0.75,         0.5,          0.25,
                              0.125,        1.0 / 16.0,   1.0 / 32.0,
                              1.0 / 64.0,   1.0 / 128.0,  1.0 / 256.0,
                              1.0 / 1024.0, 1.0 / 4096.0};

}  // namespace

DualCertificate build_dual_certificate(const AdmissionInstance& instance) {
  const Graph& g = instance.graph();
  const std::size_t m = g.edge_count();
  const std::vector<std::int64_t> excess = signed_excess(instance);

  // Rejectable costs per overloaded edge.
  std::vector<std::vector<double>> costs(m);
  for (const Request& req : instance.requests()) {
    if (req.must_accept) continue;
    for (EdgeId e : req.edges) {
      if (excess[e] > 0) costs[e].push_back(req.cost);
    }
  }

  // Quantile dual: y_e = the excess_e-th smallest rejectable cost on e.
  // Any feasible rejection set removes ≥ excess_e rejectable requests
  // from e, so it pays at least the excess_e cheapest — which is exactly
  // what this dual charges on a disjoint instance (DESIGN.md §10.2).
  std::vector<double> quantile(m, 0.0);
  double best_single_value = 0.0;
  EdgeId best_single_edge = 0;
  double best_single_y = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    const std::int64_t q = excess[e];
    if (q <= 0) continue;
    MINREJ_REQUIRE(
        q <= static_cast<std::int64_t>(costs[e].size()),
        "must_accept requests alone exceed an edge capacity — infeasible");
    std::sort(costs[e].begin(), costs[e].end());
    quantile[e] = costs[e][static_cast<std::size_t>(q - 1)];
    // The single-edge dual {e: y = quantile} evaluates analytically to
    // the sum of the q cheapest costs on e (requests elsewhere see y = 0).
    double single = 0.0;
    for (std::int64_t k = 0; k < q; ++k) {
      single += costs[e][static_cast<std::size_t>(k)];
    }
    if (single > best_single_value) {
      best_single_value = single;
      best_single_edge = static_cast<EdgeId>(e);
      best_single_y = quantile[e];
    }
  }

  double best_value = 0.0;  // the empty dual: D = 0 ≤ OPT always holds
  double best_scale = 0.0;
  std::vector<double> scaled(m, 0.0);
  for (const double t : kScales) {
    for (std::size_t e = 0; e < m; ++e) scaled[e] = t * quantile[e];
    const double value = dual_value(instance, scaled, excess);
    if (value > best_value) {
      best_value = value;
      best_scale = t;
    }
  }

  DualCertificate cert;
  if (best_single_value > best_value) {
    cert.edges.push_back(best_single_edge);
    cert.y.push_back(best_single_y);
    cert.claimed_value = best_single_value;
    return cert;
  }
  for (std::size_t e = 0; e < m; ++e) {
    if (quantile[e] > 0.0 && best_scale > 0.0) {
      cert.edges.push_back(static_cast<EdgeId>(e));
      cert.y.push_back(best_scale * quantile[e]);
    }
  }
  cert.claimed_value = best_value;
  return cert;
}

CertificateVerdict verify_certificate(const AdmissionInstance& instance,
                                      const DualCertificate& certificate) {
  CertificateVerdict verdict;
  const std::size_t m = instance.graph().edge_count();
  if (certificate.edges.size() != certificate.y.size()) {
    verdict.error = "edge/y length mismatch";
    return verdict;
  }
  std::vector<double> y_dense(m, 0.0);
  std::vector<bool> seen(m, false);
  for (std::size_t k = 0; k < certificate.edges.size(); ++k) {
    const EdgeId e = certificate.edges[k];
    const double y = certificate.y[k];
    if (e >= m) {
      verdict.error = "edge id out of range";
      return verdict;
    }
    if (seen[e]) {
      verdict.error = "duplicate edge in certificate";
      return verdict;
    }
    if (!std::isfinite(y) || y < 0.0) {
      verdict.error = "dual variable must be finite and non-negative";
      return verdict;
    }
    seen[e] = true;
    y_dense[e] = y;
  }
  verdict.feasible = true;
  verdict.value =
      dual_value(instance, y_dense, signed_excess(instance));
  const double tolerance = 1e-9 * std::max(1.0, std::abs(verdict.value));
  verdict.claim_ok = certificate.claimed_value <= verdict.value + tolerance;
  if (!verdict.claim_ok) verdict.error = "claimed value overstates D(y)";
  return verdict;
}

}  // namespace minrej

// multicover.h — offline ground truth for set cover with repetitions.
//
// The offline version of OSCR is weighted multicover: choose a sub-family
// C ⊆ S of minimum cost such that every element j belongs to at least
// demand_j sets of C (each set counts once — "different subsets", paper §1).
//
// Provides the Chvátal-style greedy (the classic Θ(log n) approximation,
// also the paper's reference point for the offline problem) and an exact
// branch-and-bound used as the denominator of measured competitive ratios.
// The B&B is deliberately independent of the admission-control solver so
// the §4 reduction can be validated against it (tests cross-check both).
#pragma once

#include <cstdint>
#include <vector>

#include "setcover/instance.h"

namespace minrej {

/// Result of an offline multicover solver.
struct MulticoverResult {
  double cost = 0.0;
  std::vector<bool> chosen;  ///< indicator per set
  std::uint64_t nodes = 0;   ///< B&B nodes (0 for greedy)
  bool exact = true;         ///< false if heuristic or budget-capped
};

/// Greedy multicover: repeatedly pick the set with the largest number of
/// still-deficient elements per unit cost.  Feasible whenever the instance
/// is; O(m^2 n) worst case, plenty for our sizes.
MulticoverResult greedy_multicover(const CoverInstance& instance);

/// Exact optimum by branch-and-bound (requires instance.feasible()).
/// `node_budget` == 0 selects a generous default; if exceeded, the best
/// incumbent is returned with exact == false.
MulticoverResult solve_multicover_opt(const CoverInstance& instance,
                                      std::uint64_t node_budget = 0);

}  // namespace minrej

// request.h — communication requests and request sequences (paper §1).
//
// A request is a set of edges plus a positive cost p_i.  The paper's
// concluding remark (§6) notes its algorithms never use path structure —
// "All the algorithms treated a request as an arbitrary subset of edges" —
// so Request stores a sorted, deduplicated edge list; the path generators in
// generators.h produce requests that *are* simple paths for workload
// fidelity, but nothing downstream assumes it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace minrej {

/// One admission-control request: an edge subset with a positive cost.
struct Request {
  std::vector<EdgeId> edges;  ///< sorted, unique
  double cost = 1.0;          ///< p_i > 0
  /// Reduction support (paper §4): phase-2 element requests must never be
  /// rejected — they carry no weight and force the excess onto phase-1
  /// requests (the sets).  Plain workloads leave this false.
  bool must_accept = false;

  Request() = default;
  Request(std::vector<EdgeId> edge_set, double request_cost,
          bool must_accept_flag = false);

  /// Bulk CSR path: builds from an already-sorted, unique edge span (e.g.
  /// a covering-substrate arena slice) without re-sorting.  Sortedness is
  /// validated — the contract every consumer relies on must not be
  /// assumable away — but the copy is a single memcpy-shaped insert.
  static Request from_sorted(std::span<const EdgeId> edge_set,
                             double request_cost,
                             bool must_accept_flag = false);
};

/// An admission-control instance: the graph plus the online request arrival
/// order.  Validation checks every edge id and every cost once, up front,
/// so the online algorithms can assume well-formed input.
class AdmissionInstance {
 public:
  AdmissionInstance(Graph graph, std::vector<Request> requests);

  const Graph& graph() const noexcept { return graph_; }
  const std::vector<Request>& requests() const noexcept { return requests_; }
  std::size_t request_count() const noexcept { return requests_.size(); }
  const Request& request(RequestId i) const {
    MINREJ_REQUIRE(i < requests_.size(), "request id out of range");
    return requests_[i];
  }

  /// Total cost of all (non-must-accept) requests; a trivial upper bound on
  /// any algorithm's rejected cost.
  double total_cost() const noexcept { return total_cost_; }

  /// max over edges of (#requests containing e − c_e), clamped at 0.  The
  /// paper's Theorem 4 proof uses Q as a lower bound on OPT for the
  /// unweighted case.
  std::int64_t max_excess() const noexcept { return max_excess_; }

  /// Per-edge request multiplicity |REQ_e| over the whole sequence.
  const std::vector<std::int64_t>& edge_load() const noexcept {
    return edge_load_;
  }

  std::string summary() const;

 private:
  Graph graph_;
  std::vector<Request> requests_;
  double total_cost_ = 0.0;
  std::int64_t max_excess_ = 0;
  std::vector<std::int64_t> edge_load_;
};

/// Verifies that `accepted` (indicator per request) satisfies every edge
/// capacity of the instance.  Used by tests and by the offline solvers.
bool is_feasible_acceptance(const AdmissionInstance& instance,
                            const std::vector<bool>& accepted);

/// Total cost of rejected requests under an acceptance vector.
double rejected_cost(const AdmissionInstance& instance,
                     const std::vector<bool>& accepted);

}  // namespace minrej

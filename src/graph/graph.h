// graph.h — the capacitated directed graph the admission-control problem
// lives on (paper §1: G=(V,E), integer capacities c_e > 0, c = max_e c_e).
//
// The graph is immutable once built (capacities can be *decreased* by the
// cost-classification step of the fractional algorithm, which permanently
// accepts expensive requests — see FractionalAdmission), and stores edges in
// a flat array so EdgeId doubles as a dense index for per-edge algorithm
// state.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/check.h"

namespace minrej {

/// A directed edge with an integer capacity.
struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  std::int64_t capacity = 1;
};

/// Immutable capacitated digraph; EdgeId is a dense index into edges().
class Graph {
 public:
  Graph() = default;

  /// Builds and validates: capacities must be >= 1, endpoints in range.
  Graph(std::size_t vertex_count, std::vector<Edge> edges);

  /// Bulk CSR build path: the §4 reduction's star in one pass — center
  /// vertex 0, leaf j+1 for every capacity entry, edge j with capacity
  /// capacities[j].  Used by the reduction layers to realize a substrate's
  /// degree capacities as a graph without per-edge vector churn.
  static Graph star(std::span<const std::int64_t> capacities);

  std::size_t vertex_count() const noexcept { return vertex_count_; }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  const Edge& edge(EdgeId e) const {
    MINREJ_REQUIRE(e < edges_.size(), "edge id out of range");
    return edges_[e];
  }
  std::span<const Edge> edges() const noexcept { return edges_; }

  std::int64_t capacity(EdgeId e) const { return edge(e).capacity; }
  /// Flat per-edge capacity array (dense in EdgeId) — the engine-binding
  /// view (core/substrate_traits.h): hot loops index this span instead of
  /// bounds-checking through edge().
  std::span<const std::int64_t> capacities() const noexcept {
    return capacities_;
  }

  /// c = max_e c_e (paper notation); 0 for an edgeless graph.
  std::int64_t max_capacity() const noexcept { return max_capacity_; }
  /// min_e c_e; 0 for an edgeless graph.
  std::int64_t min_capacity() const noexcept { return min_capacity_; }

  /// Outgoing edge ids of a vertex (for path generators).
  std::span<const EdgeId> out_edges(VertexId v) const;

  /// Human-readable one-line summary ("|V|=5 |E|=8 c=4").
  std::string summary() const;

 private:
  std::size_t vertex_count_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::int64_t> capacities_;  // flat copy, dense in EdgeId
  std::int64_t max_capacity_ = 0;
  std::int64_t min_capacity_ = 0;
  // CSR-style adjacency for out_edges().
  std::vector<EdgeId> adj_edges_;
  std::vector<std::uint32_t> adj_offset_;
};

}  // namespace minrej

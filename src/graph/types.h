// types.h — index types shared across the graph and core modules.
//
// Plain typedefs (not strong types) because edges, vertices and requests are
// used as vector indices on every hot path; the module boundaries below keep
// them from being mixed up in practice and the test suite covers the
// conversions.
#pragma once

#include <cstddef>
#include <cstdint>

namespace minrej {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
using RequestId = std::uint32_t;

/// Sentinel for "no request" / "no edge" in sparse structures.
inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

}  // namespace minrej

// generators.h — graph topologies and request samplers for workloads.
//
// These produce the network substrates the experiments run on.  Topologies
// mirror the settings the admission-control literature cares about (the
// line, trees, meshes, general graphs — see the related-work discussion in
// paper §1), and the request samplers produce *simple paths* so the
// workloads match the problem statement even though the algorithms only see
// edge subsets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/request.h"
#include "util/rng.h"

namespace minrej {

/// Directed path with `edge_count` edges, all with capacity `capacity`.
/// Vertex i connects to i+1; EdgeId i is the edge (i -> i+1).
Graph make_line_graph(std::size_t edge_count, std::int64_t capacity);

/// Star: `leaf_count` edges center -> leaf, uniform capacity.  Vertex 0 is
/// the center.  The single-shared-resource topology: every request through
/// the center contends on its own edge only, so stars exercise the
/// single-edge analysis (and the set-cover reduction uses exactly this
/// one-edge-per-element shape).
Graph make_star_graph(std::size_t leaf_count, std::int64_t capacity);

/// Complete binary tree of the given depth (depth >= 1 gives 2 edges),
/// edges directed from the root down, uniform capacity.
Graph make_binary_tree(std::size_t depth, std::int64_t capacity);

/// rows x cols grid with rightward and downward edges, uniform capacity.
Graph make_grid_graph(std::size_t rows, std::size_t cols,
                      std::int64_t capacity);

/// Random digraph: `vertex_count` vertices, `edge_count` distinct directed
/// edges (no self loops), capacities uniform in [cap_min, cap_max].
Graph make_random_graph(std::size_t vertex_count, std::size_t edge_count,
                        std::int64_t cap_min, std::int64_t cap_max, Rng& rng);

/// A single edge with the given capacity — the minimal instance used by the
/// unit tests and the tightest stage for capacity-boundary behaviour.
Graph make_single_edge_graph(std::int64_t capacity);

/// Directed d-dimensional hypercube: 2^dimension vertices; for every vertex
/// v and bit b an edge v -> v^(1<<b) (both directions exist because the
/// complementary vertex also emits one).  The classic HPC interconnect
/// topology: m = d·2^d edges, diameter d.
Graph make_hypercube_graph(std::size_t dimension, std::int64_t capacity);

/// Random out-regular digraph: every vertex gets exactly `out_degree`
/// distinct out-neighbours (no self loops).  An expander-ish substrate for
/// the random-walk request sampler.
Graph make_regular_graph(std::size_t vertex_count, std::size_t out_degree,
                         std::int64_t capacity, Rng& rng);

// ---------------------------------------------------------------------------
// Request samplers.  All return edge *sets* that are simple paths in the
// given topology.
// ---------------------------------------------------------------------------

/// Contiguous subpath [first_edge, first_edge+length) on a line graph.
Request make_line_request(const Graph& line, std::size_t first_edge,
                          std::size_t length, double cost);

/// Uniformly random contiguous subpath of a line graph with length in
/// [min_len, max_len] (clamped to the line).
Request random_line_request(const Graph& line, Rng& rng, std::size_t min_len,
                            std::size_t max_len, double cost);

/// Random simple path via self-avoiding random walk from a random start,
/// up to max_edges edges (at least 1; walks stop early at dead ends).
Request random_walk_request(const Graph& graph, Rng& rng,
                            std::size_t max_edges, double cost);

/// Root-to-leaf path in a tree built by make_binary_tree.
Request random_tree_path_request(const Graph& tree, Rng& rng, double cost);

/// Monotone (right/down) staircase path between two random corners of a
/// grid built by make_grid_graph.
Request random_grid_path_request(const Graph& grid, std::size_t rows,
                                 std::size_t cols, Rng& rng, double cost);

}  // namespace minrej

#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace minrej {

Graph::Graph(std::size_t vertex_count, std::vector<Edge> edges)
    : vertex_count_(vertex_count), edges_(std::move(edges)) {
  MINREJ_REQUIRE(vertex_count_ > 0, "graph needs at least one vertex");
  for (const Edge& e : edges_) {
    MINREJ_REQUIRE(e.from < vertex_count_ && e.to < vertex_count_,
                   "edge endpoint out of range");
    MINREJ_REQUIRE(e.capacity >= 1, "edge capacity must be a positive integer");
  }
  if (!edges_.empty()) {
    max_capacity_ = 0;
    min_capacity_ = edges_.front().capacity;
    capacities_.reserve(edges_.size());
    for (const Edge& e : edges_) {
      max_capacity_ = std::max(max_capacity_, e.capacity);
      min_capacity_ = std::min(min_capacity_, e.capacity);
      capacities_.push_back(e.capacity);
    }
  }

  // Build CSR adjacency (counting sort by source vertex).
  adj_offset_.assign(vertex_count_ + 1, 0);
  for (const Edge& e : edges_) ++adj_offset_[e.from + 1];
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    adj_offset_[v + 1] += adj_offset_[v];
  }
  adj_edges_.resize(edges_.size());
  std::vector<std::uint32_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    adj_edges_[cursor[edges_[i].from]++] = static_cast<EdgeId>(i);
  }
}

Graph Graph::star(std::span<const std::int64_t> capacities) {
  MINREJ_REQUIRE(!capacities.empty(), "star needs at least one leaf");
  std::vector<Edge> edges;
  edges.reserve(capacities.size());
  for (std::size_t j = 0; j < capacities.size(); ++j) {
    edges.push_back({0, static_cast<VertexId>(j + 1), capacities[j]});
  }
  return Graph(capacities.size() + 1, std::move(edges));
}

std::span<const EdgeId> Graph::out_edges(VertexId v) const {
  MINREJ_REQUIRE(v < vertex_count_, "vertex id out of range");
  const std::uint32_t begin = adj_offset_[v];
  const std::uint32_t end = adj_offset_[v + 1];
  return {adj_edges_.data() + begin, end - begin};
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "|V|=" << vertex_count_ << " |E|=" << edges_.size()
     << " c=" << max_capacity_;
  return os.str();
}

}  // namespace minrej

#include "graph/request.h"

#include <algorithm>
#include <sstream>

namespace minrej {

Request::Request(std::vector<EdgeId> edge_set, double request_cost,
                 bool must_accept_flag)
    : edges(std::move(edge_set)), cost(request_cost),
      must_accept(must_accept_flag) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

Request Request::from_sorted(std::span<const EdgeId> edge_set,
                             double request_cost, bool must_accept_flag) {
  MINREJ_REQUIRE(std::is_sorted(edge_set.begin(), edge_set.end()) &&
                     std::adjacent_find(edge_set.begin(), edge_set.end()) ==
                         edge_set.end(),
                 "from_sorted requires sorted, unique edges");
  Request r;
  r.edges.assign(edge_set.begin(), edge_set.end());
  r.cost = request_cost;
  r.must_accept = must_accept_flag;
  return r;
}

AdmissionInstance::AdmissionInstance(Graph graph,
                                     std::vector<Request> requests)
    : graph_(std::move(graph)), requests_(std::move(requests)) {
  edge_load_.assign(graph_.edge_count(), 0);
  for (const Request& r : requests_) {
    MINREJ_REQUIRE(!r.edges.empty(), "request with empty edge set");
    MINREJ_REQUIRE(r.cost > 0.0, "request cost must be positive");
    MINREJ_REQUIRE(std::is_sorted(r.edges.begin(), r.edges.end()) &&
                       std::adjacent_find(r.edges.begin(), r.edges.end()) ==
                           r.edges.end(),
                   "request edges must be sorted and unique");
    for (EdgeId e : r.edges) {
      MINREJ_REQUIRE(e < graph_.edge_count(), "request edge id out of range");
      ++edge_load_[e];
    }
    if (!r.must_accept) total_cost_ += r.cost;
  }
  for (std::size_t e = 0; e < edge_load_.size(); ++e) {
    max_excess_ = std::max(
        max_excess_, edge_load_[e] - graph_.capacity(static_cast<EdgeId>(e)));
  }
  max_excess_ = std::max<std::int64_t>(max_excess_, 0);
}

std::string AdmissionInstance::summary() const {
  std::ostringstream os;
  os << graph_.summary() << " requests=" << requests_.size()
     << " Q=" << max_excess_;
  return os.str();
}

bool is_feasible_acceptance(const AdmissionInstance& instance,
                            const std::vector<bool>& accepted) {
  MINREJ_REQUIRE(accepted.size() == instance.request_count(),
                 "acceptance vector size mismatch");
  std::vector<std::int64_t> used(instance.graph().edge_count(), 0);
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (!accepted[i]) continue;
    for (EdgeId e : instance.request(static_cast<RequestId>(i)).edges) {
      if (++used[e] > instance.graph().capacity(e)) return false;
    }
  }
  return true;
}

double rejected_cost(const AdmissionInstance& instance,
                     const std::vector<bool>& accepted) {
  MINREJ_REQUIRE(accepted.size() == instance.request_count(),
                 "acceptance vector size mismatch");
  double cost = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (!accepted[i]) cost += instance.request(static_cast<RequestId>(i)).cost;
  }
  return cost;
}

}  // namespace minrej

#include "graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>

namespace minrej {

Graph make_line_graph(std::size_t edge_count, std::int64_t capacity) {
  MINREJ_REQUIRE(edge_count >= 1, "line graph needs at least one edge");
  std::vector<Edge> edges;
  edges.reserve(edge_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    edges.push_back({static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                     capacity});
  }
  return Graph(edge_count + 1, std::move(edges));
}

Graph make_star_graph(std::size_t leaf_count, std::int64_t capacity) {
  MINREJ_REQUIRE(leaf_count >= 1, "star graph needs at least one leaf");
  std::vector<Edge> edges;
  edges.reserve(leaf_count);
  for (std::size_t i = 0; i < leaf_count; ++i) {
    edges.push_back({0, static_cast<VertexId>(i + 1), capacity});
  }
  return Graph(leaf_count + 1, std::move(edges));
}

Graph make_binary_tree(std::size_t depth, std::int64_t capacity) {
  MINREJ_REQUIRE(depth >= 1, "tree depth must be >= 1");
  // Heap numbering: vertex v has children 2v+1 and 2v+2.
  const std::size_t vertex_count = (std::size_t{1} << (depth + 1)) - 1;
  std::vector<Edge> edges;
  edges.reserve(vertex_count - 1);
  for (std::size_t v = 0; 2 * v + 2 < vertex_count; ++v) {
    edges.push_back({static_cast<VertexId>(v),
                     static_cast<VertexId>(2 * v + 1), capacity});
    edges.push_back({static_cast<VertexId>(v),
                     static_cast<VertexId>(2 * v + 2), capacity});
  }
  return Graph(vertex_count, std::move(edges));
}

Graph make_grid_graph(std::size_t rows, std::size_t cols,
                      std::int64_t capacity) {
  MINREJ_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  auto vid = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  std::vector<Edge> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({vid(r, c), vid(r, c + 1), capacity});
      if (r + 1 < rows) edges.push_back({vid(r, c), vid(r + 1, c), capacity});
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph make_random_graph(std::size_t vertex_count, std::size_t edge_count,
                        std::int64_t cap_min, std::int64_t cap_max, Rng& rng) {
  MINREJ_REQUIRE(vertex_count >= 2, "random graph needs >= 2 vertices");
  MINREJ_REQUIRE(1 <= cap_min && cap_min <= cap_max, "bad capacity range");
  MINREJ_REQUIRE(edge_count <= vertex_count * (vertex_count - 1),
                 "too many edges for a simple digraph");
  std::set<std::pair<VertexId, VertexId>> seen;
  std::vector<Edge> edges;
  edges.reserve(edge_count);
  while (edges.size() < edge_count) {
    const auto u = static_cast<VertexId>(rng.index(vertex_count));
    const auto v = static_cast<VertexId>(rng.index(vertex_count));
    if (u == v || !seen.emplace(u, v).second) continue;
    edges.push_back({u, v, rng.uniform_int(cap_min, cap_max)});
  }
  return Graph(vertex_count, std::move(edges));
}

Graph make_single_edge_graph(std::int64_t capacity) {
  return Graph(2, {Edge{0, 1, capacity}});
}

Graph make_hypercube_graph(std::size_t dimension, std::int64_t capacity) {
  MINREJ_REQUIRE(dimension >= 1 && dimension <= 20, "bad hypercube dimension");
  const std::size_t n = std::size_t{1} << dimension;
  std::vector<Edge> edges;
  edges.reserve(n * dimension);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t b = 0; b < dimension; ++b) {
      edges.push_back({static_cast<VertexId>(v),
                       static_cast<VertexId>(v ^ (std::size_t{1} << b)),
                       capacity});
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_regular_graph(std::size_t vertex_count, std::size_t out_degree,
                         std::int64_t capacity, Rng& rng) {
  MINREJ_REQUIRE(vertex_count >= 2, "regular graph needs >= 2 vertices");
  MINREJ_REQUIRE(out_degree >= 1 && out_degree < vertex_count,
                 "out_degree must be in [1, vertex_count)");
  std::vector<Edge> edges;
  edges.reserve(vertex_count * out_degree);
  for (std::size_t v = 0; v < vertex_count; ++v) {
    // Sample out_degree distinct targets from the other vertices.
    for (std::size_t idx : rng.sample_indices(vertex_count - 1, out_degree)) {
      const std::size_t target = idx < v ? idx : idx + 1;  // skip self
      edges.push_back({static_cast<VertexId>(v),
                       static_cast<VertexId>(target), capacity});
    }
  }
  return Graph(vertex_count, std::move(edges));
}

Request make_line_request(const Graph& line, std::size_t first_edge,
                          std::size_t length, double cost) {
  MINREJ_REQUIRE(length >= 1, "line request needs positive length");
  MINREJ_REQUIRE(first_edge + length <= line.edge_count(),
                 "line request out of range");
  std::vector<EdgeId> edges;
  edges.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    edges.push_back(static_cast<EdgeId>(first_edge + i));
  }
  return Request(std::move(edges), cost);
}

Request random_line_request(const Graph& line, Rng& rng, std::size_t min_len,
                            std::size_t max_len, double cost) {
  MINREJ_REQUIRE(min_len >= 1 && min_len <= max_len, "bad length range");
  max_len = std::min(max_len, line.edge_count());
  min_len = std::min(min_len, max_len);
  const std::size_t len = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(min_len),
                      static_cast<std::int64_t>(max_len)));
  const std::size_t first = rng.index(line.edge_count() - len + 1);
  return make_line_request(line, first, len, cost);
}

Request random_walk_request(const Graph& graph, Rng& rng,
                            std::size_t max_edges, double cost) {
  MINREJ_REQUIRE(max_edges >= 1, "walk needs at least one edge");
  MINREJ_REQUIRE(graph.edge_count() >= 1, "graph has no edges");
  // Restart until we find a start vertex with outgoing edges (the validated
  // topologies all have one; a fully-sink random graph would loop, so cap
  // the restarts).
  for (int attempt = 0; attempt < 256; ++attempt) {
    auto v = static_cast<VertexId>(rng.index(graph.vertex_count()));
    if (graph.out_edges(v).empty()) continue;
    std::vector<EdgeId> path;
    std::set<VertexId> visited{v};
    while (path.size() < max_edges) {
      const auto out = graph.out_edges(v);
      // Collect self-avoiding continuations.
      std::vector<EdgeId> options;
      for (EdgeId e : out) {
        if (!visited.count(graph.edge(e).to)) options.push_back(e);
      }
      if (options.empty()) break;
      const EdgeId e = options[rng.index(options.size())];
      path.push_back(e);
      v = graph.edge(e).to;
      visited.insert(v);
    }
    if (!path.empty()) return Request(std::move(path), cost);
  }
  throw InvalidArgument("random_walk_request: could not find a walk start");
}

Request random_tree_path_request(const Graph& tree, Rng& rng, double cost) {
  MINREJ_REQUIRE(tree.edge_count() >= 2, "tree too small");
  std::vector<EdgeId> path;
  VertexId v = 0;  // root
  for (;;) {
    const auto out = tree.out_edges(v);
    if (out.empty()) break;
    const EdgeId e = out[rng.index(out.size())];
    path.push_back(e);
    v = tree.edge(e).to;
  }
  return Request(std::move(path), cost);
}

Request random_grid_path_request(const Graph& grid, std::size_t rows,
                                 std::size_t cols, Rng& rng, double cost) {
  MINREJ_REQUIRE(rows * cols == grid.vertex_count(), "grid shape mismatch");
  MINREJ_REQUIRE(rows >= 2 || cols >= 2, "grid too small for a path");
  // Pick start (r0,c0) and end (r1,c1) with r0<=r1, c0<=c1, not equal.
  std::size_t r0, c0, r1, c1;
  do {
    r0 = rng.index(rows);
    r1 = r0 + rng.index(rows - r0);
    c0 = rng.index(cols);
    c1 = c0 + rng.index(cols - c0);
  } while (r0 == r1 && c0 == c1);

  // Walk a random monotone staircase from (r0,c0) to (r1,c1), following the
  // right/down edges make_grid_graph laid out.
  std::vector<EdgeId> path;
  std::size_t r = r0, c = c0;
  auto vid = [cols](std::size_t rr, std::size_t cc) {
    return static_cast<VertexId>(rr * cols + cc);
  };
  while (r < r1 || c < c1) {
    const bool can_right = c < c1;
    const bool can_down = r < r1;
    const bool go_right = can_right && (!can_down || rng.bernoulli(0.5));
    const VertexId here = vid(r, c);
    const VertexId next = go_right ? vid(r, c + 1) : vid(r + 1, c);
    // Find the edge here->next in the adjacency (grids have out-degree <= 2).
    EdgeId chosen = kInvalidId;
    for (EdgeId e : grid.out_edges(here)) {
      if (grid.edge(e).to == next) {
        chosen = e;
        break;
      }
    }
    MINREJ_CHECK(chosen != kInvalidId, "grid edge lookup failed");
    path.push_back(chosen);
    if (go_right) ++c; else ++r;
  }
  return Request(std::move(path), cost);
}

}  // namespace minrej

#include "setcover/set_system.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace minrej {

SetSystem::SetSystem(std::size_t element_count,
                     std::vector<std::vector<ElementId>> sets,
                     std::vector<double> costs)
    : element_count_(element_count), sets_(std::move(sets)),
      costs_(std::move(costs)) {
  MINREJ_REQUIRE(element_count_ >= 1, "ground set must be non-empty");
  MINREJ_REQUIRE(!sets_.empty(), "set family must be non-empty");
  if (costs_.empty()) costs_.assign(sets_.size(), 1.0);  // unit costs
  MINREJ_REQUIRE(sets_.size() == costs_.size(),
                 "sets/costs size mismatch");

  sets_of_.assign(element_count_, {});
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    auto& members = sets_[s];
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    MINREJ_REQUIRE(!members.empty(), "empty set in family");
    for (ElementId j : members) {
      MINREJ_REQUIRE(j < element_count_, "set contains out-of-range element");
      sets_of_[j].push_back(static_cast<SetId>(s));
    }
    MINREJ_REQUIRE(costs_[s] > 0.0, "set cost must be positive");
    total_cost_ += costs_[s];
    if (std::abs(costs_[s] - 1.0) > 1e-12) unit_costs_ = false;
  }
}

SetSystem::SetSystem(std::size_t element_count,
                     std::vector<std::vector<ElementId>> sets)
    : SetSystem(element_count, std::move(sets), std::vector<double>{}) {}

std::string SetSystem::summary() const {
  std::ostringstream os;
  os << "n=" << element_count_ << " m=" << sets_.size()
     << (unit_costs_ ? " (unit costs)" : " (weighted)");
  return os.str();
}

}  // namespace minrej

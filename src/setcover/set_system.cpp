#include "setcover/set_system.h"

#include <algorithm>
#include <sstream>

namespace minrej {

namespace {

/// Sorts/dedups every set and assembles the CSR substrate with degree
/// capacities (the §4 identity: element j's edge capacity is |S_j|).
CoveringInstance build_substrate(std::size_t element_count,
                                 std::vector<std::vector<ElementId>>& sets,
                                 const std::vector<double>& costs) {
  MINREJ_REQUIRE(element_count >= 1, "ground set must be non-empty");
  MINREJ_REQUIRE(!sets.empty(), "set family must be non-empty");
  MINREJ_REQUIRE(sets.size() == costs.size(), "sets/costs size mismatch");
  CoveringInstance::Builder builder(element_count);
  std::size_t entries = 0;
  for (const auto& members : sets) entries += members.size();
  builder.reserve(sets.size(), entries);
  for (std::size_t s = 0; s < sets.size(); ++s) {
    auto& members = sets[s];
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    MINREJ_REQUIRE(!members.empty(), "empty set in family");
    MINREJ_REQUIRE(costs[s] > 0.0, "set cost must be positive");
    // Range validation happens in add_row (element ids are column ids).
    builder.add_row(members, costs[s]);
  }
  return std::move(builder).build_degree_capacities();
}

}  // namespace

SetSystem::SetSystem(std::size_t element_count,
                     std::vector<std::vector<ElementId>> sets,
                     std::vector<double> costs)
    : element_count_(element_count) {
  if (costs.empty()) costs.assign(sets.size(), 1.0);  // unit costs
  substrate_ = build_substrate(element_count_, sets, costs);
}

SetSystem::SetSystem(std::size_t element_count,
                     std::vector<std::vector<ElementId>> sets)
    : SetSystem(element_count, std::move(sets), std::vector<double>{}) {}

SetSystem SetSystem::from_substrate(std::size_t element_count,
                                    CoveringInstance substrate) {
  MINREJ_REQUIRE(element_count >= 1, "ground set must be non-empty");
  MINREJ_REQUIRE(substrate.col_count() == element_count,
                 "substrate column count must equal the element count");
  MINREJ_REQUIRE(substrate.row_count() >= 1, "set family must be non-empty");
  for (std::uint32_t j = 0; j < substrate.col_count(); ++j) {
    MINREJ_REQUIRE(substrate.col_capacity(j) ==
                       static_cast<std::int64_t>(substrate.col_degree(j)),
                   "set-cover substrate requires capacity == degree");
  }
  SetSystem out;
  out.element_count_ = element_count;
  out.substrate_ = std::move(substrate);
  return out;
}

std::string SetSystem::summary() const {
  std::ostringstream os;
  os << "n=" << element_count_ << " m=" << set_count()
     << (unit_costs() ? " (unit costs)" : " (weighted)");
  return os.str();
}

}  // namespace minrej

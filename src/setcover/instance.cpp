#include "setcover/instance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace minrej {

CoverInstance::CoverInstance(SetSystem system,
                             std::vector<ElementId> arrivals)
    : system_(std::move(system)), arrivals_(std::move(arrivals)) {
  demand_.assign(system_.element_count(), 0);
  for (ElementId j : arrivals_) {
    MINREJ_REQUIRE(j < system_.element_count(),
                   "arrival references unknown element");
    ++demand_[j];
  }
  for (std::size_t j = 0; j < demand_.size(); ++j) {
    max_demand_ = std::max(max_demand_, demand_[j]);
    if (demand_[j] >
        static_cast<std::int64_t>(system_.degree(static_cast<ElementId>(j)))) {
      feasible_ = false;
    }
  }
}

std::string CoverInstance::summary() const {
  std::ostringstream os;
  os << system_.summary() << " arrivals=" << arrivals_.size()
     << " max_demand=" << max_demand_ << (feasible_ ? "" : " (infeasible)");
  return os.str();
}

bool covers_demands(const CoverInstance& instance,
                    const std::vector<bool>& chosen,
                    double required_fraction) {
  const SetSystem& sys = instance.system();
  MINREJ_REQUIRE(chosen.size() == sys.set_count(),
                 "chosen vector size mismatch");
  MINREJ_REQUIRE(required_fraction > 0.0 && required_fraction <= 1.0,
                 "required_fraction must be in (0, 1]");
  std::vector<std::int64_t> covered(sys.element_count(), 0);
  for (std::size_t s = 0; s < chosen.size(); ++s) {
    if (!chosen[s]) continue;
    for (ElementId j : sys.elements_of(static_cast<SetId>(s))) ++covered[j];
  }
  for (std::size_t j = 0; j < covered.size(); ++j) {
    const double scaled =
        required_fraction * static_cast<double>(instance.demand()[j]);
    // ceil with a tolerance so required_fraction == 1.0 does not demand
    // k+1 sets due to floating-point noise.
    const auto required = static_cast<std::int64_t>(std::ceil(scaled - 1e-9));
    const auto capped = std::min<std::int64_t>(
        required,
        static_cast<std::int64_t>(sys.degree(static_cast<ElementId>(j))));
    if (covered[j] < capped) return false;
  }
  return true;
}

double chosen_cost(const SetSystem& system, const std::vector<bool>& chosen) {
  MINREJ_REQUIRE(chosen.size() == system.set_count(),
                 "chosen vector size mismatch");
  double cost = 0.0;
  for (std::size_t s = 0; s < chosen.size(); ++s) {
    if (chosen[s]) cost += system.cost(static_cast<SetId>(s));
  }
  return cost;
}

}  // namespace minrej

// instance.h — an online set cover *with repetitions* input (paper §1):
// a set system plus the adversary's arrival sequence, where each element may
// arrive any number of times (not necessarily consecutively) and must be
// covered by as many distinct sets as it has arrived.
#pragma once

#include <string>
#include <vector>

#include "setcover/set_system.h"

namespace minrej {

/// A complete OSCR input.  Online algorithms consume arrivals() in order;
/// offline solvers see the final demand vector.
class CoverInstance {
 public:
  CoverInstance(SetSystem system, std::vector<ElementId> arrivals);

  const SetSystem& system() const noexcept { return system_; }
  const std::vector<ElementId>& arrivals() const noexcept { return arrivals_; }

  /// Final demand of element j = number of times it arrives in total.
  const std::vector<std::int64_t>& demand() const noexcept { return demand_; }
  std::int64_t max_demand() const noexcept { return max_demand_; }

  /// True iff the final demands are satisfiable at all:
  /// demand(j) <= |S_j| for every element j.
  bool feasible() const noexcept { return feasible_; }

  std::string summary() const;

 private:
  SetSystem system_;
  std::vector<ElementId> arrivals_;
  std::vector<std::int64_t> demand_;
  std::int64_t max_demand_ = 0;
  bool feasible_ = true;
};

/// Checks that `chosen` (indicator per set) covers every element j at least
/// min(required_fraction * demand_j, degree_j) times, where demand counts
/// arrivals.  required_fraction = 1 verifies an exact multicover;
/// required_fraction = 1 − ε verifies the bicriteria guarantee of §5.
/// Requirements are rounded up (an element requested k times with fraction
/// 1−ε needs ceil((1−ε)k) distinct sets — the integral reading of Thm 7).
bool covers_demands(const CoverInstance& instance,
                    const std::vector<bool>& chosen,
                    double required_fraction = 1.0);

/// Total cost of the chosen sets.
double chosen_cost(const SetSystem& system, const std::vector<bool>& chosen);

}  // namespace minrej

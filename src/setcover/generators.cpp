#include "setcover/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace minrej {

namespace {

/// Adds element j to random sets it is not yet a member of until its degree
/// reaches min_degree.  Mutates the membership lists in place.
void patch_min_degree(std::size_t n, std::size_t min_degree,
                      std::vector<std::vector<ElementId>>& sets, Rng& rng) {
  if (min_degree == 0) return;
  MINREJ_REQUIRE(min_degree <= sets.size(),
                 "min_degree exceeds number of sets");
  std::vector<std::size_t> degree(n, 0);
  std::vector<std::vector<bool>> member(sets.size(),
                                        std::vector<bool>(n, false));
  for (std::size_t s = 0; s < sets.size(); ++s) {
    for (ElementId j : sets[s]) {
      if (!member[s][j]) {
        member[s][j] = true;
        ++degree[j];
      }
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    while (degree[j] < min_degree) {
      const std::size_t s = rng.index(sets.size());
      if (member[s][j]) continue;
      member[s][j] = true;
      sets[s].push_back(static_cast<ElementId>(j));
      ++degree[j];
    }
  }
}

}  // namespace

SetSystem random_uniform_system(std::size_t n, std::size_t m,
                                std::size_t set_size, std::size_t min_degree,
                                Rng& rng) {
  MINREJ_REQUIRE(n >= 1 && m >= 1, "need positive n and m");
  MINREJ_REQUIRE(set_size >= 1 && set_size <= n, "bad set size");
  std::vector<std::vector<ElementId>> sets(m);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t idx : rng.sample_indices(n, set_size)) {
      sets[s].push_back(static_cast<ElementId>(idx));
    }
  }
  patch_min_degree(n, min_degree, sets, rng);
  return SetSystem(n, std::move(sets));
}

SetSystem random_density_system(std::size_t n, std::size_t m, double p,
                                std::size_t min_degree, Rng& rng) {
  MINREJ_REQUIRE(n >= 1 && m >= 1, "need positive n and m");
  MINREJ_REQUIRE(p > 0.0 && p <= 1.0, "density must be in (0, 1]");
  std::vector<std::vector<ElementId>> sets(m);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(p)) sets[s].push_back(static_cast<ElementId>(j));
    }
  }
  // Empty sets are invalid; give each at least one random element.
  for (auto& members : sets) {
    if (members.empty()) {
      members.push_back(static_cast<ElementId>(rng.index(n)));
    }
  }
  patch_min_degree(n, min_degree, sets, rng);
  return SetSystem(n, std::move(sets));
}

SetSystem planted_cover_system(std::size_t n, std::size_t m,
                               std::size_t k_opt, std::size_t copies,
                               std::size_t decoy_size, Rng& rng) {
  MINREJ_REQUIRE(k_opt >= 1 && k_opt <= n, "bad k_opt");
  MINREJ_REQUIRE(copies >= 1, "copies must be >= 1");
  MINREJ_REQUIRE(m >= k_opt * copies, "m too small for the planted cover");
  MINREJ_REQUIRE(decoy_size >= 1 && decoy_size <= n, "bad decoy size");

  // Partition a random permutation of X into k_opt near-equal blocks.
  std::vector<ElementId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  std::vector<std::vector<ElementId>> sets;
  sets.reserve(m);
  const std::size_t block = (n + k_opt - 1) / k_opt;
  for (std::size_t b = 0; b < k_opt; ++b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    std::vector<ElementId> members(perm.begin() + static_cast<std::ptrdiff_t>(begin),
                                   perm.begin() + static_cast<std::ptrdiff_t>(end));
    for (std::size_t copy = 0; copy < copies; ++copy) sets.push_back(members);
  }
  while (sets.size() < m) {
    std::vector<ElementId> decoy;
    for (std::size_t idx : rng.sample_indices(n, decoy_size)) {
      decoy.push_back(static_cast<ElementId>(idx));
    }
    sets.push_back(std::move(decoy));
  }
  return SetSystem(n, std::move(sets));
}

SetSystem dyadic_interval_system(std::size_t n) {
  MINREJ_REQUIRE(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two >= 2");
  std::vector<std::vector<ElementId>> sets;
  for (std::size_t width = 1; width <= n; width *= 2) {
    for (std::size_t start = 0; start < n; start += width) {
      std::vector<ElementId> members;
      members.reserve(width);
      for (std::size_t j = start; j < start + width; ++j) {
        members.push_back(static_cast<ElementId>(j));
      }
      sets.push_back(std::move(members));
    }
  }
  return SetSystem(n, std::move(sets));
}

SetSystem singletons_plus_block_system(std::size_t n,
                                       std::size_t block_size) {
  MINREJ_REQUIRE(n >= 1, "need positive n");
  MINREJ_REQUIRE(block_size >= 1 && block_size <= n, "bad block size");
  std::vector<std::vector<ElementId>> sets;
  sets.reserve(n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    sets.push_back({static_cast<ElementId>(j)});
  }
  std::vector<ElementId> blockset;
  blockset.reserve(block_size);
  for (std::size_t j = 0; j < block_size; ++j) {
    blockset.push_back(static_cast<ElementId>(j));
  }
  sets.push_back(std::move(blockset));
  return SetSystem(n, std::move(sets));
}

SetSystem with_random_costs(const SetSystem& system, double cost_min,
                            double cost_max, Rng& rng) {
  MINREJ_REQUIRE(cost_min > 0.0 && cost_min <= cost_max, "bad cost range");
  std::vector<std::vector<ElementId>> sets(system.set_count());
  std::vector<double> costs(system.set_count());
  for (std::size_t s = 0; s < system.set_count(); ++s) {
    const auto members = system.elements_of(static_cast<SetId>(s));
    sets[s].assign(members.begin(), members.end());
    costs[s] = rng.log_uniform(cost_min, cost_max);
  }
  return SetSystem(system.element_count(), std::move(sets), std::move(costs));
}

SetSystem power_law_system(std::size_t n, std::size_t m, double skew,
                           std::size_t min_degree, Rng& rng) {
  MINREJ_REQUIRE(n >= 1 && m >= 1, "need positive n and m");
  MINREJ_REQUIRE(skew >= 0.0, "skew must be >= 0");
  std::vector<std::vector<ElementId>> sets(m);
  for (std::size_t s = 0; s < m; ++s) {
    const double raw =
        static_cast<double>(n) / std::pow(static_cast<double>(s + 1), skew);
    const std::size_t size = std::min<std::size_t>(
        n, std::max<std::size_t>(1, static_cast<std::size_t>(raw)));
    for (std::size_t idx : rng.sample_indices(n, size)) {
      sets[s].push_back(static_cast<ElementId>(idx));
    }
  }
  patch_min_degree(n, min_degree, sets, rng);
  return SetSystem(n, std::move(sets));
}

std::vector<ElementId> arrivals_each_once(std::size_t n, Rng& rng) {
  std::vector<ElementId> arrivals(n);
  std::iota(arrivals.begin(), arrivals.end(), 0);
  rng.shuffle(arrivals);
  return arrivals;
}

std::vector<ElementId> arrivals_each_k_times(std::size_t n, std::size_t k,
                                             bool interleave, Rng& rng) {
  MINREJ_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<ElementId> arrivals;
  arrivals.reserve(n * k);
  if (interleave) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t rep = 0; rep < k; ++rep) {
        arrivals.push_back(static_cast<ElementId>(j));
      }
    }
    rng.shuffle(arrivals);
  } else {
    std::vector<ElementId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    for (ElementId j : order) {
      for (std::size_t rep = 0; rep < k; ++rep) arrivals.push_back(j);
    }
  }
  return arrivals;
}

std::vector<ElementId> arrivals_zipf(const SetSystem& system,
                                     std::size_t count, double s, Rng& rng) {
  MINREJ_REQUIRE(s >= 0.0, "zipf exponent must be >= 0");
  const std::size_t n = system.element_count();
  // Rank-to-element assignment is a random permutation.
  std::vector<ElementId> by_rank(n);
  std::iota(by_rank.begin(), by_rank.end(), 0);
  rng.shuffle(by_rank);

  // CDF of Zipf(s) over ranks 1..n.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  for (double& x : cdf) x /= total;

  std::vector<std::int64_t> demand(n, 0);
  std::vector<ElementId> arrivals;
  arrivals.reserve(count);
  std::size_t failures = 0;
  while (arrivals.size() < count && failures < 64 * count + 1024) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank =
        std::min<std::size_t>(static_cast<std::size_t>(it - cdf.begin()),
                              n - 1);
    const ElementId j = by_rank[rank];
    // Cap demand at degree so the instance remains feasible.
    if (demand[j] + 1 >
        static_cast<std::int64_t>(system.degree(j))) {
      ++failures;
      continue;
    }
    ++demand[j];
    arrivals.push_back(j);
  }
  return arrivals;
}

}  // namespace minrej

// set_system.h — the (X, S) substrate of online set cover (paper §1).
//
// Ground set X of n elements, family S of m subsets with positive costs.
// Both directions of incidence are indexed up front: sets_of(j) is the
// paper's S_j (the collection of sets containing element j), which every
// algorithm in §4/§5 iterates on the hot path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace minrej {

using ElementId = std::uint32_t;
using SetId = std::uint32_t;

/// Immutable weighted set system.
class SetSystem {
 public:
  SetSystem() = default;

  /// `sets[s]` lists the elements of set s (deduplicated on build);
  /// `costs[s]` > 0.  Every element id must be < element_count.
  SetSystem(std::size_t element_count,
            std::vector<std::vector<ElementId>> sets,
            std::vector<double> costs);

  /// Convenience: unit costs.
  SetSystem(std::size_t element_count,
            std::vector<std::vector<ElementId>> sets);

  std::size_t element_count() const noexcept { return element_count_; }  ///< n
  std::size_t set_count() const noexcept { return sets_.size(); }        ///< m

  std::span<const ElementId> elements_of(SetId s) const {
    MINREJ_REQUIRE(s < sets_.size(), "set id out of range");
    return sets_[s];
  }
  /// S_j: ids of the sets containing element j.
  std::span<const SetId> sets_of(ElementId j) const {
    MINREJ_REQUIRE(j < element_count_, "element id out of range");
    return sets_of_[j];
  }
  /// |S_j| — the degree of element j (capacity of its edge in the §4
  /// reduction).
  std::size_t degree(ElementId j) const { return sets_of(j).size(); }

  double cost(SetId s) const {
    MINREJ_REQUIRE(s < costs_.size(), "set id out of range");
    return costs_[s];
  }
  double total_cost() const noexcept { return total_cost_; }
  /// True if every set has cost exactly 1 (the unweighted case the paper's
  /// §5 algorithm assumes).
  bool unit_costs() const noexcept { return unit_costs_; }

  std::string summary() const;

 private:
  std::size_t element_count_ = 0;
  std::vector<std::vector<ElementId>> sets_;
  std::vector<std::vector<SetId>> sets_of_;
  std::vector<double> costs_;
  double total_cost_ = 0.0;
  bool unit_costs_ = true;
};

}  // namespace minrej

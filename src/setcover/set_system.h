// set_system.h — the (X, S) substrate of online set cover (paper §1).
//
// Ground set X of n elements, family S of m subsets with positive costs.
// Both directions of incidence are indexed up front: sets_of(j) is the
// paper's S_j (the collection of sets containing element j), which every
// algorithm in §4/§5 iterates on the hot path.
//
// Since the covering-substrate refactor (DESIGN.md §7) SetSystem is a thin
// facade over a CoveringInstance: sets are rows, elements are columns, and
// both incidence directions live in flat CSR arenas with 32-byte headers
// instead of one heap vector per set/element.  Every accessor below is a
// substrate read; algorithms that want the raw arena (the §4 ReductionView,
// the bicriteria sweeps, the engine binding) take substrate() directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/covering_instance.h"
#include "util/check.h"

namespace minrej {

using ElementId = std::uint32_t;
using SetId = std::uint32_t;

/// Immutable weighted set system.
class SetSystem {
 public:
  SetSystem() = default;

  /// `sets[s]` lists the elements of set s (deduplicated on build);
  /// `costs[s]` > 0.  Every element id must be < element_count.
  SetSystem(std::size_t element_count,
            std::vector<std::vector<ElementId>> sets,
            std::vector<double> costs);

  /// Convenience: unit costs.
  SetSystem(std::size_t element_count,
            std::vector<std::vector<ElementId>> sets);

  /// Bulk CSR path: adopts a ready substrate (rows = sets over element
  /// columns, capacity == degree).  Requires degree-capacity binding —
  /// the set-cover side of the §4 identity.
  static SetSystem from_substrate(std::size_t element_count,
                                  CoveringInstance substrate);

  std::size_t element_count() const noexcept { return element_count_; }  ///< n
  std::size_t set_count() const noexcept {                               ///< m
    return substrate_.row_count();
  }

  std::span<const ElementId> elements_of(SetId s) const {
    return substrate_.cols_of(s);
  }
  /// S_j: ids of the sets containing element j.
  std::span<const SetId> sets_of(ElementId j) const {
    return substrate_.rows_of(j);
  }
  /// |S_j| — the degree of element j (capacity of its edge in the §4
  /// reduction).
  std::size_t degree(ElementId j) const { return substrate_.col_degree(j); }

  double cost(SetId s) const { return substrate_.row_cost(s); }
  double total_cost() const noexcept { return substrate_.total_cost(); }
  /// True if every set has cost exactly 1 (the unweighted case the paper's
  /// §5 algorithm assumes).
  bool unit_costs() const noexcept { return substrate_.unit_costs(); }

  /// The shared CSR substrate (DESIGN.md §7): sets are rows, elements are
  /// columns, column capacity == degree.  The ReductionView and the engine
  /// traits bind here.
  const CoveringInstance& substrate() const noexcept { return substrate_; }

  std::string summary() const;

 private:
  std::size_t element_count_ = 0;
  CoveringInstance substrate_;
};

}  // namespace minrej

// generators.h — set-system families and arrival sequences for OSCR
// experiments.
//
// Three kinds of instances matter for reproducing the paper's claims:
//  * random systems — average-case ratios (E6);
//  * planted-cover systems — instances with a *known* small optimum, so
//    ratios can be upper-bounded without the exact solver even at sizes the
//    branch-and-bound cannot reach;
//  * structured/adversarial systems (dyadic intervals, singletons-vs-block) —
//    the families on which naive baselines degrade polynomially while the
//    paper's primal-dual algorithms stay polylogarithmic (E5).
#pragma once

#include <cstdint>
#include <vector>

#include "setcover/instance.h"
#include "setcover/set_system.h"
#include "util/rng.h"

namespace minrej {

/// m sets, each an independent uniform subset of size `set_size`; afterwards
/// every element's degree is patched up to at least `min_degree` by adding
/// it to random sets (so demands up to min_degree stay feasible).
SetSystem random_uniform_system(std::size_t n, std::size_t m,
                                std::size_t set_size, std::size_t min_degree,
                                Rng& rng);

/// Bernoulli membership: each (set, element) pair independently with
/// probability p; degrees patched to min_degree as above.
SetSystem random_density_system(std::size_t n, std::size_t m, double p,
                                std::size_t min_degree, Rng& rng);

/// Plants `k_opt` disjointly-covering sets (a partition of X into k_opt
/// blocks, each block duplicated `copies` times so demands up to `copies`
/// are satisfiable by planted sets alone), plus decoy sets of size
/// `decoy_size` up to m total.  OPT for any demand <= copies is at most
/// k_opt * copies (and at most k_opt for single coverage).
SetSystem planted_cover_system(std::size_t n, std::size_t m,
                               std::size_t k_opt, std::size_t copies,
                               std::size_t decoy_size, Rng& rng);

/// All dyadic intervals of [0, n), n a power of two: m = 2n − 1 sets.
/// The hierarchy is the classic structured family for online covering lower
/// bounds: an adaptive adversary can force ~log n sets per element while
/// OPT pays one interval.
SetSystem dyadic_interval_system(std::size_t n);

/// n singleton sets plus one block set covering `block_size` elements —
/// the minimal family separating "buy the big set" (OPT) from per-element
/// reactions (naive baselines pay block_size).
SetSystem singletons_plus_block_system(std::size_t n, std::size_t block_size);

/// Assigns log-uniform costs in [cost_min, cost_max] to an existing system
/// (returns a new system; membership unchanged).
SetSystem with_random_costs(const SetSystem& system, double cost_min,
                            double cost_max, Rng& rng);

/// Power-law set sizes: set s has size ~ max(1, n / (s+1)^skew) — a few
/// hub sets covering much of X and a long tail of small sets, the shape of
/// real coverage catalogs.  Degrees patched to min_degree.
SetSystem power_law_system(std::size_t n, std::size_t m, double skew,
                           std::size_t min_degree, Rng& rng);

// ---------------------------------------------------------------------------
// Arrival sequences
// ---------------------------------------------------------------------------

/// Every element exactly once, shuffled.
std::vector<ElementId> arrivals_each_once(std::size_t n, Rng& rng);

/// Every element exactly `k` times.  interleave=true shuffles all arrivals
/// together (repetitions non-consecutive, the general case the paper
/// stresses); false keeps each element's k arrivals consecutive.
std::vector<ElementId> arrivals_each_k_times(std::size_t n, std::size_t k,
                                             bool interleave, Rng& rng);

/// `count` arrivals, element drawn by Zipf(s) rank over a random permutation
/// (s = 0 is uniform).  Demands are capped at each element's degree so the
/// instance stays feasible.
std::vector<ElementId> arrivals_zipf(const SetSystem& system,
                                     std::size_t count, double s, Rng& rng);

}  // namespace minrej

// rng.h — deterministic, seedable random number generation.
//
// Every randomized component in minrej (the randomized rounding of §3 of the
// paper, workload generators, Monte-Carlo sweeps) draws from minrej::Rng so
// that every experiment is reproducible from a single 64-bit seed.  The
// engine is xoshiro256** (Blackman & Vigna), seeded via splitmix64; both are
// implemented here rather than taken from <random> because the standard
// distributions are not bit-reproducible across standard libraries, and
// cross-toolchain reproducibility is part of the bench contract.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace minrej {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with explicit, reproducible distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random> if a
/// caller insists, but all minrej code uses the member distributions below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n).  Requires n > 0.  Debiased via rejection.
  std::size_t index(std::size_t n);

  /// Bernoulli trial; p is clamped to [0, 1].
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Geometric-ish "power-law" cost in [lo, hi]: lo * (hi/lo)^U.  Used by the
  /// weighted workload generators to spread request costs across the whole
  /// [1, g] range the paper's normalization argument is about.
  double log_uniform(double lo, double hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// The raw 256-bit generator state, for snapshot/restore (io/snapshot.h):
  /// restoring a saved state resumes the exact output stream, which is what
  /// makes restored randomized algorithms bit-identical to uninterrupted
  /// runs (DESIGN.md §9).
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  /// Derive an independent child generator (for per-trial parallel streams).
  Rng split() noexcept {
    // Mix all four state words into a fresh seed; advancing *this keeps
    // successive splits independent.
    std::uint64_t s = (*this)() ^ rotl(state_[2], 13);
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace minrej

#include "util/rng.h"

#include <cmath>

namespace minrej {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MINREJ_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(index(span));
}

std::size_t Rng::index(std::size_t n) {
  MINREJ_REQUIRE(n > 0, "index: n must be positive");
  // Classic rejection sampling to remove modulo bias: values below the
  // threshold would make some residues over-represented, so redraw.
  const std::uint64_t bound = static_cast<std::uint64_t>(n);
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 − n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return static_cast<std::size_t>(r % bound);
  }
}

double Rng::exponential(double rate) {
  MINREJ_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::log_uniform(double lo, double hi) {
  MINREJ_REQUIRE(lo > 0.0 && hi >= lo, "log_uniform: need 0 < lo <= hi");
  if (lo == hi) return lo;
  return lo * std::pow(hi / lo, uniform());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  MINREJ_REQUIRE(k <= n, "sample_indices: k must be <= n");
  // Partial Fisher–Yates over an index vector: O(n) setup, O(k) swaps.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace minrej

// table.h — paper-style result tables for the benchmark harness.
//
// Every experiment binary builds a Table and renders it both as an aligned
// ASCII table (human-readable bench output) and as CSV (machine-readable,
// written next to the binary when --csv is passed).  Keeping the rendering
// in one place guarantees every experiment reports in the same format that
// EXPERIMENTS.md quotes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace minrej {

/// A table cell: text, integer, or fixed-precision floating point.
class Cell {
 public:
  Cell(std::string text) : value_(std::move(text)) {}        // NOLINT implicit
  Cell(const char* text) : value_(std::string(text)) {}      // NOLINT implicit
  Cell(long long i) : value_(i) {}                           // NOLINT implicit
  Cell(int i) : value_(static_cast<long long>(i)) {}         // NOLINT implicit
  Cell(std::size_t i) : value_(static_cast<long long>(i)) {} // NOLINT implicit
  Cell(double d, int precision = 3) : value_(Real{d, precision}) {} // NOLINT

  /// Rendered text of the cell.
  std::string str() const;

 private:
  struct Real {
    double v;
    int precision;
  };
  std::variant<std::string, long long, Real> value_;
};

/// Column-labelled table with uniform rendering.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; must match the column count.
  void add_row(std::vector<Cell> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::string& title() const noexcept { return title_; }

  /// Aligned ASCII rendering with a title banner.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string to_csv() const;

  /// Convenience: prints ASCII to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace minrej

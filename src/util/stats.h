// stats.h — summary statistics and shape-fitting for experiment results.
//
// The bench harness reduces Monte-Carlo trials to {mean, stdev, 95% CI,
// quantiles} via RunningStats / Summary, and fits measured competitive
// ratios against the paper's asymptotic bounds (log(mc), log^2(mc),
// log m · log c, ...) via least-squares through LinearFit.  A good fit
// (R^2 near 1, small intercept) is how EXPERIMENTS.md argues "the shape of
// the theorem holds" without matching absolute constants.
#pragma once

#include <cstddef>
#include <vector>

namespace minrej {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long accumulations the parallel sweeps
/// produce; mergeable so per-thread partials can be combined.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction step).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stdev() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_half_width() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over a stored sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width around the mean
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes the full Summary of a sample (copies + sorts internally).
Summary summarize(std::vector<double> sample);

/// Linear interpolation quantile of a *sorted* sample; q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Least-squares fit y ≈ slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Fits y against x; requires x.size() == y.size() >= 2.
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Ratio-of-means helper: geometric mean of a positive sample.
double geometric_mean(const std::vector<double>& sample);

}  // namespace minrej

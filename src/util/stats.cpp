#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stdev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  MINREJ_REQUIRE(!sorted.empty(), "quantile of empty sample");
  MINREJ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  RunningStats rs;
  for (double x : sample) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stdev = rs.stdev();
  s.ci95 = rs.ci95_half_width();
  s.min = sample.front();
  s.max = sample.back();
  s.p25 = quantile_sorted(sample, 0.25);
  s.median = quantile_sorted(sample, 0.50);
  s.p75 = quantile_sorted(sample, 0.75);
  s.p95 = quantile_sorted(sample, 0.95);
  return s;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  MINREJ_REQUIRE(x.size() == y.size(), "fit_linear: size mismatch");
  MINREJ_REQUIRE(x.size() >= 2, "fit_linear: need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit f;
  if (sxx == 0.0) {
    // Degenerate: all x equal; report a flat fit through the mean.
    f.slope = 0.0;
    f.intercept = my;
    f.r_squared = 0.0;
    return f;
  }
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  if (syy == 0.0) {
    f.r_squared = 1.0;  // y is constant and the fit reproduces it exactly
  } else {
    f.r_squared = (sxy * sxy) / (sxx * syy);
  }
  return f;
}

double geometric_mean(const std::vector<double>& sample) {
  MINREJ_REQUIRE(!sample.empty(), "geometric_mean of empty sample");
  double log_sum = 0.0;
  for (double x : sample) {
    MINREJ_REQUIRE(x > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace minrej

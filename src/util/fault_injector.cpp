#include "util/fault_injector.h"

#include "util/check.h"
#include "util/rng.h"

namespace minrej {

namespace {

/// Uniform double in [0, 1) from a splitmix64 chain over the probe
/// coordinates.  Each coordinate is folded into the MIXED OUTPUT of the
/// previous step (splitmix64 advances its state linearly and returns the
/// avalanche-mixed value — chaining the raw state would leave coordinates
/// combined by bare XOR/ADD, where u(arrival ^ d, attempt ^ d) often
/// equals u(arrival, attempt): one unlucky arrival in a batch would then
/// doom every retry attempt, because the failing coordinate just shifts
/// to arrival ^ t at attempt t and stays inside the batch).
double probe_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                     std::uint64_t c, std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ salt;
  state = splitmix64(state) ^ a;
  state = splitmix64(state) ^ b;
  state = splitmix64(state) ^ c;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  const auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  MINREJ_REQUIRE(rate_ok(plan_.exception_rate), "exception_rate not in [0, 1]");
  MINREJ_REQUIRE(rate_ok(plan_.delay_rate), "delay_rate not in [0, 1]");
  MINREJ_REQUIRE(rate_ok(plan_.corrupt_rate), "corrupt_rate not in [0, 1]");
  MINREJ_REQUIRE(plan_.delay_seconds >= 0.0, "delay_seconds must be >= 0");
  for (const ScriptedFault& f : plan_.scripted) {
    MINREJ_REQUIRE(f.attempts >= 1, "scripted fault needs attempts >= 1");
    MINREJ_REQUIRE(f.action != FaultAction::kNone,
                   "scripted fault needs a non-trivial action");
  }
}

FaultAction FaultInjector::probe(std::size_t shard, std::size_t arrival,
                                 std::size_t attempt) const noexcept {
  for (const ScriptedFault& f : plan_.scripted) {
    if (f.shard == shard && f.arrival == arrival && attempt < f.attempts) {
      return f.action;
    }
  }
  if (plan_.exception_rate > 0.0 &&
      probe_uniform(plan_.seed, shard, arrival, attempt, 0x45584300u) <
          plan_.exception_rate) {
    return FaultAction::kException;
  }
  if (plan_.delay_rate > 0.0 &&
      probe_uniform(plan_.seed, shard, arrival, attempt, 0x444C5900u) <
          plan_.delay_rate) {
    return FaultAction::kDelay;
  }
  return FaultAction::kNone;
}

bool FaultInjector::corrupt(std::size_t global_arrival) const noexcept {
  if (plan_.corrupt_rate <= 0.0) return false;
  return probe_uniform(plan_.seed, global_arrival, 0, 0, 0x434F5200u) <
         plan_.corrupt_rate;
}

}  // namespace minrej

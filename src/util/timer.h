// timer.h — minimal wall-clock timing for benchmarks and examples.
#pragma once

#include <chrono>

namespace minrej {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds since construction or last reset().
  double elapsed_ms() const { return elapsed_s() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace minrej

#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace minrej {

std::string Cell::str() const {
  struct Visitor {
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(long long i) const { return std::to_string(i); }
    std::string operator()(const Real& r) const {
      std::ostringstream os;
      os << std::fixed << std::setprecision(r.precision) << r.v;
      return os.str();
    }
  };
  return std::visit(Visitor{}, value_);
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  MINREJ_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  MINREJ_REQUIRE(cells.size() == columns_.size(),
                 "row width does not match column count");
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const Cell& c : cells) row.push_back(c.str());
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_rule();
  emit_row(columns_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_ascii();
}

}  // namespace minrej

// thread_pool.h — fixed-size worker pool and parallel_for for sweeps.
//
// The experiment harness runs thousands of independent online-algorithm
// trials (seeds × parameter points).  ThreadPool provides a plain
// work-queue executor; parallel_for_index slices an index range over the
// pool with per-worker chunking so that per-trial RNGs stay deterministic
// (trial i always uses seed base+i, regardless of scheduling).
//
// Design choices (C++ Core Guidelines CP.*):
//  * RAII: the destructor joins all workers; no detached threads.
//  * No task futures: the sweep pattern is fork-join, so parallel_for
//    blocks until every index is processed and rethrows the first
//    exception raised by any worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace minrej {

/// Fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Equivalent to shutdown().
  ~ThreadPool();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Deterministic shutdown: every task submitted before this call —
  /// queued or in flight — runs to completion, then all workers join.
  /// Idempotent; submit() after shutdown throws.  A task error captured
  /// but never observed is dropped silently (same as destruction), but a
  /// wait_idle() *before* shutdown still surfaces it — call wait_idle
  /// first when failures matter.
  void shutdown();

  /// True once shutdown() (or the destructor) has begun.
  bool is_shutdown() const noexcept;

  /// Enqueues a task.  A task that throws does not kill its worker: the
  /// first escaped exception is captured and rethrown by the next
  /// wait_idle() (later ones are dropped — fork-join callers care that
  /// *something* failed, and the first failure is the deterministic one to
  /// report).  The pool stays usable afterwards.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first exception any task threw since the last
  /// wait_idle() (clearing it, so the pool is reusable after a failure).
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
  /// First exception thrown by a task since the last wait_idle() (guarded
  /// by mu_).  See submit() for the capture contract.
  std::exception_ptr task_error_;
};

/// Runs body(i) for every i in [0, count) across `threads` workers.
///
/// Static block partitioning: worker w handles a contiguous slice, so the
/// workload-to-thread mapping is deterministic.  Blocks until done; the
/// first exception thrown by any body is rethrown in the caller.
/// threads == 0 selects hardware concurrency; count == 0 is a no-op;
/// with one available thread everything runs inline (no spawn).
///
/// `grain` is the minimum slice size: no thread is spawned for fewer than
/// `grain` indices, so tiny ranges run inline instead of paying a thread
/// spawn per handful of iterations.  The slice boundaries depend only on
/// (count, threads, grain) — never on scheduling — so the
/// workload-to-thread mapping stays deterministic at every grain.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        std::size_t threads = 0, std::size_t grain = 1);

}  // namespace minrej

// check.h — error handling primitives shared by all minrej modules.
//
// Library code validates its inputs with MINREJ_REQUIRE (throws
// minrej::InvalidArgument — recoverable, caller error) and its internal
// invariants with MINREJ_CHECK (throws minrej::InternalError — a bug).
// Neither is compiled out in release builds: the algorithms here are
// combinatorial and cheap relative to the checks, and silent invariant
// violations would invalidate every measured competitive ratio.
#pragma once

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace minrej {

/// Thrown when a caller passes an invalid instance/parameter.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_invalid(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

inline void warn(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "minrej warning: %s at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
}

}  // namespace detail
}  // namespace minrej

/// Validate caller-supplied input; throws minrej::InvalidArgument on failure.
#define MINREJ_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond))                                                         \
      ::minrej::detail::throw_invalid(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws minrej::InternalError on failure.
#define MINREJ_CHECK(cond, msg)                                           \
  do {                                                                    \
    if (!(cond))                                                          \
      ::minrej::detail::throw_internal(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// MINREJ_REQUIRE's soft sibling: report a violated expectation to stderr
/// and keep going.  For operational guardrails (e.g. the augmentation-
/// budget blow-up of sim/runner.h) where aborting a long run would destroy
/// the evidence the warning is about.
#define MINREJ_WARN_IF(cond, msg)                                    \
  do {                                                               \
    if (cond) ::minrej::detail::warn(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

// build_info.h — configure-time build provenance for measurement output.
//
// Every BENCH_*.json the drivers emit is stamped with the git SHA and the
// CMake build type it was produced by, so a number on the perf trajectory
// is always attributable to a concrete commit and optimization level
// (comparing a Debug run against a Release baseline is the classic way to
// fake a regression).  The values are baked in at *configure* time by
// src/util/CMakeLists.txt; a stale build directory reports the SHA it was
// configured at, which is exactly the binary's provenance.
#pragma once

#include <cstddef>

namespace minrej {

/// Short git SHA of the checkout the build was configured from, or
/// "unknown" outside a git checkout (e.g. a tarball build).
const char* build_git_sha() noexcept;

/// CMake build type the binary was compiled under ("Release",
/// "RelWithDebInfo", ...), or "unknown" when none was set.
const char* build_type() noexcept;

/// Name of the sweep-kernel instruction set the engine hot paths run on in
/// this process: "scalar", "avx2", or "avx512" (core/simd_sweep.h
/// dispatches on the same value, so the stamp and the executed kernel
/// cannot disagree).  Resolved once per process from, in priority order:
/// the MINREJ_NO_SIMD build flag (always "scalar"), the MINREJ_SWEEP_ISA
/// environment variable (clamped to what the CPU supports), and runtime
/// CPU detection.  Stamped into every BENCH_*.json next to the git SHA so
/// a perf number is attributable to the kernel that produced it.
const char* sweep_isa() noexcept;

/// Hardware threads of the host this process runs on (>= 1; falls back to
/// 1 when the runtime cannot tell).  Stamped into every BENCH_*.json: a
/// wall-clock scaling curve is meaningless without the core count of the
/// machine that produced it (BENCH_e16's gates skip their multi-core
/// floors on small hosts based on this very field).
std::size_t hardware_concurrency() noexcept;

/// Detected L1 data-cache line size in bytes (sysconf on POSIX; 64 when
/// detection is unavailable or reports nonsense).  The concurrent pump
/// pads its per-shard hot state to util/spsc_ring.h's compile-time
/// kCacheLineBytes; stamping the detected value records whether that
/// padding actually matched the host.
std::size_t cache_line_bytes() noexcept;

}  // namespace minrej

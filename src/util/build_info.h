// build_info.h — configure-time build provenance for measurement output.
//
// Every BENCH_*.json the drivers emit is stamped with the git SHA and the
// CMake build type it was produced by, so a number on the perf trajectory
// is always attributable to a concrete commit and optimization level
// (comparing a Debug run against a Release baseline is the classic way to
// fake a regression).  The values are baked in at *configure* time by
// src/util/CMakeLists.txt; a stale build directory reports the SHA it was
// configured at, which is exactly the binary's provenance.
#pragma once

namespace minrej {

/// Short git SHA of the checkout the build was configured from, or
/// "unknown" outside a git checkout (e.g. a tarball build).
const char* build_git_sha() noexcept;

/// CMake build type the binary was compiled under ("Release",
/// "RelWithDebInfo", ...), or "unknown" when none was set.
const char* build_type() noexcept;

}  // namespace minrej

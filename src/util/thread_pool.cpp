#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace minrej {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // idempotent
    stop_ = true;
  }
  cv_task_.notify_all();
  // Workers only exit their loop once the queue is drained (see
  // worker_loop), so joining here guarantees every task submitted before
  // shutdown() ran to completion — the deterministic-drain contract.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::is_shutdown() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> task) {
  MINREJ_REQUIRE(static_cast<bool>(task), "submit: empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    MINREJ_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (task_error_) {
    std::exception_ptr error = std::exchange(task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr escaped;
    try {
      task();
    } catch (...) {
      escaped = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (escaped && !task_error_) task_error_ = std::move(escaped);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        std::size_t threads, std::size_t grain) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  grain = std::max<std::size_t>(1, grain);
  // The grain caps the useful parallelism: never split the range into
  // slices smaller than `grain`, so a tiny range runs on few threads (or
  // inline) regardless of how wide the machine is.
  threads = std::min(threads, (count + grain - 1) / grain);
  threads = std::min(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> team;
  team.reserve(threads);

  const std::size_t chunk =
      std::max(grain, (count + threads - 1) / threads);
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    team.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : team) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace minrej

// spsc_ring.h — bounded lock-free single-producer/single-consumer ring,
// plus the cache-line helpers the concurrent service pump builds on
// (DESIGN.md §11).
//
// The concurrent pump (service/admission_service.h, PumpMode::kRings)
// gives every shard one of these rings: the routing thread is the single
// producer, the shard's persistent worker the single consumer.  That
// ownership discipline is what makes the ring lock-free with only two
// atomics — each index has exactly one writer:
//
//   * tail_ is written by the producer (release) and read by the consumer
//     (acquire): the acquire-load of tail_ makes every slot write before
//     the matching release-store visible to the consumer;
//   * head_ is written by the consumer (release) and read by the producer
//     (acquire): the producer may reuse a slot only after it has observed
//     the consumer's release of it.
//
// Both sides keep a local cache of the other side's index so the common
// case (ring neither full nor empty) touches no foreign cache line at
// all.  Indices are free-running 64-bit counters (wrap is ~584 years at
// one push per nanosecond); the slot index is counter & mask.
//
// The ring never blocks: try_push/try_pop return false on full/empty and
// the caller chooses its waiting strategy (the pump spins-then-sleeps).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/check.h"

namespace minrej {

/// Alignment/padding quantum for concurrently-written hot state.  64 bytes
/// covers every x86-64 and mainstream ARM core this code targets; the
/// runtime-detected line size is stamped into BENCH_*.json via
/// util/build_info (cache_line_bytes) so a measurement taken on an exotic
/// host is attributable.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator: gives std::vector cache-line-aligned (and
/// therefore 32-byte-aligned) backing storage.  The engine hot-row arenas
/// and the pump's per-shard lanes use it so no two shards' hot state can
/// start mid-line (the false-sharing audit of DESIGN.md §11.3).
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Bounded lock-free SPSC ring.  T must be trivially copyable (the slots
/// are reused without destruction; the pump moves 32-bit batch indices).
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two >= max(2, min_capacity).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side.  False when the ring is full.
  bool try_push(const T& value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact for the consumer: a false
  /// result means at least one element is poppable right now).
  bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Consumer cursor: written by the consumer only.  The producer-side
  /// cache (cached_head_) lives on the producer's line so a non-full push
  /// reads nothing the consumer writes.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineBytes) std::uint64_t cached_tail_ = 0;  // consumer-local
  /// Producer cursor: written by the producer only.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineBytes) std::uint64_t cached_head_ = 0;  // producer-local
};

}  // namespace minrej

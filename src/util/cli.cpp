#include "util/cli.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace minrej {

CliFlags CliFlags::parse(int argc, const char* const* argv,
                         const std::vector<std::string>& known) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    MINREJ_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);

    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--name value` form: consume the next token if it is not a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }

    MINREJ_REQUIRE(std::find(known.begin(), known.end(), name) != known.end(),
                   "unknown flag: --" + name);
    flags.values_[name] = value;
  }
  return flags;
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  MINREJ_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + name + " is not an integer: " + it->second);
  return v;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  MINREJ_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + name + " is not a number: " + it->second);
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("flag --" + name + " is not a boolean: " + v);
}

}  // namespace minrej

// json.h — minimal JSON emission shared by the bench drivers and the
// service CLI.
//
// Machine-readable output convention: every driver that measures something
// can write a BENCH_<slug>.json file (see docs/SCENARIOS.md for the schema
// and the shared provenance stamp).  This header is the single emitter all
// of them use; it moved here from bench/bench_common.h when the service
// driver (tools/minrej_serve) started needing it outside the bench tree.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/cli.h"

namespace minrej {

/// Formats a double as a JSON number ("null" for non-finite values, which
/// JSON cannot represent).
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escapes a string for use as a JSON string literal (quotes included).
inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

/// Incrementally-built JSON object; field order follows insertion order.
/// Nest objects/arrays through raw(): `obj.raw("inner", other.dump())`.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v) {
    return raw(key, json_num(v));
  }
  /// Bools render as JSON true/false, not 1/0 (exact non-template match,
  /// so the integral overload below never swallows them).
  JsonObject& field(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  /// Exact match for every integral width, so callers never hit the
  /// integral→double conversion ambiguity.
  template <typename Int,
            typename = std::enable_if_t<std::is_integral_v<Int>>>
  JsonObject& field(const std::string& key, Int v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return raw(key, json_str(v));
  }
  JsonObject& field(const std::string& key, const char* v) {
    return raw(key, json_str(v));
  }
  JsonObject& raw(const std::string& key, const std::string& json) {
    if (!first_) body_ += ',';
    first_ = false;
    body_ += json_str(key) + ':' + json;
    return *this;
  }
  std::string dump() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
  bool first_ = true;
};

/// Joins pre-rendered JSON values into an array literal.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ',';
    out += items[i];
  }
  out += ']';
  return out;
}

/// The shared --json convention: bare `--json` writes BENCH_<slug>.json in
/// the working directory, `--json=path` writes to `path`, absence writes
/// nothing.  Callers must list "json" among their known flags.
inline void emit_json(const CliFlags& flags, const std::string& slug,
                      const std::string& payload) {
  if (!flags.has("json")) return;
  const std::string given = flags.get_string("json", "");
  const std::string path =
      (given.empty() || given == "true") ? "BENCH_" + slug + ".json" : given;
  std::ofstream out(path);
  out << payload << '\n';
  std::cout << "wrote " << path << '\n';
}

}  // namespace minrej

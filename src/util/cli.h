// cli.h — tiny flag parser shared by the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.  Unknown
// flags are an error so typos in experiment scripts fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace minrej {

/// Parsed command-line flags with typed, defaulted accessors.
class CliFlags {
 public:
  /// Parses argv.  `known` lists the accepted flag names (without "--").
  /// Throws InvalidArgument on unknown flags or malformed input.
  static CliFlags parse(int argc, const char* const* argv,
                        const std::vector<std::string>& known);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace minrej

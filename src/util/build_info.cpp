#include "util/build_info.h"

// Both macros are injected per-source-file by src/util/CMakeLists.txt; the
// fallbacks keep non-CMake builds (and tooling that compiles single files)
// working.
#ifndef MINREJ_GIT_SHA
#define MINREJ_GIT_SHA "unknown"
#endif
#ifndef MINREJ_BUILD_TYPE
#define MINREJ_BUILD_TYPE "unknown"
#endif

namespace minrej {

const char* build_git_sha() noexcept { return MINREJ_GIT_SHA; }

const char* build_type() noexcept { return MINREJ_BUILD_TYPE; }

}  // namespace minrej

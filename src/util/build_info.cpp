#include "util/build_info.h"

// Both macros are injected per-source-file by src/util/CMakeLists.txt; the
// fallbacks keep non-CMake builds (and tooling that compiles single files)
// working.
#ifndef MINREJ_GIT_SHA
#define MINREJ_GIT_SHA "unknown"
#endif
#ifndef MINREJ_BUILD_TYPE
#define MINREJ_BUILD_TYPE "unknown"
#endif

#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace minrej {

const char* build_git_sha() noexcept { return MINREJ_GIT_SHA; }

const char* build_type() noexcept { return MINREJ_BUILD_TYPE; }

namespace {

const char* resolve_sweep_isa() noexcept {
#if defined(MINREJ_NO_SIMD) || !defined(__x86_64__) || !defined(__GNUC__)
  return "scalar";
#else
  const bool has_avx2 = __builtin_cpu_supports("avx2");
  const bool has_avx512 = __builtin_cpu_supports("avx512f");
  // Operator escape hatch for calibration runs: cap the ISA below what the
  // CPU offers (never above — an unsupported request falls through to the
  // best supported tier so the process cannot fault).
  if (const char* want = std::getenv("MINREJ_SWEEP_ISA")) {
    if (std::strcmp(want, "scalar") == 0) return "scalar";
    if (std::strcmp(want, "avx2") == 0 && has_avx2) return "avx2";
  }
  if (has_avx512) return "avx512";
  if (has_avx2) return "avx2";
  return "scalar";
#endif
}

}  // namespace

const char* sweep_isa() noexcept {
  // Resolved once; getenv and cpuid are not hot-path material.
  static const char* const isa = resolve_sweep_isa();
  return isa;
}

std::size_t hardware_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t cache_line_bytes() noexcept {
  static const std::size_t line = []() noexcept -> std::size_t {
#if defined(_SC_LEVEL1_DCACHE_LINESIZE)
    const long detected = ::sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
    // Sanity-clamp: sysconf reports 0 in some containers and VMs.
    if (detected >= 16 && detected <= 4096) {
      return static_cast<std::size_t>(detected);
    }
#endif
    return 64;
  }();
  return line;
}

}  // namespace minrej

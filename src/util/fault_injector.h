// fault_injector.h — deterministic fault injection for the sharded
// service's soak harness (DESIGN.md §9).
//
// Faults are decided by hashing (seed, shard, arrival, attempt) through
// splitmix64 — stateless, so probes are thread-safe, independent of pump
// scheduling, and *retry-aware*: attempt 0 and attempt 1 of the same
// arrival hash differently, so a retried task is not doomed to hit the
// same injected exception forever (but with a scripted fault it can be,
// deliberately — see FaultPlan::scripted).  The same plan + seed always
// injects the same faults at the same points, which is what lets the soak
// harness compare a fault-injected run against a clean control run
// decision-for-decision.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace minrej {

/// What the injector tells the pump to do for one (shard, arrival,
/// attempt) probe.
enum class FaultAction : std::uint8_t {
  kNone = 0,
  /// Throw InjectedFault from inside the shard task (exercises the
  /// retry/backoff/quarantine path).
  kException = 1,
  /// Sleep for FaultPlan::delay_seconds before processing (exercises the
  /// deadline/degradation path; counted in ShardStats::injected_delays).
  kDelay = 2,
};

/// A fault pinned to an exact (shard, arrival) coordinate rather than
/// drawn from the hash.  `attempts` is how many consecutive attempts the
/// fault fires on: 1 means the first retry succeeds; a value above the
/// pump's retry limit forces the shard into quarantine.
struct ScriptedFault {
  std::size_t shard = 0;
  /// Service-global arrival index of the request being processed (the
  /// pump probes with the same coordinate corrupt() uses).
  std::size_t arrival = 0;
  std::size_t attempts = 1;
  FaultAction action = FaultAction::kException;
};

/// Probabilities and scripted faults for one injector.  Rates are per
/// probe in [0, 1]; exception_rate is tested first, so with both rates at
/// 1.0 every probe throws.
struct FaultPlan {
  double exception_rate = 0.0;
  double delay_rate = 0.0;
  /// Sleep length for kDelay actions.  Kept small by default so soak runs
  /// stay fast while still reordering shard completion times.
  double delay_seconds = 0.0005;
  /// Probability that corrupt() flags a global arrival index as malformed
  /// (the pump then mangles the request before validation sees it).
  double corrupt_rate = 0.0;
  std::uint64_t seed = 0;
  std::vector<ScriptedFault> scripted;
};

/// Exception type thrown by the pump on kException probes, so tests and
/// the quarantine accounting can tell injected faults from genuine
/// algorithm errors (which also take the retry path, but a real
/// InvalidArgument escaping retries is a bug worth seeing in the stats).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic fault oracle.  Immutable after construction; probes are
/// const and lock-free, so one injector can be shared by every shard task.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decides the fault for one processing attempt.  `arrival` is the
  /// service-global arrival index of the request; `attempt` counts retries
  /// from 0.  Keyed on the global index (which advances even when a shard
  /// sheds) so a healed shard sees fresh probes instead of replaying the
  /// exact fault pattern that quarantined it.
  FaultAction probe(std::size_t shard, std::size_t arrival,
                    std::size_t attempt) const noexcept;

  /// True if the request at this *global* arrival index should reach the
  /// service malformed (empty edge list + non-finite cost).  Decided on
  /// the global index so corruption is independent of sharding.
  bool corrupt(std::size_t global_arrival) const noexcept;

  double delay_seconds() const noexcept { return plan_.delay_seconds; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace minrej

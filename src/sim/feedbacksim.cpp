#include "sim/feedbacksim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <span>

#include "util/check.h"
#include "util/rng.h"

namespace minrej {

namespace {

/// One client waiting to retry.
struct PendingRetry {
  Request request;
  std::size_t attempt = 1;    // attempts already spent
  std::size_t due_epoch = 0;  // epoch it re-arrives in
};

std::size_t backoff_epochs(const ClientRetryPolicy& retry,
                           std::size_t attempt, Rng& rng) {
  const double raw =
      static_cast<double>(retry.backoff_base_epochs) *
      std::pow(retry.backoff_multiplier,
               static_cast<double>(attempt > 0 ? attempt - 1 : 0));
  auto epochs = static_cast<std::size_t>(std::ceil(std::max(1.0, raw)));
  if (retry.jitter > 0.0 && rng.bernoulli(retry.jitter)) ++epochs;
  return epochs;
}

}  // namespace

FeedbackResult run_feedback(AdmissionService& service,
                            const AdmissionInstance& instance,
                            const FeedbackConfig& config) {
  MINREJ_REQUIRE(config.epochs >= 1, "feedback loop needs epochs");
  MINREJ_REQUIRE(config.retry.max_attempts >= 1,
                 "clients need at least one attempt");
  MINREJ_REQUIRE(config.retry.backoff_multiplier >= 1.0,
                 "backoff multiplier must be >= 1");
  MINREJ_REQUIRE(config.retry.jitter >= 0.0 && config.retry.jitter <= 1.0,
                 "jitter must be in [0, 1]");
  MINREJ_REQUIRE(instance.graph().edge_count() ==
                     service.shard_algorithm(0).graph().edge_count(),
                 "instance graph does not match the service graph");

  Rng rng(config.seed);
  const std::vector<Request>& fresh = instance.requests();
  const std::size_t per_epoch =
      (fresh.size() + config.epochs - 1) / std::max<std::size_t>(1,
                                                                 config.epochs);
  std::deque<PendingRetry> queue;
  FeedbackResult result;

  std::size_t fresh_offset = 0;
  std::size_t epoch = 0;
  while (true) {
    const bool fresh_left = fresh_offset < fresh.size();
    if (!fresh_left && (queue.empty() || !config.drain)) break;

    FeedbackEpochStats es;
    es.epoch = epoch;

    // Due retries first (queue order — oldest clients retry first), then
    // this epoch's fresh slice.  One submit_batch per epoch keeps the
    // per-shard trajectories deterministic.
    std::vector<Request> batch;
    std::vector<std::size_t> attempts;  // spent attempts per batch entry
    while (!queue.empty() && queue.front().due_epoch <= epoch) {
      batch.push_back(std::move(queue.front().request));
      attempts.push_back(queue.front().attempt);
      queue.pop_front();
      ++es.retried;
    }
    if (fresh_left) {
      const std::size_t count =
          std::min(per_epoch, fresh.size() - fresh_offset);
      for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(fresh[fresh_offset + i]);
        attempts.push_back(1);
      }
      fresh_offset += count;
      es.fresh = count;
    }
    es.offered = batch.size();

    if (!batch.empty()) {
      const std::size_t base = service.arrivals();
      const std::vector<bool> accepted =
          service.submit_batch(std::span<const Request>(batch));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (accepted[i]) {
          ++es.admitted;
          continue;
        }
        const DecisionMode mode = service.decision_mode(base + i);
        if (mode == DecisionMode::kEngine) {
          ++es.rejected;
        } else if (mode == DecisionMode::kShed &&
                   service.placement(base + i).second != kInvalidId) {
          // Processed by the degraded threshold rule — an engine-side
          // verdict, not a drop.
          ++es.rejected;
        } else {
          ++es.shed;
        }
        if (attempts[i] >= config.retry.max_attempts) {
          ++es.abandoned;
          continue;
        }
        PendingRetry retry;
        retry.request = std::move(batch[i]);
        retry.attempt = attempts[i] + 1;
        retry.due_epoch =
            epoch + backoff_epochs(config.retry, attempts[i], rng);
        queue.push_back(std::move(retry));
      }
    }

    // Keep the queue due-ordered: entries pushed this epoch can be due
    // earlier than older long-backoff entries.
    std::stable_sort(queue.begin(), queue.end(),
                     [](const PendingRetry& a, const PendingRetry& b) {
                       return a.due_epoch < b.due_epoch;
                     });
    es.backlog = queue.size();
    result.offered += es.offered;
    result.admitted += es.admitted;
    result.abandoned += es.abandoned;
    result.epochs.push_back(es);
    ++epoch;

    // Safety valve: drain cannot loop forever (attempts are finite), but a
    // pathological backoff schedule could stretch idle epochs; skip ahead
    // to the next due retry instead of spinning empty epochs.
    if (!fresh_left && !queue.empty()) {
      std::size_t next_due = queue.front().due_epoch;
      for (const PendingRetry& r : queue) {
        next_due = std::min(next_due, r.due_epoch);
      }
      if (next_due > epoch) epoch = next_due;
    }
  }
  result.backlog = queue.size();
  return result;
}

}  // namespace minrej

// trace.h — per-arrival decision traces.
//
// A TraceRecorder captures, for every arrival, what the algorithm did and
// what the fractional state looked like — the raw material for debugging a
// competitive-ratio anomaly or plotting a single run's trajectory.  Traces
// render to CSV so they can be inspected next to the bench CSVs.
#pragma once

#include <string>
#include <vector>

#include "core/online_admission.h"
#include "graph/request.h"

namespace minrej {

/// One arrival's outcome snapshot.
struct TraceRow {
  std::size_t arrival = 0;
  double cost = 0.0;
  bool must_accept = false;
  bool accepted = false;
  std::size_t preempted = 0;
  double rejected_cost_total = 0.0;
  std::size_t rejected_count_total = 0;
};

/// Runs the instance through the algorithm, recording one row per arrival.
class TraceRecorder {
 public:
  /// Feeds every request and captures the trace.  Returns the rows.
  const std::vector<TraceRow>& record(OnlineAdmissionAlgorithm& algorithm,
                                      const AdmissionInstance& instance);

  const std::vector<TraceRow>& rows() const noexcept { return rows_; }

  /// CSV with a header row.
  std::string to_csv() const;

 private:
  std::vector<TraceRow> rows_;
};

}  // namespace minrej

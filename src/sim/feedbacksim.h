// feedbacksim.h — closed-loop client feedback over the sharded service
// (DESIGN.md §9; docs/SCENARIOS.md "Closed-loop scenarios").
//
// The open-loop drivers (sim/runner.h, AdmissionService::run) replay a
// fixed arrival sequence: a rejected request is gone.  Real overloads do
// not behave that way — rejected and shed clients come back, which is
// what turns a transient spike into a sustained one (retry storms) and
// what backpressure/load-shedding is supposed to dampen.  run_feedback
// closes the loop: the instance's requests arrive in epochs, every
// admission verdict is observed, and a rejected or shed request re-arrives
// after a client-side exponential backoff until its attempts are spent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/request.h"
#include "service/admission_service.h"

namespace minrej {

/// Client-side retry behaviour for rejected/shed requests.
struct ClientRetryPolicy {
  /// Total attempts per request, the first arrival included.
  std::size_t max_attempts = 3;
  /// Retry r (1-based) re-arrives after
  /// ceil(backoff_base_epochs * backoff_multiplier^(r-1)) epochs.
  std::size_t backoff_base_epochs = 1;
  double backoff_multiplier = 2.0;
  /// Probability of one extra epoch of delay per retry (decorrelates
  /// retry waves; drawn from FeedbackConfig::seed, deterministic).
  double jitter = 0.0;
};

/// Knobs for run_feedback.
struct FeedbackConfig {
  /// Epochs the instance's fresh arrivals are spread over (equal slices).
  std::size_t epochs = 16;
  ClientRetryPolicy retry;
  std::uint64_t seed = 0x10ADF33Du;
  /// Keep running empty-fresh epochs after the last slice until the retry
  /// queue drains (bounded: attempts are finite).
  bool drain = true;
};

/// Per-epoch accounting of the closed loop.
struct FeedbackEpochStats {
  std::size_t epoch = 0;
  std::size_t offered = 0;   ///< arrivals submitted this epoch
  std::size_t fresh = 0;     ///< first-attempt arrivals
  std::size_t retried = 0;   ///< re-arrivals from the retry queue
  std::size_t admitted = 0;  ///< accepted by the service
  std::size_t rejected = 0;  ///< engine-rejected (kEngine/kShed processing)
  std::size_t shed = 0;      ///< dropped by backpressure/quarantine/validation
  std::size_t abandoned = 0; ///< clients out of attempts this epoch
  std::size_t backlog = 0;   ///< retry queue size at epoch end
};

/// Outcome of one closed-loop run.
struct FeedbackResult {
  std::vector<FeedbackEpochStats> epochs;
  std::size_t offered = 0;    ///< total arrivals incl. retries
  std::size_t admitted = 0;   ///< requests eventually accepted
  std::size_t abandoned = 0;  ///< requests that ran out of attempts
  std::size_t backlog = 0;    ///< retries still queued when the run ended
};

/// Drives the instance's requests through the service in closed loop.
/// The service may be fault-tolerant or not; with fault tolerance its
/// decision modes separate engine rejections from shed drops in the
/// per-epoch stats (without it everything lands in `rejected`).  The
/// instance must live on a graph with the service's edge count.
FeedbackResult run_feedback(AdmissionService& service,
                            const AdmissionInstance& instance,
                            const FeedbackConfig& config);

}  // namespace minrej

#include "sim/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace minrej {

namespace {

/// Fills the shared latency fields of AdmissionRun/CoverRun from the
/// per-arrival samples (sorts in place).
template <typename RunT>
void fill_latency_quantiles(RunT& run, std::vector<double>& latencies) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  run.p50_arrival_s = quantile_sorted(latencies, 0.50);
  run.p95_arrival_s = quantile_sorted(latencies, 0.95);
  run.max_arrival_s = latencies.back();
}

}  // namespace

AdmissionRun run_admission(OnlineAdmissionAlgorithm& algorithm,
                           const AdmissionInstance& instance,
                           const RunOptions& options) {
  MINREJ_REQUIRE(&algorithm.graph() != nullptr, "algorithm without graph");
  std::vector<double> latencies;
  AdmissionRun run;
  run.augmentation_budget = augmentation_step_budget(
      instance.request_count(), instance.graph().edge_count(),
      instance.graph().max_capacity());
  // Cheap per-arrival probe (one virtual accessor and a compare) so the
  // warning can name the first arrival that blew the budget.
  std::size_t index = 0;
  const auto note_crossing = [&](const Request& request) {
    if (run.budget_crossing_arrival == kBudgetNeverCrossed &&
        algorithm.augmentation_steps() > run.augmentation_budget) {
      run.budget_crossing_arrival = index;
      run.budget_crossing_edge =
          request.edges.empty() ? 0 : request.edges.front();
    }
    ++index;
  };
  Timer timer;
  if (options.collect_latencies) {
    latencies.reserve(instance.request_count());
    Timer arrival_timer;
    for (const Request& request : instance.requests()) {
      arrival_timer.reset();
      algorithm.process(request);
      latencies.push_back(arrival_timer.elapsed_s());
      note_crossing(request);
    }
  } else {
    for (const Request& request : instance.requests()) {
      algorithm.process(request);
      note_crossing(request);
    }
  }
  run.seconds = timer.elapsed_s();
  run.rejected_cost = algorithm.rejected_cost();
  run.rejected_count = algorithm.rejected_count();
  run.arrivals = instance.request_count();
  run.augmentation_steps = algorithm.augmentation_steps();
  run.augmentation_budget_exceeded =
      run.augmentation_steps > run.augmentation_budget;
  if (options.warn_augmentation_budget) {
    MINREJ_WARN_IF(
        run.augmentation_budget_exceeded,
        augmentation_budget_warning(
            run.augmentation_steps, run.augmentation_budget,
            run.budget_crossing_arrival, run.arrivals,
            run.budget_crossing_edge, "edge",
            "per-edge capacity is likely in the superlinear regime"));
  }
  fill_latency_quantiles(run, latencies);
  return run;
}

CoverRun run_setcover(OnlineSetCoverAlgorithm& algorithm,
                      const std::vector<ElementId>& arrivals,
                      const RunOptions& options) {
  std::vector<double> latencies;
  CoverRun run;
  // Through the §4 reduction the edges are the elements and the largest
  // capacity is the largest degree — which is exactly the substrate's
  // max_capacity under the degree binding SetSystem enforces.
  const SetSystem& system = algorithm.system();
  run.augmentation_budget = augmentation_step_budget(
      arrivals.size(), system.element_count(),
      std::max<std::int64_t>(1, system.substrate().max_capacity()));
  std::size_t index = 0;
  const auto note_crossing = [&](ElementId j) {
    if (run.budget_crossing_arrival == kBudgetNeverCrossed &&
        algorithm.augmentation_steps() > run.augmentation_budget) {
      run.budget_crossing_arrival = index;
      run.budget_crossing_element = j;
    }
    ++index;
  };
  Timer timer;
  if (options.collect_latencies) {
    latencies.reserve(arrivals.size());
    Timer arrival_timer;
    for (ElementId j : arrivals) {
      arrival_timer.reset();
      algorithm.on_element(j);
      latencies.push_back(arrival_timer.elapsed_s());
      note_crossing(j);
    }
  } else {
    for (ElementId j : arrivals) {
      algorithm.on_element(j);
      note_crossing(j);
    }
  }
  run.seconds = timer.elapsed_s();
  run.cost = algorithm.cost();
  run.chosen_count = algorithm.chosen_count();
  run.arrivals = arrivals.size();
  run.augmentation_steps = algorithm.augmentation_steps();
  run.augmentation_budget_exceeded =
      run.augmentation_steps > run.augmentation_budget;
  if (options.warn_augmentation_budget) {
    MINREJ_WARN_IF(
        run.augmentation_budget_exceeded,
        augmentation_budget_warning(
            run.augmentation_steps, run.augmentation_budget,
            run.budget_crossing_arrival, run.arrivals,
            run.budget_crossing_element, "element",
            "demands near the element degrees drive the §4 reduction into "
            "the superlinear regime"));
  }
  fill_latency_quantiles(run, latencies);
  return run;
}

std::vector<ElementId> run_adaptive_adversary(
    OnlineSetCoverAlgorithm& algorithm, std::size_t arrivals) {
  const SetSystem& sys = algorithm.system();
  std::vector<ElementId> played;
  played.reserve(arrivals);
  for (std::size_t step = 0; step < arrivals; ++step) {
    // Pick the requestable element with the smallest coverage slack.
    bool found = false;
    ElementId pick = 0;
    std::int64_t best_slack = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 0; j < sys.element_count(); ++j) {
      const auto elem = static_cast<ElementId>(j);
      if (algorithm.demand(elem) >=
          static_cast<std::int64_t>(sys.degree(elem))) {
        continue;  // cannot be requested again (would be infeasible)
      }
      const std::int64_t slack =
          algorithm.covered(elem) - algorithm.demand(elem);
      if (slack < best_slack) {
        best_slack = slack;
        pick = elem;
        found = true;
      }
    }
    if (!found) break;  // every element is at its degree limit
    algorithm.on_element(pick);
    played.push_back(pick);
  }
  return played;
}

double competitive_ratio(double cost, double opt) {
  if (opt <= 0.0) {
    return cost <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return cost / opt;
}

std::vector<double> parallel_trials(
    std::size_t trials, const std::function<double(std::size_t)>& body,
    std::size_t threads) {
  std::vector<double> results(trials, 0.0);
  parallel_for_index(
      trials, [&](std::size_t i) { results[i] = body(i); }, threads);
  return results;
}

}  // namespace minrej

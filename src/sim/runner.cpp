#include "sim/runner.h"

#include <limits>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace minrej {

AdmissionRun run_admission(OnlineAdmissionAlgorithm& algorithm,
                           const AdmissionInstance& instance) {
  MINREJ_REQUIRE(&algorithm.graph() != nullptr, "algorithm without graph");
  Timer timer;
  for (const Request& request : instance.requests()) {
    algorithm.process(request);
  }
  AdmissionRun run;
  run.rejected_cost = algorithm.rejected_cost();
  run.rejected_count = algorithm.rejected_count();
  run.arrivals = instance.request_count();
  run.seconds = timer.elapsed_s();
  return run;
}

CoverRun run_setcover(OnlineSetCoverAlgorithm& algorithm,
                      const std::vector<ElementId>& arrivals) {
  Timer timer;
  for (ElementId j : arrivals) {
    algorithm.on_element(j);
  }
  CoverRun run;
  run.cost = algorithm.cost();
  run.chosen_count = algorithm.chosen_count();
  run.arrivals = arrivals.size();
  run.seconds = timer.elapsed_s();
  return run;
}

std::vector<ElementId> run_adaptive_adversary(
    OnlineSetCoverAlgorithm& algorithm, std::size_t arrivals) {
  const SetSystem& sys = algorithm.system();
  std::vector<ElementId> played;
  played.reserve(arrivals);
  for (std::size_t step = 0; step < arrivals; ++step) {
    // Pick the requestable element with the smallest coverage slack.
    bool found = false;
    ElementId pick = 0;
    std::int64_t best_slack = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 0; j < sys.element_count(); ++j) {
      const auto elem = static_cast<ElementId>(j);
      if (algorithm.demand(elem) >=
          static_cast<std::int64_t>(sys.degree(elem))) {
        continue;  // cannot be requested again (would be infeasible)
      }
      const std::int64_t slack =
          algorithm.covered(elem) - algorithm.demand(elem);
      if (slack < best_slack) {
        best_slack = slack;
        pick = elem;
        found = true;
      }
    }
    if (!found) break;  // every element is at its degree limit
    algorithm.on_element(pick);
    played.push_back(pick);
  }
  return played;
}

double competitive_ratio(double cost, double opt) {
  if (opt <= 0.0) {
    return cost <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return cost / opt;
}

std::vector<double> parallel_trials(
    std::size_t trials, const std::function<double(std::size_t)>& body,
    std::size_t threads) {
  std::vector<double> results(trials, 0.0);
  parallel_for_index(
      trials, [&](std::size_t i) { results[i] = body(i); }, threads);
  return results;
}

}  // namespace minrej

// workloads.h — complete admission-control instances for the experiments.
//
// Each builder returns an AdmissionInstance (graph + arrival order).  The
// families mirror the settings of the admission-control literature the
// paper positions itself in (line/tree/mesh/general networks) plus the
// adversarial constructions that expose the baselines' lower bounds.
#pragma once

#include <cstdint>

#include "graph/request.h"
#include "util/rng.h"

namespace minrej {

/// Cost model for a workload: unit (all 1; the Theorem 4 setting) or
/// log-uniform in [cost_min, cost_max] (spread across the paper's whole
/// normalization range, the Theorem 3 setting).
struct CostModel {
  bool unit = true;
  double cost_min = 1.0;
  double cost_max = 1.0;

  static CostModel unit_costs() { return {true, 1.0, 1.0}; }
  static CostModel spread(double lo, double hi) { return {false, lo, hi}; }

  double sample(Rng& rng) const {
    return unit ? 1.0 : rng.log_uniform(cost_min, cost_max);
  }
};

/// Random contiguous subpaths on a line of `edge_count` edges.
AdmissionInstance make_line_workload(std::size_t edge_count,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t min_len, std::size_t max_len,
                                     const CostModel& costs, Rng& rng);

/// Random spoke subsets on a star (requests are arbitrary edge subsets —
/// the paper's §6 remark makes this legal input).
AdmissionInstance make_star_workload(std::size_t leaves,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t max_spokes,
                                     const CostModel& costs, Rng& rng);

/// Root-to-leaf paths on a complete binary tree.
AdmissionInstance make_tree_workload(std::size_t depth, std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng);

/// Monotone staircase paths on a rows x cols grid.
AdmissionInstance make_grid_workload(std::size_t rows, std::size_t cols,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng);

/// `request_count` requests hammering one edge of capacity `capacity` —
/// the minimal overload stage (OPT rejects exactly count − capacity).
AdmissionInstance make_single_edge_burst(std::int64_t capacity,
                                         std::size_t request_count,
                                         const CostModel& costs, Rng& rng);

/// Skewed-popularity workload on a star of `edge_count` spokes: each
/// request touches 1..max_edges distinct edges drawn from a Zipf(exponent)
/// popularity law over the spokes (edge e with probability ∝ 1/(e+1)^s).
/// A handful of hot edges absorb most of the traffic — the production
/// traffic shape the perf bench (E10) measures the engine's member-list
/// handling on, complementing the uniform families above.
AdmissionInstance make_power_law_workload(std::size_t edge_count,
                                          std::int64_t capacity,
                                          std::size_t request_count,
                                          std::size_t max_edges,
                                          double exponent,
                                          const CostModel& costs, Rng& rng);

/// The no-preemption killer (unit costs): a line of `edge_count` edges of
/// capacity `capacity`; first `capacity` requests span the whole line,
/// then every edge receives `capacity` single-edge requests.  An algorithm
/// that never preempts keeps the spanning requests and rejects all
/// edge_count·capacity singles; OPT rejects just the `capacity` spanning
/// requests.  Ratio Ω(edge_count) — the separation E5 reports.
AdmissionInstance make_greedy_killer(std::size_t edge_count,
                                     std::int64_t capacity);

}  // namespace minrej

// workloads.h — complete admission-control instances for the experiments.
//
// Each builder returns an AdmissionInstance (graph + arrival order).  The
// families mirror the settings of the admission-control literature the
// paper positions itself in (line/tree/mesh/general networks) plus the
// adversarial constructions that expose the baselines' lower bounds.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/request.h"
#include "util/rng.h"

namespace minrej {

/// Cost model for a workload: unit (all 1; the Theorem 4 setting) or
/// log-uniform in [cost_min, cost_max] (spread across the paper's whole
/// normalization range, the Theorem 3 setting).
struct CostModel {
  bool unit = true;
  double cost_min = 1.0;
  double cost_max = 1.0;

  static CostModel unit_costs() { return {true, 1.0, 1.0}; }
  static CostModel spread(double lo, double hi) { return {false, lo, hi}; }

  double sample(Rng& rng) const {
    return unit ? 1.0 : rng.log_uniform(cost_min, cost_max);
  }
};

/// Random contiguous subpaths on a line of `edge_count` edges.
AdmissionInstance make_line_workload(std::size_t edge_count,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t min_len, std::size_t max_len,
                                     const CostModel& costs, Rng& rng);

/// Random spoke subsets on a star (requests are arbitrary edge subsets —
/// the paper's §6 remark makes this legal input).
AdmissionInstance make_star_workload(std::size_t leaves,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t max_spokes,
                                     const CostModel& costs, Rng& rng);

/// Root-to-leaf paths on a complete binary tree.
AdmissionInstance make_tree_workload(std::size_t depth, std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng);

/// Monotone staircase paths on a rows x cols grid.
AdmissionInstance make_grid_workload(std::size_t rows, std::size_t cols,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng);

/// `request_count` requests hammering one edge of capacity `capacity` —
/// the minimal overload stage (OPT rejects exactly count − capacity).
AdmissionInstance make_single_edge_burst(std::int64_t capacity,
                                         std::size_t request_count,
                                         const CostModel& costs, Rng& rng);

/// Skewed-popularity workload on a star of `edge_count` spokes: each
/// request touches 1..max_edges distinct edges drawn from a Zipf(exponent)
/// popularity law over the spokes (edge e with probability ∝ 1/(e+1)^s).
/// A handful of hot edges absorb most of the traffic — the production
/// traffic shape the perf bench (E10) measures the engine's member-list
/// handling on, complementing the uniform families above.
AdmissionInstance make_power_law_workload(std::size_t edge_count,
                                          std::int64_t capacity,
                                          std::size_t request_count,
                                          std::size_t max_edges,
                                          double exponent,
                                          const CostModel& costs, Rng& rng);

/// The no-preemption killer (unit costs): a line of `edge_count` edges of
/// capacity `capacity`; first `capacity` requests span the whole line,
/// then every edge receives `capacity` single-edge requests.  An algorithm
/// that never preempts keeps the spanning requests and rejects all
/// edge_count·capacity singles; OPT rejects just the `capacity` spanning
/// requests.  Ratio Ω(edge_count) — the separation E5 reports.
AdmissionInstance make_greedy_killer(std::size_t edge_count,
                                     std::int64_t capacity);

/// Uniform dense burst across a star of `edge_count` spokes: every request
/// hits exactly one uniformly-drawn spoke, so each edge receives a dense
/// single-edge burst of ≈ request_count/edge_count arrivals against
/// capacity `capacity`.  The multi-resource generalization of
/// make_single_edge_burst — and, because every request touches a single
/// edge, a *shard-disjoint* workload under any edge partition (the
/// AdmissionService identity tests run on it; see DESIGN.md §6.1).
AdmissionInstance make_dense_burst_workload(std::size_t edge_count,
                                            std::int64_t capacity,
                                            std::size_t request_count,
                                            const CostModel& costs, Rng& rng);

/// Diurnal wave on a star of `edge_count` spokes: arrival i at phase
/// t = i/request_count targets the hot set (the first `hot_edges` spokes)
/// with probability 0.15 + 0.7 · (1 + sin(2π · periods · t))/2, and a
/// uniformly random spoke otherwise.  Models the day/night load swing of a
/// user-facing service: the hot edges overload only around the wave peaks,
/// so preemption pressure comes and goes `periods` times over the run.
/// Single-edge requests — shard-disjoint like the dense burst.
AdmissionInstance make_diurnal_workload(std::size_t edge_count,
                                        std::int64_t capacity,
                                        std::size_t request_count,
                                        double periods, std::size_t hot_edges,
                                        const CostModel& costs, Rng& rng);

/// Flash crowd on a star of `edge_count` spokes: uniform single-edge
/// traffic except inside the crowd window [crowd_start, crowd_end) (run
/// fractions in [0, 1]), where each arrival targets the hot set (the
/// first `hot_edges` spokes) with probability 0.9.  Models a viral event:
/// a stable service suddenly concentrates its whole offered load on a few
/// resources, deeply overloading them, then recovers.  Single-edge
/// requests — shard-disjoint like the dense burst — which is what makes
/// it the soak harness's default fault-injection stage (DESIGN.md §9).
AdmissionInstance make_flash_crowd_workload(std::size_t edge_count,
                                            std::int64_t capacity,
                                            std::size_t request_count,
                                            double crowd_start,
                                            double crowd_end,
                                            std::size_t hot_edges,
                                            const CostModel& costs, Rng& rng);

/// Cascading failure across `groups` equal blocks of spokes: the run is
/// split into `groups` windows, and in window g traffic targets block g
/// with probability 0.8 (uniform otherwise) — the load that block g's
/// "failed" predecessor shed lands on it, overloads it, and the hotspot
/// rolls on.  Every block takes its turn being the overloaded survivor.
/// Single-edge requests, shard-disjoint; with the block-aligned partition
/// e ↦ (e / (edge_count/groups)) mod K the rolling hotspot visits the
/// service's shards one after another (the cascading_failure scenario of
/// the soak harness).
AdmissionInstance make_cascading_failure_workload(std::size_t edge_count,
                                                  std::int64_t capacity,
                                                  std::size_t request_count,
                                                  std::size_t groups,
                                                  const CostModel& costs,
                                                  Rng& rng);

/// Adversarial escalation on one edge of capacity `capacity`: request i
/// costs cost_ratio^{i/(request_count−1)} (deterministic, strictly
/// increasing from 1 to cost_ratio), so every arrival is worth more than
/// everything accepted before it.  Threshold/preemption policies churn
/// maximally — each arrival pressures the algorithm to evict — while OPT
/// simply rejects the request_count − capacity cheapest prefix.
AdmissionInstance make_adversarial_single_edge(std::int64_t capacity,
                                               std::size_t request_count,
                                               double cost_ratio);

/// Multi-tenant mix: `tenants` tenants own disjoint blocks of
/// `edges_per_tenant` consecutive spokes on one star.  Each request picks
/// a tenant from a Zipf(tenant_exponent) popularity law, then 1..max_edges
/// distinct edges uniformly *within that tenant's block*.  Traffic never
/// crosses tenant boundaries, so the instance is shard-disjoint under the
/// tenant-aligned partition e ↦ (e / edges_per_tenant) mod K — the
/// workload the sharded service is sized for (DESIGN.md §6.1).
AdmissionInstance make_multi_tenant_workload(std::size_t tenants,
                                             std::size_t edges_per_tenant,
                                             std::int64_t capacity,
                                             std::size_t request_count,
                                             std::size_t max_edges,
                                             double tenant_exponent,
                                             const CostModel& costs, Rng& rng);

/// The Ω-style lower-bound construction the paper's guarantee is tight
/// against (unit costs, deterministic, no rng).  `blocks` independent
/// blocks; each block is one "special" request spanning the block's
/// `rounds` round-edges (capacity `capacity` each) followed by `rounds`
/// rounds of `capacity` single-edge decoys on round-edge t.  Every round
/// edge carries capacity + 1 requests — excess exactly 1 — and rejecting
/// the special alone covers all of its block's rounds, so OPT = blocks,
/// while the online algorithm pays the weight-floor mass of a whole round
/// (capacity · 1/c ≥ threshold each) in every round until the special's
/// weight saturates ≈ log₂(capacity) rounds later — Θ(c·log c) paid per
/// block against OPT's 1, so the measured ratio grows with the capacity
/// knob (DESIGN.md §10.3; the catalog entry ties capacity to ⌈log₂ n⌉).
/// The last `request_count − blocks·(1 + rounds·capacity)` requests pad a
/// slack edge sized to never overload, so the instance hits
/// `request_count` exactly.
AdmissionInstance make_adversarial_lower_bound(std::size_t blocks,
                                               std::size_t rounds,
                                               std::int64_t capacity,
                                               std::size_t request_count);

// ---------------------------------------------------------------------------
// Scenario catalog — named, documented workload configurations selectable
// by string from the CLI drivers and benches (docs/SCENARIOS.md is the
// reference; every entry there corresponds to one name here).
// ---------------------------------------------------------------------------

/// Size knobs shared by every catalog scenario.  Each scenario interprets
/// them in its own units (documented per scenario in docs/SCENARIOS.md);
/// capacity == 0 selects the scenario's default, chosen so the instance is
/// meaningfully overloaded at the given request count.
struct ScenarioParams {
  std::size_t requests = 20000;
  std::size_t edges = 64;
  std::int64_t capacity = 0;
};

/// One catalog entry: the string the CLI accepts plus a one-line summary.
struct ScenarioInfo {
  const char* name;
  const char* summary;
};

/// All catalog scenarios, in stable order: dense_burst, power_law,
/// diurnal, flash_crowd, cascading_failure, adversarial_single_edge,
/// adversarial_lower_bound, multi_tenant, setcover_powerlaw,
/// setcover_reduction_replay, shared_sets_overlap.  The setcover_* and
/// shared_sets_overlap entries
/// realize online set cover as admission traffic through the §4 reduction
/// (core/reduction.h), so every admission driver — the benches, the
/// sharded service, minrej_serve — replays them end-to-end; flash_crowd
/// and cascading_failure are the overload/fault stages of the soak
/// harness (DESIGN.md §9).
std::span<const ScenarioInfo> scenario_catalog();

/// True iff `name` is a catalog scenario.
bool is_scenario(const std::string& name);

/// Builds the named scenario; throws InvalidArgument for unknown names
/// (the message lists the catalog).
AdmissionInstance make_scenario(const std::string& name,
                                const ScenarioParams& params, Rng& rng);

/// True iff every request cost is 1 (within the engine's unit-cost
/// tolerance) — such instances should run the algorithms in unit_costs
/// mode (the Theorem 4 constants).  The service driver and benches use
/// this to pick the mode per scenario.
bool all_unit_costs(const AdmissionInstance& instance);

}  // namespace minrej

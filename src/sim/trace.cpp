#include "sim/trace.h"

#include <sstream>

namespace minrej {

const std::vector<TraceRow>& TraceRecorder::record(
    OnlineAdmissionAlgorithm& algorithm, const AdmissionInstance& instance) {
  rows_.clear();
  rows_.reserve(instance.request_count());
  for (std::size_t i = 0; i < instance.request_count(); ++i) {
    const Request& request = instance.request(static_cast<RequestId>(i));
    const ArrivalResult result = algorithm.process(request);
    TraceRow row;
    row.arrival = i;
    row.cost = request.cost;
    row.must_accept = request.must_accept;
    row.accepted = result.accepted;
    row.preempted = result.preempted.size();
    row.rejected_cost_total = algorithm.rejected_cost();
    row.rejected_count_total = algorithm.rejected_count();
    rows_.push_back(row);
  }
  return rows_;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "arrival,cost,must_accept,accepted,preempted,"
        "rejected_cost_total,rejected_count_total\n";
  for (const TraceRow& r : rows_) {
    os << r.arrival << ',' << r.cost << ',' << (r.must_accept ? 1 : 0) << ','
       << (r.accepted ? 1 : 0) << ',' << r.preempted << ','
       << r.rejected_cost_total << ',' << r.rejected_count_total << '\n';
  }
  return os.str();
}

}  // namespace minrej

#include "sim/workloads.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "util/check.h"

namespace minrej {

AdmissionInstance make_line_workload(std::size_t edge_count,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t min_len, std::size_t max_len,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_line_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(
        random_line_request(graph, rng, min_len, max_len, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_star_workload(std::size_t leaves,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t max_spokes,
                                     const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(max_spokes >= 1 && max_spokes <= leaves, "bad max_spokes");
  Graph graph = make_star_graph(leaves, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    const std::size_t spokes = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_spokes)));
    std::vector<EdgeId> edges;
    for (std::size_t idx : rng.sample_indices(leaves, spokes)) {
      edges.push_back(static_cast<EdgeId>(idx));
    }
    requests.emplace_back(std::move(edges), costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_tree_workload(std::size_t depth, std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_binary_tree(depth, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(random_tree_path_request(graph, rng, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_grid_workload(std::size_t rows, std::size_t cols,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_grid_graph(rows, cols, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(
        random_grid_path_request(graph, rows, cols, rng, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_single_edge_burst(std::int64_t capacity,
                                         std::size_t request_count,
                                         const CostModel& costs, Rng& rng) {
  Graph graph = make_single_edge_graph(capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.emplace_back(std::vector<EdgeId>{0}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_power_law_workload(std::size_t edge_count,
                                          std::int64_t capacity,
                                          std::size_t request_count,
                                          std::size_t max_edges,
                                          double exponent,
                                          const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "power-law workload needs edges");
  MINREJ_REQUIRE(max_edges >= 1 && max_edges <= edge_count, "bad max_edges");
  MINREJ_REQUIRE(exponent >= 0.0, "exponent must be non-negative");
  Graph graph = make_star_graph(edge_count, capacity);
  // Cumulative Zipf mass over the spokes; inverted per draw by binary
  // search (exponent 0 degenerates to the uniform star workload).
  std::vector<double> cumulative(edge_count, 0.0);
  double total = 0.0;
  for (std::size_t e = 0; e < edge_count; ++e) {
    total += 1.0 / std::pow(static_cast<double>(e + 1), exponent);
    cumulative[e] = total;
  }
  auto draw_edge = [&] {
    const double u = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<EdgeId>(
        std::min<std::size_t>(edge_count - 1,
                              static_cast<std::size_t>(
                                  it - cumulative.begin())));
  };
  std::vector<Request> requests;
  requests.reserve(request_count);
  std::vector<EdgeId> edges;
  for (std::size_t i = 0; i < request_count; ++i) {
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_edges)));
    edges.clear();
    // Rejection-sample distinct edges; the duplicate rate is high only on
    // the hot spokes, so cap the attempts and settle for fewer edges.
    for (std::size_t attempt = 0;
         edges.size() < want && attempt < 8 * max_edges; ++attempt) {
      const EdgeId e = draw_edge();
      if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
        edges.push_back(e);
      }
    }
    requests.emplace_back(edges, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_greedy_killer(std::size_t edge_count,
                                     std::int64_t capacity) {
  MINREJ_REQUIRE(edge_count >= 2, "killer needs at least two edges");
  Graph graph = make_line_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(capacity) * (edge_count + 1));
  // Spanning requests fill every edge to capacity...
  for (std::int64_t k = 0; k < capacity; ++k) {
    requests.push_back(make_line_request(graph, 0, edge_count, 1.0));
  }
  // ...then each edge is hit by `capacity` singletons.
  for (std::size_t e = 0; e < edge_count; ++e) {
    for (std::int64_t k = 0; k < capacity; ++k) {
      requests.push_back(make_line_request(graph, e, 1, 1.0));
    }
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

}  // namespace minrej

#include "sim/workloads.h"

#include <algorithm>
#include <cmath>

#include "core/reduction.h"
#include "graph/generators.h"
#include "setcover/generators.h"
#include "util/check.h"

namespace minrej {

AdmissionInstance make_line_workload(std::size_t edge_count,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t min_len, std::size_t max_len,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_line_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(
        random_line_request(graph, rng, min_len, max_len, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_star_workload(std::size_t leaves,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     std::size_t max_spokes,
                                     const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(max_spokes >= 1 && max_spokes <= leaves, "bad max_spokes");
  Graph graph = make_star_graph(leaves, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    const std::size_t spokes = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_spokes)));
    std::vector<EdgeId> edges;
    for (std::size_t idx : rng.sample_indices(leaves, spokes)) {
      edges.push_back(static_cast<EdgeId>(idx));
    }
    requests.emplace_back(std::move(edges), costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_tree_workload(std::size_t depth, std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_binary_tree(depth, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(random_tree_path_request(graph, rng, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_grid_workload(std::size_t rows, std::size_t cols,
                                     std::int64_t capacity,
                                     std::size_t request_count,
                                     const CostModel& costs, Rng& rng) {
  Graph graph = make_grid_graph(rows, cols, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.push_back(
        random_grid_path_request(graph, rows, cols, rng, costs.sample(rng)));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_single_edge_burst(std::int64_t capacity,
                                         std::size_t request_count,
                                         const CostModel& costs, Rng& rng) {
  Graph graph = make_single_edge_graph(capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.emplace_back(std::vector<EdgeId>{0}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_power_law_workload(std::size_t edge_count,
                                          std::int64_t capacity,
                                          std::size_t request_count,
                                          std::size_t max_edges,
                                          double exponent,
                                          const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "power-law workload needs edges");
  MINREJ_REQUIRE(max_edges >= 1 && max_edges <= edge_count, "bad max_edges");
  MINREJ_REQUIRE(exponent >= 0.0, "exponent must be non-negative");
  Graph graph = make_star_graph(edge_count, capacity);
  // Cumulative Zipf mass over the spokes; inverted per draw by binary
  // search (exponent 0 degenerates to the uniform star workload).
  std::vector<double> cumulative(edge_count, 0.0);
  double total = 0.0;
  for (std::size_t e = 0; e < edge_count; ++e) {
    total += 1.0 / std::pow(static_cast<double>(e + 1), exponent);
    cumulative[e] = total;
  }
  auto draw_edge = [&] {
    const double u = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<EdgeId>(
        std::min<std::size_t>(edge_count - 1,
                              static_cast<std::size_t>(
                                  it - cumulative.begin())));
  };
  std::vector<Request> requests;
  requests.reserve(request_count);
  std::vector<EdgeId> edges;
  for (std::size_t i = 0; i < request_count; ++i) {
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_edges)));
    edges.clear();
    // Rejection-sample distinct edges; the duplicate rate is high only on
    // the hot spokes, so cap the attempts and settle for fewer edges.
    for (std::size_t attempt = 0;
         edges.size() < want && attempt < 8 * max_edges; ++attempt) {
      const EdgeId e = draw_edge();
      if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
        edges.push_back(e);
      }
    }
    requests.emplace_back(edges, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_dense_burst_workload(std::size_t edge_count,
                                            std::int64_t capacity,
                                            std::size_t request_count,
                                            const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "dense burst needs edges");
  Graph graph = make_star_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    requests.emplace_back(
        std::vector<EdgeId>{static_cast<EdgeId>(rng.index(edge_count))},
        costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_diurnal_workload(std::size_t edge_count,
                                        std::int64_t capacity,
                                        std::size_t request_count,
                                        double periods, std::size_t hot_edges,
                                        const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "diurnal workload needs edges");
  MINREJ_REQUIRE(hot_edges >= 1 && hot_edges <= edge_count, "bad hot_edges");
  MINREJ_REQUIRE(periods > 0.0, "periods must be positive");
  Graph graph = make_star_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  constexpr double kTau = 6.283185307179586476925286766559;  // 2π
  for (std::size_t i = 0; i < request_count; ++i) {
    const double t = request_count > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(request_count)
                         : 0.0;
    const double wave = 0.5 * (1.0 + std::sin(kTau * periods * t));
    const double p_hot = 0.15 + 0.7 * wave;
    const EdgeId e = rng.bernoulli(p_hot)
                         ? static_cast<EdgeId>(rng.index(hot_edges))
                         : static_cast<EdgeId>(rng.index(edge_count));
    requests.emplace_back(std::vector<EdgeId>{e}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_flash_crowd_workload(std::size_t edge_count,
                                            std::int64_t capacity,
                                            std::size_t request_count,
                                            double crowd_start,
                                            double crowd_end,
                                            std::size_t hot_edges,
                                            const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "flash crowd needs edges");
  MINREJ_REQUIRE(hot_edges >= 1 && hot_edges <= edge_count, "bad hot_edges");
  MINREJ_REQUIRE(crowd_start >= 0.0 && crowd_end <= 1.0 &&
                     crowd_start < crowd_end,
                 "crowd window must satisfy 0 <= start < end <= 1");
  Graph graph = make_star_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    const double t = request_count > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(request_count)
                         : 0.0;
    const bool in_crowd = t >= crowd_start && t < crowd_end;
    const EdgeId e = (in_crowd && rng.bernoulli(0.9))
                         ? static_cast<EdgeId>(rng.index(hot_edges))
                         : static_cast<EdgeId>(rng.index(edge_count));
    requests.emplace_back(std::vector<EdgeId>{e}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_cascading_failure_workload(std::size_t edge_count,
                                                  std::int64_t capacity,
                                                  std::size_t request_count,
                                                  std::size_t groups,
                                                  const CostModel& costs,
                                                  Rng& rng) {
  MINREJ_REQUIRE(edge_count >= 1, "cascading failure needs edges");
  MINREJ_REQUIRE(groups >= 1 && groups <= edge_count,
                 "groups must be in [1, edge_count]");
  Graph graph = make_star_graph(edge_count, capacity);
  const std::size_t block = edge_count / groups;  // last block takes the rest
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    // Window g of the run aims the hotspot at block g.
    const std::size_t g =
        std::min(groups - 1, i * groups / std::max<std::size_t>(1,
                                                                request_count));
    EdgeId e;
    if (rng.bernoulli(0.8)) {
      const std::size_t begin = g * block;
      const std::size_t size =
          (g + 1 == groups) ? edge_count - begin : block;
      e = static_cast<EdgeId>(begin + rng.index(std::max<std::size_t>(1,
                                                                      size)));
    } else {
      e = static_cast<EdgeId>(rng.index(edge_count));
    }
    requests.emplace_back(std::vector<EdgeId>{e}, costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_adversarial_single_edge(std::int64_t capacity,
                                               std::size_t request_count,
                                               double cost_ratio) {
  MINREJ_REQUIRE(request_count >= 1, "adversary needs requests");
  MINREJ_REQUIRE(cost_ratio >= 1.0, "cost_ratio must be >= 1");
  Graph graph = make_single_edge_graph(capacity);
  std::vector<Request> requests;
  requests.reserve(request_count);
  const double denom =
      request_count > 1 ? static_cast<double>(request_count - 1) : 1.0;
  for (std::size_t i = 0; i < request_count; ++i) {
    const double cost =
        std::pow(cost_ratio, static_cast<double>(i) / denom);
    requests.emplace_back(std::vector<EdgeId>{0}, cost);
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_multi_tenant_workload(std::size_t tenants,
                                             std::size_t edges_per_tenant,
                                             std::int64_t capacity,
                                             std::size_t request_count,
                                             std::size_t max_edges,
                                             double tenant_exponent,
                                             const CostModel& costs, Rng& rng) {
  MINREJ_REQUIRE(tenants >= 1, "need at least one tenant");
  MINREJ_REQUIRE(edges_per_tenant >= 1, "tenants need edges");
  MINREJ_REQUIRE(max_edges >= 1 && max_edges <= edges_per_tenant,
                 "bad max_edges");
  MINREJ_REQUIRE(tenant_exponent >= 0.0, "exponent must be non-negative");
  Graph graph = make_star_graph(tenants * edges_per_tenant, capacity);
  // Cumulative Zipf mass over the tenants (same inversion scheme as the
  // power-law workload, one level up the hierarchy).
  std::vector<double> cumulative(tenants, 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < tenants; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), tenant_exponent);
    cumulative[t] = total;
  }
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    const double u = rng.uniform() * total;
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t tenant = std::min<std::size_t>(
        tenants - 1, static_cast<std::size_t>(it - cumulative.begin()));
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_edges)));
    const auto base = static_cast<EdgeId>(tenant * edges_per_tenant);
    std::vector<EdgeId> edges;
    edges.reserve(want);
    for (std::size_t idx : rng.sample_indices(edges_per_tenant, want)) {
      edges.push_back(base + static_cast<EdgeId>(idx));
    }
    requests.emplace_back(std::move(edges), costs.sample(rng));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

AdmissionInstance make_adversarial_lower_bound(std::size_t blocks,
                                               std::size_t rounds,
                                               std::int64_t capacity,
                                               std::size_t request_count) {
  MINREJ_REQUIRE(capacity >= 1, "lower-bound construction needs capacity");
  MINREJ_REQUIRE(blocks == 0 || rounds >= 1,
                 "lower-bound blocks need at least one round");
  const std::size_t per_round = static_cast<std::size_t>(capacity);
  const std::size_t core = blocks * (1 + rounds * per_round);
  MINREJ_REQUIRE(request_count >= core,
                 "request budget below the block structure");
  const std::size_t pad = request_count - core;

  // blocks·rounds round edges at `capacity` plus one slack edge sized to
  // absorb the padding without overloading.
  std::vector<std::int64_t> capacities(blocks * rounds, capacity);
  capacities.push_back(std::max<std::int64_t>(1, static_cast<std::int64_t>(pad)));
  Graph graph = Graph::star(capacities);
  const auto slack = static_cast<EdgeId>(blocks * rounds);

  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto base = static_cast<EdgeId>(b * rounds);
    // The special arrives first, spanning every round edge of its block…
    std::vector<EdgeId> span(rounds);
    for (std::size_t t = 0; t < rounds; ++t) {
      span[t] = base + static_cast<EdgeId>(t);
    }
    requests.emplace_back(std::move(span), 1.0);
    // …then round t floods round-edge t with `capacity` decoys, pushing
    // its load to capacity + 1 (excess exactly 1, round after round).
    for (std::size_t t = 0; t < rounds; ++t) {
      for (std::size_t k = 0; k < per_round; ++k) {
        requests.emplace_back(
            std::vector<EdgeId>{base + static_cast<EdgeId>(t)}, 1.0);
      }
    }
  }
  for (std::size_t k = 0; k < pad; ++k) {
    requests.emplace_back(std::vector<EdgeId>{slack}, 1.0);
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

// ---------------------------------------------------------------------------
// Scenario catalog
// ---------------------------------------------------------------------------

namespace {

constexpr ScenarioInfo kCatalog[] = {
    {"dense_burst",
     "uniform single-edge bursts over a star; every edge ~3x overloaded"},
    {"power_law",
     "Zipf(1.1) multi-edge requests, log-uniform costs in [1, 32]"},
    {"diurnal",
     "sinusoidal hot-set wave (3 periods); peaks overload the hot edges"},
    {"flash_crowd",
     "uniform traffic with a [40%, 55%) crowd window concentrating 90% of "
     "load on a small hot set"},
    {"cascading_failure",
     "rolling hotspot: 8 edge blocks take turns absorbing 80% of traffic"},
    {"adversarial_single_edge",
     "one edge, strictly escalating costs; maximal preemption churn"},
    {"adversarial_lower_bound",
     "Ω-style blocks: one spanning special vs ⌈log₂ n⌉-capacity decoy "
     "rounds; measured ratio grows with n"},
    {"multi_tenant",
     "8 Zipf-popular tenants on disjoint edge blocks, multi-edge requests"},
    {"setcover_powerlaw",
     "§4 reduction of a power-law set system under Zipf element arrivals"},
    {"setcover_reduction_replay",
     "uniform set system replayed through the §4 reduction (phase 1 + "
     "repeated element demands)"},
    {"shared_sets_overlap",
     "§4 reduction of a 25%-density random system, half-degree round-robin "
     "demands; every request row is wide and heavily shared"},
};

/// capacity == 0 picks the scenario default; any other value is taken
/// verbatim.
std::int64_t pick_capacity(std::int64_t requested, std::int64_t fallback) {
  return requested > 0 ? requested : std::max<std::int64_t>(1, fallback);
}

/// Pads a reduction arrival sequence up to `budget` arrivals by cycling
/// elements that still have spare degree (demand < |S_j|), so the
/// setcover_* scenarios hit the requested instance size exactly whenever
/// the system has enough feasible demand left.  Deterministic tail — the
/// interesting arrival structure is in the prefix the generator produced.
void pad_reduction_arrivals(const SetSystem& sys, std::size_t budget,
                            std::vector<ElementId>& arrivals) {
  std::vector<std::int64_t> demand(sys.element_count(), 0);
  for (ElementId j : arrivals) ++demand[j];
  bool progress = true;
  while (arrivals.size() < budget && progress) {
    progress = false;
    for (std::size_t j = 0;
         j < sys.element_count() && arrivals.size() < budget; ++j) {
      const auto elem = static_cast<ElementId>(j);
      if (demand[j] < static_cast<std::int64_t>(sys.degree(elem))) {
        arrivals.push_back(elem);
        ++demand[j];
        progress = true;
      }
    }
  }
}

}  // namespace

std::span<const ScenarioInfo> scenario_catalog() { return kCatalog; }

bool is_scenario(const std::string& name) {
  for (const ScenarioInfo& s : kCatalog) {
    if (name == s.name) return true;
  }
  return false;
}

AdmissionInstance make_scenario(const std::string& name,
                                const ScenarioParams& params, Rng& rng) {
  const std::size_t requests = std::max<std::size_t>(1, params.requests);
  const std::size_t edges = std::max<std::size_t>(1, params.edges);
  const auto per_edge =
      static_cast<std::int64_t>(requests / std::max<std::size_t>(1, edges));
  if (name == "dense_burst") {
    // Default capacity a third of the per-edge load: every spoke plays the
    // dense overloaded burst of E10, scaled out to `edges` resources.
    const std::int64_t cap = pick_capacity(params.capacity, per_edge / 3);
    return make_dense_burst_workload(edges, cap, requests,
                                     CostModel::unit_costs(), rng);
  }
  if (name == "power_law") {
    const std::int64_t cap = pick_capacity(params.capacity, 8);
    return make_power_law_workload(edges, cap, requests,
                                   std::min<std::size_t>(4, edges), 1.1,
                                   CostModel::spread(1.0, 32.0), rng);
  }
  if (name == "diurnal") {
    // Hot set = an eighth of the spokes; capacity = the uniform per-edge
    // load, so the hot edges overload only around the wave peaks.  Unit
    // costs: the weighted engine's augmentation count explodes on deeply
    // overloaded instances (normalized costs up to 2mc make each step's
    // multiplicative gain microscopic), which is paper-faithful but wrong
    // for a service-rate scenario.
    const std::int64_t cap = pick_capacity(params.capacity, per_edge);
    const std::size_t hot = std::max<std::size_t>(1, edges / 8);
    return make_diurnal_workload(edges, cap, requests, 3.0, hot,
                                 CostModel::unit_costs(), rng);
  }
  if (name == "flash_crowd") {
    // Capacity = the uniform per-edge load: outside the crowd window every
    // spoke runs at its capacity, inside it the hot set (a sixteenth of
    // the spokes) takes ~90% of the offered load and overloads an order
    // of magnitude deep.  Unit costs, same service-rate rationale as
    // diurnal.
    const std::int64_t cap = pick_capacity(params.capacity, per_edge);
    const std::size_t hot = std::max<std::size_t>(1, edges / 16);
    return make_flash_crowd_workload(edges, cap, requests, 0.40, 0.55, hot,
                                     CostModel::unit_costs(), rng);
  }
  if (name == "cascading_failure") {
    // Eight blocks, each overloaded ~2.5x while the hotspot sits on it
    // (80% of traffic into an eighth of the edges at capacity ≈ double
    // the uniform per-edge load).  Unit costs, service-rate rationale.
    const std::int64_t cap = pick_capacity(params.capacity, 2 * per_edge);
    const std::size_t groups = std::min<std::size_t>(8, edges);
    return make_cascading_failure_workload(edges, cap, requests, groups,
                                           CostModel::unit_costs(), rng);
  }
  if (name == "adversarial_single_edge") {
    // Capacity well below requests/4: the preemption-churn cost grows
    // super-linearly with c (victim scans + augmentation sweeps over
    // Θ(c)-long member lists), and the §3 edge-request cap 4mc² must stay
    // above the request count or the guard rejects the whole edge.
    const std::int64_t cap = pick_capacity(
        params.capacity,
        std::max<std::int64_t>(4, static_cast<std::int64_t>(requests) / 64));
    return make_adversarial_single_edge(cap, requests, 1024.0);
  }
  if (name == "adversarial_lower_bound") {
    // Deterministic (rng unused).  Capacity grows ⌈log₂ n⌉ with the
    // request budget: the online algorithm pays Θ(c·log c) per block
    // before each special's weight saturates (workloads.h), so the knob
    // that makes the measured ratio grow with the instance is capacity —
    // rounds only needs to cover the ≈ log₂ c saturation horizon, with a
    // little slack so the free tail is visible too.  OPT stays one
    // rejection per block throughout — the shape the paper's lower bound
    // is built from.
    // `edges` is ignored: the construction dictates its own star
    // (blocks·rounds round edges + a slack edge absorbing the padding).
    const auto log_n = static_cast<std::int64_t>(
        std::ceil(std::log2(std::max<double>(2.0, requests))));
    const std::int64_t cap =
        pick_capacity(params.capacity, std::clamp<std::int64_t>(log_n, 3, 31));
    const auto per_round = static_cast<std::size_t>(cap);
    auto rounds = static_cast<std::size_t>(
        2 * std::ceil(std::log2(static_cast<double>(cap))) + 2);
    while (rounds > 1 && 1 + rounds * per_round > requests) --rounds;
    const std::size_t block = 1 + rounds * per_round;
    const std::size_t blocks = requests / block;  // 0 → slack-edge only
    return make_adversarial_lower_bound(blocks, rounds, cap, requests);
  }
  if (name == "setcover_powerlaw") {
    // Online set cover as service traffic, realized through the §4
    // reduction: n = m elements/sets sized from the request budget
    // (phase-1 presents one request per set; Zipf(1.1) element arrivals
    // spend the rest, padded by spare-degree demand to land on the budget
    // exactly).  Power-law set sizes — a few hub sets plus a long tail,
    // the shape of real coverage catalogs.  Every reduction edge's
    // capacity is the element's degree, so the instance is exactly as
    // overloaded as the demands make it.  Unit set costs on purpose:
    // demands run to the degree bound, and weighted mode's α machinery in
    // that deeply overloaded regime is the superlinear augmentation
    // blow-up PR 3 cautions about —
    // AdmissionRun::augmentation_budget_exceeded is the tripwire if a
    // variant of this scenario reintroduces it.
    const std::size_t n = std::max<std::size_t>(
        std::max<std::size_t>(2, edges), requests / 4);
    SetSystem sys = power_law_system(n, n, 1.3, /*min_degree=*/2, rng);
    const std::size_t phase1 = sys.set_count();
    const std::size_t want = requests > phase1 ? requests - phase1 : 0;
    std::vector<ElementId> arrivals = arrivals_zipf(sys, want, 1.1, rng);
    pad_reduction_arrivals(sys, want, arrivals);
    return reduced_admission_instance(sys, arrivals);
  }
  if (name == "setcover_reduction_replay") {
    // The §4 reduction end-to-end, replayable through minrej_serve: a
    // uniform random system (m = n sets of 8, degrees patched to >= 4)
    // whose every element is demanded k times, interleaved — the "with
    // repetitions" case the paper stresses.  `capacity` is reused as the
    // demand multiplicity k (default 2, clamped to [1, 3] so spare degree
    // remains for the exact-size padding).  n is sized so phase 1 (n
    // requests) plus n·k arrivals meets the request budget.
    auto k = static_cast<std::size_t>(std::clamp<std::int64_t>(
        params.capacity > 0 ? params.capacity : 2, 1, 3));
    const std::size_t n =
        std::max<std::size_t>(2, requests / (k + 1));
    const std::size_t min_degree = std::min<std::size_t>(4, n);
    // Tiny ground sets cannot absorb the requested multiplicity: demand
    // beyond the patched minimum degree would make the reduction's
    // must-accept phase 2 infeasible.
    k = std::min(k, min_degree);
    SetSystem sys = random_uniform_system(
        n, n, std::min<std::size_t>(8, n), min_degree, rng);
    std::vector<ElementId> arrivals =
        arrivals_each_k_times(n, k, /*interleave=*/true, rng);
    const std::size_t phase1 = sys.set_count();
    const std::size_t want = requests > phase1 ? requests - phase1 : 0;
    if (arrivals.size() > want) arrivals.resize(want);
    pad_reduction_arrivals(sys, want, arrivals);
    return reduced_admission_instance(sys, arrivals);
  }
  if (name == "shared_sets_overlap") {
    // Dense shared membership through the §4 reduction: a 25%-density
    // random system (any two sets overlap on ~n/16 elements), each element
    // demanded up to half its degree, round-robin.  Every reduction row is
    // wide (≈ n/4 incident edges) and every edge's member list is long and
    // heavily shared — the workload shape where per-arrival cross-edge
    // fix-up work dominates the engine (DESIGN.md §7.5/§8; E15's overlap
    // stack duel measures the same shape).  n is sized so phase 1 (n
    // requests) plus the half-degree demand mass (≈ n²/8 arrivals) meets
    // the request budget.  Unit set costs, same rationale as
    // setcover_powerlaw.
    const std::size_t n = std::max<std::size_t>(
        8, static_cast<std::size_t>(
               std::sqrt(8.0 * static_cast<double>(requests))));
    SetSystem sys = random_density_system(n, n, 0.25, /*min_degree=*/4, rng);
    const std::size_t phase1 = sys.set_count();
    const std::size_t want = requests > phase1 ? requests - phase1 : 0;
    std::vector<ElementId> arrivals;
    arrivals.reserve(want);
    std::vector<std::int64_t> demand(sys.element_count(), 0);
    bool progress = true;
    while (arrivals.size() < want && progress) {
      progress = false;
      for (std::size_t j = 0;
           j < sys.element_count() && arrivals.size() < want; ++j) {
        const auto elem = static_cast<ElementId>(j);
        if (demand[j] < static_cast<std::int64_t>(sys.degree(elem) / 2)) {
          arrivals.push_back(elem);
          ++demand[j];
          progress = true;
        }
      }
    }
    // Small request budgets can leave spare half-degree mass unused; large
    // ones spill past the half-degree cap up to full degree.
    pad_reduction_arrivals(sys, want, arrivals);
    return reduced_admission_instance(sys, arrivals);
  }
  if (name == "multi_tenant") {
    const std::size_t tenants = std::min<std::size_t>(8, edges);
    const std::size_t block = std::max<std::size_t>(1, edges / tenants);
    // Fixed small capacity, like power_law: the weighted engine's cost per
    // arrival grows with the member-list length ~c, so a service-rate
    // scenario keeps c modest and lets the Zipf head tenants overload
    // deeply instead of widely.
    const std::int64_t cap = pick_capacity(params.capacity, 16);
    return make_multi_tenant_workload(tenants, block, cap, requests,
                                      std::min<std::size_t>(3, block), 1.0,
                                      CostModel::spread(1.0, 16.0), rng);
  }
  std::string known;
  for (const ScenarioInfo& s : kCatalog) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw InvalidArgument("unknown scenario '" + name + "' (catalog: " + known +
                        ")");
}

bool all_unit_costs(const AdmissionInstance& instance) {
  // Same tolerance FractionalAdmission enforces in unit_costs mode.
  constexpr double kUnitTolerance = 1e-9;
  for (const Request& r : instance.requests()) {
    if (std::abs(r.cost - 1.0) > kUnitTolerance) return false;
  }
  return true;
}

AdmissionInstance make_greedy_killer(std::size_t edge_count,
                                     std::int64_t capacity) {
  MINREJ_REQUIRE(edge_count >= 2, "killer needs at least two edges");
  Graph graph = make_line_graph(edge_count, capacity);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(capacity) * (edge_count + 1));
  // Spanning requests fill every edge to capacity...
  for (std::int64_t k = 0; k < capacity; ++k) {
    requests.push_back(make_line_request(graph, 0, edge_count, 1.0));
  }
  // ...then each edge is hit by `capacity` singletons.
  for (std::size_t e = 0; e < edge_count; ++e) {
    for (std::int64_t k = 0; k < capacity; ++k) {
      requests.push_back(make_line_request(graph, e, 1, 1.0));
    }
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

}  // namespace minrej

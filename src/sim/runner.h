// runner.h — drives online algorithms over instances and measures the
// quantities the experiments report.
//
// Everything a bench binary needs: feed an instance through an algorithm
// (the base classes enforce the online contracts at every step), compute
// competitive ratios against a chosen ground truth, and fan Monte-Carlo
// trials out over the thread pool deterministically (trial i always runs
// with seed base_seed + i regardless of scheduling).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/online_admission.h"
#include "core/online_setcover.h"
#include "graph/request.h"
#include "setcover/instance.h"

namespace minrej {

/// Outcome of running one admission algorithm over one instance.
struct AdmissionRun {
  double rejected_cost = 0.0;
  std::size_t rejected_count = 0;
  std::size_t arrivals = 0;
  double seconds = 0.0;
};

/// Feeds every request of the instance to the algorithm, in order.
AdmissionRun run_admission(OnlineAdmissionAlgorithm& algorithm,
                           const AdmissionInstance& instance);

/// Outcome of running one set cover algorithm over one arrival sequence.
struct CoverRun {
  double cost = 0.0;
  std::size_t chosen_count = 0;
  std::size_t arrivals = 0;
  double seconds = 0.0;
};

/// Feeds every arrival to the algorithm, in order.
CoverRun run_setcover(OnlineSetCoverAlgorithm& algorithm,
                      const std::vector<ElementId>& arrivals);

/// Adaptive adversary for online set cover: at each step requests the
/// element with the least coverage slack (covered − demand), i.e. the one
/// the algorithm is least prepared for, among elements whose demand can
/// still grow (demand < degree).  Runs for `arrivals` steps (or until no
/// element can be requested) and returns the sequence it played, so the
/// caller can compute OPT for it afterwards.
std::vector<ElementId> run_adaptive_adversary(
    OnlineSetCoverAlgorithm& algorithm, std::size_t arrivals);

/// cost / opt with the conventions of competitive analysis: opt == 0 maps
/// to 1 when the algorithm also paid 0 and +inf otherwise.
double competitive_ratio(double cost, double opt);

/// Runs `trials` independent trials in parallel (deterministic seeding is
/// the caller's job: the body receives the trial index) and returns the
/// per-trial results.
std::vector<double> parallel_trials(std::size_t trials,
                                    const std::function<double(std::size_t)>& body,
                                    std::size_t threads = 0);

}  // namespace minrej

// runner.h — drives online algorithms over instances and measures the
// quantities the experiments report.
//
// Everything a bench binary needs: feed an instance through an algorithm
// (the base classes enforce the online contracts at every step), compute
// competitive ratios against a chosen ground truth, and fan Monte-Carlo
// trials out over the thread pool deterministically (trial i always runs
// with seed base_seed + i regardless of scheduling).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/online_admission.h"
#include "core/online_setcover.h"
#include "core/run_budget.h"
#include "graph/request.h"
#include "setcover/instance.h"

namespace minrej {

/// Knobs for run_admission/run_setcover.
struct RunOptions {
  /// Record every arrival's processing latency (two steady_clock reads
  /// plus a store per arrival, inside the timed region).  Off by default
  /// so the per-arrival instrumentation cannot perturb benches that only
  /// read totals; the perf bench (E10) opts in.  When off, the p50/p95/
  /// max latency fields stay 0.
  bool collect_latencies = false;
  /// Emit a MINREJ_WARN_IF line when the run blows through its
  /// augmentation-step budget (see augmentation_step_budget).  The budget
  /// verdict lands in the run struct either way; this only silences the
  /// stderr line (benches that sweep the blow-up regime on purpose, e.g.
  /// E4, opt out).
  bool warn_augmentation_budget = true;
};

// The augmentation-budget guard (augmentation_step_budget,
// kBudgetNeverCrossed, augmentation_budget_warning) lives in
// core/run_budget.h now — included above — so the sharded service can
// report per-shard budgets without a sim dependency; every existing
// caller of the sim API sees it unchanged through this header.

/// Outcome of running one admission algorithm over one instance.
struct AdmissionRun {
  double rejected_cost = 0.0;
  std::size_t rejected_count = 0;
  std::size_t arrivals = 0;
  double seconds = 0.0;
  /// Weight-augmentation steps the algorithm's primal-dual core performed
  /// over the whole run (0 for engines without one).
  std::uint64_t augmentation_steps = 0;
  /// The run's augmentation_step_budget and whether the run blew through
  /// it (the PR 3 per-edge-capacity blow-up guard; see the free function
  /// below).
  std::uint64_t augmentation_budget = 0;
  bool augmentation_budget_exceeded = false;
  /// First arrival index (0-based) at which the cumulative step count
  /// crossed the budget, or kBudgetNeverCrossed if it never did, plus the
  /// first edge of that arrival's request — the context the enriched
  /// MINREJ_WARN_IF line reports (see augmentation_budget_warning).
  std::size_t budget_crossing_arrival = kBudgetNeverCrossed;
  EdgeId budget_crossing_edge = 0;
  /// Per-arrival processing latency quantiles and maximum, in seconds.
  double p50_arrival_s = 0.0;
  double p95_arrival_s = 0.0;
  double max_arrival_s = 0.0;

  double arrivals_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(arrivals) / seconds : 0.0;
  }
};

/// Feeds every request of the instance to the algorithm, in order.
AdmissionRun run_admission(OnlineAdmissionAlgorithm& algorithm,
                           const AdmissionInstance& instance,
                           const RunOptions& options = {});

/// Outcome of running one set cover algorithm over one arrival sequence.
struct CoverRun {
  double cost = 0.0;
  std::size_t chosen_count = 0;
  std::size_t arrivals = 0;
  double seconds = 0.0;
  /// See AdmissionRun: same counters for the set-cover side.
  std::uint64_t augmentation_steps = 0;
  std::uint64_t augmentation_budget = 0;
  bool augmentation_budget_exceeded = false;
  /// First arrival index at which the step count crossed the budget
  /// (kBudgetNeverCrossed if never) and the element requested there.
  std::size_t budget_crossing_arrival = kBudgetNeverCrossed;
  ElementId budget_crossing_element = 0;
  double p50_arrival_s = 0.0;
  double p95_arrival_s = 0.0;
  double max_arrival_s = 0.0;

  double arrivals_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(arrivals) / seconds : 0.0;
  }
};

/// Feeds every arrival to the algorithm, in order.
CoverRun run_setcover(OnlineSetCoverAlgorithm& algorithm,
                      const std::vector<ElementId>& arrivals,
                      const RunOptions& options = {});

/// Adaptive adversary for online set cover: at each step requests the
/// element with the least coverage slack (covered − demand), i.e. the one
/// the algorithm is least prepared for, among elements whose demand can
/// still grow (demand < degree).  Runs for `arrivals` steps (or until no
/// element can be requested) and returns the sequence it played, so the
/// caller can compute OPT for it afterwards.
std::vector<ElementId> run_adaptive_adversary(
    OnlineSetCoverAlgorithm& algorithm, std::size_t arrivals);

/// cost / opt with the conventions of competitive analysis: opt == 0 maps
/// to 1 when the algorithm also paid 0 and +inf otherwise.
double competitive_ratio(double cost, double opt);

/// Runs `trials` independent trials in parallel (deterministic seeding is
/// the caller's job: the body receives the trial index) and returns the
/// per-trial results.
std::vector<double> parallel_trials(std::size_t trials,
                                    const std::function<double(std::size_t)>& body,
                                    std::size_t threads = 0);

}  // namespace minrej

#include "lp/covering_lp.h"

#include "util/check.h"

namespace minrej {

LpProblem build_admission_lp(const AdmissionInstance& instance) {
  LpProblem lp;
  const std::size_t r = instance.request_count();
  for (std::size_t i = 0; i < r; ++i) {
    const Request& req = instance.request(static_cast<RequestId>(i));
    // must_accept requests are pinned to f = 0 via upper bound 0.
    lp.add_variable(req.cost, req.must_accept ? 0.0 : 1.0);
  }

  // One covering row per edge with positive excess.
  const Graph& g = instance.graph();
  std::vector<std::vector<std::size_t>> on_edge(g.edge_count());
  for (std::size_t i = 0; i < r; ++i) {
    for (EdgeId e : instance.request(static_cast<RequestId>(i)).edges) {
      on_edge[e].push_back(i);
    }
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto excess = static_cast<double>(
        static_cast<std::int64_t>(on_edge[e].size()) -
        g.capacity(static_cast<EdgeId>(e)));
    if (excess <= 0.0) continue;
    LinearConstraint row;
    row.relation = Relation::kGreaterEq;
    row.rhs = excess;
    row.terms.reserve(on_edge[e].size());
    for (std::size_t i : on_edge[e]) {
      row.terms.push_back({i, 1.0});
    }
    lp.add_constraint(std::move(row));
  }
  return lp;
}

LpSolution solve_admission_lp(const AdmissionInstance& instance) {
  const LpSolution sol = solve_simplex(build_admission_lp(instance));
  MINREJ_CHECK(sol.status != LpStatus::kUnbounded,
               "covering LP cannot be unbounded");
  return sol;
}

LpProblem build_multicover_lp(const CoverInstance& instance) {
  const SetSystem& sys = instance.system();
  LpProblem lp;
  for (std::size_t s = 0; s < sys.set_count(); ++s) {
    lp.add_variable(sys.cost(static_cast<SetId>(s)), 1.0);
  }
  for (std::size_t j = 0; j < sys.element_count(); ++j) {
    const std::int64_t demand = instance.demand()[j];
    if (demand <= 0) continue;
    LinearConstraint row;
    row.relation = Relation::kGreaterEq;
    row.rhs = static_cast<double>(demand);
    for (SetId s : sys.sets_of(static_cast<ElementId>(j))) {
      row.terms.push_back({static_cast<std::size_t>(s), 1.0});
    }
    lp.add_constraint(std::move(row));
  }
  return lp;
}

LpSolution solve_multicover_lp(const CoverInstance& instance) {
  MINREJ_REQUIRE(instance.feasible(),
                 "multicover LP requires a feasible instance");
  const LpSolution sol = solve_simplex(build_multicover_lp(instance));
  MINREJ_CHECK(sol.status == LpStatus::kOptimal,
               "feasible multicover LP must solve to optimality");
  return sol;
}

}  // namespace minrej

// covering_lp.h — LP formulations of the paper's two optimization problems.
//
// Admission control (paper §2): the fractional optimum the online algorithm
// competes against is
//     min  Σ_i f_i · p_i
//     s.t. Σ_{i ∈ REQ_e} f_i ≥ |REQ_e| − c_e        for every edge e
//          0 ≤ f_i ≤ 1
// where f_i is the rejected fraction of request i.  (Requests flagged
// must_accept are pinned to f_i = 0, matching the §4 reduction semantics.)
//
// Multicover (paper §1): the LP relaxation of OSCR's final demands is
//     min  Σ_S x_S · cost_S
//     s.t. Σ_{S ∋ j} x_S ≥ demand_j                  for every element j
//          0 ≤ x_S ≤ 1
#pragma once

#include "graph/request.h"
#include "lp/simplex.h"
#include "setcover/instance.h"

namespace minrej {

/// Builds the fractional-rejection covering LP for an admission instance.
LpProblem build_admission_lp(const AdmissionInstance& instance);

/// Solves it; returns the optimal fractional rejection cost.  Throws
/// InternalError if the LP is infeasible (cannot happen for valid instances
/// without must_accept overload — rejecting everything is always feasible).
LpSolution solve_admission_lp(const AdmissionInstance& instance);

/// Builds the multicover LP relaxation for a cover instance.
LpProblem build_multicover_lp(const CoverInstance& instance);

/// Solves it; requires instance.feasible().
LpSolution solve_multicover_lp(const CoverInstance& instance);

}  // namespace minrej

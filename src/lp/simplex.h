// simplex.h — a dense two-phase primal simplex solver.
//
// Purpose-built ground truth for the experiments: Theorem 2 claims the
// fractional algorithm is competitive "even versus a fractional optimum",
// so the harness needs exact fractional optima of covering LPs, and the
// branch-and-bound ILP solvers need LP relaxation bounds.  Instances are
// small (hundreds of variables), so a dense tableau with Bland's
// anti-cycling rule is simple, exact enough (long double arithmetic), and
// fast enough; no sparse machinery is warranted.
//
// Scope: minimize c'x subject to linear constraints and variable bounds
// 0 <= x_i <= u_i (u_i may be +inf).  Upper bounds are materialized as
// explicit rows, which is fine at these sizes.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace minrej {

enum class Relation { kLessEq, kGreaterEq, kEqual };

/// Sparse row: (variable index, coefficient) terms.
struct LinearConstraint {
  std::vector<std::pair<std::size_t, double>> terms;
  Relation relation = Relation::kLessEq;
  double rhs = 0.0;
};

/// A minimization LP with non-negative, optionally upper-bounded variables.
class LpProblem {
 public:
  /// Adds a variable with objective coefficient `cost` and bounds
  /// [0, upper]; returns its index.  upper may be +infinity.
  std::size_t add_variable(double cost,
                           double upper = std::numeric_limits<double>::infinity());

  void add_constraint(LinearConstraint constraint);

  std::size_t variable_count() const noexcept { return costs_.size(); }
  std::size_t constraint_count() const noexcept { return constraints_.size(); }

  const std::vector<double>& costs() const noexcept { return costs_; }
  const std::vector<double>& uppers() const noexcept { return uppers_; }
  const std::vector<LinearConstraint>& constraints() const noexcept {
    return constraints_;
  }

 private:
  std::vector<double> costs_;
  std::vector<double> uppers_;
  std::vector<LinearConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;

  bool optimal() const noexcept { return status == LpStatus::kOptimal; }
};

std::string to_string(LpStatus status);

/// Solves with two-phase primal simplex (Bland's rule).  `max_iterations`
/// guards against pathological inputs; 0 selects an automatic limit.
LpSolution solve_simplex(const LpProblem& problem,
                         std::size_t max_iterations = 0);

}  // namespace minrej

#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

namespace {

constexpr long double kEps = 1e-9L;

/// Dense tableau for two-phase simplex over long doubles.
///
/// Layout: rows_ x cols_ matrix `a_`, rhs per row `b_`, basis variable per
/// row.  Column j < n_total are the (structural + slack + artificial)
/// variables.  Reduced costs are recomputed from the objective row kept
/// separately (z_ for phase objective).
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows, std::vector<long double>(cols, 0.0L)),
        b_(rows, 0.0L), basis_(rows, 0) {}

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<long double>> a_;
  std::vector<long double> b_;
  std::vector<std::size_t> basis_;

  /// Pivot on (row, col): make column `col` the basis column of `row`.
  void pivot(std::size_t row, std::size_t col) {
    const long double p = a_[row][col];
    MINREJ_CHECK(std::fabs(static_cast<double>(p)) > 1e-12,
                 "pivot on (near-)zero element");
    for (std::size_t j = 0; j < cols_; ++j) a_[row][j] /= p;
    b_[row] /= p;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (i == row) continue;
      const long double f = a_[i][col];
      if (f == 0.0L) continue;
      for (std::size_t j = 0; j < cols_; ++j) a_[i][j] -= f * a_[row][j];
      b_[i] -= f * b_[row];
    }
    basis_[row] = col;
  }
};

/// Runs primal simplex minimizing objective `c` (length cols) over the
/// tableau, assuming the current basis is primal-feasible.  Returns the
/// terminating status (kOptimal or kUnbounded or kIterationLimit).
LpStatus run_simplex(Tableau& t, const std::vector<long double>& c,
                     std::size_t max_iterations) {
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Reduced costs: r_j = c_j − c_B' B^{-1} A_j.  With the tableau kept in
    // canonical form, c_B' B^{-1} A_j = sum over rows of c_basis * a[row][j].
    // Bland's rule: entering variable = smallest index with r_j < −eps.
    std::size_t entering = t.cols_;
    for (std::size_t j = 0; j < t.cols_ && entering == t.cols_; ++j) {
      long double r = c[j];
      for (std::size_t i = 0; i < t.rows_; ++i) {
        const long double cb = c[t.basis_[i]];
        if (cb != 0.0L) r -= cb * t.a_[i][j];
      }
      if (r < -kEps) entering = j;
    }
    if (entering == t.cols_) return LpStatus::kOptimal;

    // Ratio test; Bland tie-break on smallest basis index.
    std::size_t leaving = t.rows_;
    long double best_ratio = 0.0L;
    for (std::size_t i = 0; i < t.rows_; ++i) {
      if (t.a_[i][entering] > kEps) {
        const long double ratio = t.b_[i] / t.a_[i][entering];
        if (leaving == t.rows_ || ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             t.basis_[i] < t.basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
    }
    if (leaving == t.rows_) return LpStatus::kUnbounded;
    t.pivot(leaving, entering);
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

std::size_t LpProblem::add_variable(double cost, double upper) {
  MINREJ_REQUIRE(upper >= 0.0, "variable upper bound must be >= 0");
  costs_.push_back(cost);
  uppers_.push_back(upper);
  return costs_.size() - 1;
}

void LpProblem::add_constraint(LinearConstraint constraint) {
  for (const auto& [var, coef] : constraint.terms) {
    MINREJ_REQUIRE(var < costs_.size(), "constraint references unknown var");
    (void)coef;
  }
  constraints_.push_back(std::move(constraint));
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

LpSolution solve_simplex(const LpProblem& problem,
                         std::size_t max_iterations) {
  const std::size_t n = problem.variable_count();

  // Materialize finite upper bounds as extra <= rows.
  std::vector<LinearConstraint> rows = problem.constraints();
  for (std::size_t v = 0; v < n; ++v) {
    const double u = problem.uppers()[v];
    if (std::isfinite(u)) {
      rows.push_back({{{v, 1.0}}, Relation::kLessEq, u});
    }
  }
  const std::size_t m = rows.size();

  if (max_iterations == 0) {
    // Generous polynomial budget; Bland guarantees finiteness anyway.
    max_iterations = 64 * (n + m + 8) * (n + m + 8);
  }

  // Standard form: one slack/surplus per row; artificials as needed.
  // Column layout: [0, n) structural | [n, n+m) slack/surplus |
  //                [n+m, n+m+a) artificial.
  std::size_t artificial_count = 0;
  std::vector<bool> needs_artificial(m, false);
  for (std::size_t i = 0; i < m; ++i) {
    // Normalize rhs >= 0 first (done below); decide artificials after.
    needs_artificial[i] = true;  // provisional; refined below
  }

  // Copy rows with rhs normalized to >= 0.
  std::vector<std::vector<long double>> coef(m,
                                             std::vector<long double>(n, 0.0L));
  std::vector<long double> rhs(m, 0.0L);
  std::vector<Relation> rel(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& [var, c] : rows[i].terms) {
      coef[i][var] += static_cast<long double>(c);
    }
    rhs[i] = static_cast<long double>(rows[i].rhs);
    rel[i] = rows[i].relation;
    if (rhs[i] < 0.0L) {
      for (auto& c : coef[i]) c = -c;
      rhs[i] = -rhs[i];
      if (rel[i] == Relation::kLessEq) rel[i] = Relation::kGreaterEq;
      else if (rel[i] == Relation::kGreaterEq) rel[i] = Relation::kLessEq;
    }
    // <= rows with rhs >= 0: slack seeds the basis, no artificial needed.
    needs_artificial[i] = rel[i] != Relation::kLessEq;
    if (needs_artificial[i]) ++artificial_count;
  }

  const std::size_t total = n + m + artificial_count;
  Tableau t(m, total);
  std::size_t next_artificial = n + m;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t v = 0; v < n; ++v) t.a_[i][v] = coef[i][v];
    t.b_[i] = rhs[i];
    const std::size_t slack = n + i;
    switch (rel[i]) {
      case Relation::kLessEq:
        t.a_[i][slack] = 1.0L;
        t.basis_[i] = slack;
        break;
      case Relation::kGreaterEq:
        t.a_[i][slack] = -1.0L;  // surplus
        t.a_[i][next_artificial] = 1.0L;
        t.basis_[i] = next_artificial++;
        break;
      case Relation::kEqual:
        // Slack column stays unused (coefficient 0) for = rows.
        t.a_[i][next_artificial] = 1.0L;
        t.basis_[i] = next_artificial++;
        break;
    }
  }
  MINREJ_CHECK(next_artificial == total, "artificial bookkeeping mismatch");

  LpSolution sol;

  // Phase 1: minimize the sum of artificials.
  if (artificial_count > 0) {
    std::vector<long double> phase1(total, 0.0L);
    for (std::size_t j = n + m; j < total; ++j) phase1[j] = 1.0L;
    const LpStatus s1 = run_simplex(t, phase1, max_iterations);
    if (s1 == LpStatus::kIterationLimit) {
      sol.status = LpStatus::kIterationLimit;
      return sol;
    }
    long double phase1_value = 0.0L;
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis_[i] >= n + m) phase1_value += t.b_[i];
    }
    if (phase1_value > 1e-7L) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Drive any artificial still in the basis (at value 0) out if possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis_[i] < n + m) continue;
      std::size_t col = total;
      for (std::size_t j = 0; j < n + m; ++j) {
        if (std::fabs(static_cast<double>(t.a_[i][j])) > 1e-9) {
          col = j;
          break;
        }
      }
      if (col < total) t.pivot(i, col);
      // If the row is all zeros the constraint was redundant; the artificial
      // stays basic at zero, which is harmless in phase 2 because its cost
      // is zero there and it can never re-enter (we forbid it below).
    }
  }

  // Phase 2: original objective; artificial columns get +inf-ish cost so
  // they never re-enter (Bland scans by reduced cost, so a large positive
  // cost suffices — their reduced costs stay non-negative at value 0).
  std::vector<long double> phase2(total, 0.0L);
  for (std::size_t v = 0; v < n; ++v) {
    phase2[v] = static_cast<long double>(problem.costs()[v]);
  }
  for (std::size_t j = n + m; j < total; ++j) {
    phase2[j] = 1e30L;
  }
  const LpStatus s2 = run_simplex(t, phase2, max_iterations);
  if (s2 != LpStatus::kOptimal) {
    sol.status = s2;
    return sol;
  }

  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis_[i] < n) {
      sol.x[t.basis_[i]] = static_cast<double>(t.b_[i]);
    }
  }
  long double obj = 0.0L;
  for (std::size_t v = 0; v < n; ++v) {
    obj += static_cast<long double>(problem.costs()[v]) *
           static_cast<long double>(sol.x[v]);
  }
  sol.objective = static_cast<double>(obj);
  return sol;
}

}  // namespace minrej

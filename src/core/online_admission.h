// online_admission.h — the online contract every admission-control
// algorithm in this library obeys (paper §1):
//
//   * requests arrive one at a time and must be accepted or rejected
//     immediately;
//   * a previously accepted request may later be preempted (rejected), but
//     a rejected request can never be accepted again;
//   * after every arrival the accepted set must satisfy every edge
//     capacity.
//
// OnlineAdmissionAlgorithm enforces all three mechanically: subclasses
// implement handle() and the base class validates the returned decision,
// maintains per-edge usage, accumulates rejected cost, and throws
// InternalError if a subclass ever violates the contract.  The property
// tests drive every algorithm through this single choke point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/request.h"

namespace minrej {

class SnapshotWriter;
class SnapshotReader;

/// Lifecycle of a request inside an online algorithm.
enum class RequestState : std::uint8_t { kAccepted, kRejected };

/// Outcome of one arrival: the decision for the arriving request plus any
/// previously-accepted requests the algorithm preempted to make room.
struct ArrivalResult {
  bool accepted = false;
  std::vector<RequestId> preempted;
};

/// Base class enforcing the online admission-control contract.
class OnlineAdmissionAlgorithm {
 public:
  explicit OnlineAdmissionAlgorithm(const Graph& graph);
  virtual ~OnlineAdmissionAlgorithm() = default;

  OnlineAdmissionAlgorithm(const OnlineAdmissionAlgorithm&) = delete;
  OnlineAdmissionAlgorithm& operator=(const OnlineAdmissionAlgorithm&) =
      delete;

  /// Processes the next arrival.  Returns the validated outcome.
  ArrivalResult process(const Request& request);

  /// Degraded-mode arrival (DESIGN.md §9): decide by the cheap threshold
  /// rule — accept iff the request fits under current usage, never preempt
  /// — through the same bookkeeping as process(), but without invoking the
  /// subclass handle() hook.  The service's load-shed path uses this when
  /// a shard is past its deadline or augmentation budget: the competitive
  /// guarantee is suspended for shed arrivals, the counters stay exact.
  /// must_accept requests cannot be shed (throws if one would not fit).
  ArrivalResult process_shed(const Request& request);

  // -- snapshot/restore (io/snapshot.h; DESIGN.md §9) -----------------------

  /// True if this algorithm implements full-state serialization.  The
  /// base-class machinery works for every subclass; a subclass only opts
  /// in once its extra state travels through save_extra/load_extra.
  virtual bool snapshot_supported() const noexcept { return false; }

  /// Serializes the complete algorithm state (base bookkeeping + the
  /// subclass extras).  Restore-then-continue is bit-identical to an
  /// uninterrupted run.  Throws if !snapshot_supported().
  void save_snapshot(SnapshotWriter& w) const;

  /// Restores a save_snapshot stream into this freshly constructed
  /// instance (same graph shape, same configuration — the stream carries
  /// the algorithm name and the configs are cross-checked).
  void load_snapshot(SnapshotReader& r);

  /// Human-readable algorithm name for result tables.
  virtual std::string name() const = 0;

  const Graph& graph() const noexcept { return graph_; }
  std::size_t arrivals() const noexcept { return requests_.size(); }

  RequestState state(RequestId id) const;
  bool is_accepted(RequestId id) const { return state(id) == RequestState::kAccepted; }

  /// Total cost of all rejected requests so far (the objective).
  double rejected_cost() const noexcept { return rejected_cost_; }
  std::size_t rejected_count() const noexcept { return rejected_count_; }

  /// Weight-augmentation steps this algorithm's primal-dual core has
  /// performed so far (0 for algorithms without one, e.g. the greedy
  /// baselines).  Surfaced per-run by sim::run_admission so the perf bench
  /// can report work done, not just wall time.
  virtual std::uint64_t augmentation_steps() const noexcept { return 0; }

  /// Accepted load per edge (always <= capacity between arrivals).
  const std::vector<std::int64_t>& edge_usage() const noexcept {
    return usage_;
  }

  /// True if accepting `request` right now would violate some capacity.
  bool would_overflow(const Request& request) const;

 protected:
  /// Subclass decision hook.  `id` is the id just assigned to `request`.
  /// The base class applies the returned result; subclasses must NOT mutate
  /// usage or state themselves.
  virtual ArrivalResult handle(RequestId id, const Request& request) = 0;

  /// Stored copy of a processed request (subclasses read these freely).
  const Request& stored_request(RequestId id) const { return requests_[id]; }

  /// Subclass hooks for the extra state beyond the base bookkeeping.
  /// Implementations must write/read matching field sequences; the base
  /// class brackets them with a structure tag so drift fails loudly.
  virtual void save_extra(SnapshotWriter& w) const;
  virtual void load_extra(SnapshotReader& r);

 private:
  void apply_rejection(RequestId id);

  const Graph& graph_;
  std::vector<Request> requests_;
  std::vector<RequestState> states_;
  std::vector<std::int64_t> usage_;
  double rejected_cost_ = 0.0;
  std::size_t rejected_count_ = 0;
};

}  // namespace minrej

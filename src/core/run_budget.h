// run_budget.h — the augmentation-step blow-up guard shared by the sim
// runner and the sharded service (formerly private to sim/runner.h; moved
// to core so service-layer stats can report per-shard budget verdicts
// without a sim dependency).
#pragma once

#include <cstdint>
#include <string>

namespace minrej {

/// Soft ceiling on the weight-augmentation steps a healthy run performs:
/// 32 · arrivals · log2(2 + m·c).  Lemma 1 charges O(α·log(gc)) steps per
/// phase, which is amortized-constant-ish per arrival with a polylog
/// factor — but PR 3 observed the *weighted* engine's per-arrival work
/// growing superlinearly with per-edge capacity c (each arrival sweeps a
/// Θ(c)-long member list per step, and normalized costs up to 2mc make
/// each step's multiplicative gain microscopic).  A run past this budget
/// is in that blow-up regime: its wall-clock numbers measure the
/// pathology, not the steady state.  The scenario catalog keeps c small
/// for exactly this reason (sim/workloads.cpp); run_admission/run_setcover
/// surface the verdict in AdmissionRun/CoverRun, and AdmissionService
/// surfaces it per shard in ShardStats (DESIGN.md §9).
std::uint64_t augmentation_step_budget(std::size_t arrivals,
                                       std::size_t edge_count,
                                       std::int64_t max_capacity);

/// Sentinel for AdmissionRun/CoverRun budget_crossing_arrival: the run
/// never crossed its augmentation-step budget.
inline constexpr std::size_t kBudgetNeverCrossed =
    static_cast<std::size_t>(-1);

/// Builds the augmentation-budget warning line run_admission/run_setcover
/// emit through MINREJ_WARN_IF, with enough context to localize the
/// blow-up in a log: actual vs budgeted step counts, the first arrival
/// (0-based, out of `arrivals`) at which the count crossed the budget, and
/// an id of that arrival (`id_kind` names it: "edge" for admission runs,
/// "element" for set-cover runs).  `regime_hint` is the run-family-specific
/// diagnosis appended at the end.  Exposed as a free function so tests can
/// pin the message contents without scraping stderr.
std::string augmentation_budget_warning(
    std::uint64_t steps, std::uint64_t budget, std::size_t crossing_arrival,
    std::size_t arrivals, std::uint64_t crossing_id, const char* id_kind,
    const char* regime_hint);

}  // namespace minrej

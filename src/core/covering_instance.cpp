// covering_instance.cpp — Graph/AdmissionInstance builders for the CSR
// covering substrate (the class itself is header-only; see the header for
// why).
#include "core/covering_instance.h"

#include "graph/request.h"

namespace minrej {

CoveringInstance make_covering_substrate(const AdmissionInstance& instance) {
  CoveringInstance::Builder builder(instance.graph().edge_count());
  std::size_t entries = 0;
  for (const Request& r : instance.requests()) entries += r.edges.size();
  builder.reserve(instance.request_count(), entries);
  for (const Request& r : instance.requests()) {
    builder.add_row(r.edges, r.cost, r.must_accept);
  }
  return std::move(builder).build_with_capacities(
      instance.graph().capacities());
}

}  // namespace minrej

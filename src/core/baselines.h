// baselines.h — deterministic baseline admission algorithms.
//
// The paper's comparison points are the Blum–Kalai–Kleinberg deterministic
// algorithms (O(√m)- and (c+1)-competitive); their pseudocode is not in the
// reproduced text, so these are the natural deterministic baselines in the
// same design space (see the substitution note in DESIGN.md §2).  Their job
// in E5 is to exhibit the polynomial-vs-polylog separation that motivates
// the paper: each of them is provably bad on some adversarial family that
// the §3 algorithm handles at polylog cost.
#pragma once

#include "core/online_admission.h"
#include "util/rng.h"

namespace minrej {

/// Accepts whenever feasible, never preempts; rejects the arrival
/// otherwise.  The no-preemption strawman — the paper notes preemption is
/// necessary for any reasonable bound ("allowing preemption and handling
/// requests with given paths are essential for avoiding trivial lower
/// bounds", §1), and E5 shows this concretely.
class GreedyNoPreempt : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "greedy-no-preempt"; }
  bool snapshot_supported() const noexcept override { return true; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override;
};

/// Local-exchange heuristic: if the arrival does not fit, it preempts the
/// cheapest accepted requests on the overloaded edges, but only if their
/// total cost is below the arrival's cost; otherwise it rejects the
/// arrival.  Greedy cost-exchange without the global weight accounting of
/// §2 — it wins on benign streams and loses polynomially on crafted ones.
class PreemptCheapest : public OnlineAdmissionAlgorithm {
 public:
  using OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm;
  std::string name() const override { return "preempt-cheapest"; }
  bool snapshot_supported() const noexcept override { return true; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override;
};

/// Always admits the arrival if room can be made, preempting uniformly
/// random accepted requests on overloaded edges; rejects the arrival only
/// when an overloaded edge has no preemptable request.
class PreemptRandom : public OnlineAdmissionAlgorithm {
 public:
  PreemptRandom(const Graph& graph, std::uint64_t seed);
  std::string name() const override { return "preempt-random"; }
  bool snapshot_supported() const noexcept override { return true; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override;
  void save_extra(SnapshotWriter& w) const override;
  void load_extra(SnapshotReader& r) override;

 private:
  Rng rng_;
};

}  // namespace minrej

// naive_engine.h — the straightforward reference implementation of the §2
// weight-augmentation engine, retained verbatim from before the flat-storage
// rewrite (DESIGN.md §3.3).
//
// It stores one heap-allocated edge vector per request (AoS), rescans the
// edge's member list on every augmentation-loop iteration (compact, sum,
// floor, multiply, reject are five separate passes), and recomputes the
// covering sum from scratch each time.  That makes it slow — and trivially
// auditable against the paper's pseudocode, which is exactly its job: the
// differential test suite (engine_differential_test.cpp) drives this engine
// and FlatFractionalEngine through identical randomized workloads and
// asserts bit-identical weights, costs, augmentation counts, and rejection
// sets.  Correctness of the fast engine is established by this comparison,
// not by faith.
//
// Differential contract (the parts of the arithmetic that are pinned so the
// bit-identity assertions hold; DESIGN.md §8 spells out the reasoning):
//   * Step (b)'s multiplier is computed as 1.0 + (1/n_e)·(1/p_i) — two
//     reciprocals taken once (1/n_e per step, 1/p_i at admission) and a
//     mul-then-add, never 1.0 + 1.0/(n_e·p_i) and never an FMA.  Both
//     engines use this exact operation sequence; for unit costs it reduces
//     bit-for-bit to the classic hoisted 1 + 1/n_e.
//   * Covering-sum *decisions* compare sums accumulated in member-list
//     order with scalar adds.  The flat engine's vector kernels only ever
//     feed its incremental caches, whose drift is absorbed by the §3.2
//     band check before any decision is taken.
//
// Builds of the whole library against this engine are compile-time
// selectable: configure with -DMINREJ_NAIVE_ENGINE=ON and the
// FractionalEngine alias (fractional_engine.h) points here instead.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/engine_types.h"
#include "core/substrate_traits.h"
#include "graph/types.h"

namespace minrej {

class SnapshotWriter;
class SnapshotReader;

/// Reference weight-augmentation engine (one instance per α-phase).
class NaiveFractionalEngine {
 public:
  using Delta = WeightDelta;

  static constexpr double kWeightClamp = kEngineWeightClamp;

  /// Binds the engine to its substrate view.  `zero_init` is the paper's
  /// 1/(g·c) floor for step (a); must be in (0, 1].
  NaiveFractionalEngine(EngineSubstrate substrate, double zero_init);

  /// Compile-time substrate binding, mirroring FlatFractionalEngine: a
  /// Graph or a CoveringInstance constructs the engine via its traits.
  template <typename S>
  NaiveFractionalEngine(const S& substrate, double zero_init)
      : NaiveFractionalEngine(CoveringSubstrateTraits<S>::bind(substrate),
                              zero_init) {}

  /// Registers a permanently-accepted request occupying capacity on
  /// `edges` (no weight, never rejected).  Returns its id.
  RequestId pin(std::span<const EdgeId> edges);
  RequestId pin(std::initializer_list<EdgeId> edges) {
    return pin(std::span<const EdgeId>(edges.begin(), edges.size()));
  }

  /// Registers an augmentable request WITHOUT running the augmentation
  /// loop.  `initial_weight` carries the request's weight forward across a
  /// phase change; must be in [0, 1).
  RequestId admit_existing(std::span<const EdgeId> edges, double update_cost,
                           double report_cost, double initial_weight = 0.0);
  RequestId admit_existing(std::initializer_list<EdgeId> edges,
                           double update_cost, double report_cost,
                           double initial_weight = 0.0) {
    return admit_existing(std::span<const EdgeId>(edges.begin(), edges.size()),
                          update_cost, report_cost, initial_weight);
  }

  /// Processes the arrival of an augmentable request; returns this
  /// arrival's weight increases (valid until the next mutating call).
  const std::vector<Delta>& arrive(std::span<const EdgeId> edges,
                                   double update_cost, double report_cost);
  const std::vector<Delta>& arrive(std::initializer_list<EdgeId> edges,
                                   double update_cost, double report_cost) {
    return arrive(std::span<const EdgeId>(edges.begin(), edges.size()),
                  update_cost, report_cost);
  }

  /// Runs the augmentation loop on the given edges without a new arrival.
  const std::vector<Delta>& restore_edges(std::span<const EdgeId> edges);
  const std::vector<Delta>& restore_edges(std::initializer_list<EdgeId> edges) {
    return restore_edges(std::span<const EdgeId>(edges.begin(), edges.size()));
  }

  std::size_t request_count() const noexcept { return requests_.size(); }

  double weight(RequestId id) const;
  bool is_pinned(RequestId id) const;
  bool fully_rejected(RequestId id) const;

  /// Σ_i min(f_i, 1) · report_cost_i — the fractional objective (§2).
  double fractional_cost() const noexcept { return fractional_cost_; }

  /// Total number of weight-augmentation steps so far.
  std::uint64_t augmentations() const noexcept { return augmentations_; }

  /// Member-list compaction passes.  The naive engine compacts on every
  /// augmentation-loop iteration, so this counter grows even when no
  /// request died — the behaviour the flat engine's threshold gating
  /// removes (the EngineCompaction tests in engine_differential_test.cpp
  /// pin down the difference).
  std::uint64_t compactions() const noexcept { return compactions_; }

  /// Serializes the complete engine state (same contract as
  /// FlatFractionalEngine::save_state; streams are engine-kind tagged).
  void save_state(SnapshotWriter& w) const;

  /// Restores a save_state stream into this freshly constructed engine.
  void load_state(SnapshotReader& r);

  /// Test hook: invoked after every single augmentation step.
  void set_augmentation_observer(std::function<void(EdgeId)> observer) {
    observer_ = std::move(observer);
  }

  // -- introspection for tests and the randomized layer ---------------------

  /// n_e = |ALIVE_e| − c_e (alive = not fully rejected, incl. pinned).
  std::int64_t excess(EdgeId e) const;
  /// Σ of weights of alive augmentable requests on e (O(deg) rescan).
  double alive_weight_sum(EdgeId e) const;
  /// Invariant of §2: true iff alive_weight_sum(e) >= excess(e), or the
  /// edge has no augmentable alive request left.
  bool constraint_satisfied(EdgeId e) const;
  /// True iff the edge has positive excess but no augmentable alive
  /// request left (the α-doubling wrapper's blow-up signal).
  bool saturated(EdgeId e) const;
  /// Alive augmentable request ids on edge e (compacted view).
  std::vector<RequestId> alive_requests(EdgeId e) const;
  /// Raw member-list length of edge e, dead entries included.
  std::size_t member_list_size(EdgeId e) const;

 private:
  struct RequestRecord {
    std::vector<EdgeId> edges;
    double weight = 0.0;
    double update_cost = 1.0;
    /// 1 / update_cost, taken once at admission — step (b) multiplies by
    /// it instead of dividing, in lockstep with the flat engine's hot row
    /// (see the differential contract in the header comment).
    double inv_update_cost = 1.0;
    double report_cost = 1.0;
    bool pinned = false;
    bool alive = true;  ///< weight < 1 (pinned requests stay alive forever)
    // Delta bookkeeping for the current arrival.
    std::uint64_t touch_epoch = 0;
    double weight_at_touch = 0.0;
  };

  /// Runs the §2 augmentation loop for one edge.
  void augment_edge(EdgeId e);

  /// Removes dead entries from an edge's member list (lazy deletion).
  void compact(EdgeId e);

  void touch(RequestId id);
  void mark_fully_rejected(RequestId id);

  EngineSubstrate substrate_;
  double zero_init_;
  std::vector<RequestRecord> requests_;
  // Augmentable members per edge (alive and dead; compacted lazily).
  std::vector<std::vector<RequestId>> members_;
  std::vector<std::int64_t> alive_count_;   // augmentable alive per edge
  std::vector<std::int64_t> pinned_count_;  // pinned per edge
  double fractional_cost_ = 0.0;
  std::uint64_t augmentations_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<RequestId> touched_;  // requests touched this arrival
  std::vector<Delta> deltas_;       // output buffer
  std::function<void(EdgeId)> observer_;
};

}  // namespace minrej

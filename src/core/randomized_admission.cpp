#include "core/randomized_admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

RandomizedAdmission::RandomizedAdmission(const Graph& graph,
                                         RandomizedConfig config)
    : OnlineAdmissionAlgorithm(graph), config_(config),
      frac_(graph,
            [&] {
              FractionalConfig fc = config.fractional;
              fc.unit_costs = config.unit_costs;
              return fc;
            }()),
      rng_(config.seed),
      edge_requests_(graph.edge_count(), 0),
      edge_capped_(graph.edge_count(), false) {
  const double m = static_cast<double>(graph.edge_count());
  const double c =
      static_cast<double>(std::max<std::int64_t>(1, graph.max_capacity()));
  if (config_.unit_costs) {
    factor_ = config_.factor.value_or(4.0);
    log_ = std::max(1.0, std::log2(m));
  } else {
    factor_ = config_.factor.value_or(12.0);
    log_ = std::max(1.0, std::log2(m * c));
  }
  MINREJ_REQUIRE(factor_ > 0.0, "factor must be positive");
  // §3 guard: |REQ_e| < 4mc².
  const double cap = 4.0 * m * c * c;
  cap_ = cap > 1e18 ? static_cast<std::int64_t>(1e18)
                    : static_cast<std::int64_t>(cap);
}

std::string RandomizedAdmission::name() const {
  return config_.unit_costs ? "randomized-unweighted" : "randomized-weighted";
}

double RandomizedAdmission::frac_weight_of_base(RequestId i) const {
  if (static_cast<std::size_t>(i) >= frac_of_base_.size()) return 0.0;
  const RequestId f = frac_of_base_[i];
  return f == kInvalidId ? 0.0 : frac_.weight(f);
}

std::optional<RequestId> RandomizedAdmission::pick_victim(
    EdgeId e, RequestId arriving, const std::vector<bool>& marked) {
  std::vector<RequestId> candidates;
  for (RequestId i = 0; i < arriving; ++i) {
    if (!is_accepted(i) || stored_request(i).must_accept) continue;
    if (static_cast<std::size_t>(i) < marked.size() && marked[i]) continue;
    const auto& edges = stored_request(i).edges;
    if (!std::binary_search(edges.begin(), edges.end(), e)) continue;
    candidates.push_back(i);
  }
  if (candidates.empty()) return std::nullopt;
  switch (config_.victim_policy) {
    case VictimPolicy::kRandom:
      return candidates[rng_.index(candidates.size())];
    case VictimPolicy::kCheapest: {
      RequestId best = candidates.front();
      for (RequestId i : candidates) {
        if (stored_request(i).cost < stored_request(best).cost) best = i;
      }
      return best;
    }
    case VictimPolicy::kMaxWeight:
      break;
  }
  RequestId best = candidates.front();
  double best_weight = -1.0;
  for (RequestId i : candidates) {
    const double w = frac_weight_of_base(i);
    if (w > best_weight) {
      best_weight = w;
      best = i;
    }
  }
  return best;
}

ArrivalResult RandomizedAdmission::handle(RequestId id,
                                          const Request& request) {
  // Step 1: fractional weight augmentations.
  const FractionalAdmission::Arrival frac_arrival = frac_.on_request(request);
  frac_of_base_.resize(static_cast<std::size_t>(id) + 1, kInvalidId);
  frac_of_base_[id] = static_cast<RequestId>(base_of_frac_.size());
  base_of_frac_.push_back(id);

  ArrivalResult result;
  std::vector<bool> reject_now;  // sparse set over delta ids
  auto mark_reject = [&](RequestId i) {
    if (i == id) {
      result.accepted = false;  // provisional; id handled at the end
      reject_now.resize(std::max<std::size_t>(reject_now.size(), i + 1));
      reject_now[i] = true;
    } else if (is_accepted(i) && !stored_request(i).must_accept) {
      reject_now.resize(std::max<std::size_t>(reject_now.size(), i + 1));
      if (!reject_now[i]) {
        reject_now[i] = true;
        result.preempted.push_back(i);
      }
    }
  };

  bool arriving_rejected = false;
  auto reject_arriving = [&] { arriving_rejected = true; };

  // §3 cap on |REQ_e|: once an edge has seen 4mc² requests, reject
  // everything on it (2-competitive by the paper's argument) and keep
  // rejecting future arrivals through it.
  if (config_.edge_request_cap && !request.must_accept) {
    bool capped = false;
    for (EdgeId e : request.edges) {
      ++edge_requests_[e];
      if (edge_requests_[e] >= cap_) {
        if (!edge_capped_[e]) {
          edge_capped_[e] = true;
          for (RequestId i = 0; i < id; ++i) {
            if (is_accepted(i) && !stored_request(i).must_accept &&
                std::binary_search(stored_request(i).edges.begin(),
                                   stored_request(i).edges.end(), e)) {
              mark_reject(i);
            }
          }
        }
        capped = true;
      }
    }
    if (capped) reject_arriving();
  }

  // R_small classification rejects integrally too.
  if (frac_arrival.cost_class == CostClass::kAutoRejected) {
    reject_arriving();
  }

  // Steps 2 and 3 over the requests whose weights grew this arrival.
  // Delta ids live in fractional-id space; decisions land on base ids.
  const double threshold = weight_threshold();
  for (const FractionalEngine::Delta& d : frac_arrival.deltas) {
    const RequestId base = base_of_frac_[d.id];
    if (config_.step2_threshold && frac_.weight(d.id) >= threshold) {
      // Step 2: deterministic threshold rejection.
      if (base == id) reject_arriving();
      else mark_reject(base);
      continue;
    }
    // Step 3: randomized rejection with probability F·δ·L.
    if (!config_.step3_random) continue;
    const double p = std::min(1.0, factor_ * d.delta * log_);
    if (rng_.bernoulli(p)) {
      if (base == id) reject_arriving();
      else mark_reject(base);
    }
  }

  if (arriving_rejected && !request.must_accept) {
    result.accepted = false;
    return result;
  }

  // Step 4: feasibility check for the arriving request against the usage
  // that will remain after the preemptions above.
  auto effective_usage = [&](EdgeId e) {
    std::int64_t u = edge_usage()[e];
    for (RequestId v : result.preempted) {
      const auto& ve = stored_request(v).edges;
      if (std::binary_search(ve.begin(), ve.end(), e)) --u;
    }
    return u;
  };

  for (EdgeId e : request.edges) {
    while (effective_usage(e) + 1 > graph().capacity(e)) {
      if (!request.must_accept &&
          frac_arrival.cost_class != CostClass::kAutoAccepted) {
        // Ordinary request: step 4 rejects it.
        result.accepted = false;
        return result;
      }
      // Auto-accepted / must-accept arrival: preempt the largest-weight
      // accepted request on the overloaded edge.
      const std::optional<RequestId> victim = pick_victim(e, id, reject_now);
      if (!victim) {
        MINREJ_REQUIRE(!request.must_accept,
                       "must_accept arrival cannot fit: no preemptable "
                       "request on an overloaded edge");
        result.accepted = false;
        return result;
      }
      mark_reject(*victim);
    }
  }

  result.accepted = true;
  return result;
}

}  // namespace minrej

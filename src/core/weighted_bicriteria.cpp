#include "core/weighted_bicriteria.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

WeightedBicriteriaSetCover::WeightedBicriteriaSetCover(
    const SetSystem& system, BicriteriaConfig config)
    : OnlineSetCoverAlgorithm(system), config_(config),
      sub_(&system.substrate()),
      weight_(system.set_count(),
              1.0 / (2.0 * static_cast<double>(system.set_count()))),
      elem_weight_(system.element_count(), 0.0),
      cover_(system.element_count(), 0),
      in_cover_(system.set_count(), false) {
  MINREJ_REQUIRE(config_.epsilon > 0.0 && config_.epsilon < 1.0,
                 "epsilon must be in (0, 1)");
  for (std::size_t j = 0; j < system.element_count(); ++j) {
    elem_weight_[j] =
        static_cast<double>(system.degree(static_cast<ElementId>(j))) /
        (2.0 * static_cast<double>(system.set_count()));
  }
}

std::int64_t WeightedBicriteriaSetCover::required_coverage(
    std::int64_t k) const {
  return static_cast<std::int64_t>(
      std::ceil((1.0 - config_.epsilon) * static_cast<double>(k) - 1e-9));
}

long double WeightedBicriteriaSetCover::term(ElementId j) const {
  const long double n = static_cast<long double>(system().element_count());
  return std::pow(n, 2.0L * (static_cast<long double>(elem_weight_[j]) -
                             static_cast<long double>(cover_[j])));
}

double WeightedBicriteriaSetCover::potential() const {
  long double phi = 0.0L;
  for (std::size_t j = 0; j < system().element_count(); ++j) {
    phi += term(static_cast<ElementId>(j));
  }
  return static_cast<double>(phi);
}

double WeightedBicriteriaSetCover::set_weight(SetId s) const {
  MINREJ_REQUIRE(s < weight_.size(), "set id out of range");
  return weight_[s];
}

std::vector<SetId> WeightedBicriteriaSetCover::handle_element(ElementId j) {
  const std::int64_t k = demand(j);
  const std::int64_t target =
      std::min<std::int64_t>(required_coverage(k),
                             static_cast<std::int64_t>(system().degree(j)));

  std::vector<SetId> added;
  auto add_set = [&](SetId s) {
    MINREJ_CHECK(!in_cover_[s], "set added twice");
    in_cover_[s] = true;
    added.push_back(s);
    for (ElementId member : sub_->cols_of(s)) ++cover_[member];
  };

  while (cover_[j] < target) {
    ++augmentations_;
    const long double phi_start = potential();

    // (a) cost-scaled multiplicative step: cheap sets grow faster, the
    // same asymmetry §2 uses for requests (1 + 1/(n_e p_i)).  Divide-free
    // via the substrate's precomputed reciprocal-cost column — the same
    // 1 + (1/n)·(1/p) operation sequence the engines use.
    const double inv_2k = 1.0 / (2.0 * static_cast<double>(k));
    for (SetId s : sub_->rows_of(j)) {
      if (in_cover_[s]) continue;
      const double before = weight_[s];
      weight_[s] = before * (1.0 + inv_2k * sub_->row_recip_cost(s));
      const double delta = weight_[s] - before;
      for (ElementId member : sub_->cols_of(s)) {
        elem_weight_[member] += delta;
      }
    }

    // (b) threshold rule.
    for (SetId s : sub_->rows_of(j)) {
      if (!in_cover_[s] && weight_[s] >= 1.0) add_set(s);
    }

    // (c) rounding: best potential decrease per unit cost until Φ is
    // restored.  Adding all of S_j always suffices (same argument as the
    // unit-cost case), so the loop terminates.
    while (potential() > phi_start + 1e-9L) {
      SetId best = 0;
      long double best_score = -1.0L;
      bool found = false;
      for (SetId s : sub_->rows_of(j)) {
        if (in_cover_[s]) continue;
        long double gain = 0.0L;
        for (ElementId member : sub_->cols_of(s)) {
          gain += term(member);
        }
        const long double score =
            gain / static_cast<long double>(sub_->row_cost(s));
        if (score > best_score) {
          best_score = score;
          best = s;
          found = true;
        }
      }
      if (!found) break;
      add_set(best);
    }
    MINREJ_CHECK(potential() <= phi_start + 1e-6L,
                 "potential not restored after exhausting S_j");
  }
  return added;
}

}  // namespace minrej

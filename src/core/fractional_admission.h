// fractional_admission.h — the complete fractional online algorithm of
// paper §2: cost classification, normalization, and the α-doubling scheme
// wrapped around the weight-augmentation engine.
//
// For a current guess α of the fractional optimum:
//   * requests with cost > 2α are accepted permanently — "the online
//     algorithm can always completely accept requests of cost exceeding 2α
//     (and adjust the edge capacities accordingly)";
//   * requests with cost < α/(mc) are rejected immediately — the R_small
//     argument shows rejecting all of them is 2-competitive;
//   * the remaining costs are normalized to [1, g], g ≤ 2mc, and handed to
//     the FractionalEngine with zero-weight floor 1/(g·c).
//
// α is learned online: it starts at the cheapest request on the first
// overloaded edge ("we can start guessing α = min_{i∈REQ_e} p_i") and
// doubles whenever the current phase's fractional cost exceeds
// guard_factor · α · log2(2mc).  On doubling, the phase's rejected
// fractions are "forgotten" (their cost stays paid — the geometric series
// argument bounds it by a factor 2) and a fresh engine is seeded with the
// surviving requests at weight 0.
//
// Like the engine underneath, the wrapper binds to any covering substrate
// through CoveringSubstrateTraits (substrate_traits.h): a Graph for
// admission control, or a CoveringInstance for the zero-copy §4 set-cover
// reduction (capacity = element degree).  Request edge lists are kept in
// one flat arena (no per-record heap vector) — the phase rebuilds and the
// classification scans walk spans into it.
//
// Theorem 2: O(log(mc))-competitive versus the fractional optimum in the
// weighted case; O(log c) when all costs are 1 (g = 1, unit_costs mode).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/fractional_engine.h"
#include "graph/request.h"

namespace minrej {

class SnapshotWriter;
class SnapshotReader;

/// Tuning knobs; the defaults follow the paper.
struct FractionalConfig {
  /// Unweighted mode: all costs must equal 1.  Skips classification and
  /// normalization (g = 1) — the Theorem 2 O(log c) case.
  bool unit_costs = false;
  /// Phase guard: double α once the phase's fractional cost exceeds
  /// guard_factor · α · log2(2mc).  Any constant preserves O(log(mc));
  /// larger values mean fewer phases but a looser constant.
  double guard_factor = 8.0;
  /// If set, α is fixed to this value up front (the "α known up to a
  /// factor of 2" analysis setting) and never doubles.  Used by E7 to
  /// measure the doubling wrapper's overhead against this oracle.
  std::optional<double> fixed_alpha;
};

/// How an arrival was handled by the classification layer.
enum class CostClass : std::uint8_t {
  kEngine,        ///< normalized and processed by weight augmentation
  kAutoAccepted,  ///< cost > 2α: permanently accepted (pinned)
  kAutoRejected,  ///< cost < α/(mc): rejected immediately
  kMustAccept,    ///< must_accept request: pinned (reduction phase 2)
};

/// The fractional algorithm.  Request ids are assigned in arrival order.
class FractionalAdmission {
 public:
  /// Result of one arrival, in *wrapper* request-id space.
  struct Arrival {
    CostClass cost_class = CostClass::kEngine;
    /// Weight increases of this arrival (empty unless kEngine).
    std::vector<FractionalEngine::Delta> deltas;
    /// True if α was (re)initialized or doubled by this arrival, which
    /// resets all weights to zero (deltas above are from before the reset).
    bool phase_reset = false;
  };

  /// Binds the wrapper (and its engines) to a substrate view.
  explicit FractionalAdmission(EngineSubstrate substrate,
                               FractionalConfig config = {});

  /// Compile-time substrate binding: a Graph (admission control) or a
  /// CoveringInstance (set cover: capacity = degree) via its traits.
  template <typename S>
  explicit FractionalAdmission(const S& substrate,
                               FractionalConfig config = {})
      : FractionalAdmission(CoveringSubstrateTraits<S>::bind(substrate),
                            config) {}

  Arrival on_request(const Request& request);

  /// Zero-copy arrival path: `edges` must be sorted and unique (e.g. a
  /// covering-substrate arena span — the §4 ReductionView feeds phase-1
  /// sets and phase-2 element singletons through here without ever
  /// materializing a Request).
  Arrival on_request(std::span<const EdgeId> edges, double cost,
                     bool must_accept = false);

  // -- objective & state ----------------------------------------------------

  /// Total fractional cost paid so far: Σ min(f,1)·p over all phases (the
  /// forgotten fractions stay paid) plus the auto-rejected costs.
  double fractional_cost() const noexcept;

  /// f_i of request i: current-phase weight, or 1 if the request was fully
  /// or auto-rejected, or 0 if pinned/auto-accepted.  Monotonicity of
  /// weights holds *within* a phase (paper); a phase reset restarts them.
  double weight(RequestId id) const;

  /// True if the fractional solution rejects request i completely.
  bool fully_rejected(RequestId id) const;

  CostClass cost_class(RequestId id) const;

  double alpha() const noexcept { return alpha_; }
  bool alpha_initialized() const noexcept { return alpha_ > 0.0; }
  std::uint64_t phase_count() const noexcept { return phase_count_; }

  /// Cumulative weight augmentations across all phases (Lemma 1).
  std::uint64_t augmentations() const noexcept;

  /// Cumulative engine member-list compactions across all phases (flat
  /// engine: threshold-gated; naive engine: every loop iteration).
  std::uint64_t compactions() const noexcept;

  /// The bound substrate view (column count = m, capacities, c).
  const EngineSubstrate& substrate() const noexcept { return substrate_; }
  std::size_t request_count() const noexcept { return records_.size(); }

  /// Engine of the current phase (tests only; null before first overload
  /// in auto-α mode).
  const FractionalEngine* engine() const noexcept { return engine_.get(); }

  /// Serializes the full wrapper state, current-phase engine included
  /// (io/snapshot.h; DESIGN.md §9).  The stream embeds the configuration;
  /// load_state cross-checks it so a snapshot can only restore into a
  /// wrapper built by the same factory.
  void save_state(SnapshotWriter& w) const;

  /// Restores a save_state stream into this freshly constructed wrapper
  /// (no arrivals processed yet, same substrate column count).
  void load_state(SnapshotReader& r);

 private:
  struct Record {
    std::size_t edge_begin = 0;  ///< offset into the shared edge arena
    std::uint32_t edge_count = 0;
    double cost = 1.0;
    CostClass cost_class = CostClass::kEngine;
    bool fully_rejected = false;       ///< latched across phases
    RequestId engine_id = kInvalidId;  ///< id inside the current engine
  };

  /// Request id's edge list in the wrapper's flat arena.
  std::span<const EdgeId> record_edges(RequestId id) const {
    const Record& rec = records_[id];
    return {edge_pool_.data() + rec.edge_begin, rec.edge_count};
  }

  /// (Re)builds the engine for the current α, re-admitting survivors.
  void start_phase();

  /// Classifies one record under the current α and registers it with the
  /// current engine (pin / auto-reject / passive admit).  `carried_weight`
  /// seeds the request's weight (phase changes preserve weights — §2's
  /// monotonicity).
  void classify_and_register(RequestId id, double carried_weight = 0.0);

  /// Translates engine-local deltas into wrapper-id deltas, latching
  /// full-rejection flags along the way.
  std::vector<FractionalEngine::Delta> translate_deltas(
      const std::vector<FractionalEngine::Delta>& deltas);

  /// Auto-α mode: while any edge of `edges` is saturated (positive excess
  /// with only pinned requests left), α is provably too small — double it,
  /// rebuild the phase (un-pinning requests that are no longer "big"), and
  /// re-run the augmentation loop on those edges.  Appends any resulting
  /// weight increases to `arrival`.
  void resolve_saturation(std::span<const EdgeId> edges, Arrival& arrival);

  double normalized_cost(double cost) const;
  double guard_threshold() const;
  /// log2(2mc) clamped to >= 1.
  double log_mc() const;
  double mc() const;

  EngineSubstrate substrate_;
  FractionalConfig config_;
  double alpha_ = 0.0;
  std::uint64_t phase_count_ = 0;
  std::unique_ptr<FractionalEngine> engine_;
  std::vector<Record> records_;
  std::vector<EdgeId> edge_pool_;  ///< flat arena of all record edge lists
  /// engine-local request id -> wrapper request id (rebuilt each phase).
  std::vector<RequestId> engine_map_;
  /// Pre-α per-edge load of non-rejected requests (overflow detection).
  std::vector<std::int64_t> preload_;
  double paid_auto_rejected_ = 0.0;
  double paid_past_phases_ = 0.0;
  std::uint64_t past_augmentations_ = 0;
  std::uint64_t past_compactions_ = 0;
};

}  // namespace minrej

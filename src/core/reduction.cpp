#include "core/reduction.h"

#include <numeric>

#include "util/check.h"

namespace minrej {

ReductionView::ReductionView(const SetSystem& system) : system_(&system) {
  const std::size_t n = system.element_count();
  for (std::size_t j = 0; j < n; ++j) {
    MINREJ_REQUIRE(system.degree(static_cast<ElementId>(j)) >= 1,
                   "reduction requires every element to be in some set");
  }
  identity_.resize(n);
  std::iota(identity_.begin(), identity_.end(), 0);
}

Request ReductionInstance::element_request(ElementId j) const {
  MINREJ_REQUIRE(j < graph.edge_count(), "element out of range");
  // Phase-2 requests are must_accept; cost is irrelevant to the objective
  // (they are never rejected) but must be positive.
  return Request({static_cast<EdgeId>(j)}, 1.0, /*must_accept=*/true);
}

ReductionInstance build_reduction(const SetSystem& system) {
  // Same validation order as the view: reject degree-0 elements before
  // touching the graph builder (whose capacity >= 1 check would fire with
  // a less actionable message).
  for (std::size_t j = 0; j < system.element_count(); ++j) {
    MINREJ_REQUIRE(system.degree(static_cast<ElementId>(j)) >= 1,
                   "reduction requires every element to be in some set");
  }
  // Star topology via the bulk build path: center vertex 0, leaf j+1;
  // edge j has capacity |S_j| (the substrate's degree capacities).
  ReductionInstance instance{Graph::star(system.substrate().capacities()),
                             {}};
  instance.phase1.reserve(system.set_count());
  for (std::size_t s = 0; s < system.set_count(); ++s) {
    instance.phase1.push_back(Request::from_sorted(
        system.elements_of(static_cast<SetId>(s)),
        system.cost(static_cast<SetId>(s))));
  }
  return instance;
}

AdmissionInstance reduced_admission_instance(
    const SetSystem& system, const std::vector<ElementId>& arrivals) {
  ReductionInstance red = build_reduction(system);
  std::vector<Request> requests = std::move(red.phase1);
  requests.reserve(requests.size() + arrivals.size());
  for (ElementId j : arrivals) {
    requests.push_back(red.element_request(j));
  }
  return AdmissionInstance(std::move(red.graph), std::move(requests));
}

}  // namespace minrej

#include "core/reduction.h"

#include "util/check.h"

namespace minrej {

Request ReductionInstance::element_request(ElementId j) const {
  MINREJ_REQUIRE(j < graph.edge_count(), "element out of range");
  // Phase-2 requests are must_accept; cost is irrelevant to the objective
  // (they are never rejected) but must be positive.
  return Request({static_cast<EdgeId>(j)}, 1.0, /*must_accept=*/true);
}

ReductionInstance build_reduction(const SetSystem& system) {
  const std::size_t n = system.element_count();
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto degree =
        static_cast<std::int64_t>(system.degree(static_cast<ElementId>(j)));
    MINREJ_REQUIRE(degree >= 1,
                   "reduction requires every element to be in some set");
    // Star topology: center vertex 0, leaf j+1; edge j has capacity |S_j|.
    edges.push_back({0, static_cast<VertexId>(j + 1), degree});
  }
  ReductionInstance instance{Graph(n + 1, std::move(edges)), {}};

  instance.phase1.reserve(system.set_count());
  for (std::size_t s = 0; s < system.set_count(); ++s) {
    std::vector<EdgeId> request_edges;
    const auto members = system.elements_of(static_cast<SetId>(s));
    request_edges.reserve(members.size());
    for (ElementId j : members) {
      request_edges.push_back(static_cast<EdgeId>(j));
    }
    instance.phase1.emplace_back(std::move(request_edges),
                                 system.cost(static_cast<SetId>(s)));
  }
  return instance;
}

AdmissionInstance reduced_admission_instance(
    const SetSystem& system, const std::vector<ElementId>& arrivals) {
  ReductionInstance red = build_reduction(system);
  std::vector<Request> requests = red.phase1;
  requests.reserve(requests.size() + arrivals.size());
  for (ElementId j : arrivals) {
    requests.push_back(red.element_request(j));
  }
  return AdmissionInstance(std::move(red.graph), std::move(requests));
}

}  // namespace minrej

#include "core/run_budget.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace minrej {

std::uint64_t augmentation_step_budget(std::size_t arrivals,
                                       std::size_t edge_count,
                                       std::int64_t max_capacity) {
  const double mc = static_cast<double>(edge_count) *
                    static_cast<double>(std::max<std::int64_t>(1, max_capacity));
  const double budget =
      32.0 * static_cast<double>(arrivals) * std::log2(2.0 + mc);
  return static_cast<std::uint64_t>(budget);
}

std::string augmentation_budget_warning(
    std::uint64_t steps, std::uint64_t budget, std::size_t crossing_arrival,
    std::size_t arrivals, std::uint64_t crossing_id, const char* id_kind,
    const char* regime_hint) {
  std::ostringstream os;
  os << "augmentation steps blew through the per-run budget: " << steps
     << " steps vs budget " << budget;
  if (crossing_arrival != kBudgetNeverCrossed) {
    os << "; first crossed at arrival " << crossing_arrival << " of "
       << arrivals << " (" << id_kind << " " << crossing_id << ")";
  }
  os << " — " << regime_hint
     << " (core/run_budget.h: augmentation_step_budget)";
  return os.str();
}

}  // namespace minrej

#include "core/naive_engine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

NaiveFractionalEngine::NaiveFractionalEngine(EngineSubstrate substrate,
                                             double zero_init)
    : substrate_(substrate), zero_init_(zero_init),
      members_(substrate.col_count), alive_count_(substrate.col_count, 0),
      pinned_count_(substrate.col_count, 0) {
  MINREJ_REQUIRE(substrate_.capacities.size() == substrate_.col_count,
                 "substrate capacity span size mismatch");
  // zero_init == 1 is legal: it is what the unweighted case degenerates to
  // when g·c == 1, and it simply means step (a) already fully rejects.
  MINREJ_REQUIRE(zero_init > 0.0 && zero_init <= 1.0,
                 "zero_init must be in (0, 1]");
}

RequestId NaiveFractionalEngine::pin(std::span<const EdgeId> edges) {
  MINREJ_REQUIRE(!edges.empty(), "pinned request needs edges");
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const auto id = static_cast<RequestId>(requests_.size());
  RequestRecord rec;
  rec.edges.assign(edges.begin(), edges.end());
  rec.pinned = true;
  requests_.push_back(std::move(rec));
  for (EdgeId e : edges) ++pinned_count_[e];
  return id;
}

double NaiveFractionalEngine::weight(RequestId id) const {
  MINREJ_REQUIRE(id < requests_.size(), "unknown request id");
  return requests_[id].weight;
}

bool NaiveFractionalEngine::is_pinned(RequestId id) const {
  MINREJ_REQUIRE(id < requests_.size(), "unknown request id");
  return requests_[id].pinned;
}

bool NaiveFractionalEngine::fully_rejected(RequestId id) const {
  MINREJ_REQUIRE(id < requests_.size(), "unknown request id");
  return !requests_[id].pinned && !requests_[id].alive;
}

std::int64_t NaiveFractionalEngine::excess(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return alive_count_[e] + pinned_count_[e] - substrate_.capacities[e];
}

double NaiveFractionalEngine::alive_weight_sum(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  double sum = 0.0;
  for (RequestId i : members_[e]) {
    if (requests_[i].alive) sum += requests_[i].weight;
  }
  return sum;
}

bool NaiveFractionalEngine::saturated(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return excess(e) > 0 && alive_count_[e] == 0;
}

bool NaiveFractionalEngine::constraint_satisfied(EdgeId e) const {
  const std::int64_t n_e = excess(e);
  if (n_e <= 0) return true;
  if (alive_count_[e] == 0) return true;  // unsatisfiable => saturated
  // Tolerance: the multiplicative updates accumulate rounding error.
  return alive_weight_sum(e) >= static_cast<double>(n_e) - 1e-9;
}

std::size_t NaiveFractionalEngine::member_list_size(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return members_[e].size();
}

std::vector<RequestId> NaiveFractionalEngine::alive_requests(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  std::vector<RequestId> result;
  for (RequestId i : members_[e]) {
    if (requests_[i].alive) result.push_back(i);
  }
  return result;
}

void NaiveFractionalEngine::touch(RequestId id) {
  RequestRecord& rec = requests_[id];
  if (rec.touch_epoch != epoch_) {
    rec.touch_epoch = epoch_;
    rec.weight_at_touch = std::min(rec.weight, 1.0);
    touched_.push_back(id);
  }
}

void NaiveFractionalEngine::mark_fully_rejected(RequestId id) {
  RequestRecord& rec = requests_[id];
  MINREJ_CHECK(!rec.pinned, "pinned request cannot be rejected");
  MINREJ_CHECK(rec.alive, "request already fully rejected");
  rec.alive = false;
  for (EdgeId e : rec.edges) --alive_count_[e];
  // Member lists are cleaned lazily in compact().
}

void NaiveFractionalEngine::compact(EdgeId e) {
  ++compactions_;
  auto& list = members_[e];
  list.erase(std::remove_if(list.begin(), list.end(),
                            [this](RequestId i) {
                              return !requests_[i].alive;
                            }),
             list.end());
}

void NaiveFractionalEngine::augment_edge(EdgeId e) {
  // Augmentation loop (§2 step 2): runs while the covering constraint is
  // unmet and there is still an augmentable alive request to raise.
  for (;;) {
    const std::int64_t n_e = excess(e);
    if (n_e <= 0) return;
    if (alive_count_[e] == 0) return;  // saturated; wrapper's cost guard acts
    compact(e);

    double sum = 0.0;
    for (RequestId i : members_[e]) sum += requests_[i].weight;
    if (sum >= static_cast<double>(n_e)) return;

    ++augmentations_;
    const double ne = static_cast<double>(n_e);

    // (a) zero weights jump to the floor 1/(g·c).
    for (RequestId i : members_[e]) {
      RequestRecord& rec = requests_[i];
      if (rec.weight == 0.0) {
        touch(static_cast<RequestId>(i));
        rec.weight = zero_init_;
      }
    }
    // (b) multiplicative step f_i *= (1 + 1/(n_e p_i)), computed as
    // 1 + (1/n_e)·(1/p_i) with both reciprocals hoisted — the divide-free
    // form the flat engine's kernels use (differential contract, header
    // comment), so the two engines round identically member by member.
    const double inv_ne = 1.0 / ne;
    for (RequestId i : members_[e]) {
      RequestRecord& rec = requests_[i];
      touch(static_cast<RequestId>(i));
      const double w = rec.weight * (1.0 + inv_ne * rec.inv_update_cost);
      // The macro expands to `if (!(w >= 0.0)) throw` — the double-negative
      // form that is true for NaN as well as genuine negatives, so a
      // poisoned weight fails loudly instead of corrupting invariant sums.
      MINREJ_CHECK(w >= 0.0, "fractional weight became NaN or negative");
      rec.weight = std::min(w, kWeightClamp);
    }
    // (c) requests crossing 1 leave every ALIVE list.
    for (RequestId i : members_[e]) {
      if (requests_[i].alive && requests_[i].weight >= 1.0) {
        mark_fully_rejected(i);
      }
    }
    if (observer_) observer_(e);
  }
}

RequestId NaiveFractionalEngine::admit_existing(std::span<const EdgeId> edges,
                                                double update_cost,
                                                double report_cost,
                                                double initial_weight) {
  MINREJ_REQUIRE(!edges.empty(), "request needs at least one edge");
  // isfinite rejects ±inf; the > 0 comparison rejects NaN (every ordered
  // comparison against NaN is false) as well as non-positive costs.
  MINREJ_REQUIRE(std::isfinite(update_cost) && update_cost > 0.0,
                 "update cost must be positive and finite");
  MINREJ_REQUIRE(std::isfinite(report_cost) && report_cost > 0.0,
                 "report cost must be positive and finite");
  MINREJ_REQUIRE(initial_weight >= 0.0 && initial_weight < 1.0,
                 "initial weight must be in [0, 1)");
  // Validate every edge before mutating anything: InvalidArgument is
  // recoverable, so a rejected arrival must not leave a half-registered
  // phantom request behind.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const auto id = static_cast<RequestId>(requests_.size());
  RequestRecord rec;
  rec.edges.assign(edges.begin(), edges.end());
  rec.update_cost = update_cost;
  rec.inv_update_cost = 1.0 / update_cost;
  rec.report_cost = report_cost;
  rec.weight = initial_weight;
  requests_.push_back(std::move(rec));
  for (EdgeId e : edges) {
    members_[e].push_back(id);
    ++alive_count_[e];
  }
  return id;
}

const std::vector<NaiveFractionalEngine::Delta>& NaiveFractionalEngine::arrive(
    std::span<const EdgeId> edges, double update_cost, double report_cost) {
  admit_existing(edges, update_cost, report_cost);
  return restore_edges(edges);
}

const std::vector<NaiveFractionalEngine::Delta>&
NaiveFractionalEngine::restore_edges(std::span<const EdgeId> edges) {
  // Validate before augmenting anything: a mid-loop throw would leave
  // weights raised but the objective never charged for them.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }

  ++epoch_;
  touched_.clear();
  deltas_.clear();

  // Restore the invariant on each edge, in the given order ("in an
  // arbitrary order" per the paper).
  for (EdgeId e : edges) augment_edge(e);

  // Collect weight increases and update the fractional objective.  Sorting
  // by id makes the report order canonical across engine implementations.
  std::sort(touched_.begin(), touched_.end());
  for (RequestId i : touched_) {
    const RequestRecord& r = requests_[i];
    const double now = std::min(r.weight, 1.0);
    const double delta = now - r.weight_at_touch;
    if (delta > 0.0) {
      deltas_.push_back({i, delta});
      fractional_cost_ += delta * r.report_cost;
    }
  }
  return deltas_;
}

}  // namespace minrej

// engine_types.h — types shared by the weight-augmentation engine
// implementations (the flat production engine and the naive reference
// engine, see DESIGN.md §3).  Consumers select an implementation through
// the FractionalEngine alias defined at the bottom of fractional_engine.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

namespace minrej {

/// One request's weight increase during a single arrival.  Deltas are
/// reported in increasing request id (a canonical order, so the randomized
/// rounding layer consumes its random stream identically regardless of
/// which engine implementation produced them).
struct WeightDelta {
  RequestId id = 0;
  double delta = 0.0;  ///< f_new − f_old (f capped at 1 for reporting)
};

/// Ceiling for stored weights.  Any weight ≥ 1 means "fully rejected" and
/// is reported as 1, so values beyond this clamp carry no information —
/// but without it an adversarially small update_cost could push a weight
/// toward overflow/inf through the multiplicative step.
inline constexpr double kEngineWeightClamp = 2.0;

/// The per-request fields the augmentation sweep reads and writes, packed
/// into one 32-byte row so a member costs the sweep a single cache line
/// even when member ids are scattered (hot-edge lists under skewed traffic
/// are exactly that).  Shared between the flat engine and the sweep
/// kernels in core/simd_sweep.h, whose gathers address the four fields by
/// their fixed 8-byte strides — the static_asserts below are load-bearing
/// for those kernels, not just a size check.
///
/// `inv_update_cost` is the precomputed reciprocal 1/p_i (the divide-free
/// weighted path, DESIGN.md §8): the multiplicative step becomes
/// 1.0 + (1/n_e)·(1/p_i) with one divide per step instead of one per
/// member.  For unit costs the reciprocal is exactly 1.0 and the product
/// (1/n_e)·1.0 is bitwise the old hoisted unit multiplier.
struct EngineHotRow {
  double weight = 0.0;
  double inv_update_cost = 1.0;  ///< 1 / p_i, precomputed at admission
  // Delta bookkeeping for the current arrival.
  double weight_at_touch = 0.0;
  std::uint64_t touch_epoch = 0;
};
static_assert(sizeof(EngineHotRow) == 32);
static_assert(offsetof(EngineHotRow, weight) == 0);
static_assert(offsetof(EngineHotRow, inv_update_cost) == 8);
static_assert(offsetof(EngineHotRow, weight_at_touch) == 16);
static_assert(offsetof(EngineHotRow, touch_epoch) == 24);

}  // namespace minrej

// engine_types.h — types shared by the weight-augmentation engine
// implementations (the flat production engine and the naive reference
// engine, see DESIGN.md §3).  Consumers select an implementation through
// the FractionalEngine alias defined at the bottom of fractional_engine.h.
#pragma once

#include <cstdint>

#include "graph/types.h"

namespace minrej {

/// One request's weight increase during a single arrival.  Deltas are
/// reported in increasing request id (a canonical order, so the randomized
/// rounding layer consumes its random stream identically regardless of
/// which engine implementation produced them).
struct WeightDelta {
  RequestId id = 0;
  double delta = 0.0;  ///< f_new − f_old (f capped at 1 for reporting)
};

/// Ceiling for stored weights.  Any weight ≥ 1 means "fully rejected" and
/// is reported as 1, so values beyond this clamp carry no information —
/// but without it an adversarially small update_cost could push a weight
/// toward overflow/inf through the multiplicative step.
inline constexpr double kEngineWeightClamp = 2.0;

}  // namespace minrej

// reduction.h — the paper's §4 reduction from online set cover with
// repetitions to admission control.
//
// Given (X, S): one edge e_j per element j, with capacity |S_j| (the
// number of sets containing j).  Phase 1 presents one request per set S —
// the edge set {e_j : j ∈ S} at cost(S) — all of which fit exactly (every
// edge reaches full capacity).  Phase 2 presents, for each arrival of
// element j, a single-edge request {e_j}; it is tagged must_accept ("there
// is no reason for the admission control algorithm to reject requests
// given in the second phase"), so each arrival forces one more phase-1
// request through e_j to be preempted.  Preempted phase-1 requests are
// exactly the sets chosen by the induced cover.
//
// Since the covering-substrate refactor (DESIGN.md §7) the reduction is a
// *view*, not a copy: a SetSystem's substrate already IS the reduced
// instance — set s's element list is phase-1 request s's edge list (edge
// j ↔ element j by index identity, both uint32), and the substrate's
// degree capacities are the reduction's edge capacities.  ReductionView
// binds that identity with zero copying; phase-2 requests are synthesized
// on the fly.  The old materializing path (ReductionInstance /
// build_reduction / reduced_admission_instance) is retained for consumers
// that need a real Graph + Request sequence (offline cross-checks, the
// io-trace replay) and as the differential-testing baseline the view is
// held identical to (tests/substrate_test.cpp).
//
// The paper notes the requests need not be simple paths ("can be easily
// fixed by adding extra edges"); since every algorithm here treats a
// request as an edge subset (paper §6), the star-shaped graph below is
// used as-is.
#pragma once

#include "graph/graph.h"
#include "graph/request.h"
#include "setcover/set_system.h"

namespace minrej {

/// Zero-copy §4 reduction over a SetSystem's covering substrate.
/// Edge j ≡ element j (index identity); phase-1 request s ≡ set s, its
/// edge list being the substrate arena span of set s's elements; phase-2
/// element requests are single-edge must-accept spans synthesized from an
/// identity table.  Requires every element to be in at least one set
/// (degree >= 1), otherwise its edge capacity would be 0.
class ReductionView {
 public:
  explicit ReductionView(const SetSystem& system);

  const SetSystem& system() const noexcept { return *system_; }
  const CoveringInstance& substrate() const noexcept {
    return system_->substrate();
  }

  std::size_t edge_count() const noexcept {
    return system_->element_count();  // edge j ≡ element j
  }
  /// Capacity of edge j: the degree |S_j| (the §4 identity).
  std::int64_t capacity(EdgeId e) const {
    return substrate().col_capacity(e);
  }

  std::size_t phase1_count() const noexcept {
    return system_->set_count();  // request s ≡ set s
  }
  /// Edge list of phase-1 request s — set s's element arena span, reread
  /// as edges (ElementId and EdgeId are the same 32-bit index type).
  std::span<const EdgeId> phase1_edges(SetId s) const {
    return substrate().cols_of(s);
  }
  double phase1_cost(SetId s) const { return substrate().row_cost(s); }

  /// Edge span of the phase-2 request for one arrival of element j:
  /// a one-element slice of the identity table, no allocation.
  std::span<const EdgeId> element_edges(ElementId j) const {
    MINREJ_REQUIRE(j < identity_.size(), "element out of range");
    return {identity_.data() + j, 1};
  }

  /// Materialized phase-2 request (must_accept; cost is irrelevant to the
  /// objective but must be positive) for Graph-backed consumers.
  Request element_request(ElementId j) const {
    return Request::from_sorted(element_edges(j), 1.0, /*must_accept=*/true);
  }

  /// Realizes the reduction's star graph (the only materialization this
  /// view ever performs; consumers that bind engines through the substrate
  /// never call it).  Bulk one-pass build over the degree capacities.
  Graph star_graph() const { return Graph::star(substrate().capacities()); }

 private:
  const SetSystem* system_;
  std::vector<EdgeId> identity_;  ///< 0..n-1, backs element_edges()
};

/// The materialized admission-control instance induced by a set system
/// (the pre-§7 path, retained for differential testing and offline
/// cross-checks).
struct ReductionInstance {
  Graph graph;                  ///< edge j <-> element j, capacity |S_j|
  std::vector<Request> phase1;  ///< request i <-> set i (cost = set cost)

  /// Phase-2 request for one arrival of element j.
  Request element_request(ElementId j) const;
};

/// Builds the materialized reduction.  Same degree >= 1 requirement as
/// ReductionView.
ReductionInstance build_reduction(const SetSystem& system);

/// Convenience: the full admission instance for a fixed arrival sequence
/// (phase 1 then one phase-2 request per arrival).  Used to cross-check
/// offline optima: OPT_multicover(instance) == OPT_admission(reduced) —
/// and by the scenario catalog to replay set-cover workloads through the
/// admission service stack.
AdmissionInstance reduced_admission_instance(
    const SetSystem& system, const std::vector<ElementId>& arrivals);

}  // namespace minrej

// reduction.h — the paper's §4 reduction from online set cover with
// repetitions to admission control.
//
// Given (X, S): build a graph with one edge e_j per element j, with
// capacity |S_j| (the number of sets containing j).  Phase 1 presents one
// request per set S — the edge set {e_j : j ∈ S} at cost(S) — all of which
// fit exactly (every edge reaches full capacity).  Phase 2 presents, for
// each arrival of element j, a single-edge request {e_j}; it is tagged
// must_accept ("there is no reason for the admission control algorithm to
// reject requests given in the second phase"), so each arrival forces one
// more phase-1 request through e_j to be preempted.  Preempted phase-1
// requests are exactly the sets chosen by the induced cover.
//
// The paper notes the requests need not be simple paths ("can be easily
// fixed by adding extra edges"); since every algorithm here treats a
// request as an edge subset (paper §6), the star-shaped graph below is
// used as-is.
#pragma once

#include "graph/graph.h"
#include "graph/request.h"
#include "setcover/set_system.h"

namespace minrej {

/// The admission-control instance induced by a set system.
struct ReductionInstance {
  Graph graph;                  ///< edge j <-> element j, capacity |S_j|
  std::vector<Request> phase1;  ///< request i <-> set i (cost = set cost)

  /// Phase-2 request for one arrival of element j.
  Request element_request(ElementId j) const;
};

/// Builds the reduction.  Requires every element to belong to at least one
/// set (degree >= 1), otherwise its edge capacity would be 0.
ReductionInstance build_reduction(const SetSystem& system);

/// Convenience: the full admission instance for a fixed arrival sequence
/// (phase 1 then one phase-2 request per arrival).  Used to cross-check
/// offline optima: OPT_multicover(instance) == OPT_admission(reduced).
AdmissionInstance reduced_admission_instance(
    const SetSystem& system, const std::vector<ElementId>& arrivals);

}  // namespace minrej

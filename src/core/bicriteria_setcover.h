// bicriteria_setcover.h — the deterministic bicriteria online set cover
// algorithm of paper §5.
//
// For a constant ε > 0 the algorithm maintains a weight w_S (initially
// 1/(2m)) per set and the element weights w_j = Σ_{S ∋ j} w_S.  On the
// k-th arrival of element j, while cover_j < (1−ε)·k:
//   (a) w_S ← w_S · (1 + 1/(2k))   for every S ∈ S_j \ C;
//   (b) add to C every set whose weight reached 1;
//   (c) add up to 2·log2(n) further sets from S_j, chosen greedily so that
//       the potential  Φ = Σ_{j'} n^{2(w_{j'} − cover_{j'})}  does not
//       exceed its value before the augmentation (the derandomized
//       rounding of Lemma 6 — the paper's own prescription is "greedily
//       add sets to C one by one, making sure that the potential function
//       will decrease as much as possible after each such choice").
//
// Guarantees (unit costs, as the paper assumes for §5): cost
// O(log m log n)·OPT (Theorem 7) and cover_j ≥ ⌈(1−ε)k⌉ after every
// arrival; Φ never exceeds n² (Lemma 6 invariant, checked by tests).
// With every element arriving at most once, this specializes to the
// classic deterministic online set cover algorithm of Alon et al.
// (STOC'03).
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_setcover.h"

namespace minrej {

struct BicriteriaConfig {
  /// The coverage slack ε ∈ (0, 1): the algorithm covers ⌈(1−ε)k⌉ where
  /// OPT covers k.
  double epsilon = 0.5;
};

/// The §5 deterministic bicriteria algorithm.  Requires unit set costs.
class BicriteriaSetCover : public OnlineSetCoverAlgorithm {
 public:
  BicriteriaSetCover(const SetSystem& system, BicriteriaConfig config = {});

  std::string name() const override { return "bicriteria-deterministic"; }

  std::int64_t required_coverage(std::int64_t k) const override;

  /// Current potential Φ = Σ_j n^{2(w_j − cover_j)} (tests; Lemma 6 says
  /// it never exceeds n²).
  double potential() const;

  /// Total weight augmentations performed (Lemma 5: O(α log m)).
  std::uint64_t augmentations() const noexcept { return augmentations_; }
  std::uint64_t augmentation_steps() const noexcept override {
    return augmentations_;
  }

  /// Sets added by the threshold rule (step b) vs the rounding rule
  /// (step c) — instrumentation for the Theorem 7 accounting.
  std::uint64_t threshold_additions() const noexcept {
    return threshold_additions_;
  }
  std::uint64_t rounding_additions() const noexcept {
    return rounding_additions_;
  }
  /// Greedy picks beyond the 2·log2(n) the existence proof of Lemma 6
  /// promises (the greedy is (1−1/e)-optimal, so this can be > 0 in
  /// principle; tests assert it stays rare).
  std::uint64_t rounding_overshoot() const noexcept {
    return rounding_overshoot_;
  }

  double set_weight(SetId s) const;
  double element_weight(ElementId j) const;

 protected:
  std::vector<SetId> handle_element(ElementId j) override;

 private:
  /// n^{2(w_j − cover_j)} for one element, in long double.
  long double term(ElementId j) const;

  BicriteriaConfig config_;
  /// The system's CSR substrate (DESIGN.md §7): the hot loops below walk
  /// its arenas directly — rows_of(j) is S_j, cols_of(s) the set's
  /// elements — instead of going through the facade per access.
  const CoveringInstance* sub_ = nullptr;
  std::vector<double> weight_;       // w_S
  std::vector<double> elem_weight_;  // w_j = Σ_{S∋j} w_S (incremental)
  // cover counts mirrored locally (base class owns the authoritative ones,
  // but handle_element needs them mid-iteration before the base applies
  // the additions).
  std::vector<std::int64_t> cover_;
  std::vector<bool> in_cover_;
  std::uint64_t augmentations_ = 0;
  std::uint64_t threshold_additions_ = 0;
  std::uint64_t rounding_additions_ = 0;
  std::uint64_t rounding_overshoot_ = 0;
  double log2n_ = 1.0;
};

}  // namespace minrej

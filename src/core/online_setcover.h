// online_setcover.h — the online set cover (with repetitions) contract and
// the randomized algorithm obtained through the §4 reduction.
//
// Contract (paper §1): elements arrive one at a time, possibly repeatedly
// and non-consecutively; after the k-th arrival of element j the chosen
// collection must contain k distinct sets covering j (bicriteria
// algorithms: ⌈(1−ε)k⌉).  Sets, once chosen, stay chosen.
//
// OnlineSetCoverAlgorithm enforces the mechanics: monotone cover, cost
// accounting, demand/coverage counters (which the adaptive adversary in
// sim/ also reads).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/randomized_admission.h"
#include "core/reduction.h"
#include "setcover/set_system.h"

namespace minrej {

/// Base class enforcing the online set cover contract.
class OnlineSetCoverAlgorithm {
 public:
  explicit OnlineSetCoverAlgorithm(const SetSystem& system);
  virtual ~OnlineSetCoverAlgorithm() = default;

  OnlineSetCoverAlgorithm(const OnlineSetCoverAlgorithm&) = delete;
  OnlineSetCoverAlgorithm& operator=(const OnlineSetCoverAlgorithm&) = delete;

  /// Presents one more arrival of element j; returns the sets newly added
  /// to the cover in response.
  std::vector<SetId> on_element(ElementId j);

  virtual std::string name() const = 0;

  const SetSystem& system() const noexcept { return system_; }
  const std::vector<bool>& chosen() const noexcept { return chosen_; }
  double cost() const noexcept { return cost_; }
  std::size_t chosen_count() const noexcept { return chosen_count_; }

  /// Number of times element j has arrived so far.
  std::int64_t demand(ElementId j) const;
  /// Number of chosen sets containing element j.
  std::int64_t covered(ElementId j) const;

  /// Guarantee this algorithm promises: covered(j) >= required(demand(j))
  /// after every arrival.  Exact algorithms return k; bicriteria return
  /// ⌈(1−ε)k⌉.  (Always capped by degree(j).)
  virtual std::int64_t required_coverage(std::int64_t k) const { return k; }

  /// Weight-augmentation steps the algorithm's primal-dual core has
  /// performed so far (0 when it has none).  Surfaced per-run by
  /// sim::run_setcover.
  virtual std::uint64_t augmentation_steps() const noexcept { return 0; }

 protected:
  /// Subclass hook: choose the sets to add for this arrival of j.  The
  /// base applies them (deduplicated; re-adding a chosen set is an error).
  virtual std::vector<SetId> handle_element(ElementId j) = 0;

  bool is_chosen(SetId s) const { return chosen_[s]; }

 private:
  const SetSystem& system_;
  std::vector<bool> chosen_;
  std::vector<std::int64_t> demand_;
  std::vector<std::int64_t> covered_;
  double cost_ = 0.0;
  std::size_t chosen_count_ = 0;
};

/// The O(log m log n) (unit costs) / O(log²(mn)) (weighted) randomized
/// online set cover algorithm: the §3 randomized admission algorithm run
/// on the §4 reduction.  Preempted phase-1 requests are the chosen sets.
///
/// Since the covering-substrate refactor (DESIGN.md §7) the reduction is
/// bound through a ReductionView: the star graph is realized once via the
/// bulk build path (the integral algorithm's base class needs a real
/// Graph for its capacity enforcement) but phase-1 requests stream
/// straight from the substrate's arena spans — no phase-1 request copy is
/// ever stored.
class ReductionSetCover : public OnlineSetCoverAlgorithm {
 public:
  /// `config` configures the underlying admission algorithm; unit_costs is
  /// derived from the set system automatically.
  ReductionSetCover(const SetSystem& system, RandomizedConfig config = {});

  std::string name() const override { return "randomized-via-reduction"; }

  /// The underlying admission algorithm (tests/experiments).
  const RandomizedAdmission& admission() const noexcept { return *admission_; }

  std::uint64_t augmentation_steps() const noexcept override {
    return admission_->augmentation_steps();
  }

 protected:
  std::vector<SetId> handle_element(ElementId j) override;

 private:
  ReductionView view_;
  Graph star_;  ///< realized once; owned here so admission_ can bind it
  std::unique_ptr<RandomizedAdmission> admission_;
};

}  // namespace minrej

#include "core/baselines.h"

#include <algorithm>
#include <optional>

#include "util/check.h"

namespace minrej {

namespace {

/// Usage of edge e after removing the already-picked victims.
std::int64_t usage_minus_victims(const OnlineAdmissionAlgorithm& alg,
                                 EdgeId e,
                                 const std::vector<RequestId>& victims,
                                 const std::vector<const Request*>& requests) {
  std::int64_t u = alg.edge_usage()[e];
  for (std::size_t k = 0; k < victims.size(); ++k) {
    const auto& edges = requests[k]->edges;
    if (std::binary_search(edges.begin(), edges.end(), e)) --u;
  }
  return u;
}

}  // namespace

ArrivalResult GreedyNoPreempt::handle(RequestId /*id*/,
                                      const Request& request) {
  ArrivalResult result;
  if (request.must_accept) {
    // Contract: must_accept arrivals have to fit; without preemption this
    // baseline can only accept if there is room.
    MINREJ_REQUIRE(!would_overflow(request),
                   "greedy-no-preempt cannot honour must_accept overflow");
    result.accepted = true;
    return result;
  }
  result.accepted = !would_overflow(request);
  return result;
}

ArrivalResult PreemptCheapest::handle(RequestId id, const Request& request) {
  ArrivalResult result;
  if (!would_overflow(request)) {
    result.accepted = true;
    return result;
  }

  // Collect the cheapest victims per overloaded edge.
  std::vector<RequestId> victims;
  std::vector<const Request*> victim_requests;
  double victim_cost = 0.0;
  for (EdgeId e : request.edges) {
    while (usage_minus_victims(*this, e, victims, victim_requests) + 1 >
           graph().capacity(e)) {
      std::optional<RequestId> cheapest;
      double best = 0.0;
      for (RequestId i = 0; i < id; ++i) {
        if (!is_accepted(i) || stored_request(i).must_accept) continue;
        if (std::find(victims.begin(), victims.end(), i) != victims.end()) {
          continue;
        }
        const auto& edges = stored_request(i).edges;
        if (!std::binary_search(edges.begin(), edges.end(), e)) continue;
        if (!cheapest || stored_request(i).cost < best) {
          cheapest = i;
          best = stored_request(i).cost;
        }
      }
      if (!cheapest) {
        // Edge saturated by must_accept requests: cannot make room.
        MINREJ_REQUIRE(!request.must_accept,
                       "preempt-cheapest cannot honour must_accept overflow");
        result.accepted = false;
        result.preempted.clear();
        return result;
      }
      victims.push_back(*cheapest);
      victim_requests.push_back(&stored_request(*cheapest));
      victim_cost += best;
    }
  }

  // Exchange rule: only worth it if the victims are cheaper than the
  // arrival (must_accept arrivals pay whatever it takes).
  if (!request.must_accept && victim_cost >= request.cost) {
    result.accepted = false;
    return result;
  }
  result.accepted = true;
  result.preempted = std::move(victims);
  return result;
}

PreemptRandom::PreemptRandom(const Graph& graph, std::uint64_t seed)
    : OnlineAdmissionAlgorithm(graph), rng_(seed) {}

ArrivalResult PreemptRandom::handle(RequestId id, const Request& request) {
  ArrivalResult result;
  std::vector<RequestId> victims;
  std::vector<const Request*> victim_requests;
  for (EdgeId e : request.edges) {
    while (usage_minus_victims(*this, e, victims, victim_requests) + 1 >
           graph().capacity(e)) {
      std::vector<RequestId> candidates;
      for (RequestId i = 0; i < id; ++i) {
        if (!is_accepted(i) || stored_request(i).must_accept) continue;
        if (std::find(victims.begin(), victims.end(), i) != victims.end()) {
          continue;
        }
        const auto& edges = stored_request(i).edges;
        if (std::binary_search(edges.begin(), edges.end(), e)) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) {
        MINREJ_REQUIRE(!request.must_accept,
                       "preempt-random cannot honour must_accept overflow");
        result.accepted = false;
        result.preempted.clear();
        return result;
      }
      const RequestId pick = candidates[rng_.index(candidates.size())];
      victims.push_back(pick);
      victim_requests.push_back(&stored_request(pick));
    }
  }
  result.accepted = true;
  result.preempted = std::move(victims);
  return result;
}

}  // namespace minrej

#include "core/fractional_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace minrej {

namespace {
/// Relative half-width of the numerical band around the covering boundary
/// within which the termination check falls back to an exact rescan.  The
/// incremental sum's drift between resynchronizations — including the
/// reassociation noise of vector-kernel refreshes and journal folds — is
/// orders of magnitude below this, so outside the band the O(1) comparison
/// is already exact in effect.
constexpr double kSumBand = 1e-9;

/// Fix-up routing boundary (DESIGN.md §8): a touched request whose
/// incidence row is at most this wide patches its edges' covering-sum
/// caches eagerly at arrival end; a wider row appends one journal entry
/// instead.  Eight keeps the dense-burst shapes (rows of a handful of
/// edges, all of them this arrival's own) on the batched-register path
/// that makes their fix-up O(1) per touched member, while overlap-shaped
/// rows (dozens of incident edges per member) stop paying O(row degree)
/// per arrival.
constexpr std::size_t kEagerFixupRowDegree = 8;
}  // namespace

FlatFractionalEngine::FlatFractionalEngine(EngineSubstrate substrate,
                                           double zero_init,
                                           std::size_t small_list_threshold)
    : substrate_(substrate), zero_init_(zero_init),
      small_threshold_(small_list_threshold),
      kernel_(simd::active_sweep_isa()), edge_begin_{0},
      members_(substrate.col_count), alive_count_(substrate.col_count, 0),
      pinned_count_(substrate.col_count, 0),
      dead_count_(substrate.col_count, 0),
      alive_sum_(substrate.col_count, 0.0),
      journal_pos_(substrate.col_count, 0) {
  MINREJ_REQUIRE(substrate_.capacities.size() == substrate_.col_count,
                 "substrate capacity span size mismatch");
  // zero_init == 1 is legal: it is what the unweighted case degenerates to
  // when g·c == 1, and it simply means step (a) already fully rejects.
  MINREJ_REQUIRE(zero_init > 0.0 && zero_init <= 1.0,
                 "zero_init must be in (0, 1]");
}

RequestId FlatFractionalEngine::append_request(std::span<const EdgeId> edges,
                                               double update_cost,
                                               double report_cost,
                                               double initial_weight,
                                               bool pinned) {
  const auto id = static_cast<RequestId>(hot_.size());
  edge_pool_.insert(edge_pool_.end(), edges.begin(), edges.end());
  edge_begin_.push_back(edge_pool_.size());
  // The hot row stores 1/p_i, not p_i: the multiplicative step becomes
  // divide-free (one reciprocal at admission instead of one division per
  // member per sweep).  Unit costs store an exact 1.0 either way.
  hot_.push_back(HotRow{initial_weight, 1.0 / update_cost, 0.0, 0});
  report_cost_.push_back(report_cost);
  alive_.push_back(1);
  pinned_.push_back(pinned ? 1 : 0);
  return id;
}

RequestId FlatFractionalEngine::pin(std::span<const EdgeId> edges) {
  MINREJ_REQUIRE(!edges.empty(), "pinned request needs edges");
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const RequestId id =
      append_request(edges, 1.0, 1.0, 0.0, /*pinned=*/true);
  for (EdgeId e : edges) ++pinned_count_[e];
  return id;
}

double FlatFractionalEngine::weight(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return hot_[id].weight;
}

bool FlatFractionalEngine::is_pinned(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return pinned_[id] != 0;
}

bool FlatFractionalEngine::fully_rejected(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return pinned_[id] == 0 && alive_[id] == 0;
}

std::int64_t FlatFractionalEngine::excess(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return alive_count_[e] + pinned_count_[e] - substrate_.capacities[e];
}

double FlatFractionalEngine::alive_weight_sum(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  // Small lists run outside the incremental-sum machinery (§7.3): their
  // cache is stale by contract, so re-derive the sum with a bounded scan.
  // Large lists fold the pending journal suffix in first (§8).
  return small_list(e) ? exact_alive_sum(e) : reconciled_sum(e);
}

bool FlatFractionalEngine::saturated(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return excess(e) > 0 && alive_count_[e] == 0;
}

bool FlatFractionalEngine::constraint_satisfied(EdgeId e) const {
  const std::int64_t n_e = excess(e);
  if (n_e <= 0) return true;
  if (alive_count_[e] == 0) return true;  // unsatisfiable => saturated
  // Tolerance: the multiplicative updates accumulate rounding error.
  const double sum = small_list(e) ? exact_alive_sum(e) : reconciled_sum(e);
  return sum >= static_cast<double>(n_e) - 1e-9;
}

std::size_t FlatFractionalEngine::member_list_size(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return members_[e].size();
}

std::vector<RequestId> FlatFractionalEngine::alive_requests(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  std::vector<RequestId> result;
  result.reserve(static_cast<std::size_t>(alive_count_[e]));
  for (RequestId i : members_[e]) {
    if (alive_[i]) result.push_back(i);
  }
  return result;
}

double FlatFractionalEngine::exact_alive_sum(EdgeId e) const {
  // Member-list order, skipping dead entries: the same addition sequence
  // the naive engine performs over its compacted list, so the two engines
  // agree bit-for-bit on boundary decisions.  This is the §3.2 decision
  // path — it stays scalar on every build and every kernel tier; only
  // cache refreshes may use the lane-reassociated simd::alive_sum.  Death
  // is read off the hot row (weight ≥ 1 ⇔ dead for the augmentable
  // requests member lists hold), keeping the scan on the cache lines a
  // following sweep needs anyway.
  double sum = 0.0;
  for (RequestId i : members_[e]) {
    const double w = hot_[i].weight;
    if (w < 1.0) sum += w;
  }
  return sum;
}

double FlatFractionalEngine::reconciled_sum(EdgeId e) const {
  // Mid-arrival the hot rows are ahead of both the cache and the journal
  // (this arrival's deltas are appended only by the arrival-end fix-up):
  // reconciliation would return the arrival-start sum, and a commit would
  // later double-count.  Degrade to an exact rescan, committing nothing —
  // only observer-callback reads land here.
  if (mid_arrival_dirty_) return exact_alive_sum(e);
  const std::size_t end = journal_.size();
  const std::size_t pos = journal_pos_[e];
  if (pos == end) return alive_sum_[e];  // nothing pending: O(1)
  const auto& list = members_[e];
  const std::size_t len = list.size();
  const std::size_t seg = end - pos;
  // Fold the pending suffix or rescan the list, whichever is estimated
  // cheaper in scaled-integer units: folding one entry costs one binary
  // search (~log2 len probes), a rescan costs len lane-adds.
  if (seg * (std::bit_width(len) + 1) >= len) {
    alive_sum_[e] = simd::alive_sum(kernel_, list.data(), len, hot_.data());
  } else {
    double sum = alive_sum_[e];
    for (std::size_t j = pos; j < end; ++j) {
      const JournalEntry& ent = journal_[j];
      // Member lists are id-sorted by construction (ids are assigned in
      // admission order and only ever appended; removals keep order), so
      // membership is a binary search.  An alive request is dropped from
      // no list, so alive-and-absent means not incident; a dead one may
      // have been swept out of the list, so absence falls back to its
      // incidence row.
      bool incident = std::binary_search(list.begin(), list.end(), ent.id);
      if (!incident && alive_[ent.id] == 0) {
        const auto row = edges_of(ent.id);
        incident = std::find(row.begin(), row.end(), e) != row.end();
      }
      if (incident) sum += ent.delta;
    }
    alive_sum_[e] = sum;
  }
  journal_pos_[e] = end;
  return alive_sum_[e];
}

void FlatFractionalEngine::fold_journal() {
  // Commit the pending suffix of every large edge (small edges hold no
  // trusted cache), then truncate the journal: every cursor restarts at
  // zero.  Runs only when the journal has outgrown the incidence arena,
  // so the full-edge walk is amortized O(1) per appended entry.
  const auto edge_count = static_cast<EdgeId>(substrate_.col_count);
  for (EdgeId e = 0; e < edge_count; ++e) {
    if (!small_list(e)) (void)reconciled_sum(e);
    journal_pos_[e] = 0;
  }
  journal_.clear();
}

void FlatFractionalEngine::compact(EdgeId e) {
  ++compactions_;
  auto& list = members_[e];
  const bool was_large = list.size() > small_threshold_;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [this](RequestId i) { return alive_[i] == 0; }),
             list.end());
  if (was_large && list.size() <= small_threshold_) --large_edges_;
  dead_count_[e] = 0;
  // The walk is paid for: resynchronize the cache and retire the pending
  // journal suffix (the fresh sum already reflects every fold target).
  alive_sum_[e] = simd::alive_sum(kernel_, list.data(), list.size(),
                                  hot_.data());
  journal_pos_[e] = journal_.size();
}

double FlatFractionalEngine::sweep_step(EdgeId e, double ne) {
  // One fused sweep over the member list (paper steps a+b+c in a single
  // pass — legal because within a step each request's update depends only
  // on its own weight and the step-start n_e) that also compacts the list
  // in place: entries that died — here or during another edge's sweep —
  // are simply not written back.  The per-member arithmetic and the
  // compaction both live in the simd_sweep.h kernel (scalar / AVX2 /
  // AVX-512, identical per-lane arithmetic); the death bookkeeping the
  // kernel streams out is settled here, where the incidence arena lives.
  auto& list = members_[e];
  const bool was_large = list.size() > small_threshold_;
  mid_arrival_dirty_ = true;  // caches lag the rows until arrival-end fix-up
  deaths_.clear();
  const simd::SweepStepResult r =
      simd::sweep_step(kernel_, list.data(), list.size(), hot_.data(),
                       1.0 / ne, zero_init_, epoch_, touched_, deaths_);
  list.resize(r.new_size);
  if (was_large && r.new_size <= small_threshold_) --large_edges_;
  for (RequestId i : deaths_) {
    // (c) the request crossed 1 and leaves every ALIVE list.  Alive/dead
    // counts are maintained eagerly (excess() stays O(1)); the covering-
    // sum caches catch up at arrival end.
    alive_[i] = 0;
    for (EdgeId f : edges_of(i)) {
      --alive_count_[f];
      ++dead_count_[f];  // f's list still holds the entry
    }
  }
  dead_count_[e] = 0;  // in-place sweep dropped every dead entry
  return r.step_sum;
}

void FlatFractionalEngine::augment_edge(EdgeId e, bool sum_maybe_stale) {
  // Augmentation loop (§2 step 2): runs while the covering constraint is
  // unmet and there is still an augmentable alive request to raise.
  //
  // The covering sum lives in a register for the whole loop.  It starts
  // from the per-edge cache reconciled with the pending journal suffix —
  // exact at arrival boundaries modulo bounded drift — unless the edge is
  // in the small-list regime (its cache is stale by contract, DESIGN.md
  // §7.3) or an earlier edge of this same arrival already ran augmentation
  // steps (`sum_maybe_stale`); either way one exact rescan seeds it.
  // Termination decisions stay identical to the naive engine regardless of
  // the seed: near the covering boundary the band check below falls back
  // to the exact member-order rescan.
  double s = sum_maybe_stale || small_list(e) ? exact_alive_sum(e)
                                              : reconciled_sum(e);
  for (;;) {
    const std::int64_t n_e =
        alive_count_[e] + pinned_count_[e] - substrate_.capacities[e];
    if (n_e <= 0) return;
    if (alive_count_[e] == 0) return;  // saturated; wrapper's cost guard acts
    const double ne = static_cast<double>(n_e);
    // Termination check against the running sum; within a numerical band
    // of the boundary it falls back to an exact rescan (in member-list
    // order — the same additions the naive engine performs, so both
    // engines take identical termination decisions).
    if (std::abs(s - ne) <= kSumBand * (1.0 + std::abs(s) + ne)) {
      s = exact_alive_sum(e);
    }
    if (s >= ne) return;

    ++augmentations_;
    s += sweep_step(e, ne);
    if (observer_) observer_(e);
  }
}

RequestId FlatFractionalEngine::admit_existing(std::span<const EdgeId> edges,
                                               double update_cost,
                                               double report_cost,
                                               double initial_weight) {
  MINREJ_REQUIRE(!edges.empty(), "request needs at least one edge");
  // isfinite rejects ±inf; the > 0 comparison rejects NaN (every ordered
  // comparison against NaN is false) as well as non-positive costs.
  MINREJ_REQUIRE(std::isfinite(update_cost) && update_cost > 0.0,
                 "update cost must be positive and finite");
  MINREJ_REQUIRE(std::isfinite(report_cost) && report_cost > 0.0,
                 "report cost must be positive and finite");
  MINREJ_REQUIRE(initial_weight >= 0.0 && initial_weight < 1.0,
                 "initial weight must be in [0, 1)");
  // Validate every edge before mutating anything: InvalidArgument is
  // recoverable, so a rejected arrival must not leave a half-registered
  // phantom request behind.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const RequestId id = append_request(edges, update_cost, report_cost,
                                      initial_weight, /*pinned=*/false);
  for (EdgeId e : edges) {
    auto& list = members_[e];
    // An edge that is never augmented again would otherwise accumulate
    // entries killed through its siblings forever; reclaim at 1/2 dead so
    // each compaction pass is charged to the deaths that forced it.
    // Small lists skip the gate (§7.3): their garbage is bounded by the
    // threshold and dropped whenever the edge itself is swept.
    if (list.size() > small_threshold_ && dead_count_[e] > 0 &&
        static_cast<std::size_t>(dead_count_[e]) * 2 >= list.size()) {
      compact(e);
    }
    list.push_back(id);
    ++alive_count_[e];
    if (list.size() == small_threshold_ + 1) {
      // The list just crossed into the incremental regime: its cache has
      // been stale since it was last small, so resynchronize it (the scan
      // includes the member pushed above) and retire any pending journal
      // suffix the fresh sum already reflects.
      ++large_edges_;
      alive_sum_[e] = simd::alive_sum(kernel_, list.data(), list.size(),
                                      hot_.data());
      journal_pos_[e] = journal_.size();
    } else if (list.size() > small_threshold_ + 1) {
      // Additive against whatever is pending: cache + pending suffix
      // still reconciles to the exact sum after this.
      alive_sum_[e] += initial_weight;
    }
  }
  return id;
}

const std::vector<FlatFractionalEngine::Delta>& FlatFractionalEngine::arrive(
    std::span<const EdgeId> edges, double update_cost, double report_cost) {
  admit_existing(edges, update_cost, report_cost);
  return restore_edges(edges);
}

const std::vector<FlatFractionalEngine::Delta>&
FlatFractionalEngine::restore_edges(std::span<const EdgeId> edges) {
  // Validate before augmenting anything: a mid-loop throw would leave
  // weights raised but the objective never charged for them.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }

  ++epoch_;
  touched_.clear();
  deltas_.clear();

  // Periodic exact resync of this arrival's sum caches (the hot rows are
  // boundary-exact right now): keeps the fix-up and journal-fold
  // floating-point drift bounded on streams far longer than the band
  // tolerance was sized for.  (Small lists get a harmless write; their
  // cache is unread while small.)
  if ((epoch_ & 1023u) == 0) {
    for (EdgeId e : edges) {
      alive_sum_[e] = exact_alive_sum(e);
      journal_pos_[e] = journal_.size();
    }
  }

  // Restore the invariant on each edge, in the given order ("in an
  // arbitrary order" per the paper).  Once some edge has run augmentation
  // steps, later edges of the same arrival can no longer trust their
  // incremental sum cache (a shared member may have grown or died) and
  // seed their loop with one exact rescan instead.
  bool stepped = false;
  for (EdgeId e : edges) {
    const std::uint64_t before = augmentations_;
    augment_edge(e, stepped);
    stepped = stepped || augmentations_ != before;
  }

  // Collect weight increases and update the fractional objective in
  // increasing request id — the canonical report order shared with the
  // naive engine.  Member lists are append-ordered and ids are assigned
  // in admission order, so a single-edge arrival touches in increasing id
  // by construction; the sort only ever runs for multi-edge arrivals (a
  // handful of sorted runs).
  if (edges.size() > 1 &&
      !std::is_sorted(touched_.begin(), touched_.end())) {
    std::sort(touched_.begin(), touched_.end());
  }
  // One fused pass over the touched requests does two jobs:
  //   * delta emission, branch-free: always store, advance the cursor only
  //     for real increases (zero deltas contribute an exact +0.0 to the
  //     objective, so the cost matches a filtered loop bit-for-bit);
  //   * the covering-sum fix-up (DESIGN.md §8): a touched request with a
  //     narrow incidence row patches each incident large edge's cache
  //     eagerly — contributions to this arrival's own edges batched in
  //     registers (they receive every member's update; a dense burst
  //     would otherwise serialize on one cache line) — while a wide row
  //     appends a single (id, Δ) journal entry for readers to fold in on
  //     demand, which caps the fix-up at O(1) per touched member
  //     regardless of row degree.  Edges in the small-list regime are
  //     skipped outright (their cache is stale by contract, §7.3).
  // Single-large-edge fast path (the dense-burst shape): when the arrival
  // names one edge and that is the only edge in the incremental regime,
  // every touched member is incident to it (all touches came from its own
  // sweeps) and there is no other trusted cache to patch — so the fix-up
  // needs no incidence-row walk at all.  One register accumulates the
  // cache patch; the delta emission and the objective chain are the exact
  // per-member operations of the generic loop below, so decisions, deltas
  // and the reported objective stay bit-identical.  This matters: the
  // generic loop streams edge_begin_/edge_pool_ per member, which on a
  // 10⁵-member burst costs more than the vectorized sweep itself.
  if (edges.size() == 1 && large_edges_ == 1 && !small_list(edges[0])) {
    deltas_.resize(touched_.size());
    std::size_t n = 0;
    double batched0 = 0.0;
    for (RequestId i : touched_) {
      const HotRow& row = hot_[i];
      const double now = std::min(row.weight, 1.0);
      const double delta = now - row.weight_at_touch;
      deltas_[n] = {i, delta};
      n += delta > 0.0 ? 1 : 0;
      fractional_cost_ += std::max(delta, 0.0) * report_cost_[i];
      batched0 += (row.weight < 1.0 ? row.weight : 0.0) - row.weight_at_touch;
    }
    alive_sum_[edges[0]] += batched0;
    deltas_.resize(n);
    mid_arrival_dirty_ = false;
    return deltas_;
  }
  constexpr std::size_t kMaxBatchedEdges = 8;
  double batched[kMaxBatchedEdges] = {0.0};
  const std::size_t batch_count = std::min(edges.size(), kMaxBatchedEdges);
  deltas_.resize(touched_.size());
  std::size_t count = 0;
  if (large_edges_ == 0) {
    // Tiny-list regime (§7.3): no edge anywhere holds a trusted cache, so
    // the fix-up halves to plain delta emission — the flat engine pays
    // nothing for invariant upkeep, exactly like the reference engine.
    for (RequestId i : touched_) {
      const HotRow& row = hot_[i];
      const double now = std::min(row.weight, 1.0);
      const double delta = now - row.weight_at_touch;
      deltas_[count] = {i, delta};
      count += delta > 0.0 ? 1 : 0;
      fractional_cost_ += std::max(delta, 0.0) * report_cost_[i];
    }
    deltas_.resize(count);
    mid_arrival_dirty_ = false;
    return deltas_;
  }
  for (RequestId i : touched_) {
    const HotRow& row = hot_[i];
    const double now = std::min(row.weight, 1.0);
    const double delta = now - row.weight_at_touch;
    deltas_[count] = {i, delta};
    count += delta > 0.0 ? 1 : 0;
    fractional_cost_ += std::max(delta, 0.0) * report_cost_[i];
    // Net change of i's contribution to any incident covering sum over
    // this whole arrival (dead requests stop contributing entirely).
    const double sum_delta =
        (row.weight < 1.0 ? row.weight : 0.0) - row.weight_at_touch;
    const auto incident = edges_of(i);
    if (incident.size() > kEagerFixupRowDegree) {
      // Zero deltas are dropped: x + 0.0 == x for the non-negative sums
      // involved, so skipping the entry is bitwise-neutral for readers.
      if (sum_delta != 0.0) journal_.push_back({i, sum_delta});
      continue;
    }
    for (EdgeId f : incident) {
      if (small_list(f)) continue;  // §7.3: no cache to maintain
      bool found = false;
      for (std::size_t j = 0; j < batch_count; ++j) {
        if (edges[j] == f) {
          batched[j] += sum_delta;
          found = true;
          break;
        }
      }
      if (!found) alive_sum_[f] += sum_delta;
    }
  }
  for (std::size_t j = 0; j < batch_count; ++j) {
    if (!small_list(edges[j])) alive_sum_[edges[j]] += batched[j];
  }
  deltas_.resize(count);
  mid_arrival_dirty_ = false;
  // Amortization gate: once the journal outgrows the incidence arena,
  // folding it everywhere costs no more than appending it did.
  if (journal_.size() >= std::max<std::size_t>(1024, edge_pool_.size())) {
    fold_journal();
  }
  return deltas_;
}

}  // namespace minrej

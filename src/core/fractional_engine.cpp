#include "core/fractional_engine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

namespace {
/// Relative half-width of the numerical band around the covering boundary
/// within which the termination check falls back to an exact rescan.  The
/// incremental sum's drift between resynchronizations is orders of
/// magnitude below this, so outside the band the O(1) comparison is
/// already exact in effect.
constexpr double kSumBand = 1e-9;
}  // namespace

FlatFractionalEngine::FlatFractionalEngine(EngineSubstrate substrate,
                                           double zero_init)
    : substrate_(substrate), zero_init_(zero_init), edge_begin_{0},
      members_(substrate.col_count), alive_count_(substrate.col_count, 0),
      pinned_count_(substrate.col_count, 0),
      dead_count_(substrate.col_count, 0),
      alive_sum_(substrate.col_count, 0.0) {
  MINREJ_REQUIRE(substrate_.capacities.size() == substrate_.col_count,
                 "substrate capacity span size mismatch");
  // zero_init == 1 is legal: it is what the unweighted case degenerates to
  // when g·c == 1, and it simply means step (a) already fully rejects.
  MINREJ_REQUIRE(zero_init > 0.0 && zero_init <= 1.0,
                 "zero_init must be in (0, 1]");
}

RequestId FlatFractionalEngine::append_request(std::span<const EdgeId> edges,
                                               double update_cost,
                                               double report_cost,
                                               double initial_weight,
                                               bool pinned) {
  const auto id = static_cast<RequestId>(hot_.size());
  edge_pool_.insert(edge_pool_.end(), edges.begin(), edges.end());
  edge_begin_.push_back(edge_pool_.size());
  hot_.push_back(HotRow{initial_weight, update_cost, 0.0, 0});
  report_cost_.push_back(report_cost);
  alive_.push_back(1);
  pinned_.push_back(pinned ? 1 : 0);
  return id;
}

RequestId FlatFractionalEngine::pin(std::span<const EdgeId> edges) {
  MINREJ_REQUIRE(!edges.empty(), "pinned request needs edges");
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const RequestId id =
      append_request(edges, 1.0, 1.0, 0.0, /*pinned=*/true);
  for (EdgeId e : edges) ++pinned_count_[e];
  return id;
}

double FlatFractionalEngine::weight(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return hot_[id].weight;
}

bool FlatFractionalEngine::is_pinned(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return pinned_[id] != 0;
}

bool FlatFractionalEngine::fully_rejected(RequestId id) const {
  MINREJ_REQUIRE(id < hot_.size(), "unknown request id");
  return pinned_[id] == 0 && alive_[id] == 0;
}

std::int64_t FlatFractionalEngine::excess(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return alive_count_[e] + pinned_count_[e] - substrate_.capacities[e];
}

double FlatFractionalEngine::alive_weight_sum(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  // Small lists run outside the incremental-sum machinery (§7.3): their
  // cache is stale by contract, so re-derive the sum with a bounded scan.
  return small_list(e) ? exact_alive_sum(e) : alive_sum_[e];
}

bool FlatFractionalEngine::saturated(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return excess(e) > 0 && alive_count_[e] == 0;
}

bool FlatFractionalEngine::constraint_satisfied(EdgeId e) const {
  const std::int64_t n_e = excess(e);
  if (n_e <= 0) return true;
  if (alive_count_[e] == 0) return true;  // unsatisfiable => saturated
  // Tolerance: the multiplicative updates accumulate rounding error.
  const double sum = small_list(e) ? exact_alive_sum(e) : alive_sum_[e];
  return sum >= static_cast<double>(n_e) - 1e-9;
}

std::size_t FlatFractionalEngine::member_list_size(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  return members_[e].size();
}

std::vector<RequestId> FlatFractionalEngine::alive_requests(EdgeId e) const {
  MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  std::vector<RequestId> result;
  result.reserve(static_cast<std::size_t>(alive_count_[e]));
  for (RequestId i : members_[e]) {
    if (alive_[i]) result.push_back(i);
  }
  return result;
}

double FlatFractionalEngine::exact_alive_sum(EdgeId e) const {
  // Member-list order, skipping dead entries: the same addition sequence
  // the naive engine performs over its compacted list, so the two engines
  // agree bit-for-bit on boundary decisions.  Death is read off the hot
  // row (weight ≥ 1 ⇔ dead for the augmentable requests member lists
  // hold), keeping the scan on the cache lines a following sweep needs
  // anyway.
  double sum = 0.0;
  for (RequestId i : members_[e]) {
    const double w = hot_[i].weight;
    if (w < 1.0) sum += w;
  }
  return sum;
}

void FlatFractionalEngine::compact(EdgeId e) {
  ++compactions_;
  auto& list = members_[e];
  const bool was_large = list.size() > kSmallListThreshold;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [this](RequestId i) { return alive_[i] == 0; }),
             list.end());
  if (was_large && list.size() <= kSmallListThreshold) --large_edges_;
  dead_count_[e] = 0;
  alive_sum_[e] = exact_alive_sum(e);  // walk is paid for; resync exactly
}

double FlatFractionalEngine::sweep_step(EdgeId e, double ne) {
  // One fused sweep over the member list (paper steps a+b+c in a single
  // pass — legal because within a step each request's update depends only
  // on its own weight and the step-start n_e) that also compacts the list
  // in place (two-pointer): entries that died — here or during another
  // edge's sweep — are simply not written back, so the swept edge never
  // pays for lazy deletion with an extra pass.
  //
  // Unit update costs (the unweighted Theorem-4 setting, and by far the
  // hottest configuration) make the step multiplier the same for every
  // member: hoist it so the sweep runs divide-free.  1/(n_e·1) ≡ 1/n_e
  // bit-for-bit, so the fast path changes nothing observable.
  const double unit_mult = 1.0 + 1.0 / ne;

  auto& list = members_[e];
  const bool was_large = list.size() > kSmallListThreshold;
  double step_sum = 0.0;
  std::size_t out = 0;
  for (std::size_t k = 0; k < list.size(); ++k) {
    const RequestId i = list[k];
    HotRow& row = hot_[i];
    // Member lists hold only augmentable requests, for which death is
    // exactly weight ≥ 1 — so the dead-entry skip reads the hot row the
    // sweep needs anyway instead of the cold alive_ array.
    const double old = row.weight;
    if (old >= 1.0) continue;  // killed via another edge: drop entry
    if (row.touch_epoch != epoch_) {
      row.touch_epoch = epoch_;
      row.weight_at_touch = old;  // alive, so already < 1
      touched_.push_back(i);
    }
    // (a) zero weights jump to the floor 1/(g·c)...
    const double base = old == 0.0 ? zero_init_ : old;
    // (b) ...then the multiplicative step f_i *= (1 + 1/(n_e p_i)).
    const double mult = row.update_cost == 1.0
                            ? unit_mult
                            : 1.0 + 1.0 / (ne * row.update_cost);
    const double w = base * mult;
    // The macro expands to `if (!(w >= 0.0)) throw` — the double-negative
    // form that is true for NaN as well as genuine negatives, so a
    // poisoned weight fails loudly instead of corrupting invariant sums.
    MINREJ_CHECK(w >= 0.0, "fractional weight became NaN or negative");
    const double now = std::min(w, kWeightClamp);
    row.weight = now;
    if (now >= 1.0) {
      // (c) the request crosses 1 and leaves every ALIVE list.  Net
      // effect on a covering sum that never saw the increase: −old.
      // Alive/dead counts are maintained eagerly (excess() stays O(1));
      // the covering-sum caches are refreshed by the arrival-end fix-up.
      alive_[i] = 0;
      step_sum -= old;
      for (EdgeId f : edges_of(i)) {
        --alive_count_[f];
        ++dead_count_[f];  // f's list still holds the entry
      }
      --dead_count_[e];  // except e's: dropped from it right here
      continue;
    }
    step_sum += now - old;
    list[out++] = i;
  }
  list.resize(out);
  if (was_large && out <= kSmallListThreshold) --large_edges_;
  dead_count_[e] = 0;  // in-place sweep dropped every dead entry
  return step_sum;
}

void FlatFractionalEngine::augment_edge(EdgeId e, bool sum_maybe_stale) {
  // Augmentation loop (§2 step 2): runs while the covering constraint is
  // unmet and there is still an augmentable alive request to raise.
  //
  // The covering sum lives in a register for the whole loop.  It starts
  // from the incremental per-edge cache — which is exact at arrival
  // boundaries — unless the edge is in the small-list regime (its cache
  // is stale by contract, DESIGN.md §7.3) or an earlier edge of this same
  // arrival already ran augmentation steps (`sum_maybe_stale`); either
  // way one exact rescan seeds it.  The cache itself is refreshed once,
  // at the end of the arrival, by restore_edges' fix-up pass — and only
  // for long lists.  Termination decisions stay identical to the naive
  // engine regardless of the seed: near the covering boundary the band
  // check below falls back to the exact member-order rescan.
  double s = sum_maybe_stale || small_list(e) ? exact_alive_sum(e)
                                              : alive_sum_[e];
  for (;;) {
    const std::int64_t n_e =
        alive_count_[e] + pinned_count_[e] - substrate_.capacities[e];
    if (n_e <= 0) return;
    if (alive_count_[e] == 0) return;  // saturated; wrapper's cost guard acts
    const double ne = static_cast<double>(n_e);
    // Termination check against the running sum; within a numerical band
    // of the boundary it falls back to an exact rescan (in member-list
    // order — the same additions the naive engine performs, so both
    // engines take identical termination decisions).
    if (std::abs(s - ne) <= kSumBand * (1.0 + std::abs(s) + ne)) {
      s = exact_alive_sum(e);
    }
    if (s >= ne) return;

    ++augmentations_;
    s += sweep_step(e, ne);
    if (observer_) observer_(e);
  }
}

RequestId FlatFractionalEngine::admit_existing(std::span<const EdgeId> edges,
                                               double update_cost,
                                               double report_cost,
                                               double initial_weight) {
  MINREJ_REQUIRE(!edges.empty(), "request needs at least one edge");
  // isfinite rejects ±inf; the > 0 comparison rejects NaN (every ordered
  // comparison against NaN is false) as well as non-positive costs.
  MINREJ_REQUIRE(std::isfinite(update_cost) && update_cost > 0.0,
                 "update cost must be positive and finite");
  MINREJ_REQUIRE(std::isfinite(report_cost) && report_cost > 0.0,
                 "report cost must be positive and finite");
  MINREJ_REQUIRE(initial_weight >= 0.0 && initial_weight < 1.0,
                 "initial weight must be in [0, 1)");
  // Validate every edge before mutating anything: InvalidArgument is
  // recoverable, so a rejected arrival must not leave a half-registered
  // phantom request behind.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }
  const RequestId id = append_request(edges, update_cost, report_cost,
                                      initial_weight, /*pinned=*/false);
  for (EdgeId e : edges) {
    auto& list = members_[e];
    // An edge that is never augmented again would otherwise accumulate
    // entries killed through its siblings forever; reclaim at 1/2 dead so
    // each compaction pass is charged to the deaths that forced it.
    // Small lists skip the gate (§7.3): their garbage is bounded by the
    // threshold and dropped whenever the edge itself is swept.
    if (list.size() > kSmallListThreshold && dead_count_[e] > 0 &&
        static_cast<std::size_t>(dead_count_[e]) * 2 >= list.size()) {
      compact(e);
    }
    list.push_back(id);
    ++alive_count_[e];
    if (list.size() == kSmallListThreshold + 1) {
      // The list just crossed into the incremental regime: its cache has
      // been stale since it was last small, so resynchronize it exactly
      // (the scan includes the member pushed above).
      ++large_edges_;
      alive_sum_[e] = exact_alive_sum(e);
    } else if (list.size() > kSmallListThreshold + 1) {
      alive_sum_[e] += initial_weight;
    }
  }
  return id;
}

const std::vector<FlatFractionalEngine::Delta>& FlatFractionalEngine::arrive(
    std::span<const EdgeId> edges, double update_cost, double report_cost) {
  admit_existing(edges, update_cost, report_cost);
  return restore_edges(edges);
}

const std::vector<FlatFractionalEngine::Delta>&
FlatFractionalEngine::restore_edges(std::span<const EdgeId> edges) {
  // Validate before augmenting anything: a mid-loop throw would leave
  // weights raised but the objective never charged for them.
  for (EdgeId e : edges) {
    MINREJ_REQUIRE(e < substrate_.col_count, "edge out of range");
  }

  ++epoch_;
  touched_.clear();
  deltas_.clear();

  // Periodic exact resync of this arrival's sum caches (they are boundary-
  // exact right now): keeps the fix-up pass's floating-point drift bounded
  // on streams far longer than the band tolerance was sized for.  (Small
  // lists get a harmless write; their cache is unread while small.)
  if ((epoch_ & 1023u) == 0) {
    for (EdgeId e : edges) alive_sum_[e] = exact_alive_sum(e);
  }

  // Restore the invariant on each edge, in the given order ("in an
  // arbitrary order" per the paper).  Once some edge has run augmentation
  // steps, later edges of the same arrival can no longer trust their
  // incremental sum cache (a shared member may have grown or died) and
  // seed their loop with one exact rescan instead.
  bool stepped = false;
  for (EdgeId e : edges) {
    const std::uint64_t before = augmentations_;
    augment_edge(e, stepped);
    stepped = stepped || augmentations_ != before;
  }

  // Collect weight increases and update the fractional objective in
  // increasing request id — the canonical report order shared with the
  // naive engine.  Member lists are append-ordered and ids are assigned
  // in admission order, so a single-edge arrival touches in increasing id
  // by construction; the sort only ever runs for multi-edge arrivals (a
  // handful of sorted runs).
  if (edges.size() > 1 &&
      !std::is_sorted(touched_.begin(), touched_.end())) {
    std::sort(touched_.begin(), touched_.end());
  }
  // One fused pass over the touched requests does two jobs:
  //   * delta emission, branch-free: always store, advance the cursor only
  //     for real increases (zero deltas contribute an exact +0.0 to the
  //     objective, so the cost matches a filtered loop bit-for-bit);
  //   * the covering-sum fix-up: each incident edge's incremental cache
  //     receives the request's net alive-contribution change — once per
  //     arrival instead of once per augmentation step.  Edges in the
  //     small-list regime are skipped outright (their cache is stale by
  //     contract, §7.3 — on skewed tiny-list traffic this removes the
  //     whole fix-up cost).  Contributions to this arrival's own edges
  //     are batched in registers (they receive every member's update; a
  //     dense burst would otherwise serialize on one cache line).
  constexpr std::size_t kMaxBatchedEdges = 8;
  double batched[kMaxBatchedEdges] = {0.0};
  const std::size_t batch_count = std::min(edges.size(), kMaxBatchedEdges);
  deltas_.resize(touched_.size());
  std::size_t count = 0;
  if (large_edges_ == 0) {
    // Tiny-list regime (§7.3): no edge anywhere holds a trusted cache, so
    // the fix-up halves to plain delta emission — the flat engine pays
    // nothing for invariant upkeep, exactly like the reference engine.
    for (RequestId i : touched_) {
      const HotRow& row = hot_[i];
      const double now = std::min(row.weight, 1.0);
      const double delta = now - row.weight_at_touch;
      deltas_[count] = {i, delta};
      count += delta > 0.0 ? 1 : 0;
      fractional_cost_ += std::max(delta, 0.0) * report_cost_[i];
    }
    deltas_.resize(count);
    return deltas_;
  }
  for (RequestId i : touched_) {
    const HotRow& row = hot_[i];
    const double now = std::min(row.weight, 1.0);
    const double delta = now - row.weight_at_touch;
    deltas_[count] = {i, delta};
    count += delta > 0.0 ? 1 : 0;
    fractional_cost_ += std::max(delta, 0.0) * report_cost_[i];
    // Net change of i's contribution to any incident covering sum over
    // this whole arrival (dead requests stop contributing entirely).
    const double sum_delta =
        (row.weight < 1.0 ? row.weight : 0.0) - row.weight_at_touch;
    for (EdgeId f : edges_of(i)) {
      if (small_list(f)) continue;  // §7.3: no cache to maintain
      bool found = false;
      for (std::size_t j = 0; j < batch_count; ++j) {
        if (edges[j] == f) {
          batched[j] += sum_delta;
          found = true;
          break;
        }
      }
      if (!found) alive_sum_[f] += sum_delta;
    }
  }
  for (std::size_t j = 0; j < batch_count; ++j) {
    if (!small_list(edges[j])) alive_sum_[edges[j]] += batched[j];
  }
  deltas_.resize(count);
  return deltas_;
}

}  // namespace minrej

// throughput_admission.h — a throughput-competitive admission algorithm in
// the style of Awerbuch–Azar–Plotkin (FOCS'93), specialized to requests
// with given paths.
//
// This is the *motivating counterpoint* of the paper's introduction: the
// admission control problem "has usually been analyzed as a benefit
// problem ... The problem with this objective function is that even
// algorithms with optimal competitive ratios may reject almost all of the
// requests, when it would have been possible to reject only a few."
// E11 measures exactly that: this algorithm tracks the optimal *accepted*
// benefit within O(log m), yet its *rejected* cost can be a huge multiple
// of the rejection optimum on streams the §3 algorithm handles at polylog
// cost.
//
// Mechanics (AAP exponential edge costs, fixed paths, no preemption):
// each edge carries utilization u_e; the marginal cost of routing one
// more unit over e is
//     cost_e = c_e · (μ^{(u_e+1)/c_e} − μ^{u_e/c_e}),
// and an arriving request of benefit p is accepted iff it fits and
//     Σ_{e ∈ path} cost_e ≤ μ_threshold · p.
// μ defaults to 2m+1 (any μ ≥ 2mT+1 for benefit-per-edge ratio T gives
// the O(log μ) guarantee; the workloads here have T = Θ(1)).
#pragma once

#include "core/online_admission.h"

namespace minrej {

struct ThroughputConfig {
  /// Exponential base μ; 0 selects 2m + 1.
  double mu = 0.0;
  /// Accept iff the exponential path cost is at most
  /// threshold · μ · benefit.  0 selects ln(μ), which admits everything at
  /// low utilization and starts rejecting long paths once utilization
  /// passes roughly 1 − ln(m)/ln(μ) — the AAP admission profile.
  double threshold = 0.0;
};

/// AAP-style benefit-competitive admission (non-preemptive).
class ThroughputAdmission : public OnlineAdmissionAlgorithm {
 public:
  ThroughputAdmission(const Graph& graph, ThroughputConfig config = {});

  std::string name() const override { return "throughput-aap"; }

  std::size_t accepted_count() const noexcept { return accepted_count_; }
  double accepted_benefit() const noexcept { return accepted_benefit_; }
  bool snapshot_supported() const noexcept override { return true; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override;
  void save_extra(SnapshotWriter& w) const override;
  void load_extra(SnapshotReader& r) override;

 private:
  ThroughputConfig config_;
  double mu_ = 3.0;
  std::size_t accepted_count_ = 0;
  double accepted_benefit_ = 0.0;
};

}  // namespace minrej

// state_snapshot.cpp — full-state serialization of the online admission
// stack (DESIGN.md §9; docs/API.md "Snapshot format").
//
// Everything that feeds a future decision travels through here: the base
// class bookkeeping (requests, states, usage, paid cost), the fractional
// wrapper (records, phase, engine), the engine itself (weights, member
// lists, incremental caches, journal), and every random stream.  Doubles
// move as IEEE-754 bit patterns, so a restored instance continues the
// exact trajectory of the uninterrupted run — the recovery_test suite pins
// this bit-identity per catalog scenario.
//
// One deliberate non-goal: cross-engine restore.  Streams are tagged with
// the engine kind ("flat"/"naive"); a snapshot taken by one build refuses
// to load into the other with a clear error, because the two engines'
// incidental state (caches, journals) differs even though decisions match.
#include <string>

#include "core/baselines.h"
#include "core/fractional_admission.h"
#include "core/fractional_engine.h"
#include "core/naive_engine.h"
#include "core/online_admission.h"
#include "core/randomized_admission.h"
#include "core/throughput_admission.h"
#include "io/snapshot.h"
#include "util/check.h"

namespace minrej {

namespace {

void save_rng(SnapshotWriter& w, const Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

void load_rng(SnapshotReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng.set_state(state);
}

}  // namespace

// ---------------------------------------------------------------------------
// FlatFractionalEngine
// ---------------------------------------------------------------------------

void FlatFractionalEngine::save_state(SnapshotWriter& w) const {
  MINREJ_REQUIRE(!mid_arrival_dirty_,
                 "engine snapshot is only legal between arrivals");
  w.tag("FENG");
  w.str("flat");
  w.f64(zero_init_);
  w.u64(small_threshold_);
  w.u64(hot_.size());
  for (const HotRow& row : hot_) {
    w.f64(row.weight);
    w.f64(row.inv_update_cost);
    w.f64(row.weight_at_touch);
    w.u64(row.touch_epoch);
  }
  w.vec(edge_begin_);
  w.vec(edge_pool_);
  w.vec(report_cost_);
  w.vec(alive_);
  w.vec(pinned_);
  w.u64(members_.size());
  for (const std::vector<RequestId>& list : members_) w.vec(list);
  w.vec(alive_count_);
  w.vec(pinned_count_);
  w.vec(dead_count_);
  w.vec(alive_sum_);
  w.vec(journal_pos_);
  w.u64(journal_.size());
  for (const JournalEntry& entry : journal_) {
    w.u32(entry.id);
    w.f64(entry.delta);
  }
  w.u64(large_edges_);
  w.f64(fractional_cost_);
  w.u64(augmentations_);
  w.u64(compactions_);
  w.u64(epoch_);
}

void FlatFractionalEngine::load_state(SnapshotReader& r) {
  MINREJ_REQUIRE(hot_.empty(),
                 "engine load_state needs a freshly constructed engine");
  r.expect_tag("FENG");
  const std::string engine_kind = r.str();
  if (engine_kind != "flat") {
    throw InvalidArgument(
        "snapshot was produced by the '" + engine_kind +
        "' engine but this build's FractionalEngine is the flat engine — "
        "cross-engine restore is unsupported (docs/API.md)");
  }
  zero_init_ = r.f64();
  MINREJ_REQUIRE(zero_init_ > 0.0 && zero_init_ <= 1.0,
                 "snapshot zero_init out of range");
  small_threshold_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  hot_.clear();
  hot_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    HotRow row;
    row.weight = r.f64();
    row.inv_update_cost = r.f64();
    row.weight_at_touch = r.f64();
    row.touch_epoch = r.u64();
    hot_.push_back(row);
  }
  edge_begin_ = r.vec<std::size_t>();
  edge_pool_ = r.vec<EdgeId>();
  report_cost_ = r.vec<double>();
  alive_ = r.vec<std::uint8_t>();
  pinned_ = r.vec<std::uint8_t>();
  const std::uint64_t edge_lists = r.u64();
  MINREJ_REQUIRE(edge_lists == substrate_.col_count,
                 "engine snapshot column count does not match the substrate");
  for (std::vector<RequestId>& list : members_) list = r.vec<RequestId>();
  alive_count_ = r.vec<std::int64_t>();
  pinned_count_ = r.vec<std::int64_t>();
  dead_count_ = r.vec<std::int64_t>();
  alive_sum_ = r.vec<double>();
  journal_pos_ = r.vec<std::size_t>();
  const std::uint64_t journal_size = r.u64();
  journal_.clear();
  journal_.reserve(static_cast<std::size_t>(journal_size));
  for (std::uint64_t i = 0; i < journal_size; ++i) {
    JournalEntry entry;
    entry.id = r.u32();
    entry.delta = r.f64();
    journal_.push_back(entry);
  }
  large_edges_ = static_cast<std::size_t>(r.u64());
  fractional_cost_ = r.f64();
  augmentations_ = r.u64();
  compactions_ = r.u64();
  epoch_ = r.u64();
  MINREJ_REQUIRE(edge_begin_.size() == hot_.size() + 1 &&
                     report_cost_.size() == hot_.size() &&
                     alive_.size() == hot_.size() &&
                     pinned_.size() == hot_.size(),
                 "engine snapshot per-request arrays are inconsistent");
  MINREJ_REQUIRE(alive_count_.size() == substrate_.col_count &&
                     pinned_count_.size() == substrate_.col_count &&
                     dead_count_.size() == substrate_.col_count &&
                     alive_sum_.size() == substrate_.col_count &&
                     journal_pos_.size() == substrate_.col_count,
                 "engine snapshot per-edge arrays are inconsistent");
  touched_.clear();
  deaths_.clear();
  deltas_.clear();
  mid_arrival_dirty_ = false;
}

// ---------------------------------------------------------------------------
// NaiveFractionalEngine
// ---------------------------------------------------------------------------

void NaiveFractionalEngine::save_state(SnapshotWriter& w) const {
  w.tag("FENG");
  w.str("naive");
  w.f64(zero_init_);
  w.u64(requests_.size());
  for (const RequestRecord& rec : requests_) {
    w.vec(rec.edges);
    w.f64(rec.weight);
    w.f64(rec.update_cost);
    w.f64(rec.inv_update_cost);
    w.f64(rec.report_cost);
    w.boolean(rec.pinned);
    w.boolean(rec.alive);
    w.u64(rec.touch_epoch);
    w.f64(rec.weight_at_touch);
  }
  w.u64(members_.size());
  for (const std::vector<RequestId>& list : members_) w.vec(list);
  w.vec(alive_count_);
  w.vec(pinned_count_);
  w.f64(fractional_cost_);
  w.u64(augmentations_);
  w.u64(compactions_);
  w.u64(epoch_);
}

void NaiveFractionalEngine::load_state(SnapshotReader& r) {
  MINREJ_REQUIRE(requests_.empty(),
                 "engine load_state needs a freshly constructed engine");
  r.expect_tag("FENG");
  const std::string engine_kind = r.str();
  if (engine_kind != "naive") {
    throw InvalidArgument(
        "snapshot was produced by the '" + engine_kind +
        "' engine but this build's FractionalEngine is the naive engine — "
        "cross-engine restore is unsupported (docs/API.md)");
  }
  zero_init_ = r.f64();
  MINREJ_REQUIRE(zero_init_ > 0.0 && zero_init_ <= 1.0,
                 "snapshot zero_init out of range");
  const std::uint64_t n = r.u64();
  requests_.clear();
  requests_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    RequestRecord rec;
    rec.edges = r.vec<EdgeId>();
    rec.weight = r.f64();
    rec.update_cost = r.f64();
    rec.inv_update_cost = r.f64();
    rec.report_cost = r.f64();
    rec.pinned = r.boolean();
    rec.alive = r.boolean();
    rec.touch_epoch = r.u64();
    rec.weight_at_touch = r.f64();
    requests_.push_back(std::move(rec));
  }
  const std::uint64_t edge_lists = r.u64();
  MINREJ_REQUIRE(edge_lists == substrate_.col_count,
                 "engine snapshot column count does not match the substrate");
  for (std::vector<RequestId>& list : members_) list = r.vec<RequestId>();
  alive_count_ = r.vec<std::int64_t>();
  pinned_count_ = r.vec<std::int64_t>();
  fractional_cost_ = r.f64();
  augmentations_ = r.u64();
  compactions_ = r.u64();
  epoch_ = r.u64();
  MINREJ_REQUIRE(alive_count_.size() == substrate_.col_count &&
                     pinned_count_.size() == substrate_.col_count,
                 "engine snapshot per-edge arrays are inconsistent");
  touched_.clear();
  deltas_.clear();
}

// ---------------------------------------------------------------------------
// FractionalAdmission
// ---------------------------------------------------------------------------

void FractionalAdmission::save_state(SnapshotWriter& w) const {
  w.tag("FADM");
  w.boolean(config_.unit_costs);
  w.f64(config_.guard_factor);
  w.boolean(config_.fixed_alpha.has_value());
  w.f64(config_.fixed_alpha.value_or(0.0));
  w.f64(alpha_);
  w.u64(phase_count_);
  w.u64(records_.size());
  for (const Record& rec : records_) {
    w.u64(rec.edge_begin);
    w.u32(rec.edge_count);
    w.f64(rec.cost);
    w.u8(static_cast<std::uint8_t>(rec.cost_class));
    w.boolean(rec.fully_rejected);
    w.u32(rec.engine_id);
  }
  w.vec(edge_pool_);
  w.vec(engine_map_);
  w.vec(preload_);
  w.f64(paid_auto_rejected_);
  w.f64(paid_past_phases_);
  w.u64(past_augmentations_);
  w.u64(past_compactions_);
  w.boolean(engine_ != nullptr);
  if (engine_) engine_->save_state(w);
}

void FractionalAdmission::load_state(SnapshotReader& r) {
  MINREJ_REQUIRE(records_.empty(),
                 "wrapper load_state needs a freshly constructed instance");
  r.expect_tag("FADM");
  const bool unit_costs = r.boolean();
  const double guard_factor = r.f64();
  const bool has_fixed_alpha = r.boolean();
  const double fixed_alpha = r.f64();
  MINREJ_REQUIRE(
      unit_costs == config_.unit_costs &&
          guard_factor == config_.guard_factor &&
          has_fixed_alpha == config_.fixed_alpha.has_value() &&
          (!has_fixed_alpha || fixed_alpha == *config_.fixed_alpha),
      "snapshot fractional config differs from this instance's config — "
      "restore requires the same factory");
  alpha_ = r.f64();
  phase_count_ = r.u64();
  const std::uint64_t n = r.u64();
  records_.clear();
  records_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Record rec;
    rec.edge_begin = static_cast<std::size_t>(r.u64());
    rec.edge_count = r.u32();
    rec.cost = r.f64();
    rec.cost_class = static_cast<CostClass>(r.u8());
    rec.fully_rejected = r.boolean();
    rec.engine_id = r.u32();
    records_.push_back(rec);
  }
  edge_pool_ = r.vec<EdgeId>();
  engine_map_ = r.vec<RequestId>();
  preload_ = r.vec<std::int64_t>();
  MINREJ_REQUIRE(preload_.size() == substrate_.col_count,
                 "wrapper snapshot column count does not match the substrate");
  paid_auto_rejected_ = r.f64();
  paid_past_phases_ = r.f64();
  past_augmentations_ = r.u64();
  past_compactions_ = r.u64();
  if (r.boolean()) {
    // The 0.5 floor is a constructor placeholder; the engine's load_state
    // overwrites it with the saved zero_init.
    engine_ = std::make_unique<FractionalEngine>(substrate_, 0.5);
    engine_->load_state(r);
  } else {
    engine_.reset();
  }
}

// ---------------------------------------------------------------------------
// OnlineAdmissionAlgorithm base + subclass extras
// ---------------------------------------------------------------------------

void OnlineAdmissionAlgorithm::save_extra(SnapshotWriter&) const {}
void OnlineAdmissionAlgorithm::load_extra(SnapshotReader&) {}

void OnlineAdmissionAlgorithm::save_snapshot(SnapshotWriter& w) const {
  MINREJ_REQUIRE(snapshot_supported(),
                 "algorithm '" + name() + "' does not support snapshots");
  w.tag("ALGO");
  w.str(name());
  w.u64(requests_.size());
  for (const Request& req : requests_) {
    w.vec(req.edges);
    w.f64(req.cost);
    w.boolean(req.must_accept);
  }
  w.u64(states_.size());
  for (const RequestState s : states_) w.u8(static_cast<std::uint8_t>(s));
  w.vec(usage_);
  w.f64(rejected_cost_);
  w.u64(rejected_count_);
  w.tag("XTRA");
  save_extra(w);
}

void OnlineAdmissionAlgorithm::load_snapshot(SnapshotReader& r) {
  MINREJ_REQUIRE(snapshot_supported(),
                 "algorithm '" + name() + "' does not support snapshots");
  MINREJ_REQUIRE(requests_.empty(),
                 "load_snapshot needs a freshly constructed algorithm");
  r.expect_tag("ALGO");
  const std::string stream_name = r.str();
  MINREJ_REQUIRE(stream_name == name(),
                 "snapshot algorithm is '" + stream_name +
                     "' but this instance is '" + name() + "'");
  const std::uint64_t n = r.u64();
  requests_.clear();
  requests_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Request req;
    req.edges = r.vec<EdgeId>();
    req.cost = r.f64();
    req.must_accept = r.boolean();
    requests_.push_back(std::move(req));
  }
  const std::uint64_t state_count = r.u64();
  MINREJ_REQUIRE(state_count == n,
                 "snapshot state array does not match the request array");
  states_.clear();
  states_.reserve(static_cast<std::size_t>(state_count));
  for (std::uint64_t i = 0; i < state_count; ++i) {
    states_.push_back(static_cast<RequestState>(r.u8()));
  }
  usage_ = r.vec<std::int64_t>();
  MINREJ_REQUIRE(usage_.size() == graph_.edge_count(),
                 "snapshot edge usage does not match the graph edge count");
  rejected_cost_ = r.f64();
  rejected_count_ = static_cast<std::size_t>(r.u64());
  r.expect_tag("XTRA");
  load_extra(r);
}

void PreemptRandom::save_extra(SnapshotWriter& w) const {
  w.tag("PRND");
  save_rng(w, rng_);
}

void PreemptRandom::load_extra(SnapshotReader& r) {
  r.expect_tag("PRND");
  load_rng(r, rng_);
}

void ThroughputAdmission::save_extra(SnapshotWriter& w) const {
  w.tag("THRU");
  w.u64(accepted_count_);
  w.f64(accepted_benefit_);
}

void ThroughputAdmission::load_extra(SnapshotReader& r) {
  r.expect_tag("THRU");
  accepted_count_ = static_cast<std::size_t>(r.u64());
  accepted_benefit_ = r.f64();
}

void RandomizedAdmission::save_extra(SnapshotWriter& w) const {
  w.tag("RAND");
  // The configuration is factory-owned, not stream-owned: record the
  // decision-relevant knobs so a restore through a different factory fails
  // loudly instead of silently diverging.
  w.boolean(config_.unit_costs);
  w.boolean(config_.edge_request_cap);
  w.boolean(config_.step2_threshold);
  w.boolean(config_.step3_random);
  w.u8(static_cast<std::uint8_t>(config_.victim_policy));
  w.f64(factor_);
  save_rng(w, rng_);
  w.vec(edge_requests_);
  w.bit_vec(edge_capped_);
  w.vec(base_of_frac_);
  w.vec(frac_of_base_);
  frac_.save_state(w);
}

void RandomizedAdmission::load_extra(SnapshotReader& r) {
  r.expect_tag("RAND");
  const bool unit_costs = r.boolean();
  const bool edge_request_cap = r.boolean();
  const bool step2 = r.boolean();
  const bool step3 = r.boolean();
  const auto victim = static_cast<VictimPolicy>(r.u8());
  const double factor = r.f64();
  MINREJ_REQUIRE(unit_costs == config_.unit_costs &&
                     edge_request_cap == config_.edge_request_cap &&
                     step2 == config_.step2_threshold &&
                     step3 == config_.step3_random &&
                     victim == config_.victim_policy && factor == factor_,
                 "snapshot randomized config differs from this instance's "
                 "config — restore requires the same factory");
  load_rng(r, rng_);
  edge_requests_ = r.vec<std::int64_t>();
  MINREJ_REQUIRE(edge_requests_.size() == graph().edge_count(),
                 "snapshot edge-request counters do not match the graph");
  edge_capped_ = r.bit_vec();
  MINREJ_REQUIRE(edge_capped_.size() == graph().edge_count(),
                 "snapshot edge-cap flags do not match the graph");
  base_of_frac_ = r.vec<RequestId>();
  frac_of_base_ = r.vec<RequestId>();
  frac_.load_state(r);
  MINREJ_REQUIRE(base_of_frac_.size() == frac_.request_count(),
                 "snapshot id translation does not match the fractional "
                 "record count");
}

}  // namespace minrej

#include "core/throughput_admission.h"

#include <cmath>

#include "util/check.h"

namespace minrej {

ThroughputAdmission::ThroughputAdmission(const Graph& graph,
                                         ThroughputConfig config)
    : OnlineAdmissionAlgorithm(graph), config_(config) {
  MINREJ_REQUIRE(config_.threshold >= 0.0, "threshold must be >= 0");
  mu_ = config_.mu > 0.0
            ? config_.mu
            : 2.0 * static_cast<double>(graph.edge_count()) + 1.0;
  MINREJ_REQUIRE(mu_ > 1.0, "mu must exceed 1");
  if (config_.threshold == 0.0) {
    config_.threshold = std::max(1.0, std::log(mu_));
  }
}

ArrivalResult ThroughputAdmission::handle(RequestId /*id*/,
                                          const Request& request) {
  ArrivalResult result;
  if (request.must_accept) {
    MINREJ_REQUIRE(!would_overflow(request),
                   "throughput-aap cannot honour must_accept overflow "
                   "(non-preemptive)");
    result.accepted = true;
    ++accepted_count_;
    accepted_benefit_ += request.cost;
    return result;
  }
  if (would_overflow(request)) {
    result.accepted = false;
    return result;
  }

  // Exponential path cost: Σ_e c_e (μ^{(u_e+1)/c_e} − μ^{u_e/c_e}).
  double path_cost = 0.0;
  for (EdgeId e : request.edges) {
    const double cap = static_cast<double>(graph().capacity(e));
    const double u = static_cast<double>(edge_usage()[e]);
    path_cost += cap * (std::pow(mu_, (u + 1.0) / cap) -
                        std::pow(mu_, u / cap));
  }
  // Benefit of a request is its cost p (what we'd lose by rejecting it).
  result.accepted = path_cost <= config_.threshold * mu_ * request.cost;
  if (result.accepted) {
    ++accepted_count_;
    accepted_benefit_ += request.cost;
  }
  return result;
}

}  // namespace minrej

#include "core/simd_sweep.h"

#include <algorithm>
#include <cstring>

#include "util/build_info.h"
#include "util/check.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(MINREJ_NO_SIMD)
#define MINREJ_SIMD_KERNELS 1
#include <immintrin.h>
#else
#define MINREJ_SIMD_KERNELS 0
#endif

namespace minrej::simd {

namespace {

/// Highest kernel tier this binary compiled AND this CPU executes.  The
/// build_info string (which additionally honors the MINREJ_SWEEP_ISA env
/// clamp) can only name tiers at or below this.
SweepIsa max_supported_isa() noexcept {
#if MINREJ_SIMD_KERNELS
  if (__builtin_cpu_supports("avx512f")) return SweepIsa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SweepIsa::kAvx2;
#endif
  return SweepIsa::kScalar;
}

SweepIsa isa_from_name(const char* name) noexcept {
  if (std::strcmp(name, "avx512") == 0) return SweepIsa::kAvx512;
  if (std::strcmp(name, "avx2") == 0) return SweepIsa::kAvx2;
  return SweepIsa::kScalar;
}

bool g_override_active = false;
SweepIsa g_override = SweepIsa::kScalar;

/// Lists shorter than this run the scalar kernel regardless of tier (see
/// the dispatchers at the bottom) — measured crossover on the power-law
/// duel, where vector prologue + gather latency dominate tiny lists.
constexpr std::size_t kVectorCutoff = 32;

// -- scalar kernels ---------------------------------------------------------

/// Reference sweep over list[from, to): shared by the scalar tier (whole
/// list) and the vector tiers (tail blocks).  `out` is the survivor write
/// cursor into the same list (two-pointer compaction; out <= from always,
/// so reads stay ahead of writes).
double sweep_range_scalar(RequestId* list, std::size_t from, std::size_t to,
                          std::size_t& out, EngineHotRow* rows, double inv_ne,
                          double zero_init, std::uint64_t epoch,
                          std::vector<RequestId>& touched,
                          std::vector<RequestId>& deaths) {
  double step_sum = 0.0;
  for (std::size_t k = from; k < to; ++k) {
    const RequestId i = list[k];
    EngineHotRow& row = rows[i];
    // Member lists hold only augmentable requests, for which death is
    // exactly weight ≥ 1 — the dead-entry skip reads the hot row the
    // sweep needs anyway.
    const double old = row.weight;
    if (old >= 1.0) continue;  // killed via another edge: drop entry
    if (row.touch_epoch != epoch) {
      row.touch_epoch = epoch;
      row.weight_at_touch = old;  // alive, so already < 1
      touched.push_back(i);
    }
    // (a) zero weights jump to the floor 1/(g·c)...
    const double base = old == 0.0 ? zero_init : old;
    // (b) ...then the multiplicative step f_i *= (1 + (1/n_e)·(1/p_i)).
    // Mul-then-add, never fma: one rounding per operation is the shared
    // arithmetic contract every kernel tier and the naive engine obey.
    const double mult = 1.0 + inv_ne * row.inv_update_cost;
    const double w = base * mult;
    // The macro expands to `if (!(w >= 0.0)) throw` — the double-negative
    // form that is true for NaN as well as genuine negatives, so a
    // poisoned weight fails loudly instead of corrupting invariant sums.
    MINREJ_CHECK(w >= 0.0, "fractional weight became NaN or negative");
    const double now = std::min(w, kEngineWeightClamp);
    row.weight = now;
    if (now >= 1.0) {
      // (c) the request crosses 1 and leaves every ALIVE list.  Net
      // effect on a covering sum that never saw the increase: −old.
      deaths.push_back(i);
      step_sum -= old;
      continue;
    }
    step_sum += now - old;
    list[out++] = i;
  }
  return step_sum;
}

SweepStepResult sweep_step_scalar(RequestId* list, std::size_t size,
                                  EngineHotRow* rows, double inv_ne,
                                  double zero_init, std::uint64_t epoch,
                                  std::vector<RequestId>& touched,
                                  std::vector<RequestId>& deaths) {
  SweepStepResult r;
  r.step_sum = sweep_range_scalar(list, 0, size, r.new_size, rows, inv_ne,
                                  zero_init, epoch, touched, deaths);
  return r;
}

double alive_sum_scalar(const RequestId* list, std::size_t size,
                        const EngineHotRow* rows) {
  double sum = 0.0;
  for (std::size_t k = 0; k < size; ++k) {
    const double w = rows[list[k]].weight;
    if (w < 1.0) sum += w;
  }
  return sum;
}

#if MINREJ_SIMD_KERNELS

// -- AVX2 kernels -----------------------------------------------------------
//
// 4-lane gathers over the 32-byte hot rows (double-index stride 4: field f
// of row id lives at ((double*)rows)[id*4 + f]).  Arithmetic and
// classification are vectorized; write-backs and id-stream appends fall
// out per lane (AVX2 has no scatter/compress), which still leaves the
// gather latency and the multiplier pipeline — the actual bottlenecks of
// the scalar loop — running four wide.

__attribute__((target("avx2"))) SweepStepResult sweep_step_avx2(
    RequestId* list, std::size_t size, EngineHotRow* rows, double inv_ne,
    double zero_init, std::uint64_t epoch, std::vector<RequestId>& touched,
    std::vector<RequestId>& deaths) {
  auto* rowsd = reinterpret_cast<double*>(rows);
  const auto* rowsq = reinterpret_cast<const long long*>(rows);
  const __m256d kZero = _mm256_setzero_pd();
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kClamp = _mm256_set1_pd(kEngineWeightClamp);
  const __m256d vInvNe = _mm256_set1_pd(inv_ne);
  const __m256d vZeroInit = _mm256_set1_pd(zero_init);
  const __m256i vEpoch = _mm256_set1_epi64x(static_cast<long long>(epoch));

  __m256d acc = _mm256_setzero_pd();
  std::size_t out = 0;
  std::size_t k = 0;
  alignas(32) double old_a[4];
  alignas(32) double now_a[4];
  for (; k + 4 <= size; k += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(list + k));
    const __m128i idx = _mm_slli_epi32(ids, 2);  // id*4 doubles per row
    const __m256d w = _mm256_i32gather_pd(rowsd, idx, 8);
    const __m256d dead = _mm256_cmp_pd(w, kOne, _CMP_GE_OQ);
    const int alive_m = ~_mm256_movemask_pd(dead) & 0xF;
    if (alive_m == 0) continue;  // whole block killed via other edges
    const __m256d invc = _mm256_i32gather_pd(rowsd + 1, idx, 8);
    const __m256i ep = _mm256_i32gather_epi64(rowsq + 3, idx, 8);
    const int stale_m =
        ~_mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(ep, vEpoch))) & 0xF;
    const int touch_m = stale_m & alive_m;
    const __m256d zero_w = _mm256_cmp_pd(w, kZero, _CMP_EQ_OQ);
    const __m256d base = _mm256_blendv_pd(w, vZeroInit, zero_w);
    const __m256d mult =
        _mm256_add_pd(kOne, _mm256_mul_pd(vInvNe, invc));
    const __m256d grown = _mm256_mul_pd(base, mult);
    const int bad_m =
        _mm256_movemask_pd(_mm256_cmp_pd(grown, kZero, _CMP_NGE_UQ)) &
        alive_m;
    MINREJ_CHECK(bad_m == 0, "fractional weight became NaN or negative");
    const __m256d now = _mm256_min_pd(grown, kClamp);
    const int newdead_m =
        _mm256_movemask_pd(_mm256_cmp_pd(now, kOne, _CMP_GE_OQ)) & alive_m;
    // Covering-sum contribution: survivors now−old, deaths −old, dead 0.
    const __m256d newdead_v = _mm256_cmp_pd(now, kOne, _CMP_GE_OQ);
    const __m256d contrib = _mm256_blendv_pd(
        _mm256_sub_pd(now, w), _mm256_sub_pd(kZero, w), newdead_v);
    acc = _mm256_add_pd(acc, _mm256_andnot_pd(dead, contrib));
    // Per-lane write-backs and id streams.
    _mm256_store_pd(old_a, w);
    _mm256_store_pd(now_a, now);
    for (int j = 0; j < 4; ++j) {
      if (!((alive_m >> j) & 1)) continue;
      const RequestId i = list[k + static_cast<std::size_t>(j)];
      EngineHotRow& row = rows[i];
      if ((touch_m >> j) & 1) {
        row.touch_epoch = epoch;
        row.weight_at_touch = old_a[j];
        touched.push_back(i);
      }
      row.weight = now_a[j];
      if ((newdead_m >> j) & 1) {
        deaths.push_back(i);
      } else {
        list[out++] = i;
      }
    }
  }
  SweepStepResult r;
  alignas(32) double acc_a[4];
  _mm256_store_pd(acc_a, acc);
  r.step_sum = ((acc_a[0] + acc_a[1]) + (acc_a[2] + acc_a[3])) +
               sweep_range_scalar(list, k, size, out, rows, inv_ne, zero_init,
                                  epoch, touched, deaths);
  r.new_size = out;
  return r;
}

__attribute__((target("avx2"))) double alive_sum_avx2(
    const RequestId* list, std::size_t size, const EngineHotRow* rows) {
  const auto* rowsd = reinterpret_cast<const double*>(rows);
  const __m256d kOne = _mm256_set1_pd(1.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= size; k += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(list + k));
    const __m128i idx = _mm_slli_epi32(ids, 2);
    const __m256d w = _mm256_i32gather_pd(rowsd, idx, 8);
    const __m256d alive = _mm256_cmp_pd(w, kOne, _CMP_LT_OQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(w, alive));
  }
  alignas(32) double acc_a[4];
  _mm256_store_pd(acc_a, acc);
  double sum = (acc_a[0] + acc_a[1]) + (acc_a[2] + acc_a[3]);
  for (; k < size; ++k) {
    const double w = rows[list[k]].weight;
    if (w < 1.0) sum += w;
  }
  return sum;
}

// -- AVX-512 kernels --------------------------------------------------------
//
// 8-lane version of the same dataflow, with the two pieces AVX2 cannot
// vectorize: scatters write the weight / weight_at_touch / touch_epoch
// fields back under their lane masks, and compress stores emit the
// survivor, touched, and death id streams without a per-lane loop (the
// in-place survivor compaction writes through the same two-pointer cursor
// as the scalar kernel, so the compacted order is identical).

// Shuffle constants for the contiguous-block fast path below.  A member
// list compacts in ascending id order and dense workloads admit in id
// order, so blocks of 8 consecutive ids are the common case — and for
// those the whole 8-row stripe is 256 contiguous bytes.  Four plain
// 64-byte loads plus qword permutes beat the 8-lane gathers by ~2.7× (the
// hardware gather issues one cache access per lane regardless of
// locality), and full-line stores beat the scatters the same way.
namespace contig {
// z0 = rows b,b+1 = [w0,c0,t0,e0,w1,c1,t1,e1]; pair-deinterleave then
// split even/odd qwords to recover the w / inv_update_cost columns.
inline constexpr long long kPairLo[8] = {0, 1, 4, 5, 8, 9, 12, 13};
inline constexpr long long kPairHi[8] = {2, 3, 6, 7, 10, 11, 14, 15};
inline constexpr long long kEvens[8] = {0, 2, 4, 6, 8, 10, 12, 14};
inline constexpr long long kOdds[8] = {1, 3, 5, 7, 9, 11, 13, 15};
// Interleave [a0..a7]×[b0..b7] → [a0,b0,a1,b1,...] (Lo half / Hi half),
// then zip two interleaved vectors back into the 4-field row layout.
inline constexpr long long kIlvLo[8] = {0, 8, 1, 9, 2, 10, 3, 11};
inline constexpr long long kIlvHi[8] = {4, 12, 5, 13, 6, 14, 7, 15};
inline constexpr long long kZipLo[8] = {0, 1, 8, 9, 2, 3, 10, 11};
inline constexpr long long kZipHi[8] = {4, 5, 12, 13, 6, 7, 14, 15};
}  // namespace contig

__attribute__((target("avx512f"))) SweepStepResult sweep_step_avx512(
    RequestId* list, std::size_t size, EngineHotRow* rows, double inv_ne,
    double zero_init, std::uint64_t epoch, std::vector<RequestId>& touched,
    std::vector<RequestId>& deaths) {
  auto* rowsd = reinterpret_cast<double*>(rows);
  auto* rowsq = reinterpret_cast<long long*>(rows);
  const __m512d kZero = _mm512_setzero_pd();
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kClamp = _mm512_set1_pd(kEngineWeightClamp);
  const __m512d vInvNe = _mm512_set1_pd(inv_ne);
  const __m512d vZeroInit = _mm512_set1_pd(zero_init);
  const __m512i vEpoch = _mm512_set1_epi64(static_cast<long long>(epoch));
  const __m256i kIota8 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i kPairLo = _mm512_loadu_si512(contig::kPairLo);
  const __m512i kPairHi = _mm512_loadu_si512(contig::kPairHi);
  const __m512i kEvens = _mm512_loadu_si512(contig::kEvens);
  const __m512i kOdds = _mm512_loadu_si512(contig::kOdds);
  const __m512i kIlvLo = _mm512_loadu_si512(contig::kIlvLo);
  const __m512i kIlvHi = _mm512_loadu_si512(contig::kIlvHi);
  const __m512i kZipLo = _mm512_loadu_si512(contig::kZipLo);
  const __m512i kZipHi = _mm512_loadu_si512(contig::kZipHi);

  __m512d acc = _mm512_setzero_pd();
  std::size_t out = 0;
  std::size_t k = 0;
  for (; k + 8 <= size; k += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(list + k));
    // Contiguity probe: ids == first + {0..7} lane-for-lane.
    const __m256i expect = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(list[k])), kIota8);
    const bool is_contig =
        _mm256_movemask_epi8(_mm256_cmpeq_epi32(ids, expect)) == -1;
    // Zero-initialized so the conditional-assignment diamond below does
    // not trip GCC's maybe-uninitialized analysis (vpxor is free).
    __m512d w = _mm512_setzero_pd();
    __m512d invc = _mm512_setzero_pd();
    __m512i ep = _mm512_setzero_si512();
    __mmask8 alive = 0;
    double* block = nullptr;
    if (is_contig) {
      block = rowsd + static_cast<std::size_t>(list[k]) * 4;
      const __m512d z0 = _mm512_loadu_pd(block);
      const __m512d z1 = _mm512_loadu_pd(block + 8);
      const __m512d z2 = _mm512_loadu_pd(block + 16);
      const __m512d z3 = _mm512_loadu_pd(block + 24);
      const __m512d wcA = _mm512_permutex2var_pd(z0, kPairLo, z1);
      const __m512d wcB = _mm512_permutex2var_pd(z2, kPairLo, z3);
      w = _mm512_permutex2var_pd(wcA, kEvens, wcB);
      alive = _mm512_cmp_pd_mask(w, kOne, _CMP_LT_OQ);
      if (alive == 0) continue;
      invc = _mm512_permutex2var_pd(wcA, kOdds, wcB);
      const __m512i teA = _mm512_permutex2var_epi64(
          _mm512_castpd_si512(z0), kPairHi, _mm512_castpd_si512(z1));
      const __m512i teB = _mm512_permutex2var_epi64(
          _mm512_castpd_si512(z2), kPairHi, _mm512_castpd_si512(z3));
      ep = _mm512_permutex2var_epi64(teA, kOdds, teB);
    } else {
      const __m256i idx = _mm256_slli_epi32(ids, 2);
      w = _mm512_i32gather_pd(idx, rowsd, 8);
      alive = _mm512_cmp_pd_mask(w, kOne, _CMP_LT_OQ);
      if (alive == 0) continue;
      invc = _mm512_i32gather_pd(idx, rowsd + 1, 8);
      ep = _mm512_i32gather_epi64(idx, rowsq + 3, 8);
    }
    const __mmask8 touch =
        _mm512_mask_cmpneq_epu64_mask(alive, ep, vEpoch);
    const __mmask8 zero_w =
        _mm512_mask_cmp_pd_mask(alive, w, kZero, _CMP_EQ_OQ);
    const __m512d base = _mm512_mask_blend_pd(zero_w, w, vZeroInit);
    const __m512d mult =
        _mm512_add_pd(kOne, _mm512_mul_pd(vInvNe, invc));
    const __m512d grown = _mm512_mul_pd(base, mult);
    const __mmask8 bad =
        _mm512_mask_cmp_pd_mask(alive, grown, kZero, _CMP_NGE_UQ);
    MINREJ_CHECK(bad == 0, "fractional weight became NaN or negative");
    const __m512d now = _mm512_min_pd(grown, kClamp);
    const __mmask8 newdead =
        _mm512_mask_cmp_pd_mask(alive, now, kOne, _CMP_GE_OQ);
    const __mmask8 survive =
        static_cast<__mmask8>(alive & static_cast<__mmask8>(~newdead));
    // Covering-sum contribution (lane-parallel partial sums).
    const __m512d contrib = _mm512_mask_blend_pd(
        newdead, _mm512_sub_pd(now, w), _mm512_sub_pd(kZero, w));
    acc = _mm512_add_pd(acc, _mm512_maskz_mov_pd(alive, contrib));
    const __m512i idsz = _mm512_castsi256_si512(ids);
    // Contiguous fast stores for the two uniform cases that dominate a
    // dense sweep: the first pass of an arrival (every lane first-touched)
    // rebuilds all four 64-byte lines from registers, and later passes
    // (no lane touched) write only the weight column under a 0x11 mask.
    // Mixed blocks fall through to the scatter path below.
    if (is_contig && alive == 0xFF && newdead == 0 &&
        (touch == 0xFF || touch == 0)) {
      if (touch == 0xFF) {
        // Row r ← {now_r, invc_r, old w_r, epoch}: interleave the column
        // vectors pairwise, then zip the pairs back into row layout.
        const __m512d ncA = _mm512_permutex2var_pd(now, kIlvLo, invc);
        const __m512d ncB = _mm512_permutex2var_pd(now, kIlvHi, invc);
        const __m512d weA = _mm512_castsi512_pd(_mm512_permutex2var_epi64(
            _mm512_castpd_si512(w), kIlvLo, vEpoch));
        const __m512d weB = _mm512_castsi512_pd(_mm512_permutex2var_epi64(
            _mm512_castpd_si512(w), kIlvHi, vEpoch));
        _mm512_storeu_pd(block, _mm512_permutex2var_pd(ncA, kZipLo, weA));
        _mm512_storeu_pd(block + 8, _mm512_permutex2var_pd(ncA, kZipHi, weA));
        _mm512_storeu_pd(block + 16, _mm512_permutex2var_pd(ncB, kZipLo, weB));
        _mm512_storeu_pd(block + 24, _mm512_permutex2var_pd(ncB, kZipHi, weB));
        const std::size_t tn = touched.size();
        touched.resize(tn + 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(touched.data() + tn),
                            ids);
      } else {
        // Spread now_{2j},now_{2j+1} to qwords 0 and 4 of line j.
        _mm512_mask_storeu_pd(
            block, 0x11,
            _mm512_permutexvar_pd(_mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1),
                                  now));
        _mm512_mask_storeu_pd(
            block + 8, 0x11,
            _mm512_permutexvar_pd(_mm512_setr_epi64(2, 2, 2, 2, 3, 3, 3, 3),
                                  now));
        _mm512_mask_storeu_pd(
            block + 16, 0x11,
            _mm512_permutexvar_pd(_mm512_setr_epi64(4, 4, 4, 4, 5, 5, 5, 5),
                                  now));
        _mm512_mask_storeu_pd(
            block + 24, 0x11,
            _mm512_permutexvar_pd(_mm512_setr_epi64(6, 6, 6, 6, 7, 7, 7, 7),
                                  now));
      }
      // All eight lanes survive; the compaction cursor only needs a copy
      // when earlier deaths made it lag the read cursor.
      if (out != k) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(list + out), ids);
      }
      out += 8;
      continue;
    }
    // First-touch bookkeeping: weight_at_touch ← old weight, epoch stamp,
    // id appended to the touched stream.
    const __m256i idx = _mm256_slli_epi32(ids, 2);
    if (touch != 0) {
      _mm512_mask_i32scatter_pd(rowsd + 2, touch, idx, w, 8);
      _mm512_mask_i32scatter_epi64(rowsq + 3, touch, idx, vEpoch, 8);
      const std::size_t tn = touched.size();
      touched.resize(tn + 8);
      _mm512_mask_compressstoreu_epi32(
          touched.data() + tn, static_cast<__mmask16>(touch), idsz);
      touched.resize(tn + static_cast<std::size_t>(
                              __builtin_popcount(touch)));
    }
    // Weight write-back for every lane still alive at block start.
    _mm512_mask_i32scatter_pd(rowsd, alive, idx, now, 8);
    if (newdead != 0) {
      const std::size_t dn = deaths.size();
      deaths.resize(dn + 8);
      _mm512_mask_compressstoreu_epi32(
          deaths.data() + dn, static_cast<__mmask16>(newdead), idsz);
      deaths.resize(dn + static_cast<std::size_t>(
                             __builtin_popcount(newdead)));
    }
    // In-place survivor compaction: reads of this block happened above,
    // and out <= k, so the compress store never overtakes the reader.
    _mm512_mask_compressstoreu_epi32(list + out,
                                     static_cast<__mmask16>(survive), idsz);
    out += static_cast<std::size_t>(__builtin_popcount(survive));
  }
  SweepStepResult r;
  r.step_sum = _mm512_reduce_add_pd(acc) +
               sweep_range_scalar(list, k, size, out, rows, inv_ne, zero_init,
                                  epoch, touched, deaths);
  r.new_size = out;
  return r;
}

__attribute__((target("avx512f"))) double alive_sum_avx512(
    const RequestId* list, std::size_t size, const EngineHotRow* rows) {
  const auto* rowsd = reinterpret_cast<const double*>(rows);
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m256i kIota8 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i kPairLo = _mm512_loadu_si512(contig::kPairLo);
  const __m512i kEvens = _mm512_loadu_si512(contig::kEvens);
  __m512d acc = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= size; k += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(list + k));
    const __m256i expect = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(list[k])), kIota8);
    __m512d w = _mm512_setzero_pd();
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(ids, expect)) == -1) {
      // Contiguous block: the weight column of 8 consecutive rows lives
      // in 4 plain 64-byte loads (see sweep_step_avx512 above).
      const double* block = rowsd + static_cast<std::size_t>(list[k]) * 4;
      const __m512d wcA = _mm512_permutex2var_pd(
          _mm512_loadu_pd(block), kPairLo, _mm512_loadu_pd(block + 8));
      const __m512d wcB = _mm512_permutex2var_pd(
          _mm512_loadu_pd(block + 16), kPairLo, _mm512_loadu_pd(block + 24));
      w = _mm512_permutex2var_pd(wcA, kEvens, wcB);
    } else {
      const __m256i idx = _mm256_slli_epi32(ids, 2);
      w = _mm512_i32gather_pd(idx, rowsd, 8);
    }
    const __mmask8 alive = _mm512_cmp_pd_mask(w, kOne, _CMP_LT_OQ);
    acc = _mm512_add_pd(acc, _mm512_maskz_mov_pd(alive, w));
  }
  double sum = _mm512_reduce_add_pd(acc);
  for (; k < size; ++k) {
    const double w = rows[list[k]].weight;
    if (w < 1.0) sum += w;
  }
  return sum;
}

#endif  // MINREJ_SIMD_KERNELS

}  // namespace

SweepIsa active_sweep_isa() noexcept {
  if (g_override_active) return g_override;
  // The build_info string already folds in MINREJ_NO_SIMD, the env clamp,
  // and cpuid; parsing it here keeps the BENCH stamp and the dispatched
  // kernel from ever disagreeing.
  static const SweepIsa isa = isa_from_name(sweep_isa());
  return isa;
}

const char* sweep_isa_name(SweepIsa isa) noexcept {
  switch (isa) {
    case SweepIsa::kAvx512: return "avx512";
    case SweepIsa::kAvx2: return "avx2";
    default: return "scalar";
  }
}

SweepIsa set_sweep_isa_for_tests(SweepIsa isa) noexcept {
  const SweepIsa cap = max_supported_isa();
  if (isa > cap) isa = cap;
  g_override = isa;
  g_override_active = true;
  return isa;
}

void clear_sweep_isa_override() noexcept { g_override_active = false; }

SweepStepResult sweep_step(SweepIsa isa, RequestId* list, std::size_t size,
                           EngineHotRow* rows, double inv_ne,
                           double zero_init, std::uint64_t epoch,
                           std::vector<RequestId>& touched,
                           std::vector<RequestId>& deaths) {
#if MINREJ_SIMD_KERNELS
  // Short lists run the scalar kernel on every tier: below ~4 vector
  // blocks the gather/scatter setup costs more than the lanes save (the
  // power-law duel, median list ≈ 10 members, runs 0.96× naive through
  // the vector kernels but 1.08× through this cutoff).  Decision-safe by
  // the bit-identity contract — every tier produces the same weights.
  if (size < kVectorCutoff) {
    return sweep_step_scalar(list, size, rows, inv_ne, zero_init, epoch,
                             touched, deaths);
  }
  if (isa == SweepIsa::kAvx512) {
    return sweep_step_avx512(list, size, rows, inv_ne, zero_init, epoch,
                             touched, deaths);
  }
  if (isa == SweepIsa::kAvx2) {
    return sweep_step_avx2(list, size, rows, inv_ne, zero_init, epoch,
                           touched, deaths);
  }
#else
  (void)isa;
#endif
  return sweep_step_scalar(list, size, rows, inv_ne, zero_init, epoch,
                           touched, deaths);
}

double alive_sum(SweepIsa isa, const RequestId* list, std::size_t size,
                 const EngineHotRow* rows) {
#if MINREJ_SIMD_KERNELS
  if (size < kVectorCutoff) return alive_sum_scalar(list, size, rows);
  if (isa == SweepIsa::kAvx512) return alive_sum_avx512(list, size, rows);
  if (isa == SweepIsa::kAvx2) return alive_sum_avx2(list, size, rows);
#else
  (void)isa;
#endif
  return alive_sum_scalar(list, size, rows);
}

}  // namespace minrej::simd

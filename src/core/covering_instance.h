// covering_instance.h — the shared CSR covering substrate (DESIGN.md §7).
//
// The paper's §4 reduction says online set cover with repetitions *is*
// admission control on a star graph: set S ↔ phase-1 request, element j ↔
// edge e_j with capacity |S_j|.  Both problems therefore live on the same
// object — a sparse 0/1 incidence matrix between *rows* (requests / sets,
// each with a positive cost) and *columns* (edges / elements, each with an
// integer capacity; for set cover the capacity IS the column degree).
//
// CoveringInstance is that matrix, stored immutably in CSR form in BOTH
// directions: one flat arena with the columns of every row
// (request→edges ≡ set→elements) and one with the rows of every column
// (edge→requests ≡ element→sets, the paper's S_j).  Per-row and per-column
// headers are fixed 32-byte hot rows, so walking an incidence list costs
// one header load plus a contiguous arena scan — no per-set heap vector,
// no pointer chase between sets.  This extends the flat-storage discipline
// of the PR 2 engine rewrite (DESIGN.md §3) to the set-cover half of the
// tree: SetSystem is a thin facade over this substrate, the reduction
// becomes a zero-copy view (core/reduction.h: ReductionView), and the
// engines bind to either source through CoveringSubstrateTraits
// (core/substrate_traits.h).
//
// The class is header-only on purpose: setcover/ sits below core/ in the
// library DAG and must be able to build the substrate without linking
// minrej_core (only the Graph/AdmissionInstance builders live in
// covering_instance.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace minrej {

/// Header of one row (a request / a set): where its column list lives in
/// the row→col arena, its cost, and the must-accept flag (§4 phase-2).
/// Padded to a 32-byte stride so a header never straddles more cache
/// lines than necessary when headers are read in random order (hot-column
/// member walks are exactly that).
struct alignas(32) CoveringRow {
  std::uint64_t begin = 0;       ///< offset into the row→col arena
  std::uint32_t count = 0;       ///< number of columns (set size)
  std::uint32_t must_accept = 0; ///< §4 phase-2 flag (0 for sets)
  double cost = 1.0;             ///< p_i / cost(S), > 0
};
static_assert(sizeof(CoveringRow) == 32, "row header must stay 32 bytes");

/// Header of one column (an edge / an element): where its row list lives
/// in the col→row arena and its capacity (set cover: capacity == degree,
/// the §4 identity).  Same 32-byte stride rationale as CoveringRow.
struct alignas(32) CoveringCol {
  std::uint64_t begin = 0;    ///< offset into the col→row arena
  std::uint32_t count = 0;    ///< degree |S_j| / |REQ_e| at build time
  std::uint32_t reserved = 0;
  std::int64_t capacity = 0;  ///< c_e; == count in degree-capacity mode
};
static_assert(sizeof(CoveringCol) == 32, "col header must stay 32 bytes");

/// Immutable two-direction CSR incidence substrate.  Build once (see
/// Builder), then every accessor is O(1) plus the span it returns.
class CoveringInstance {
 public:
  CoveringInstance() = default;

  /// Incremental builder: add rows (sorted, unique, in-range column
  /// lists), then pick the capacity binding.  build_*() transposes the
  /// incidence once (counting sort) and freezes the result.
  class Builder {
   public:
    explicit Builder(std::size_t col_count) : col_count_(col_count) {
      MINREJ_REQUIRE(col_count_ >= 1, "substrate needs at least one column");
    }

    Builder& reserve(std::size_t rows, std::size_t entries) {
      rows_.reserve(rows);
      row_cols_.reserve(entries);
      return *this;
    }

    /// Appends one row.  `cols` must be sorted, unique, non-empty, and
    /// every id < col_count; `cost` must be positive and finite.
    Builder& add_row(std::span<const std::uint32_t> cols, double cost,
                     bool must_accept = false) {
      MINREJ_REQUIRE(!cols.empty(), "empty row in covering substrate");
      MINREJ_REQUIRE(cost > 0.0, "row cost must be positive");
      std::uint32_t prev = 0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        MINREJ_REQUIRE(cols[k] < col_count_, "row column id out of range");
        MINREJ_REQUIRE(k == 0 || cols[k] > prev,
                       "row columns must be sorted and unique");
        prev = cols[k];
      }
      CoveringRow row;
      row.begin = row_cols_.size();
      row.count = static_cast<std::uint32_t>(cols.size());
      row.must_accept = must_accept ? 1 : 0;
      row.cost = cost;
      rows_.push_back(row);
      row_cols_.insert(row_cols_.end(), cols.begin(), cols.end());
      total_cost_ += cost;
      if (cost < 1.0 - kUnitCostTolerance || cost > 1.0 + kUnitCostTolerance) {
        unit_costs_ = false;
      }
      return *this;
    }

    /// Set-cover binding: every column's capacity is its degree (the §4
    /// reduction's edge capacity |S_j|).
    CoveringInstance build_degree_capacities() && {
      return std::move(*this).build({});
    }

    /// Admission binding: per-column capacities supplied by the caller
    /// (size col_count, each >= 1).
    CoveringInstance build_with_capacities(
        std::span<const std::int64_t> capacities) && {
      MINREJ_REQUIRE(capacities.size() == col_count_,
                     "capacity vector size mismatch");
      return std::move(*this).build(capacities);
    }

   private:
    CoveringInstance build(std::span<const std::int64_t> capacities) && {
      MINREJ_REQUIRE(!rows_.empty(), "covering substrate needs rows");
      CoveringInstance out;
      out.rows_ = std::move(rows_);
      out.row_cols_ = std::move(row_cols_);
      out.total_cost_ = total_cost_;
      out.unit_costs_ = unit_costs_;

      // Cold reciprocal-cost column: consumers whose hot loops multiply by
      // 1/cost (the engines' divide-free step (b), the weighted-bicriteria
      // multiplicative update) read it instead of dividing per member.
      // Taken once here so every consumer sees the identical rounding.
      out.row_recip_cost_.reserve(out.rows_.size());
      for (const CoveringRow& row : out.rows_) {
        out.row_recip_cost_.push_back(1.0 / row.cost);
      }

      // Transpose by counting sort over the column ids.
      out.cols_.resize(col_count_);
      for (std::uint32_t c : out.row_cols_) ++out.cols_[c].count;
      std::uint64_t offset = 0;
      out.capacities_.resize(col_count_);
      for (std::size_t c = 0; c < col_count_; ++c) {
        CoveringCol& col = out.cols_[c];
        col.begin = offset;
        offset += col.count;
        col.capacity = capacities.empty()
                           ? static_cast<std::int64_t>(col.count)
                           : capacities[c];
        MINREJ_REQUIRE(col.capacity >= 0, "negative column capacity");
        out.capacities_[c] = col.capacity;
        out.max_capacity_ = std::max(out.max_capacity_, col.capacity);
      }
      out.col_rows_.resize(out.row_cols_.size());
      std::vector<std::uint64_t> cursor(col_count_);
      for (std::size_t c = 0; c < col_count_; ++c) {
        cursor[c] = out.cols_[c].begin;
      }
      for (std::size_t r = 0; r < out.rows_.size(); ++r) {
        const CoveringRow& row = out.rows_[r];
        for (std::uint64_t k = row.begin; k < row.begin + row.count; ++k) {
          out.col_rows_[cursor[out.row_cols_[k]]++] =
              static_cast<std::uint32_t>(r);
        }
      }
      return out;
    }

    /// Same tolerance SetSystem has always used for the unit-cost flag.
    static constexpr double kUnitCostTolerance = 1e-12;

    std::size_t col_count_ = 0;
    std::vector<CoveringRow> rows_;
    std::vector<std::uint32_t> row_cols_;
    double total_cost_ = 0.0;
    bool unit_costs_ = true;
  };

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t col_count() const noexcept { return cols_.size(); }
  /// Number of (row, col) incidences — the arena length of each direction.
  std::size_t entry_count() const noexcept { return row_cols_.size(); }

  /// Columns of row r (a request's edges / a set's elements), sorted.
  std::span<const std::uint32_t> cols_of(std::uint32_t r) const {
    MINREJ_REQUIRE(r < rows_.size(), "row id out of range");
    const CoveringRow& row = rows_[r];
    return {row_cols_.data() + row.begin, row.count};
  }
  /// Rows of column c (an edge's requests / the paper's S_j), sorted.
  std::span<const std::uint32_t> rows_of(std::uint32_t c) const {
    MINREJ_REQUIRE(c < cols_.size(), "column id out of range");
    const CoveringCol& col = cols_[c];
    return {col_rows_.data() + col.begin, col.count};
  }

  double row_cost(std::uint32_t r) const {
    MINREJ_REQUIRE(r < rows_.size(), "row id out of range");
    return rows_[r].cost;
  }
  /// 1 / row_cost(r), precomputed at build time (cold SoA column) so
  /// multiplicative-update hot loops run divide-free.
  double row_recip_cost(std::uint32_t r) const {
    MINREJ_REQUIRE(r < rows_.size(), "row id out of range");
    return row_recip_cost_[r];
  }
  bool row_must_accept(std::uint32_t r) const {
    MINREJ_REQUIRE(r < rows_.size(), "row id out of range");
    return rows_[r].must_accept != 0;
  }

  std::int64_t col_capacity(std::uint32_t c) const {
    MINREJ_REQUIRE(c < cols_.size(), "column id out of range");
    return cols_[c].capacity;
  }
  std::size_t col_degree(std::uint32_t c) const {
    MINREJ_REQUIRE(c < cols_.size(), "column id out of range");
    return cols_[c].count;
  }

  /// Flat per-column capacity array — the engine-binding view
  /// (CoveringSubstrateTraits reads this, never the 32-byte headers).
  std::span<const std::int64_t> capacities() const noexcept {
    return capacities_;
  }
  std::int64_t max_capacity() const noexcept { return max_capacity_; }

  double total_cost() const noexcept { return total_cost_; }
  /// True iff every row cost is exactly 1 (within the SetSystem tolerance).
  bool unit_costs() const noexcept { return unit_costs_; }

  std::string summary() const {
    return "rows=" + std::to_string(rows_.size()) +
           " cols=" + std::to_string(cols_.size()) +
           " nnz=" + std::to_string(row_cols_.size()) +
           (unit_costs_ ? " (unit costs)" : " (weighted)");
  }

 private:
  std::vector<CoveringRow> rows_;
  std::vector<CoveringCol> cols_;
  std::vector<std::uint32_t> row_cols_;  ///< arena: columns of every row
  std::vector<std::uint32_t> col_rows_;  ///< arena: rows of every column
  std::vector<double> row_recip_cost_;   ///< cold column: 1 / rows_[r].cost
  std::vector<std::int64_t> capacities_; ///< flat copy for engine binding
  std::int64_t max_capacity_ = 0;
  double total_cost_ = 0.0;
  bool unit_costs_ = true;
};

}  // namespace minrej

#include "core/fractional_admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

namespace {
constexpr double kUnitCostTolerance = 1e-9;
}

FractionalAdmission::FractionalAdmission(EngineSubstrate substrate,
                                         FractionalConfig config)
    : substrate_(substrate), config_(config),
      preload_(substrate.col_count, 0) {
  MINREJ_REQUIRE(config_.guard_factor > 0.0, "guard_factor must be positive");
  MINREJ_REQUIRE(substrate_.col_count >= 1, "substrate has no columns");
  MINREJ_REQUIRE(substrate_.capacities.size() == substrate_.col_count,
                 "substrate capacity span size mismatch");
  if (config_.unit_costs) {
    // Unweighted mode: g = 1, no classification, no α machinery; the
    // engine runs from the start with zero-weight floor 1/(g·c) = 1/c.
    phase_count_ = 1;
    engine_ = std::make_unique<FractionalEngine>(
        substrate_, 1.0 / static_cast<double>(std::max<std::int64_t>(
                              1, substrate_.max_capacity)));
  } else if (config_.fixed_alpha) {
    MINREJ_REQUIRE(*config_.fixed_alpha > 0.0, "fixed_alpha must be positive");
    alpha_ = *config_.fixed_alpha;
    start_phase();
  }
}

double FractionalAdmission::mc() const {
  return static_cast<double>(substrate_.col_count) *
         static_cast<double>(
             std::max<std::int64_t>(1, substrate_.max_capacity));
}

double FractionalAdmission::log_mc() const {
  return std::max(1.0, std::log2(2.0 * mc()));
}

double FractionalAdmission::guard_threshold() const {
  return config_.guard_factor * alpha_ * log_mc();
}

double FractionalAdmission::normalized_cost(double cost) const {
  MINREJ_CHECK(alpha_ > 0.0, "normalization requires α > 0");
  // Classification guarantees cost ∈ [α/(mc), 2α], so the normalized cost
  // lies in [1, 2mc]; clamp for numerical safety at the boundaries.
  return std::clamp(cost * mc() / alpha_, 1.0, 2.0 * mc());
}

void FractionalAdmission::classify_and_register(RequestId id,
                                                double carried_weight) {
  Record& rec = records_[id];
  const std::span<const EdgeId> edges = record_edges(id);
  MINREJ_CHECK(engine_ != nullptr, "no engine to register with");
  rec.engine_id = kInvalidId;
  if (rec.fully_rejected || rec.cost_class == CostClass::kAutoRejected) {
    return;
  }
  if (rec.cost_class == CostClass::kMustAccept) {
    rec.engine_id = engine_->pin(edges);
    engine_map_.push_back(id);
    return;
  }
  if (rec.cost_class == CostClass::kAutoAccepted) {
    // Classification is relative to the *current* α: once α has grown so
    // that cost <= 2α, the request is no longer "big" and rejoins the
    // engine as an ordinary (preemptible) request.
    if (!config_.unit_costs && rec.cost > 2.0 * alpha_) {
      rec.engine_id = engine_->pin(edges);
      engine_map_.push_back(id);
      return;
    }
    rec.cost_class = CostClass::kEngine;
  }
  if (!config_.unit_costs) {
    if (rec.cost < alpha_ / mc()) {
      // R_small: rejecting every such request is 2-competitive (§2).
      rec.cost_class = CostClass::kAutoRejected;
      rec.fully_rejected = true;
      paid_auto_rejected_ += rec.cost;
      return;
    }
    if (rec.cost > 2.0 * alpha_) {
      // R_big: accept permanently; it occupies capacity from now on.
      rec.cost_class = CostClass::kAutoAccepted;
      rec.engine_id = engine_->pin(edges);
      engine_map_.push_back(id);
      return;
    }
  }
  rec.engine_id = engine_->admit_existing(
      edges, config_.unit_costs ? 1.0 : normalized_cost(rec.cost),
      rec.cost, carried_weight);
  engine_map_.push_back(id);
}

void FractionalAdmission::start_phase() {
  MINREJ_CHECK(alpha_ > 0.0, "start_phase requires α > 0");
  ++phase_count_;
  // Carry every surviving request's weight into the new phase: §2 states
  // the weights only ever increase over the run.  "Forgetting" on a
  // doubling applies to the phase's cost accounting (moved into
  // paid_past_phases_), not to the weights themselves.
  std::vector<double> carried(records_.size(), 0.0);
  if (engine_) {
    paid_past_phases_ += engine_->fractional_cost();
    past_augmentations_ += engine_->augmentations();
    past_compactions_ += engine_->compactions();
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& rec = records_[i];
      if (rec.cost_class == CostClass::kEngine &&
          rec.engine_id != kInvalidId && !rec.fully_rejected) {
        carried[i] = std::min(engine_->weight(rec.engine_id),
                              1.0 - 1e-12);
      }
    }
  }
  const double g = 2.0 * mc();  // normalized cost spread (paper: g ≤ 2mc)
  const double c = static_cast<double>(
      std::max<std::int64_t>(1, substrate_.max_capacity));
  engine_ = std::make_unique<FractionalEngine>(substrate_,
                                               std::min(1.0, 1.0 / (g * c)));
  engine_map_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    classify_and_register(static_cast<RequestId>(i), carried[i]);
  }
}

std::vector<FractionalEngine::Delta> FractionalAdmission::translate_deltas(
    const std::vector<FractionalEngine::Delta>& deltas) {
  std::vector<FractionalEngine::Delta> out;
  out.reserve(deltas.size());
  for (const FractionalEngine::Delta& d : deltas) {
    MINREJ_CHECK(d.id < engine_map_.size(), "engine id unmapped");
    const RequestId wrapper_id = engine_map_[d.id];
    out.push_back({wrapper_id, d.delta});
    if (engine_->fully_rejected(d.id)) {
      records_[wrapper_id].fully_rejected = true;
    }
  }
  return out;
}

void FractionalAdmission::resolve_saturation(std::span<const EdgeId> edges,
                                             Arrival& arrival) {
  if (config_.unit_costs || config_.fixed_alpha || !engine_) return;
  // Doubling terminates: once 2α exceeds every request cost nothing is
  // pinned as "big" any more, so saturation can only persist through
  // must_accept pins — a genuinely infeasible instance the callers guard
  // against.  256 doublings cover any double-precision cost range.
  for (int round = 0; round < 256; ++round) {
    bool any_saturated = false;
    for (EdgeId e : edges) {
      if (engine_->saturated(e)) {
        any_saturated = true;
        break;
      }
    }
    if (!any_saturated) return;
    // Re-check that some non-must-accept request could still absorb the
    // excess after reclassification; otherwise the instance is infeasible.
    alpha_ *= 2.0;
    arrival.phase_reset = true;
    start_phase();
    const auto extra = translate_deltas(engine_->restore_edges(edges));
    arrival.deltas.insert(arrival.deltas.end(), extra.begin(), extra.end());
  }
  MINREJ_CHECK(false, "saturation unresolved after 256 α doublings — "
                      "must_accept load exceeds capacity?");
}

FractionalAdmission::Arrival FractionalAdmission::on_request(
    const Request& request) {
  return on_request(request.edges, request.cost, request.must_accept);
}

FractionalAdmission::Arrival FractionalAdmission::on_request(
    std::span<const EdgeId> edges, double cost, bool must_accept) {
  MINREJ_REQUIRE(!edges.empty(), "empty request");
  MINREJ_REQUIRE(cost > 0.0, "request cost must be positive");
  MINREJ_REQUIRE(std::is_sorted(edges.begin(), edges.end()) &&
                     std::adjacent_find(edges.begin(), edges.end()) ==
                         edges.end(),
                 "request edges must be sorted and unique");
  if (config_.unit_costs && !must_accept) {
    MINREJ_REQUIRE(std::abs(cost - 1.0) < kUnitCostTolerance,
                   "unit_costs mode requires cost == 1");
  }

  Arrival arrival;
  // Copy the edge list into the wrapper's flat arena first: `edges` may
  // alias caller storage that does not outlive the arrival, and the
  // record's span must survive phase rebuilds.
  Record rec;
  rec.edge_begin = edge_pool_.size();
  rec.edge_count = static_cast<std::uint32_t>(edges.size());
  rec.cost = cost;
  edge_pool_.insert(edge_pool_.end(), edges.begin(), edges.end());
  records_.push_back(rec);
  const auto id = static_cast<RequestId>(records_.size() - 1);
  const std::span<const EdgeId> stored = record_edges(id);
  for (EdgeId e : stored) {
    MINREJ_REQUIRE(e < substrate_.col_count, "request edge out of range");
    ++preload_[e];
  }

  // must_accept requests (reduction phase 2) are pinned unconditionally.
  if (must_accept) {
    records_[id].cost_class = CostClass::kMustAccept;
    arrival.cost_class = CostClass::kMustAccept;
    if (!engine_ && !config_.unit_costs && alpha_ <= 0.0) {
      // A pinned arrival can be the first overflow (reduction phase 2
      // starts exactly like this); α must be initialized from the
      // rejectable requests on the overloaded edge or the weights never
      // start moving.
      for (EdgeId e : stored) {
        if (preload_[e] <= substrate_.capacities[e]) continue;
        double min_cost = 0.0;
        bool found = false;
        for (std::size_t r = 0; r < records_.size(); ++r) {
          const Record& other = records_[r];
          if (other.cost_class == CostClass::kMustAccept) continue;
          const auto other_edges = record_edges(static_cast<RequestId>(r));
          if (std::binary_search(other_edges.begin(), other_edges.end(), e)) {
            min_cost = found ? std::min(min_cost, other.cost) : other.cost;
            found = true;
          }
        }
        MINREJ_REQUIRE(found,
                       "must_accept requests alone overflow an edge — "
                       "infeasible instance");
        alpha_ = min_cost;
        arrival.phase_reset = true;
        start_phase();  // pins this arrival via classify_and_register
        break;
      }
    }
    if (engine_) {
      if (records_[id].engine_id == kInvalidId) {
        records_[id].engine_id = engine_->pin(stored);
        engine_map_.push_back(id);
      }
      // A pinned arrival raises |ALIVE_e| on its edges, so the covering
      // invariant may now be violated there; restore it.
      arrival.deltas = translate_deltas(engine_->restore_edges(stored));
      resolve_saturation(stored, arrival);
    }
    return arrival;
  }

  // Weighted auto-α mode, α not yet known: nothing can need rejection
  // until the first overload, at which point α is initialized to the
  // cheapest request on the overloaded edge (paper §2).
  if (!config_.unit_costs && alpha_ <= 0.0) {
    EdgeId overflow_edge = kInvalidId;
    for (EdgeId e : stored) {
      if (preload_[e] > substrate_.capacities[e]) {
        overflow_edge = e;
        break;
      }
    }
    if (overflow_edge == kInvalidId) {
      return arrival;  // still under capacity everywhere; α stays unknown
    }
    double min_cost = records_[id].cost;
    for (std::size_t r = 0; r < records_.size(); ++r) {
      const Record& other = records_[r];
      if (other.cost_class == CostClass::kMustAccept) continue;
      const auto other_edges = record_edges(static_cast<RequestId>(r));
      if (std::binary_search(other_edges.begin(), other_edges.end(),
                             overflow_edge)) {
        min_cost = std::min(min_cost, other.cost);
      }
    }
    alpha_ = min_cost;
    arrival.phase_reset = true;
    start_phase();  // classifies and registers everything, incl. this one
    arrival.cost_class = records_[id].cost_class;
    if (records_[id].cost_class == CostClass::kEngine ||
        records_[id].cost_class == CostClass::kAutoAccepted) {
      // Passive admission skipped the augmentation loop for the arrival;
      // restore its edges' invariants now.
      arrival.deltas = translate_deltas(engine_->restore_edges(stored));
      resolve_saturation(stored, arrival);
    }
    return arrival;
  }

  // Classification against the current α (weighted mode).
  if (!config_.unit_costs) {
    if (cost < alpha_ / mc()) {
      records_[id].cost_class = CostClass::kAutoRejected;
      records_[id].fully_rejected = true;
      paid_auto_rejected_ += cost;
      arrival.cost_class = CostClass::kAutoRejected;
      return arrival;
    }
    if (cost > 2.0 * alpha_) {
      records_[id].cost_class = CostClass::kAutoAccepted;
      records_[id].engine_id = engine_->pin(stored);
      engine_map_.push_back(id);
      arrival.cost_class = CostClass::kAutoAccepted;
      arrival.deltas = translate_deltas(engine_->restore_edges(stored));
      resolve_saturation(stored, arrival);
      return arrival;
    }
  }

  // Engine path: the weight-augmentation arrival of §2.
  MINREJ_CHECK(engine_ != nullptr, "engine must exist here");
  const double update_cost =
      config_.unit_costs ? 1.0 : normalized_cost(cost);
  const auto& deltas = engine_->arrive(stored, update_cost, cost);
  records_[id].engine_id =
      static_cast<RequestId>(engine_->request_count() - 1);
  engine_map_.push_back(id);
  arrival.deltas = translate_deltas(deltas);
  resolve_saturation(stored, arrival);

  // Phase guard: a phase that spends more than Θ(α log(mc)) proves the
  // guess was too small; forget its fractions and double α.
  if (!config_.unit_costs && !config_.fixed_alpha &&
      engine_->fractional_cost() > guard_threshold()) {
    alpha_ *= 2.0;
    arrival.phase_reset = true;
    start_phase();
  }
  return arrival;
}

double FractionalAdmission::fractional_cost() const noexcept {
  return paid_auto_rejected_ + paid_past_phases_ +
         (engine_ ? engine_->fractional_cost() : 0.0);
}

std::uint64_t FractionalAdmission::augmentations() const noexcept {
  return past_augmentations_ + (engine_ ? engine_->augmentations() : 0);
}

std::uint64_t FractionalAdmission::compactions() const noexcept {
  return past_compactions_ + (engine_ ? engine_->compactions() : 0);
}

double FractionalAdmission::weight(RequestId id) const {
  MINREJ_REQUIRE(id < records_.size(), "unknown request id");
  const Record& rec = records_[id];
  if (rec.fully_rejected) return 1.0;
  switch (rec.cost_class) {
    case CostClass::kAutoRejected:
      return 1.0;
    case CostClass::kAutoAccepted:
    case CostClass::kMustAccept:
      return 0.0;
    case CostClass::kEngine:
      if (rec.engine_id == kInvalidId || !engine_) return 0.0;
      return std::min(1.0, engine_->weight(rec.engine_id));
  }
  return 0.0;
}

bool FractionalAdmission::fully_rejected(RequestId id) const {
  MINREJ_REQUIRE(id < records_.size(), "unknown request id");
  return records_[id].fully_rejected;
}

CostClass FractionalAdmission::cost_class(RequestId id) const {
  MINREJ_REQUIRE(id < records_.size(), "unknown request id");
  return records_[id].cost_class;
}

}  // namespace minrej

// randomized_admission.h — the randomized online algorithm of paper §3.
//
// Runs the fractional algorithm of §2 underneath and rounds its monotone
// weights online:
//   1. perform the weight augmentations of the fractional algorithm;
//   2. reject every request whose weight reaches 1/(F·L);
//   3. for every request whose weight grew by δ this arrival, reject it
//      with probability F·δ·L;
//   4. if the arriving request still cannot be accepted (some edge would
//      exceed capacity), reject it; otherwise accept.
//
// Weighted case (Theorem 3):  F = 12, L = log2(mc)  → O(log²(mc)).
// Unweighted case (Theorem 4): F = 4,  L = log2(m)   → O(log m · log c).
//
// Deviations needed to make the integral algorithm total (both discussed
// in DESIGN.md §4.2):
//   * auto-accepted (R_big) and must-accept arrivals that would overflow an
//     edge preempt the accepted request with the largest fractional weight
//     there (the paper treats big requests as always acceptable because
//     fractionally they are; integrally a victim must be named);
//   * the §3 guard "|REQ_e| < 4mc²" is enforced: once an edge accumulates
//     that many requests, everything on it is rejected (2-competitive by
//     the paper's argument).
#pragma once

#include <cstdint>
#include <optional>

#include "core/fractional_admission.h"
#include "core/online_admission.h"
#include "util/rng.h"

namespace minrej {

/// Which accepted request step 4 preempts when a must-accept/auto-accepted
/// arrival needs room.  The paper's analysis rounds fractional weights, so
/// the largest-weight victim is the canonical choice; the alternatives
/// exist for the E12 ablation.
enum class VictimPolicy : std::uint8_t { kMaxWeight, kRandom, kCheapest };

struct RandomizedConfig {
  /// Unweighted mode (all costs 1): threshold/probability factor F = 4 and
  /// L = log2 m, per Theorem 4.  Weighted mode: F = 12, L = log2(mc).
  bool unit_costs = false;
  /// Override for the factor F.  The paper's constants (12 / 4) come from
  /// the Chernoff argument and are loose in practice; E2/E3 also report a
  /// calibrated F to expose the asymptotic shape on small instances.
  std::optional<double> factor;
  /// Underlying fractional algorithm configuration.
  FractionalConfig fractional;
  /// Enforce the |REQ_e| < 4mc² guard of §3 (on by default).
  bool edge_request_cap = true;
  /// Ablation switches (E12): disable the deterministic threshold
  /// rejection (step 2) or the randomized rejection (step 3).  With both
  /// off the algorithm degenerates to greedy-no-preempt — the weights are
  /// computed but never acted upon.
  bool step2_threshold = true;
  bool step3_random = true;
  VictimPolicy victim_policy = VictimPolicy::kMaxWeight;
  std::uint64_t seed = 1;
};

/// The §3 randomized rounding algorithm, weighted or unweighted.
class RandomizedAdmission : public OnlineAdmissionAlgorithm {
 public:
  RandomizedAdmission(const Graph& graph, RandomizedConfig config = {});

  std::string name() const override;

  /// The underlying fractional state (tests and experiments).
  const FractionalAdmission& fractional() const noexcept { return frac_; }

  /// Rejection threshold 1/(F·L) currently in force.
  double weight_threshold() const noexcept { return 1.0 / (factor_ * log_); }

  /// Cumulative §2 weight-augmentation steps of the underlying fractional
  /// algorithm (all phases).
  std::uint64_t augmentation_steps() const noexcept override {
    return frac_.augmentations();
  }

  bool snapshot_supported() const noexcept override { return true; }

 protected:
  ArrivalResult handle(RequestId id, const Request& request) override;
  void save_extra(SnapshotWriter& w) const override;
  void load_extra(SnapshotReader& r) override;

 private:
  /// Accepted, preemptable victim on edge e that is not already marked for
  /// rejection this arrival (or nullopt), chosen by the configured
  /// VictimPolicy.  Non-const: the kRandom policy draws from the rng.
  std::optional<RequestId> pick_victim(EdgeId e, RequestId arriving,
                                       const std::vector<bool>& marked);

  /// Fractional weight of base-id request i, or 0 if i never reached the
  /// fractional layer (a load-shed arrival — see base_of_frac_ below).
  double frac_weight_of_base(RequestId i) const;

  RandomizedConfig config_;
  FractionalAdmission frac_;
  Rng rng_;
  double factor_ = 12.0;
  double log_ = 1.0;
  std::vector<std::int64_t> edge_requests_;  // |REQ_e| for the §3 cap
  std::vector<bool> edge_capped_;            // edge hit the 4mc² guard
  std::int64_t cap_ = 0;
  /// Base-id ↔ fractional-id translation.  Historically the two spaces
  /// were identical (every process() call produced exactly one
  /// frac_.on_request), but process_shed arrivals bypass handle() and
  /// consume a base id without a fractional record, so the §3 layer must
  /// translate explicitly: base_of_frac_[f] is the base id of fractional
  /// record f, frac_of_base_[b] is the fractional id of base request b or
  /// kInvalidId for shed arrivals.  Without shedding both maps are the
  /// identity and every trajectory is unchanged.
  std::vector<RequestId> base_of_frac_;
  std::vector<RequestId> frac_of_base_;
};

}  // namespace minrej

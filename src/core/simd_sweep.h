// simd_sweep.h — the data-parallel kernel layer under the flat engine's
// hot loops (DESIGN.md §8).
//
// The fused (a)+(b)+(c) augmentation sweep and the covering-sum rescan are
// lane-parallel over the 32-byte EngineHotRow array: per member the sweep
// gathers {weight, 1/p_i}, computes min(base · (1 + (1/n_e)·(1/p_i)),
// clamp), and classifies the lane (first touch this arrival / newly dead /
// survivor).  This header exposes those two loops as free-function kernels
// with three implementations behind one dispatch point:
//
//   * scalar   — straight-line reference, compiled everywhere; performs
//                the per-member arithmetic in exactly the lane order and
//                operation sequence of the vector kernels (one multiply,
//                one add, one multiply, one min per member), so any build
//                and any CPU produce bitwise-identical weight streams;
//   * avx2     — 4-lane gathers + vector arithmetic, per-lane scalar
//                stores (AVX2 has no scatter);
//   * avx512   — 8-lane gathers, scatters for the write-backs, and
//                compress stores for the in-place survivor compaction and
//                the touched/death id streams; blocks of 8 *consecutive*
//                ids (the common case on id-sorted lists under burst
//                traffic) skip the gathers/scatters for plain 64-byte
//                loads/stores plus qword permutes over the contiguous
//                8-row stripe.
//
// The dispatchers additionally route lists shorter than ~4 vector blocks
// to the scalar kernel on every tier — below that the vector prologue
// and gather latency cost more than the lanes save (measured on the
// power-law duel, median list ≈ 10 members).
//
// Selection happens once per process in util/build_info.cpp (sweep_isa():
// MINREJ_NO_SIMD build flag > MINREJ_SWEEP_ISA env clamp > cpuid) so the
// provenance stamp in every BENCH_*.json names the kernel that actually
// ran.  Vector builds are emitted via function-level target attributes —
// the translation unit itself compiles with the baseline flags, so the
// binary stays runnable on any x86-64 (and any other arch: the non-GNU /
// non-x86 path compiles the scalar kernel only).
//
// Bit-identity contract (§3.2, §3.3): per-lane weight arithmetic is
// identical across kernels because every operation is elementwise IEEE
// with one rounding (no FMA contraction — the multiplier is mul-then-add
// on purpose, so the scalar fallback needs no correctly-rounded libm fma).
// Only the *accumulation order* of the returned covering-sum contribution
// differs (vector kernels keep per-lane partial sums); the engine's
// termination band check re-derives boundary decisions with an exact
// member-order rescan, which stays scalar inside the engine, so both the
// SIMD and scalar builds take augmentation decisions bit-identical to the
// naive reference engine.  The differential suite runs both kernels
// against the reference in-process (set_sweep_isa_for_tests below).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine_types.h"
#include "graph/types.h"

namespace minrej::simd {

enum class SweepIsa : std::uint8_t { kScalar, kAvx2, kAvx512 };

/// The process-wide kernel tier, resolved once from util/build_info.cpp's
/// sweep_isa() string (the single source of truth the BENCH stamp uses).
SweepIsa active_sweep_isa() noexcept;

/// "scalar" / "avx2" / "avx512".
const char* sweep_isa_name(SweepIsa isa) noexcept;

/// Test hook: forces every engine constructed afterwards onto the given
/// tier, clamped to what this CPU supports (so a test requesting avx512 on
/// an avx2 machine degrades instead of faulting).  Returns the tier that
/// will actually run.  The differential suite uses this to drive the
/// scalar and vector kernels through identical workloads in one process.
SweepIsa set_sweep_isa_for_tests(SweepIsa isa) noexcept;
/// Clears the test override.
void clear_sweep_isa_override() noexcept;

/// Result of one fused sweep: the net covering-sum change of the swept
/// edge (survivors contribute new−old, deaths −old) and the compacted
/// member-list length.
struct SweepStepResult {
  double step_sum = 0.0;
  std::size_t new_size = 0;
};

/// One fused (a)+(b)+(c) pass over a member list with in-place survivor
/// compaction.  For every listed member still alive (weight < 1):
///   base = weight == 0 ? zero_init : weight            (step a)
///   w    = base * (1.0 + inv_ne * inv_update_cost)     (step b, mul+add)
///   new  = min(w, kEngineWeightClamp)
/// first-touch bookkeeping (weight_at_touch, touch_epoch, id appended to
/// `touched`) happens for lanes whose touch_epoch != epoch; lanes crossing
/// new ≥ 1 are appended to `deaths` (step c — the caller owns the count
/// bookkeeping) and dropped from the list; entries already dead at load
/// are dropped silently.  Throws InternalError if any weight goes NaN or
/// negative (entries already processed keep their stores — tripwire, not
/// a transaction).
SweepStepResult sweep_step(SweepIsa isa, RequestId* list, std::size_t size,
                           EngineHotRow* rows, double inv_ne,
                           double zero_init, std::uint64_t epoch,
                           std::vector<RequestId>& touched,
                           std::vector<RequestId>& deaths);

/// Σ weight over listed members with weight < 1 — the cache-refresh sum
/// for covering-sum reconciliation (DESIGN.md §8).  Vector tiers
/// accumulate in lanes, so the result may differ from the member-order sum
/// by IEEE reassociation noise; it feeds only the incremental cache, whose
/// drift budget (the §3.2 band) is nine orders of magnitude wider.  The
/// *decision* rescan (FlatFractionalEngine::exact_alive_sum) stays scalar
/// member-order and never routes through here.
double alive_sum(SweepIsa isa, const RequestId* list, std::size_t size,
                 const EngineHotRow* rows);

}  // namespace minrej::simd

#include "core/online_setcover.h"

#include "util/check.h"

namespace minrej {

OnlineSetCoverAlgorithm::OnlineSetCoverAlgorithm(const SetSystem& system)
    : system_(system), chosen_(system.set_count(), false),
      demand_(system.element_count(), 0),
      covered_(system.element_count(), 0) {}

std::int64_t OnlineSetCoverAlgorithm::demand(ElementId j) const {
  MINREJ_REQUIRE(j < demand_.size(), "element out of range");
  return demand_[j];
}

std::int64_t OnlineSetCoverAlgorithm::covered(ElementId j) const {
  MINREJ_REQUIRE(j < covered_.size(), "element out of range");
  return covered_[j];
}

std::vector<SetId> OnlineSetCoverAlgorithm::on_element(ElementId j) {
  MINREJ_REQUIRE(j < system_.element_count(), "element out of range");
  MINREJ_REQUIRE(
      demand_[j] < static_cast<std::int64_t>(system_.degree(j)),
      "element requested more times than it has covering sets — infeasible");
  ++demand_[j];

  std::vector<SetId> added = handle_element(j);
  for (SetId s : added) {
    MINREJ_CHECK(s < chosen_.size(), "unknown set id");
    MINREJ_CHECK(!chosen_[s], "algorithm chose an already-chosen set");
    chosen_[s] = true;
    ++chosen_count_;
    cost_ += system_.cost(s);
    for (ElementId covered_elem : system_.elements_of(s)) {
      ++covered_[covered_elem];
    }
  }

  // Contract: the promised coverage level must hold after every arrival.
  const std::int64_t need =
      std::min<std::int64_t>(required_coverage(demand_[j]),
                             static_cast<std::int64_t>(system_.degree(j)));
  MINREJ_CHECK(covered_[j] >= need,
               "online set cover contract violated after arrival");
  return added;
}

ReductionSetCover::ReductionSetCover(const SetSystem& system,
                                     RandomizedConfig config)
    : OnlineSetCoverAlgorithm(system), view_(system),
      star_(view_.star_graph()) {
  config.unit_costs = system.unit_costs();
  admission_ = std::make_unique<RandomizedAdmission>(star_, config);

  // Phase 1: one request per set, streamed from the substrate arena;
  // every edge lands exactly at capacity, so all of them are accepted (no
  // augmentation is triggered).
  for (SetId s = 0; s < static_cast<SetId>(view_.phase1_count()); ++s) {
    const ArrivalResult r = admission_->process(
        Request::from_sorted(view_.phase1_edges(s), view_.phase1_cost(s)));
    MINREJ_CHECK(r.accepted && r.preempted.empty(),
                 "phase-1 request unexpectedly rejected or preempting");
  }
}

std::vector<SetId> ReductionSetCover::handle_element(ElementId j) {
  const ArrivalResult r = admission_->process(view_.element_request(j));
  MINREJ_CHECK(r.accepted, "phase-2 request must be accepted");

  // Preempted phase-1 requests are the newly chosen sets.  (Phase-2
  // requests are must_accept and can never be preempted.)
  std::vector<SetId> added;
  added.reserve(r.preempted.size());
  for (RequestId i : r.preempted) {
    MINREJ_CHECK(i < view_.phase1_count(),
                 "preempted a phase-2 request — reduction broken");
    added.push_back(static_cast<SetId>(i));
  }
  return added;
}

}  // namespace minrej

#include "core/fractional_setcover.h"

#include "util/check.h"

namespace minrej {

FractionalSetCover::FractionalSetCover(const SetSystem& system,
                                       FractionalConfig config,
                                       ReductionMode mode)
    : system_(system), mode_(mode), view_(system),
      demand_(system.element_count(), 0) {
  config.unit_costs = system.unit_costs();
  if (mode_ == ReductionMode::kView) {
    // Zero-copy binding: the engine reads capacities straight from the
    // substrate (capacity = degree) and phase-1 edge lists are the
    // substrate's own arena spans.
    admission_ =
        std::make_unique<FractionalAdmission>(system_.substrate(), config);
    for (SetId s = 0; s < static_cast<SetId>(view_.phase1_count()); ++s) {
      admission_->on_request(view_.phase1_edges(s), view_.phase1_cost(s));
    }
  } else {
    materialized_.emplace(build_reduction(system));
    admission_ =
        std::make_unique<FractionalAdmission>(materialized_->graph, config);
    for (const Request& r : materialized_->phase1) {
      admission_->on_request(r);
    }
  }
  // Either way, phase 1 lands every edge exactly at capacity, so no
  // weight moves yet.
}

void FractionalSetCover::on_element(ElementId j) {
  MINREJ_REQUIRE(j < system_.element_count(), "element out of range");
  MINREJ_REQUIRE(
      demand_[j] < static_cast<std::int64_t>(system_.degree(j)),
      "element requested more times than it has covering sets — infeasible");
  ++demand_[j];
  // Phase-2 arrival: a single-edge must-accept span (view) or Request
  // (materialized) — identical content either way.
  admission_->on_request(view_.element_edges(j), 1.0, /*must_accept=*/true);
}

double FractionalSetCover::fraction(SetId s) const {
  MINREJ_REQUIRE(s < system_.set_count(), "set id out of range");
  // Phase-1 requests received wrapper ids 0..m-1 in order.
  return admission_->weight(static_cast<RequestId>(s));
}

double FractionalSetCover::coverage(ElementId j) const {
  MINREJ_REQUIRE(j < system_.element_count(), "element out of range");
  double total = 0.0;
  for (SetId s : system_.sets_of(j)) total += fraction(s);
  return total;
}

std::int64_t FractionalSetCover::demand(ElementId j) const {
  MINREJ_REQUIRE(j < demand_.size(), "element out of range");
  return demand_[j];
}

}  // namespace minrej

#include "core/fractional_setcover.h"

#include "util/check.h"

namespace minrej {

FractionalSetCover::FractionalSetCover(const SetSystem& system,
                                       FractionalConfig config)
    : system_(system), reduction_(build_reduction(system)),
      demand_(system.element_count(), 0) {
  config.unit_costs = system.unit_costs();
  admission_ =
      std::make_unique<FractionalAdmission>(reduction_.graph, config);
  // Phase 1: one request per set; every edge lands exactly at capacity,
  // so no weight moves yet.
  for (const Request& r : reduction_.phase1) {
    admission_->on_request(r);
  }
}

void FractionalSetCover::on_element(ElementId j) {
  MINREJ_REQUIRE(j < system_.element_count(), "element out of range");
  MINREJ_REQUIRE(
      demand_[j] < static_cast<std::int64_t>(system_.degree(j)),
      "element requested more times than it has covering sets — infeasible");
  ++demand_[j];
  admission_->on_request(reduction_.element_request(j));
}

double FractionalSetCover::fraction(SetId s) const {
  MINREJ_REQUIRE(s < system_.set_count(), "set id out of range");
  // Phase-1 requests received wrapper ids 0..m-1 in order.
  return admission_->weight(static_cast<RequestId>(s));
}

double FractionalSetCover::coverage(ElementId j) const {
  MINREJ_REQUIRE(j < system_.element_count(), "element out of range");
  double total = 0.0;
  for (SetId s : system_.sets_of(j)) total += fraction(s);
  return total;
}

std::int64_t FractionalSetCover::demand(ElementId j) const {
  MINREJ_REQUIRE(j < demand_.size(), "element out of range");
  return demand_[j];
}

}  // namespace minrej

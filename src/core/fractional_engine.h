// fractional_engine.h — the weight-augmentation engine of paper §2.
//
// This is the primal-dual core everything else builds on.  It maintains a
// monotone non-decreasing weight f_i per request (the *rejected fraction*,
// capped at 1), and on each arrival restores, for every edge e of the new
// request, the covering invariant
//
//     Σ_{i ∈ ALIVE_e} f_i  ≥  n_e  :=  |ALIVE_e| − c_e
//
// by weight augmentations (paper steps 2a–2c):
//   (a) every alive zero-weight request on e jumps to the floor 1/(g·c);
//   (b) every alive request on e is multiplied by (1 + 1/(n_e · p_i));
//   (c) requests crossing f_i ≥ 1 become fully rejected and leave every
//       ALIVE list (which lowers n_e).
//
// Two deviations from the paper's bare setting, both needed by the layers
// above and both analysed in DESIGN.md §4:
//   * pinned requests (paper §2's "completely accept requests of cost
//     exceeding 2α" and §4's must-accept phase-2 element requests): they
//     occupy capacity and count toward |ALIVE_e| but carry no weight and
//     are never augmented;
//   * if every augmentable request on an edge is already fully rejected the
//     augmentation loop stops (the invariant is unsatisfiable; the α-
//     doubling wrapper detects the blow-up through the cost guard).
//
// Costs come in two flavours per request: `update_cost` (the normalized
// p_i the multiplicative step uses — the §2 analysis assumes these lie in
// [1, g]) and `report_cost` (raw units for the objective Σ min(f_i,1)·p_i).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace minrej {

/// Weight-augmentation engine (one instance per α-phase).
class FractionalEngine {
 public:
  /// One request's weight increase during a single arrival.
  struct Delta {
    RequestId id = 0;
    double delta = 0.0;  ///< f_new − f_old (f capped at 1 for reporting)
  };

  /// Ceiling for stored weights.  Any weight ≥ 1 means "fully rejected" and
  /// is reported as 1, so values beyond this clamp carry no information —
  /// but without it an adversarially small update_cost could push a weight
  /// toward overflow/inf through the multiplicative step.
  static constexpr double kWeightClamp = 2.0;

  /// `zero_init` is the paper's 1/(g·c) floor for step (a); must be in
  /// (0, 1).
  FractionalEngine(const Graph& graph, double zero_init);

  /// Registers a permanently-accepted request occupying capacity on
  /// `edges` (no weight, never rejected).  Returns its id.
  RequestId pin(const std::vector<EdgeId>& edges);

  /// Registers an augmentable request WITHOUT running the augmentation
  /// loop.  Used by the α-doubling wrapper when a new phase re-admits the
  /// surviving requests of the previous phase under the new normalization.
  /// `initial_weight` carries the request's weight forward — §2 states the
  /// weights are monotone over the whole run, so a phase change must not
  /// reset them (only the phase's *cost accounting* restarts; the carried
  /// weight is already paid for).  Must be in [0, 1).
  RequestId admit_existing(const std::vector<EdgeId>& edges,
                           double update_cost, double report_cost,
                           double initial_weight = 0.0);

  /// Processes the arrival of an augmentable request.  Runs the
  /// augmentation loop on each of its edges (in the given order) and
  /// returns the per-request weight increases of this arrival, including
  /// the arriving request itself.  The returned reference is valid until
  /// the next arrive()/pin()/restore_edges() call.
  const std::vector<Delta>& arrive(const std::vector<EdgeId>& edges,
                                   double update_cost, double report_cost);

  /// Runs the augmentation loop on the given edges without a new arrival
  /// (used right after a phase rebuild, when the triggering request was
  /// admitted passively).  Returns the weight increases, same contract as
  /// arrive().
  const std::vector<Delta>& restore_edges(const std::vector<EdgeId>& edges);

  std::size_t request_count() const noexcept { return requests_.size(); }

  double weight(RequestId id) const;
  bool is_pinned(RequestId id) const;
  /// f_i >= 1: the fractional solution rejects this request completely.
  bool fully_rejected(RequestId id) const;

  /// Σ_i min(f_i, 1) · report_cost_i — the fractional objective (§2).
  double fractional_cost() const noexcept { return fractional_cost_; }

  /// Total number of weight-augmentation steps so far (Lemma 1 bounds
  /// this by O(α log(g·c))).
  std::uint64_t augmentations() const noexcept { return augmentations_; }

  /// Test hook: invoked after every single augmentation step with the
  /// edge that was augmented.  The Lemma-1 white-box test uses this to
  /// verify the paper's potential Φ = Π max(f_i, 1/gc)^{f*_i·p_i} at
  /// least doubles per step.  Null by default; keep the callback cheap.
  void set_augmentation_observer(std::function<void(EdgeId)> observer) {
    observer_ = std::move(observer);
  }

  // -- introspection for tests and the randomized layer ---------------------

  /// n_e = |ALIVE_e| − c_e (alive = not fully rejected, incl. pinned).
  std::int64_t excess(EdgeId e) const;
  /// Σ of weights of alive augmentable requests on e.
  double alive_weight_sum(EdgeId e) const;
  /// Invariant of §2: true iff alive_weight_sum(e) >= excess(e), or the
  /// edge has no augmentable alive request left.
  bool constraint_satisfied(EdgeId e) const;
  /// True iff the edge has positive excess but no augmentable alive
  /// request — the covering constraint is unsatisfiable at the current
  /// classification.  In auto-α mode this is proof that α is too small
  /// (only pinned cost->2α requests remain, and OPT must reject fractions
  /// of them), so the wrapper doubles α on this signal.
  bool saturated(EdgeId e) const;
  /// Alive augmentable request ids on edge e (compacted view).
  std::vector<RequestId> alive_requests(EdgeId e) const;

 private:
  struct RequestRecord {
    std::vector<EdgeId> edges;
    double weight = 0.0;
    double update_cost = 1.0;
    double report_cost = 1.0;
    bool pinned = false;
    bool alive = true;  ///< weight < 1 (pinned requests stay alive forever)
    // Delta bookkeeping for the current arrival.
    std::uint64_t touch_epoch = 0;
    double weight_at_touch = 0.0;
  };

  /// Runs the §2 augmentation loop for one edge.
  void augment_edge(EdgeId e);

  /// Removes dead entries from an edge's member list (lazy deletion).
  void compact(EdgeId e);

  void touch(RequestId id);
  void mark_fully_rejected(RequestId id);

  const Graph& graph_;
  double zero_init_;
  std::vector<RequestRecord> requests_;
  // Augmentable members per edge (alive and dead; compacted lazily).
  std::vector<std::vector<RequestId>> members_;
  std::vector<std::int64_t> alive_count_;   // augmentable alive per edge
  std::vector<std::int64_t> pinned_count_;  // pinned per edge
  double fractional_cost_ = 0.0;
  std::uint64_t augmentations_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<RequestId> touched_;  // requests touched this arrival
  std::vector<Delta> deltas_;       // output buffer
  std::function<void(EdgeId)> observer_;
};

}  // namespace minrej

// fractional_engine.h — the weight-augmentation engine of paper §2.
//
// This is the primal-dual core everything else builds on.  It maintains a
// monotone non-decreasing weight f_i per request (the *rejected fraction*,
// capped at 1), and on each arrival restores, for every edge e of the new
// request, the covering invariant
//
//     Σ_{i ∈ ALIVE_e} f_i  ≥  n_e  :=  |ALIVE_e| − c_e
//
// by weight augmentations (paper steps 2a–2c):
//   (a) every alive zero-weight request on e jumps to the floor 1/(g·c);
//   (b) every alive request on e is multiplied by (1 + 1/(n_e · p_i));
//   (c) requests crossing f_i ≥ 1 become fully rejected and leave every
//       ALIVE list (which lowers n_e).
//
// Two deviations from the paper's bare setting, both needed by the layers
// above and both analysed in DESIGN.md §4:
//   * pinned requests (paper §2's "completely accept requests of cost
//     exceeding 2α" and §4's must-accept phase-2 element requests): they
//     occupy capacity and count toward |ALIVE_e| but carry no weight and
//     are never augmented;
//   * if every augmentable request on an edge is already fully rejected the
//     augmentation loop stops (the invariant is unsatisfiable; the α-
//     doubling wrapper detects the blow-up through the cost guard).
//
// Costs come in two flavours per request: `update_cost` (the normalized
// p_i the multiplicative step uses — the §2 analysis assumes these lie in
// [1, g]) and `report_cost` (raw units for the objective Σ min(f_i,1)·p_i).
//
// FlatFractionalEngine is the production implementation (DESIGN.md §3):
// structure-of-arrays request storage over a CSR-style request→edge
// incidence arena (one flat EdgeId pool plus per-request offsets — no
// per-request heap vector), with the per-edge covering sums and dead
// counts maintained *incrementally* so the augmentation-loop termination
// check, constraint_satisfied(), alive_weight_sum(), and saturated() are
// all O(1) and the paper's three per-step passes fuse into a single
// cache-friendly sweep.  The sweep and the cache-refresh rescan run on the
// data-parallel kernel layer of core/simd_sweep.h (scalar / AVX2 / AVX-512,
// selected once per process; DESIGN.md §8).  Member lists are compacted
// only when their dead fraction crosses a threshold (amortized O(1) per
// death).  Edges whose member lists are tiny (≤ the small-list threshold)
// opt out of the incremental-sum machinery entirely and run naive-style
// inline scans — the small-degree fast path of DESIGN.md §7.3, which
// removes the flat engine's bookkeeping overhead in the tiny-list regime
// §5 documents.
//
// Covering-sum upkeep is *lazy across arrivals* (the delta journal of
// DESIGN.md §8): a touched request with a narrow incidence row patches its
// edges' caches eagerly at arrival end, while a wide row appends one
// (id, Δ) journal entry instead of walking its whole row; an edge's cache
// is reconciled with the pending journal suffix only when it is actually
// read, choosing between a segment scan and a fresh kernel rescan by an
// integer cost estimate.  On overlap-shaped workloads (many wide rows,
// rare augmentation) this replaces the old per-arrival O(row degree)
// fix-up walk — the §7.5 regression — with work proportional to what is
// read.
//
// The engine binds to its substrate — the per-edge capacity array — at
// compile time through CoveringSubstrateTraits (substrate_traits.h):
// construct it from a Graph (admission control) or from a CoveringInstance
// (set cover, where capacity = element degree per the §4 reduction) and
// the hot loop indexes the same flat span either way.  The retained
// reference implementation lives in naive_engine.h; the FractionalEngine
// alias at the bottom of this header selects between them at compile time
// (-DMINREJ_NAIVE_ENGINE=ON), and the differential test suite holds the
// two to identical outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/engine_types.h"
#include "core/simd_sweep.h"
#include "core/substrate_traits.h"
#include "graph/types.h"
#include "util/spsc_ring.h"  // CacheAlignedAllocator for the hot-row arena

namespace minrej {

class SnapshotWriter;
class SnapshotReader;

/// Flat-storage weight-augmentation engine (one instance per α-phase).
class FlatFractionalEngine {
 public:
  using Delta = WeightDelta;

  static constexpr double kWeightClamp = kEngineWeightClamp;

  /// Default small-list threshold: member lists at or below this length
  /// take the small-degree fast path (inline exact scans, no
  /// incremental-sum or compaction bookkeeping — DESIGN.md §7.3).  An
  /// edge's covering-sum cache is trusted only while its list is longer
  /// than this; crossing the threshold resynchronizes it exactly.  The
  /// per-engine value is constructor-tunable (the §7.3 calibration note
  /// records how 48 was chosen); tests may pass extreme values to force
  /// either regime everywhere.
  static constexpr std::size_t kSmallListThreshold = 48;

  /// Binds the engine to its substrate view.  `zero_init` is the paper's
  /// 1/(g·c) floor for step (a); must be in (0, 1].
  /// `small_list_threshold` tunes the §7.3 fast-path boundary (0 pushes
  /// every non-empty list into the incremental regime).
  FlatFractionalEngine(EngineSubstrate substrate, double zero_init,
                       std::size_t small_list_threshold = kSmallListThreshold);

  /// Compile-time substrate binding: anything with CoveringSubstrateTraits
  /// (a Graph, a CoveringInstance) constructs the engine directly.
  template <typename S>
  FlatFractionalEngine(const S& substrate, double zero_init,
                       std::size_t small_list_threshold = kSmallListThreshold)
      : FlatFractionalEngine(CoveringSubstrateTraits<S>::bind(substrate),
                             zero_init, small_list_threshold) {}

  /// Registers a permanently-accepted request occupying capacity on
  /// `edges` (no weight, never rejected).  Returns its id.
  RequestId pin(std::span<const EdgeId> edges);
  RequestId pin(std::initializer_list<EdgeId> edges) {
    return pin(std::span<const EdgeId>(edges.begin(), edges.size()));
  }

  /// Registers an augmentable request WITHOUT running the augmentation
  /// loop.  Used by the α-doubling wrapper when a new phase re-admits the
  /// surviving requests of the previous phase under the new normalization.
  /// `initial_weight` carries the request's weight forward — §2 states the
  /// weights are monotone over the whole run, so a phase change must not
  /// reset them (only the phase's *cost accounting* restarts; the carried
  /// weight is already paid for).  Must be in [0, 1).
  RequestId admit_existing(std::span<const EdgeId> edges, double update_cost,
                           double report_cost, double initial_weight = 0.0);
  RequestId admit_existing(std::initializer_list<EdgeId> edges,
                           double update_cost, double report_cost,
                           double initial_weight = 0.0) {
    return admit_existing(std::span<const EdgeId>(edges.begin(), edges.size()),
                          update_cost, report_cost, initial_weight);
  }

  /// Processes the arrival of an augmentable request.  Runs the
  /// augmentation loop on each of its edges (in the given order) and
  /// returns the per-request weight increases of this arrival (in
  /// increasing request id), including the arriving request itself.  The
  /// returned reference is valid until the next arrive()/pin()/
  /// restore_edges() call.
  const std::vector<Delta>& arrive(std::span<const EdgeId> edges,
                                   double update_cost, double report_cost);
  const std::vector<Delta>& arrive(std::initializer_list<EdgeId> edges,
                                   double update_cost, double report_cost) {
    return arrive(std::span<const EdgeId>(edges.begin(), edges.size()),
                  update_cost, report_cost);
  }

  /// Runs the augmentation loop on the given edges without a new arrival
  /// (used right after a phase rebuild, when the triggering request was
  /// admitted passively).  Returns the weight increases, same contract as
  /// arrive().
  const std::vector<Delta>& restore_edges(std::span<const EdgeId> edges);
  const std::vector<Delta>& restore_edges(std::initializer_list<EdgeId> edges) {
    return restore_edges(std::span<const EdgeId>(edges.begin(), edges.size()));
  }

  std::size_t request_count() const noexcept { return hot_.size(); }

  double weight(RequestId id) const;
  bool is_pinned(RequestId id) const;
  /// f_i >= 1: the fractional solution rejects this request completely.
  bool fully_rejected(RequestId id) const;

  /// Σ_i min(f_i, 1) · report_cost_i — the fractional objective (§2).
  double fractional_cost() const noexcept { return fractional_cost_; }

  /// Total number of weight-augmentation steps so far (Lemma 1 bounds
  /// this by O(α log(g·c))).
  std::uint64_t augmentations() const noexcept { return augmentations_; }

  /// Member-list compaction passes.  Gated on the incrementally-tracked
  /// per-edge dead count crossing half the list, so an augmentation loop
  /// in which nothing died performs none (DESIGN.md §3.2; the
  /// EngineCompaction tests in engine_differential_test.cpp pin this
  /// down).  Small lists never trigger the gate (DESIGN.md §7.3): their
  /// dead entries are dropped by the edge's own sweeps.
  std::uint64_t compactions() const noexcept { return compactions_; }

  /// The §7.3 fast-path boundary this engine runs with.
  std::size_t small_list_threshold() const noexcept {
    return small_threshold_;
  }

  /// The sweep-kernel tier this engine dispatches to (snapshotted from
  /// simd::active_sweep_isa() at construction, so a test override applies
  /// to engines constructed after it).
  simd::SweepIsa sweep_kernel() const noexcept { return kernel_; }

  /// Serializes the complete engine state into `w` (DESIGN.md §9).  Legal
  /// only between arrivals (the per-arrival scratch must be empty); the
  /// stream is tagged with the engine kind, so a flat snapshot refuses to
  /// load into a naive-engine build and vice versa.
  void save_state(SnapshotWriter& w) const;

  /// Restores a save_state stream into this engine, which must be freshly
  /// constructed on a substrate with the same column count.  Every field
  /// that feeds the arithmetic is restored bit-exactly, so the continued
  /// trajectory equals the uninterrupted one.
  void load_state(SnapshotReader& r);

  /// Test hook: invoked after every single augmentation step with the
  /// edge that was augmented.  The Lemma-1 white-box test uses this to
  /// verify the paper's potential Φ = Π max(f_i, 1/gc)^{f*_i·p_i} at
  /// least doubles per step.  Null by default; keep the callback cheap.
  void set_augmentation_observer(std::function<void(EdgeId)> observer) {
    observer_ = std::move(observer);
  }

  // -- introspection for tests and the randomized layer ---------------------

  /// n_e = |ALIVE_e| − c_e (alive = not fully rejected, incl. pinned).
  /// O(1).
  std::int64_t excess(EdgeId e) const;
  /// Σ of weights of alive augmentable requests on e.  O(1) for long
  /// member lists (maintained incrementally; resynchronized exactly on
  /// compaction, so drift stays below the covering-check tolerance);
  /// small lists are rescanned exactly — a bounded O(kSmallListThreshold)
  /// walk.
  double alive_weight_sum(EdgeId e) const;
  /// Invariant of §2: true iff alive_weight_sum(e) >= excess(e), or the
  /// edge has no augmentable alive request left.  O(1) (same small-list
  /// bound as alive_weight_sum).
  bool constraint_satisfied(EdgeId e) const;
  /// True iff the edge has positive excess but no augmentable alive
  /// request — the covering constraint is unsatisfiable at the current
  /// classification.  In auto-α mode this is proof that α is too small
  /// (only pinned cost->2α requests remain, and OPT must reject fractions
  /// of them), so the wrapper doubles α on this signal.  O(1).
  bool saturated(EdgeId e) const;
  /// Alive augmentable request ids on edge e (compacted view).
  std::vector<RequestId> alive_requests(EdgeId e) const;
  /// Raw member-list length of edge e, dead entries included (tests: the
  /// in-place sweep keeps this equal to the alive count on swept edges).
  std::size_t member_list_size(EdgeId e) const;

 private:
  /// Runs the §2 augmentation loop for one edge.  `sum_maybe_stale` is set
  /// when an earlier edge of the same arrival already ran steps, in which
  /// case the loop seeds its covering sum with one exact rescan instead of
  /// the reconciled incremental cache.
  void augment_edge(EdgeId e, bool sum_maybe_stale);

  /// One fused (a)+(b)+(c) sweep over e's member list with in-place
  /// compaction (dispatched to the simd_sweep.h kernel; death-count
  /// bookkeeping happens here, after the kernel returns its death
  /// stream).  Returns the net change of the covering sum (dead members
  /// contribute −old_weight).
  double sweep_step(EdgeId e, double ne);

  /// Exact Σ of alive member weights on e, in member-list order — the same
  /// addition sequence the naive engine performs, scalar on every build.
  /// This is the §3.2 decision path: augmentation-loop boundary calls
  /// (band fallback, stale seeds) route here and nowhere else.
  double exact_alive_sum(EdgeId e) const;

  /// Returns e's covering sum with every pending journal entry folded in,
  /// committing the reconciled value to the cache (cheap: O(1) when
  /// nothing is pending).  Mid-arrival (weights changed but the journal
  /// not yet appended) it degrades to a non-committing exact rescan so an
  /// observer-time read can never double-count this arrival's deltas.
  /// Only meaningful for lists above the small-list threshold.
  double reconciled_sum(EdgeId e) const;

  /// Applies the whole journal to every large edge and truncates it —
  /// runs when the journal outgrows the incidence arena, which keeps the
  /// amortized cost per appended entry constant.
  void fold_journal();

  /// True when e's member list takes the small-degree fast path: the
  /// incremental covering-sum cache is not maintained (and not trusted)
  /// for it.
  bool small_list(EdgeId e) const {
    return members_[e].size() <= small_threshold_;
  }

  /// Removes dead entries from an edge's member list and resynchronizes
  /// alive_sum_[e].  Swept edges self-compact inside augment_edge; this
  /// handles lists that only ever receive *cross-edge* deaths, and is
  /// gated on the tracked dead count crossing half the list.
  void compact(EdgeId e);

  /// Request i's edge set in the incidence arena.
  std::span<const EdgeId> edges_of(RequestId i) const {
    return {edge_pool_.data() + edge_begin_[i],
            edge_begin_[i + 1] - edge_begin_[i]};
  }

  /// Appends a request's SoA row + arena slice (shared by pin and
  /// admit_existing; edges are pre-validated by the callers).
  RequestId append_request(std::span<const EdgeId> edges, double update_cost,
                           double report_cost, double initial_weight,
                           bool pinned);

  /// Hot rows live in engine_types.h now (the sweep kernels address their
  /// fields by fixed offsets); `update_cost` is stored as its reciprocal —
  /// see EngineHotRow.
  using HotRow = EngineHotRow;

  /// One deferred covering-sum update: request `id`'s alive-contribution
  /// changed by `delta` during some past arrival, and edges with a
  /// journal cursor before this entry have not folded it in yet.
  struct JournalEntry {
    RequestId id = 0;
    double delta = 0.0;
  };

  EngineSubstrate substrate_;
  double zero_init_;
  std::size_t small_threshold_;
  simd::SweepIsa kernel_;

  // -- request store: hot rows + cold SoA + CSR incidence arena -------------
  /// Cache-line-aligned arena: with one engine per service shard, the 32-
  /// byte hot rows of different shards must never straddle a shared line
  /// (the DESIGN.md §11.3 false-sharing audit), and an aligned base also
  /// keeps the AVX-512 contiguous-8-block fast path on full-line loads.
  std::vector<HotRow, CacheAlignedAllocator<HotRow>> hot_;
  std::vector<std::size_t> edge_begin_;  ///< per-request offset; size n+1
  std::vector<EdgeId> edge_pool_;        ///< flat arena of all edge lists
  std::vector<double> report_cost_;
  /// weight < 1 (pinned: always 1).  Maintained for the O(1) public
  /// queries; the sweep itself infers death from weight ≥ 1 (equivalent
  /// for the non-pinned requests member lists hold) to stay off this
  /// array.
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> pinned_;

  // -- per-edge state --------------------------------------------------------
  /// Augmentable members per edge (alive and dead; compacted when the dead
  /// fraction crosses 1/2).
  std::vector<std::vector<RequestId>> members_;
  std::vector<std::int64_t> alive_count_;   ///< augmentable alive per edge
  std::vector<std::int64_t> pinned_count_;  ///< pinned per edge
  std::vector<std::int64_t> dead_count_;    ///< dead entries in members_[e]
  /// Incremental Σ alive member weights — trusted only for lists longer
  /// than the small-list threshold, and only modulo the pending journal
  /// suffix past journal_pos_ (DESIGN.md §7.3, §8).  Mutable with
  /// journal_pos_: reconciliation is a cache commit, logically const.
  mutable std::vector<double> alive_sum_;
  /// Per-edge cursor into journal_: entries before it are folded into
  /// alive_sum_[e], entries at/after it are pending for this edge.
  mutable std::vector<std::size_t> journal_pos_;
  /// Deferred covering-sum updates from wide-row touched requests
  /// (DESIGN.md §8), in touch order; folded per edge on read, truncated
  /// globally by fold_journal().
  std::vector<JournalEntry> journal_;

  /// Number of edges currently above the small-list threshold.  When zero
  /// the arrival-end fix-up pass is skipped outright — on tiny-list
  /// traffic there is no covering-sum cache to maintain anywhere (§7.3).
  std::size_t large_edges_ = 0;

  /// True from the first sweep step of the current arrival until its
  /// fix-up appended the journal entries: cache commits are unsafe in
  /// that window (reconciled_sum degrades to a plain rescan).
  bool mid_arrival_dirty_ = false;

  double fractional_cost_ = 0.0;
  std::uint64_t augmentations_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<RequestId> touched_;  // requests touched this arrival
  std::vector<RequestId> deaths_;   // scratch: kernel death stream
  std::vector<Delta> deltas_;       // output buffer
  std::function<void(EdgeId)> observer_;
};

}  // namespace minrej

#if defined(MINREJ_NAIVE_ENGINE)
#include "core/naive_engine.h"
namespace minrej {
/// Engine every consumer layer builds against (reference build).
using FractionalEngine = NaiveFractionalEngine;
}  // namespace minrej
#else
namespace minrej {
/// Engine every consumer layer builds against (flat-storage build).
using FractionalEngine = FlatFractionalEngine;
}  // namespace minrej
#endif

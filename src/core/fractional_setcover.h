// fractional_setcover.h — the fractional online set cover solution the
// paper's technique description starts from ("We start with an online
// fractional solution which is monotone increasing during the algorithm.
// Then, the fractional solution is converted into a randomized
// algorithm.").
//
// Obtained exactly the way the paper obtains everything set-cover-shaped:
// through the §4 reduction.  x_S is the rejected fraction f of set S's
// phase-1 request; the §2 covering invariant on edge e_j translates to
//     Σ_{S ∋ j} min(x_S, 1)  ≥  demand_j      after every arrival of j
// (a valid fractional multicover — the identity is proved in the test
// suite's FractionalSetCover.CoverIdentity and follows from
// |ALIVE_{e_j}| = alive-sets + demand_j and capacity = degree_j).
//
// Since the covering-substrate refactor (DESIGN.md §7) the default
// binding is ReductionMode::kView: the §2 wrapper and engine bind
// directly to the SetSystem's CSR substrate (capacity = degree via
// CoveringSubstrateTraits) and phase-1/phase-2 arrivals stream through
// FractionalAdmission's span path — no graph, no request copies.  The
// pre-§7 materializing binding is retained as kMaterialized; the two are
// decision-identical (held so by tests/substrate_test.cpp — same
// capacities, same arrival stream, same engine arithmetic).
//
// Useful on its own (fractional solutions are deterministic and cheap)
// and as the reference the randomized rounding is validated against.
#pragma once

#include <memory>
#include <optional>

#include "core/fractional_admission.h"
#include "core/reduction.h"
#include "setcover/set_system.h"

namespace minrej {

/// How FractionalSetCover realizes the §4 reduction (DESIGN.md §7.4).
enum class ReductionMode : std::uint8_t {
  kView,          ///< zero-copy: engine bound to the SetSystem substrate
  kMaterialized,  ///< pre-§7 path: star graph + copied phase-1 requests
};

/// Deterministic fractional OSCR via the §4 reduction over the §2 engine.
class FractionalSetCover {
 public:
  explicit FractionalSetCover(const SetSystem& system,
                              FractionalConfig config = {},
                              ReductionMode mode = ReductionMode::kView);

  /// Presents one more arrival of element j.
  void on_element(ElementId j);

  const SetSystem& system() const noexcept { return system_; }
  ReductionMode mode() const noexcept { return mode_; }

  /// x_S ∈ [0, 1]: the fraction of set S bought so far (monotone).
  double fraction(SetId s) const;

  /// Σ_S min(x_S, 1) · cost_S — the fractional objective.
  double fractional_cost() const noexcept {
    return admission_->fractional_cost();
  }

  /// Σ_{S ∋ j} min(x_S, 1) — fractional coverage of element j.
  double coverage(ElementId j) const;

  std::int64_t demand(ElementId j) const;

  /// Cumulative §2 weight-augmentation steps underneath the reduction.
  std::uint64_t augmentations() const noexcept {
    return admission_->augmentations();
  }

  /// The underlying admission algorithm (tests).
  const FractionalAdmission& admission() const noexcept {
    return *admission_;
  }

 private:
  const SetSystem& system_;
  ReductionMode mode_;
  ReductionView view_;
  /// kMaterialized only: the realized star graph + phase-1 requests the
  /// admission wrapper was bound to (must outlive admission_).
  std::optional<ReductionInstance> materialized_;
  std::unique_ptr<FractionalAdmission> admission_;
  std::vector<std::int64_t> demand_;
};

}  // namespace minrej

#include "core/online_admission.h"

#include <algorithm>
#include <cmath>

namespace minrej {

OnlineAdmissionAlgorithm::OnlineAdmissionAlgorithm(const Graph& graph)
    : graph_(graph), usage_(graph.edge_count(), 0) {}

RequestState OnlineAdmissionAlgorithm::state(RequestId id) const {
  MINREJ_REQUIRE(id < states_.size(), "unknown request id");
  return states_[id];
}

bool OnlineAdmissionAlgorithm::would_overflow(const Request& request) const {
  for (EdgeId e : request.edges) {
    MINREJ_REQUIRE(e < graph_.edge_count(), "request edge out of range");
    if (usage_[e] + 1 > graph_.capacity(e)) return true;
  }
  return false;
}

void OnlineAdmissionAlgorithm::apply_rejection(RequestId id) {
  MINREJ_CHECK(states_[id] == RequestState::kAccepted,
               "preempting a request that is not accepted");
  MINREJ_CHECK(!requests_[id].must_accept,
               "algorithm attempted to preempt a must_accept request");
  states_[id] = RequestState::kRejected;
  rejected_cost_ += requests_[id].cost;
  ++rejected_count_;
  for (EdgeId e : requests_[id].edges) --usage_[e];
}

ArrivalResult OnlineAdmissionAlgorithm::process_shed(const Request& request) {
  MINREJ_REQUIRE(!request.edges.empty(), "empty request");
  MINREJ_REQUIRE(std::isfinite(request.cost) && request.cost > 0.0,
                 "request cost must be positive and finite");
  for (EdgeId e : request.edges) {
    MINREJ_REQUIRE(e < graph_.edge_count(), "request edge out of range");
  }
  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(request);
  states_.push_back(RequestState::kRejected);
  ArrivalResult result;
  result.accepted = !would_overflow(request);
  if (result.accepted) {
    states_[id] = RequestState::kAccepted;
    for (EdgeId e : request.edges) ++usage_[e];
  } else {
    MINREJ_REQUIRE(!request.must_accept,
                   "cannot shed a must_accept request — route it through "
                   "process() even in degraded mode");
    rejected_cost_ += request.cost;
    ++rejected_count_;
  }
  return result;
}

ArrivalResult OnlineAdmissionAlgorithm::process(const Request& request) {
  MINREJ_REQUIRE(!request.edges.empty(), "empty request");
  // isfinite rejects ±inf (which would poison rejected_cost_ forever); the
  // > 0 comparison rejects NaN as well as non-positive costs.
  MINREJ_REQUIRE(std::isfinite(request.cost) && request.cost > 0.0,
                 "request cost must be positive and finite");
  for (EdgeId e : request.edges) {
    MINREJ_REQUIRE(e < graph_.edge_count(), "request edge out of range");
  }

  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(request);
  // Provisional state; fixed up below from the subclass decision.
  states_.push_back(RequestState::kRejected);

  ArrivalResult result = handle(id, request);

  // Apply preemptions first (they free capacity for the arrival).
  // Deduplicate defensively; preempting twice would corrupt usage.
  std::sort(result.preempted.begin(), result.preempted.end());
  result.preempted.erase(
      std::unique(result.preempted.begin(), result.preempted.end()),
      result.preempted.end());
  for (RequestId victim : result.preempted) {
    MINREJ_CHECK(victim < id, "cannot preempt a future request");
    apply_rejection(victim);
  }

  if (result.accepted) {
    states_[id] = RequestState::kAccepted;
    for (EdgeId e : request.edges) {
      ++usage_[e];
      MINREJ_CHECK(usage_[e] <= graph_.capacity(e),
                   "capacity violated after acceptance — algorithm bug");
    }
  } else {
    MINREJ_CHECK(!request.must_accept,
                 "algorithm rejected a must_accept request");
    states_[id] = RequestState::kRejected;
    rejected_cost_ += request.cost;
    ++rejected_count_;
  }
  return result;
}

}  // namespace minrej

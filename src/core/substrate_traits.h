// substrate_traits.h — compile-time binding of the weight-augmentation
// engines to a covering substrate (DESIGN.md §7.2).
//
// The §2 engine only ever asks its substrate three questions: how many
// columns (edges) exist, what each column's capacity is, and what the
// maximum capacity is.  EngineSubstrate is that answer as a flat view —
// a span over a capacity array owned by the bound object — so the
// augmentation hot loop indexes a contiguous array instead of calling
// back into Graph::capacity (a bounds-checked struct load per loop
// iteration).
//
// CoveringSubstrateTraits<S> is the compile-time adapter: specializations
// exist for Graph (admission control — capacities are the instance's
// c_e) and CoveringInstance (set cover — capacity IS the column degree,
// the §4 identity).  Both engines expose a template constructor that
// routes any substrate type through its traits, so
// `FlatFractionalEngine(graph, z)` and `FlatFractionalEngine(substrate,
// z)` bind the same hot loop to either problem with zero virtual calls.
#pragma once

#include <cstdint>
#include <span>

#include "core/covering_instance.h"
#include "graph/graph.h"

namespace minrej {

/// The flat substrate view an engine binds to.  Non-owning: the bound
/// Graph / CoveringInstance must outlive the engine (the same lifetime
/// contract the engines have always had with their Graph).
struct EngineSubstrate {
  std::size_t col_count = 0;                  ///< m (edges / elements)
  std::span<const std::int64_t> capacities;   ///< c_e per column, size m
  std::int64_t max_capacity = 0;              ///< c = max_e c_e
};

/// Compile-time substrate adapter; specialize for every bindable type.
template <typename S>
struct CoveringSubstrateTraits;

/// Admission control: columns are the graph's edges.
template <>
struct CoveringSubstrateTraits<Graph> {
  /// Engine capacities are real edge capacities, not degrees.
  static constexpr bool kCapacityIsDegree = false;

  static EngineSubstrate bind(const Graph& graph) {
    return {graph.edge_count(), graph.capacities(), graph.max_capacity()};
  }
};

/// Set cover via the §4 reduction: columns are the elements and each
/// element's edge capacity is its degree |S_j|.
template <>
struct CoveringSubstrateTraits<CoveringInstance> {
  static constexpr bool kCapacityIsDegree = true;

  static EngineSubstrate bind(const CoveringInstance& substrate) {
    return {substrate.col_count(), substrate.capacities(),
            substrate.max_capacity()};
  }
};

class AdmissionInstance;

/// Bulk build: one substrate for a whole admission instance (rows =
/// requests in arrival order, columns = edges with their capacities).
CoveringInstance make_covering_substrate(const AdmissionInstance& instance);

}  // namespace minrej

// weighted_bicriteria.h — the weighted generalization of the §5
// deterministic bicriteria algorithm.
//
// The paper proves §5 for unit costs and remarks "The result can be easily
// generalized for the weighted case using techniques from [2]" (Alon,
// Awerbuch, Azar, Buchbinder, Naor — STOC'03).  This module implements
// that generalization the way [2] weights its fractional updates: the
// multiplicative step scales inversely with the set's cost, so cheap sets
// race toward the threshold faster —
//     w_S ← w_S · (1 + 1/(2k·cost_S))      for S ∈ S_j \ C,
// which reduces to the paper's exact rule when every cost is 1.  The
// potential Φ = Σ_j n^{2(w_j − cover_j)} and threshold rule are unchanged;
// the derandomized rounding picks the set with the best potential decrease
// *per unit cost* and keeps picking until Φ returns below its
// pre-augmentation value.
//
// Status: EXTENSION.  The coverage contract (⌈(1−ε)k⌉ distinct sets per
// element, enforced by the base class) is exact; the O(log m log n)
// cost bound for the weighted case is the paper's claim-by-reference, and
// E8's weighted table reports what we measure rather than a proven bound.
#pragma once

#include <cstdint>

#include "core/bicriteria_setcover.h"

namespace minrej {

/// Weighted bicriteria online set cover (extension of §5).
class WeightedBicriteriaSetCover : public OnlineSetCoverAlgorithm {
 public:
  WeightedBicriteriaSetCover(const SetSystem& system,
                             BicriteriaConfig config = {});

  std::string name() const override { return "bicriteria-weighted"; }

  std::int64_t required_coverage(std::int64_t k) const override;

  /// Φ = Σ_j n^{2(w_j − cover_j)} (same invariant target Φ ≤ n²).
  double potential() const;

  std::uint64_t augmentations() const noexcept { return augmentations_; }
  std::uint64_t augmentation_steps() const noexcept override {
    return augmentations_;
  }
  double set_weight(SetId s) const;

 protected:
  std::vector<SetId> handle_element(ElementId j) override;

 private:
  long double term(ElementId j) const;

  BicriteriaConfig config_;
  /// Substrate binding, same rationale as BicriteriaSetCover.
  const CoveringInstance* sub_ = nullptr;
  std::vector<double> weight_;
  std::vector<double> elem_weight_;
  std::vector<std::int64_t> cover_;
  std::vector<bool> in_cover_;
  std::uint64_t augmentations_ = 0;
};

}  // namespace minrej

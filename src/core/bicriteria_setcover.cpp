#include "core/bicriteria_setcover.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minrej {

BicriteriaSetCover::BicriteriaSetCover(const SetSystem& system,
                                       BicriteriaConfig config)
    : OnlineSetCoverAlgorithm(system), config_(config),
      sub_(&system.substrate()),
      weight_(system.set_count(),
              1.0 / (2.0 * static_cast<double>(system.set_count()))),
      elem_weight_(system.element_count(), 0.0),
      cover_(system.element_count(), 0),
      in_cover_(system.set_count(), false) {
  MINREJ_REQUIRE(config_.epsilon > 0.0 && config_.epsilon < 1.0,
                 "epsilon must be in (0, 1)");
  MINREJ_REQUIRE(system.unit_costs(),
                 "the §5 algorithm assumes unit set costs");
  // w_j = Σ_{S∋j} w_S with the uniform initial weights.
  for (std::size_t j = 0; j < system.element_count(); ++j) {
    elem_weight_[j] =
        static_cast<double>(system.degree(static_cast<ElementId>(j))) /
        (2.0 * static_cast<double>(system.set_count()));
  }
  log2n_ = std::max(
      1.0, std::log2(static_cast<double>(system.element_count())));
}

std::int64_t BicriteriaSetCover::required_coverage(std::int64_t k) const {
  // ⌈(1−ε)k⌉ with a tolerance so (1−ε)k landing on an integer is not
  // bumped up by floating-point noise.
  return static_cast<std::int64_t>(
      std::ceil((1.0 - config_.epsilon) * static_cast<double>(k) - 1e-9));
}

long double BicriteriaSetCover::term(ElementId j) const {
  const long double n = static_cast<long double>(system().element_count());
  const long double exponent =
      2.0L * (static_cast<long double>(elem_weight_[j]) -
              static_cast<long double>(cover_[j]));
  return std::pow(n, exponent);
}

double BicriteriaSetCover::potential() const {
  long double phi = 0.0L;
  for (std::size_t j = 0; j < system().element_count(); ++j) {
    phi += term(static_cast<ElementId>(j));
  }
  return static_cast<double>(phi);
}

double BicriteriaSetCover::set_weight(SetId s) const {
  MINREJ_REQUIRE(s < weight_.size(), "set id out of range");
  return weight_[s];
}

double BicriteriaSetCover::element_weight(ElementId j) const {
  MINREJ_REQUIRE(j < elem_weight_.size(), "element id out of range");
  return elem_weight_[j];
}

std::vector<SetId> BicriteriaSetCover::handle_element(ElementId j) {
  const std::int64_t k = demand(j);  // base already counted this arrival
  const std::int64_t target =
      std::min<std::int64_t>(required_coverage(k),
                             static_cast<std::int64_t>(system().degree(j)));

  std::vector<SetId> added;
  auto add_set = [&](SetId s) {
    MINREJ_CHECK(!in_cover_[s], "set added twice");
    in_cover_[s] = true;
    added.push_back(s);
    for (ElementId covered_elem : sub_->cols_of(s)) {
      ++cover_[covered_elem];
    }
  };

  while (cover_[j] < target) {
    ++augmentations_;
    const long double phi_start = potential();

    // (a) multiplicative weight step for the uncovered sets of S_j.
    std::vector<SetId> candidates;
    for (SetId s : sub_->rows_of(j)) {
      if (in_cover_[s]) continue;
      candidates.push_back(s);
      const double before = weight_[s];
      weight_[s] =
          before * (1.0 + 1.0 / (2.0 * static_cast<double>(k)));
      const double delta = weight_[s] - before;
      // Keep every w_{j'} consistent incrementally.
      for (ElementId member : sub_->cols_of(s)) {
        elem_weight_[member] += delta;
      }
    }

    // (b) threshold rule: any set reaching weight 1 joins the cover.
    for (SetId s : candidates) {
      if (!in_cover_[s] && weight_[s] >= 1.0) {
        add_set(s);
        ++threshold_additions_;
      }
    }

    // (c) derandomized rounding: up to 2·log2(n) greedy picks from S_j,
    // each maximizing the potential decrease, until Φ is back at or below
    // its pre-augmentation value.  Adding a set never increases Φ (every
    // term it touches shrinks by n^{-2}), so the loop is monotone; Lemma 6
    // guarantees 2·log2(n) picks suffice.
    const auto lemma_picks =
        static_cast<std::size_t>(std::ceil(2.0 * log2n_));
    std::size_t picks = 0;
    while (potential() > phi_start + 1e-9L) {
      // Greedy pick: maximize Σ_{j'∈S} term(j') — the exact decrease of Φ
      // from adding S is (1 − n^{-2})·Σ_{j'∈S} term(j').
      SetId best = 0;
      long double best_gain = -1.0L;
      bool found = false;
      for (SetId s : sub_->rows_of(j)) {
        if (in_cover_[s]) continue;
        long double gain = 0.0L;
        for (ElementId member : sub_->cols_of(s)) {
          gain += term(member);
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = s;
          found = true;
        }
      }
      if (!found) break;  // every set of S_j is already in the cover
      add_set(best);
      ++rounding_additions_;
      ++picks;
      // Lemma 6 guarantees SOME ≤ 2·log n picks restore Φ ≤ Φ_start; the
      // greedy is only (1−1/e)-optimal per prefix, so keep going if it
      // needs more (adding all of S_j always suffices: every inflated term
      // gains a factor ≤ n^{2δ−2} ≤ n^{-1}).  Overshoots are counted and
      // asserted rare by the tests.
      if (picks > lemma_picks) ++rounding_overshoot_;
    }
    MINREJ_CHECK(potential() <= phi_start + 1e-6L,
                 "potential not restored even after exhausting S_j — "
                 "Lemma 6 invariant broken");
  }
  return added;
}

}  // namespace minrej

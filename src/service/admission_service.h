// admission_service.h — sharded batch-arrival service over the online
// admission algorithms (docs/API.md "AdmissionService"; DESIGN.md §6).
//
// The algorithms in core/ are strictly sequential: one arrival at a time
// through OnlineAdmissionAlgorithm::process.  AdmissionService scales them
// out the way the MPC/local-computation literature decomposes online
// allocation (PAPERS.md: Łącki et al. arXiv:2506.04524, Mansour et al.
// arXiv:1205.1312): the edge set is partitioned into K *shards*, each
// shard owns a full, independent algorithm instance over the same graph,
// and every arriving request is routed to the shard of its first (lowest)
// edge.  Batches of arrivals are pumped through the util/thread_pool —
// one sequential task per shard per batch — so shard trajectories are
// deterministic regardless of scheduling: shard s always sees exactly the
// subsequence of arrivals routed to it, in arrival order.
//
// Partitioning invariant (DESIGN.md §6.1): when every request's edges lie
// in a single shard ("shard-disjoint" traffic — single-edge requests under
// any partition, or multi-tenant traffic under a tenant-aligned
// partition), the sharded system is *exactly* the unsharded one: per-shard
// capacity enforcement equals global enforcement, and each shard's
// competitive guarantee holds verbatim on its sub-instance.  For
// deterministic algorithm configurations the sharded and unsharded runs
// are bit-identical (tests/service_test.cpp pins this down).  For traffic
// that does cross shards, the owning shard enforces capacities against its
// own view only — admission decisions remain safe per shard but edges
// shared across shards may be oversubscribed globally; see DESIGN.md §6.1
// for why this is the documented relaxation rather than an error.
//
// Fault tolerance (DESIGN.md §9): with ServiceConfig::fault_tolerance
// enabled the pump validates arrivals before they reach an algorithm,
// retries failed shard tasks with exponential backoff, quarantines a shard
// whose retries are exhausted (rebuilding it to its last committed state),
// applies backpressure and load-shedding under overload, and keeps a
// per-shard committed arrival log that — together with the snapshot layer
// (io/snapshot.h) — supports snapshot(), restore(), checkpoint() and
// restore_shard().  All of it is behind one branch in submit_batch: a
// service with fault tolerance disabled runs the exact pre-existing code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/online_admission.h"
#include "graph/request.h"
#include "util/spsc_ring.h"
#include "util/thread_pool.h"

namespace minrej {

class FaultInjector;

/// How the pump resolved one arrival (decision_mode()).  Only tracked
/// under fault tolerance; without it every arrival is kEngine.
enum class DecisionMode : std::uint8_t {
  /// Processed by the shard algorithm's full engine (process()).
  kEngine = 0,
  /// Load-shed: either dropped at routing by backpressure (never reached
  /// the algorithm) or processed by the degraded threshold rule
  /// (process_shed()) — the shard log tells them apart.
  kShed = 1,
  /// Rejected at validation (empty/out-of-range/unsorted edges or a
  /// non-finite/non-positive cost); never reached an algorithm.
  kMalformed = 2,
  /// Dropped because the owning shard was quarantined at arrival time.
  kQuarantineShed = 3,
};

/// Retry/backoff knobs for failed shard tasks (DESIGN.md §9).
struct RetryPolicy {
  /// Retries after the first failed attempt before quarantine.
  std::size_t max_retries = 2;
  /// Backoff before retry r is min(backoff_base_s * 2^r, backoff_max_s),
  /// jittered by ±jitter (fraction).  Jitter perturbs only sleep times,
  /// never decisions, so fault-tolerant runs stay deterministic.
  double backoff_base_s = 0.0005;
  double backoff_max_s = 0.01;
  double jitter = 0.2;
  std::uint64_t jitter_seed = 0x5EEDBA5Eu;
};

/// Overload / graceful-degradation knobs (DESIGN.md §9).
struct OverloadPolicy {
  /// Max arrivals queued per shard per batch; overflow is shed at routing
  /// (backpressure — the closed-loop clients re-arrive them).  0 = off.
  std::size_t max_shard_queue = 0;
  /// Per-batch processing deadline per shard; once a shard task exceeds
  /// it, the rest of its sub-batch runs through the degraded threshold
  /// rule (process_shed).  Timing-dependent, hence opt-in and excluded
  /// from the determinism contract.  0 = off.
  double shard_deadline_s = 0.0;
  /// Latch a shard into degraded mode once its augmentation steps exceed
  /// the core/run_budget.h budget.  Deterministic.
  bool shed_on_budget = false;
};

/// Master switch plus policies.  Disabled (the default) costs one branch
/// per submit_batch; nothing else changes.
struct FaultToleranceConfig {
  bool enabled = false;
  RetryPolicy retry;
  OverloadPolicy overload;
  /// Optional deterministic fault source (util/fault_injector.h) consulted
  /// by the pump: task exceptions, slow shards, corrupted arrivals.
  std::shared_ptr<const FaultInjector> injector;
};

/// Builds the algorithm instance owned by one shard.  Must construct on
/// the graph it is given (the service's graph — shards share the topology;
/// only the traffic is partitioned).  The shard index lets factories
/// derive per-shard seeds.
///
/// With PumpMode::kRings the factory may additionally be invoked from
/// worker threads (parallel committed-log rebuild after a shard failure),
/// possibly for several shards at once — it must be thread-safe.  The
/// stock factories (randomized_shard_factory and the test factories) are:
/// they capture only values and construct fresh objects.
using ShardAlgorithmFactory =
    std::function<std::unique_ptr<OnlineAdmissionAlgorithm>(
        const Graph& graph, std::size_t shard)>;

/// How submit_batch distributes shard work (DESIGN.md §11).
enum class PumpMode : std::uint8_t {
  /// One sequential task per busy shard per batch on a util/thread_pool —
  /// the original pump.  Per-batch cost: one queue lock + one
  /// std::function allocation per busy shard, plus a full pool wake/idle
  /// cycle per batch.
  kTasks = 0,
  /// Persistent per-shard workers fed by bounded lock-free SPSC rings
  /// (util/spsc_ring.h): the routing thread is the single producer of
  /// every ring, shard s is consumed by worker s mod W only.  Workers
  /// outlive batches, so steady-state pumping touches no mutex and no
  /// allocator.  Decision streams are bit-identical to kTasks for every
  /// worker count (the §11.2 determinism contract).
  kRings = 1,
};

/// Service knobs.
struct ServiceConfig {
  /// Number of shards K (>= 1).  K == 1 is the unsharded reference.
  std::size_t shards = 1;
  /// Arrivals per pump in run(); submit_batch takes what it is given.
  std::size_t batch = 256;
  /// Worker threads; 0 selects one per shard (capped at hardware).
  std::size_t threads = 0;
  /// Record per-arrival processing latency (two clock reads per arrival
  /// inside the shard task).  Off by default, same rationale as
  /// RunOptions::collect_latencies.
  bool collect_latencies = false;
  /// Optional edge → shard override (must return values < shards; checked
  /// over every edge at construction).  The default is the splitmix64 hash
  /// partition; a tenant-aligned override makes multi-tenant traffic
  /// shard-disjoint (DESIGN.md §6.1).
  std::function<std::size_t(EdgeId)> partition;
  /// Fault-tolerance layer (DESIGN.md §9).  Off by default.
  FaultToleranceConfig fault_tolerance;
  /// Pump implementation (DESIGN.md §11).  Decision streams are identical
  /// across modes and worker counts; only the scheduling differs.
  PumpMode pump = PumpMode::kTasks;
  /// Ring capacity per shard in kRings mode, rounded up to a power of two
  /// (0 selects max(1024, batch)).  The routing thread spin-yields on a
  /// full ring, so this is purely a throughput knob, never a correctness
  /// one.
  std::size_t ring_capacity = 0;
  /// Divert requests whose edges span multiple shards to a sequential
  /// reconcile lane instead of their first-edge owner (DESIGN.md §11.4):
  /// the owning shard answers speculatively from its local view
  /// (would_overflow on the request's edges), then a dedicated reconcile
  /// engine decides authoritatively in arrival order.  Removes the §6.1
  /// cross-shard oversubscription relaxation at the price of serializing
  /// cross-shard traffic.  Incompatible with fault_tolerance and
  /// snapshot/restore (checked).
  bool lca_reconcile = false;
};

/// Counters for one shard.  accepted/rejected/rejected_cost/augmentations
/// are read from the shard's algorithm at query time; arrivals, busy time
/// and latencies are tracked by the pump.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double rejected_cost = 0.0;
  std::uint64_t augmentation_steps = 0;
  /// Time this shard's tasks spent processing (sums over batches; the
  /// max over shards is the critical path of the pump).
  double busy_seconds = 0.0;
  /// Per-arrival latencies in seconds, arrival order (empty unless
  /// ServiceConfig::collect_latencies).
  std::vector<double> latencies_s;
  /// The shard's core/run_budget.h augmentation-step budget at its current
  /// arrival count, and whether its steps exceed it — the per-shard
  /// blow-up verdict (same guard the sim runner reports per run).
  std::uint64_t augmentation_budget = 0;
  bool augmentation_budget_exceeded = false;
  /// Fault-tolerance counters (all 0 when the layer is disabled).
  std::size_t task_failures = 0;   ///< failed task attempts (incl. injected)
  std::size_t retries = 0;         ///< attempts re-run after backoff
  std::size_t restores = 0;        ///< algorithm rebuilds (retry/quarantine/heal)
  std::size_t shed = 0;            ///< arrivals shed at routing (backpressure/quarantine)
  std::size_t malformed = 0;       ///< arrivals rejected at validation
  std::size_t injected_delays = 0; ///< injector kDelay probes observed
  bool quarantined = false;        ///< currently refusing traffic
  bool degraded = false;           ///< load-shed latch active (process_shed)
};

/// Merged view across all shards (util/stats quantile merge).
struct ServiceStats {
  std::size_t shards = 0;
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double rejected_cost = 0.0;
  std::uint64_t augmentation_steps = 0;
  /// Wall-clock seconds: run() reports its own wall time; aggregate()
  /// reports the summed wall time of all submit_batch calls.
  double seconds = 0.0;
  /// Largest per-shard busy_seconds — the pump's critical path.
  double max_shard_busy_s = 0.0;
  /// Summed per-shard busy_seconds (the serialized work).
  double total_busy_s = 0.0;
  /// Per-arrival latency quantiles over the merged shard samples, in
  /// seconds (0 when latencies were not collected).
  double p50_arrival_s = 0.0;
  double p95_arrival_s = 0.0;
  double max_arrival_s = 0.0;
  /// Shards whose augmentation steps exceed their budget (satellite of
  /// the per-shard ShardStats verdict).
  std::size_t budget_exceeded_shards = 0;
  /// Summed fault-tolerance counters (see ShardStats).
  std::size_t task_failures = 0;
  std::size_t retries = 0;
  std::size_t restores = 0;
  std::size_t shed = 0;
  std::size_t malformed = 0;
  std::size_t injected_delays = 0;
  std::size_t quarantined_shards = 0;
  std::size_t degraded_shards = 0;
  /// LCA reconcile lane (ServiceConfig::lca_reconcile): cross-shard
  /// arrivals diverted to the sequential reconcile engine, and how many of
  /// them the owning shard's speculative local answer agreed with.  The
  /// lane's arrivals/accepted/rejected/rejected_cost are already folded
  /// into the totals above.
  std::size_t lca_arrivals = 0;
  std::size_t lca_speculation_hits = 0;

  double arrivals_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(arrivals) / seconds : 0.0;
  }

  /// Throughput of the pump's critical path: arrivals / max shard busy
  /// time.  This is what the sharded system sustains when every shard has
  /// its own core — on a machine with fewer cores than shards the wall
  /// clock serializes the shards and arrivals_per_sec() cannot show the
  /// sharding gain, while this number still does (DESIGN.md §6.2).
  double critical_path_arrivals_per_sec() const noexcept {
    return max_shard_busy_s > 0.0
               ? static_cast<double>(arrivals) / max_shard_busy_s
               : 0.0;
  }
};

/// Convenience factory shared by the service driver and benches: one §3
/// RandomizedAdmission per shard in the given cost mode, seeded
/// `seed + shard` so shard trajectories draw independent random streams.
ShardAlgorithmFactory randomized_shard_factory(bool unit_costs,
                                               std::uint64_t seed);

/// The sharded batch-arrival admission service.
class AdmissionService {
 public:
  /// Builds `config.shards` algorithm instances via `factory` (each must
  /// be constructed on `graph` — checked) and spins up the worker pool.
  AdmissionService(const Graph& graph, ShardAlgorithmFactory factory,
                   ServiceConfig config = {});

  /// Joins the persistent ring workers (PumpMode::kRings).  Legal only
  /// between batches — like every other member, submit_batch must not be
  /// in flight.
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Worker threads actually pumping shards: persistent ring workers in
  /// kRings mode, pool threads in kTasks mode.
  std::size_t worker_count() const noexcept;

  /// placement().first for arrivals handled by the LCA reconcile lane.
  static constexpr std::size_t kLcaLane = static_cast<std::size_t>(-1);

  /// The default partition: splitmix64 hash of the edge id, mod K.
  static std::size_t hash_edge_to_shard(EdgeId e,
                                        std::size_t shard_count) noexcept;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of_edge(EdgeId e) const;
  /// Shard of the request's first (lowest — edge lists are sorted) edge.
  std::size_t shard_of_request(const Request& request) const;

  /// Pumps one batch through the shards: requests are split by shard in
  /// input order, each shard's sub-batch runs as one sequential task on
  /// the pool, and the per-request admission decisions come back in input
  /// order.  On a shard failure the batch drains first, the failing
  /// shard's unprocessed arrivals get their placements voided (their
  /// is_accepted throws instead of aliasing a later request), and the
  /// first failure (by shard index) is rethrown; healthy shards keep
  /// their results and the service remains usable.
  std::vector<bool> submit_batch(std::span<const Request> batch);

  /// Pumps the whole instance through submit_batch in config.batch slices
  /// and returns the merged stats with run()'s wall time.  The instance
  /// must live on a graph with the service's edge count.
  ServiceStats run(const AdmissionInstance& instance);

  /// Total arrivals submitted so far.
  std::size_t arrivals() const noexcept { return placement_.size(); }

  /// Current acceptance state of the i-th submitted arrival (queried from
  /// the owning shard, so later preemptions are reflected).
  bool is_accepted(std::size_t arrival_index) const;

  /// The owning (shard, shard-local request id) of the i-th arrival.
  /// The local id is kInvalidId for an arrival voided by a shard failure.
  std::pair<std::size_t, RequestId> placement(std::size_t arrival_index) const;

  const OnlineAdmissionAlgorithm& shard_algorithm(std::size_t shard) const;

  // --- LCA reconcile lane (ServiceConfig::lca_reconcile; DESIGN.md §11.4) ---

  /// The reconcile-lane engine (requires lca_reconcile).
  const OnlineAdmissionAlgorithm& lca_algorithm() const;
  /// Cross-shard arrivals diverted to the reconcile lane so far.
  std::size_t lca_arrivals() const noexcept;
  /// How many diverted arrivals the owning shard's speculative local
  /// answer (would_overflow on its own view) agreed with.
  std::size_t lca_speculation_hits() const noexcept;

  /// Snapshot of one shard's counters.
  ShardStats shard_stats(std::size_t shard) const;

  /// Merged counters; seconds is the accumulated submit_batch wall time.
  ServiceStats aggregate() const;

  // --- fault tolerance / recovery (DESIGN.md §9; docs/API.md) ---

  /// How the pump resolved the i-th arrival.  kEngine for everything when
  /// fault tolerance is disabled (modes are not tracked then).
  DecisionMode decision_mode(std::size_t arrival_index) const;

  bool shard_quarantined(std::size_t shard) const;
  /// True while the shard's load-shed latch routes arrivals through the
  /// degraded threshold rule (process_shed).
  bool shard_degraded(std::size_t shard) const;

  /// Serializes the full service state — placements, decision modes,
  /// per-shard counters/logs, and one embedded algorithm snapshot per
  /// shard — into a sealed io/snapshot.h stream.  Requires every shard
  /// algorithm to support snapshots.  Legal only between batches.
  std::vector<std::uint8_t> snapshot() const;

  /// Rebuilds the state captured by snapshot() into this service, which
  /// must be freshly constructed (no arrivals) with the same graph and
  /// factory.  Same shard count: algorithm snapshots load directly and
  /// the continuation is bit-identical to the uninterrupted run.
  /// Different shard count (reshard-on-restore): the committed global
  /// arrival sequence is replayed through this service's own routing —
  /// requires the source to have kept logs (fault tolerance enabled),
  /// no shed/malformed arrivals, and engine-mode-only trajectories; the
  /// decisions match the source for shard-disjoint deterministic traffic
  /// (DESIGN.md §6.1/§9).
  void restore(std::span<const std::uint8_t> blob);

  /// Captures an in-memory per-shard recovery point (algorithm snapshot +
  /// log position): quarantine recovery and restore_shard() rebuild from
  /// here and replay only the log suffix.  Requires fault tolerance.
  void checkpoint();

  /// Rebuilds one shard to its last committed state (from its checkpoint
  /// when one exists, else by full log replay) and lifts its quarantine.
  /// The soak harness's kill-and-recover primitive.
  void restore_shard(std::size_t shard);

 private:
  /// One committed arrival of a shard: the request plus the mode it was
  /// actually processed under.  Log index == shard-local request id, so
  /// replaying the log reproduces the algorithm trajectory exactly.
  struct LogEntry {
    Request request;
    std::uint8_t mode = 0;  // DecisionMode::kEngine or kShed
  };

  /// alignas: in kRings mode a shard's fields (arrivals, busy time,
  /// latencies, error) are written by its owning worker while sibling
  /// workers write the neighbouring shards — cache-line alignment keeps
  /// those writes from false-sharing one line (§11.3 audit).
  struct alignas(kCacheLineBytes) Shard {
    std::unique_ptr<OnlineAdmissionAlgorithm> algorithm;
    std::size_t arrivals = 0;
    double busy_seconds = 0.0;
    std::vector<double> latencies_s;
    std::vector<std::size_t> pending;  // batch indices, reused per batch
    std::exception_ptr error;
    // Fault-tolerance state (untouched when the layer is disabled).
    std::vector<LogEntry> log;         // committed arrivals, id order
    std::vector<std::uint8_t> mode_scratch;    // per-batch, parallels pending
    std::vector<double> latency_scratch;       // committed only on success
    std::vector<std::uint8_t> checkpoint_blob; // last checkpoint() snapshot
    std::size_t checkpoint_log_len = 0;
    bool checkpoint_degraded = false;
    bool quarantined = false;
    bool degraded = false;  // load-shed latch (OverloadPolicy::shed_on_budget)
    std::size_t task_failures = 0;
    std::size_t retries = 0;
    std::size_t restores = 0;
    std::size_t shed = 0;
    std::size_t malformed = 0;
    std::size_t injected_delays = 0;
  };

  /// Per-shard ingest lane for the kRings pump (DESIGN.md §11.1).  The
  /// hot cross-thread state: the routing thread produces batch indices
  /// into `ring`, the owning worker consumes them and publishes progress
  /// through `consumed`.  alignas on the struct plus per-field alignas
  /// keeps producer-written, consumer-written and job state on disjoint
  /// cache lines (§11.3).
  struct alignas(kCacheLineBytes) Lane {
    /// Batch indices of this shard's arrivals, produced in arrival order.
    SpscRing<std::uint32_t> ring;
    /// Cumulative fast-path arrivals consumed by the owning worker.  One
    /// release fetch_add per processed chunk; the routing thread's acquire
    /// load is the batch-completion barrier that publishes every shard
    /// field the worker wrote (decisions, latencies, busy time, errors).
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> consumed{0};
    /// Job slot for the fault-tolerant pump: the routing thread publishes
    /// the parameters below with the release store into `job` (a JobKind);
    /// the worker acquires, runs, and release-stores kNone when done.
    alignas(kCacheLineBytes) std::atomic<std::uint8_t> job{0};
    std::size_t job_base = 0;
    std::size_t job_attempt = 0;
    const FaultInjector* job_injector = nullptr;

    explicit Lane(std::size_t capacity) : ring(capacity) {}
  };

  enum class JobKind : std::uint8_t { kNone = 0, kFtAttempt = 1, kRebuild = 2 };

  // --- kRings pump internals (DESIGN.md §11) ---
  std::vector<bool> submit_batch_rings(std::span<const Request> batch);
  void start_workers();
  void stop_workers();
  void worker_loop(std::size_t worker, std::size_t worker_total);
  /// Consumes up to one chunk from shard s's ring; returns true if it did
  /// any work.  Runs on the owning worker only.
  bool drain_lane(std::size_t s);
  /// Runs shard s's posted job slot if any; returns true if it did.
  bool run_lane_job(std::size_t s);
  /// Bumps the wake epoch under the pump mutex so sleeping workers
  /// re-poll.  The only lock the rings path takes, and only when a worker
  /// may be asleep.
  void kick_workers();
  /// Blocks the routing thread until pred() holds: bounded spin-yield,
  /// then timed condvar waits (workers notify cv_done_ after progress).
  void wait_for_workers(const std::function<bool()>& pred);

  // --- fault-tolerant dispatch, shared by both pump modes ---
  /// Runs one FT attempt for every shard in `to_run`: pool tasks in
  /// kTasks mode, lane jobs on the persistent workers in kRings mode.
  void dispatch_ft_attempts(const std::vector<std::size_t>& to_run,
                            std::span<const Request> batch, std::size_t base,
                            std::size_t attempt, const FaultInjector* injector);
  /// Rebuilds every listed shard to its committed state: serially on the
  /// caller in kTasks mode, as parallel lane jobs in kRings mode — one
  /// shard's log replay must not block its siblings (DESIGN.md §11.5).
  void dispatch_rebuilds(const std::vector<std::size_t>& failed);

  // --- LCA reconcile lane (DESIGN.md §11.4) ---
  /// True when the request's edges span more than one shard.
  bool request_crosses_shards(const Request& request) const;
  /// Drains lca_pending_ through the reconcile engine in arrival order,
  /// scoring each owning shard's speculative local answer.  Runs on the
  /// routing thread after the batch's shard work has completed.
  void reconcile_lca_pending(std::span<const Request> batch,
                             std::size_t base);

  std::vector<bool> submit_batch_ft(std::span<const Request> batch);
  /// Body of one fault-tolerant shard task (runs on the pool).
  void run_shard_task_ft(std::size_t shard, std::span<const Request> batch,
                         std::size_t base, std::size_t attempt,
                         const FaultInjector* injector);
  /// Appends a successful sub-batch to the shard's log and commits its
  /// scratch (modes, latencies, arrival count).
  void commit_shard_batch(std::size_t shard, std::span<const Request> batch,
                          std::size_t base);
  /// Rebuilds the shard's algorithm to its last committed state: fresh
  /// factory instance, checkpoint load when available, log replay for the
  /// rest (re-deriving the budget latch deterministically).
  void rebuild_shard(std::size_t shard);
  bool request_well_formed(const Request& request) const noexcept;

  const Graph& graph_;
  ShardAlgorithmFactory factory_;
  ServiceConfig config_;
  std::vector<Shard> shards_;
  /// kTasks mode only; kRings never constructs a pool.
  std::unique_ptr<ThreadPool> pool_;
  /// kRings mode only: one lane per shard (unique_ptr — lanes hold atomics
  /// and a ring, neither movable) and the persistent workers.  Shard s is
  /// owned by worker s mod ring_workers_.size().
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> ring_workers_;
  /// The batch currently being pumped.  Written by the routing thread
  /// before any ring push / job post of the batch; workers read it only
  /// after a successful pop / job acquire, so the ring's release/acquire
  /// edge publishes it (§11.2 memory-order contract).
  std::span<const Request> live_batch_;
  /// Sleep/wake plumbing for the rings pump.  Workers spin-poll between
  /// batches for a bounded grace period, then wait on cv_wake_ with a
  /// short timeout; wake_epoch_ bumps (kick_workers) cut the latency of
  /// the common case.  The timeout makes a lost wakeup cost microseconds,
  /// never a deadlock.
  std::mutex pump_mu_;
  std::condition_variable cv_wake_;
  std::condition_variable cv_done_;
  std::uint64_t wake_epoch_ = 0;  // guarded by pump_mu_
  bool stop_workers_ = false;     // guarded by pump_mu_
  /// LCA reconcile lane (lca_reconcile only).
  std::unique_ptr<OnlineAdmissionAlgorithm> lca_algorithm_;
  std::vector<std::size_t> lca_pending_;  // batch indices, reused per batch
  std::size_t lca_speculation_hits_ = 0;
  /// arrival index → (shard, shard-local request id).  kLcaShardMarker in
  /// the shard slot flags reconcile-lane arrivals (placement() maps it to
  /// kLcaLane).
  static constexpr std::uint32_t kLcaShardMarker = 0xFFFFFFFFu;
  std::vector<std::pair<std::uint32_t, RequestId>> placement_;
  /// arrival index → DecisionMode (only under fault tolerance).
  std::vector<std::uint8_t> modes_;
  /// Per-batch decision scratch (uint8_t, not vector<bool>: shard tasks
  /// write disjoint elements concurrently and vector<bool> packs bits).
  std::vector<std::uint8_t> decisions_;
  double pumped_seconds_ = 0.0;
};

}  // namespace minrej

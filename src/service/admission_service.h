// admission_service.h — sharded batch-arrival service over the online
// admission algorithms (docs/API.md "AdmissionService"; DESIGN.md §6).
//
// The algorithms in core/ are strictly sequential: one arrival at a time
// through OnlineAdmissionAlgorithm::process.  AdmissionService scales them
// out the way the MPC/local-computation literature decomposes online
// allocation (PAPERS.md: Łącki et al. arXiv:2506.04524, Mansour et al.
// arXiv:1205.1312): the edge set is partitioned into K *shards*, each
// shard owns a full, independent algorithm instance over the same graph,
// and every arriving request is routed to the shard of its first (lowest)
// edge.  Batches of arrivals are pumped through the util/thread_pool —
// one sequential task per shard per batch — so shard trajectories are
// deterministic regardless of scheduling: shard s always sees exactly the
// subsequence of arrivals routed to it, in arrival order.
//
// Partitioning invariant (DESIGN.md §6.1): when every request's edges lie
// in a single shard ("shard-disjoint" traffic — single-edge requests under
// any partition, or multi-tenant traffic under a tenant-aligned
// partition), the sharded system is *exactly* the unsharded one: per-shard
// capacity enforcement equals global enforcement, and each shard's
// competitive guarantee holds verbatim on its sub-instance.  For
// deterministic algorithm configurations the sharded and unsharded runs
// are bit-identical (tests/service_test.cpp pins this down).  For traffic
// that does cross shards, the owning shard enforces capacities against its
// own view only — admission decisions remain safe per shard but edges
// shared across shards may be oversubscribed globally; see DESIGN.md §6.1
// for why this is the documented relaxation rather than an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/online_admission.h"
#include "graph/request.h"
#include "util/thread_pool.h"

namespace minrej {

/// Builds the algorithm instance owned by one shard.  Must construct on
/// the graph it is given (the service's graph — shards share the topology;
/// only the traffic is partitioned).  The shard index lets factories
/// derive per-shard seeds.
using ShardAlgorithmFactory =
    std::function<std::unique_ptr<OnlineAdmissionAlgorithm>(
        const Graph& graph, std::size_t shard)>;

/// Service knobs.
struct ServiceConfig {
  /// Number of shards K (>= 1).  K == 1 is the unsharded reference.
  std::size_t shards = 1;
  /// Arrivals per pump in run(); submit_batch takes what it is given.
  std::size_t batch = 256;
  /// Worker threads; 0 selects one per shard (capped at hardware).
  std::size_t threads = 0;
  /// Record per-arrival processing latency (two clock reads per arrival
  /// inside the shard task).  Off by default, same rationale as
  /// RunOptions::collect_latencies.
  bool collect_latencies = false;
  /// Optional edge → shard override (must return values < shards).  The
  /// default is the splitmix64 hash partition; a tenant-aligned override
  /// makes multi-tenant traffic shard-disjoint (DESIGN.md §6.1).
  std::function<std::size_t(EdgeId)> partition;
};

/// Counters for one shard.  accepted/rejected/rejected_cost/augmentations
/// are read from the shard's algorithm at query time; arrivals, busy time
/// and latencies are tracked by the pump.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double rejected_cost = 0.0;
  std::uint64_t augmentation_steps = 0;
  /// Time this shard's tasks spent processing (sums over batches; the
  /// max over shards is the critical path of the pump).
  double busy_seconds = 0.0;
  /// Per-arrival latencies in seconds, arrival order (empty unless
  /// ServiceConfig::collect_latencies).
  std::vector<double> latencies_s;
};

/// Merged view across all shards (util/stats quantile merge).
struct ServiceStats {
  std::size_t shards = 0;
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double rejected_cost = 0.0;
  std::uint64_t augmentation_steps = 0;
  /// Wall-clock seconds: run() reports its own wall time; aggregate()
  /// reports the summed wall time of all submit_batch calls.
  double seconds = 0.0;
  /// Largest per-shard busy_seconds — the pump's critical path.
  double max_shard_busy_s = 0.0;
  /// Summed per-shard busy_seconds (the serialized work).
  double total_busy_s = 0.0;
  /// Per-arrival latency quantiles over the merged shard samples, in
  /// seconds (0 when latencies were not collected).
  double p50_arrival_s = 0.0;
  double p95_arrival_s = 0.0;
  double max_arrival_s = 0.0;

  double arrivals_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(arrivals) / seconds : 0.0;
  }

  /// Throughput of the pump's critical path: arrivals / max shard busy
  /// time.  This is what the sharded system sustains when every shard has
  /// its own core — on a machine with fewer cores than shards the wall
  /// clock serializes the shards and arrivals_per_sec() cannot show the
  /// sharding gain, while this number still does (DESIGN.md §6.2).
  double critical_path_arrivals_per_sec() const noexcept {
    return max_shard_busy_s > 0.0
               ? static_cast<double>(arrivals) / max_shard_busy_s
               : 0.0;
  }
};

/// Convenience factory shared by the service driver and benches: one §3
/// RandomizedAdmission per shard in the given cost mode, seeded
/// `seed + shard` so shard trajectories draw independent random streams.
ShardAlgorithmFactory randomized_shard_factory(bool unit_costs,
                                               std::uint64_t seed);

/// The sharded batch-arrival admission service.
class AdmissionService {
 public:
  /// Builds `config.shards` algorithm instances via `factory` (each must
  /// be constructed on `graph` — checked) and spins up the worker pool.
  AdmissionService(const Graph& graph, ShardAlgorithmFactory factory,
                   ServiceConfig config = {});

  /// The default partition: splitmix64 hash of the edge id, mod K.
  static std::size_t hash_edge_to_shard(EdgeId e,
                                        std::size_t shard_count) noexcept;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of_edge(EdgeId e) const;
  /// Shard of the request's first (lowest — edge lists are sorted) edge.
  std::size_t shard_of_request(const Request& request) const;

  /// Pumps one batch through the shards: requests are split by shard in
  /// input order, each shard's sub-batch runs as one sequential task on
  /// the pool, and the per-request admission decisions come back in input
  /// order.  On a shard failure the batch drains first, the failing
  /// shard's unprocessed arrivals get their placements voided (their
  /// is_accepted throws instead of aliasing a later request), and the
  /// first failure (by shard index) is rethrown; healthy shards keep
  /// their results and the service remains usable.
  std::vector<bool> submit_batch(std::span<const Request> batch);

  /// Pumps the whole instance through submit_batch in config.batch slices
  /// and returns the merged stats with run()'s wall time.  The instance
  /// must live on a graph with the service's edge count.
  ServiceStats run(const AdmissionInstance& instance);

  /// Total arrivals submitted so far.
  std::size_t arrivals() const noexcept { return placement_.size(); }

  /// Current acceptance state of the i-th submitted arrival (queried from
  /// the owning shard, so later preemptions are reflected).
  bool is_accepted(std::size_t arrival_index) const;

  /// The owning (shard, shard-local request id) of the i-th arrival.
  /// The local id is kInvalidId for an arrival voided by a shard failure.
  std::pair<std::size_t, RequestId> placement(std::size_t arrival_index) const;

  const OnlineAdmissionAlgorithm& shard_algorithm(std::size_t shard) const;

  /// Snapshot of one shard's counters.
  ShardStats shard_stats(std::size_t shard) const;

  /// Merged counters; seconds is the accumulated submit_batch wall time.
  ServiceStats aggregate() const;

 private:
  struct Shard {
    std::unique_ptr<OnlineAdmissionAlgorithm> algorithm;
    std::size_t arrivals = 0;
    double busy_seconds = 0.0;
    std::vector<double> latencies_s;
    std::vector<std::size_t> pending;  // batch indices, reused per batch
    std::exception_ptr error;
  };

  const Graph& graph_;
  ServiceConfig config_;
  std::vector<Shard> shards_;
  ThreadPool pool_;
  /// arrival index → (shard, shard-local request id).
  std::vector<std::pair<std::uint32_t, RequestId>> placement_;
  /// Per-batch decision scratch (uint8_t, not vector<bool>: shard tasks
  /// write disjoint elements concurrently and vector<bool> packs bits).
  std::vector<std::uint8_t> decisions_;
  double pumped_seconds_ = 0.0;
};

}  // namespace minrej

#include "service/admission_service.h"

#include <algorithm>
#include <thread>

#include "core/randomized_admission.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace minrej {

ShardAlgorithmFactory randomized_shard_factory(bool unit_costs,
                                               std::uint64_t seed) {
  return [unit_costs, seed](const Graph& graph, std::size_t shard) {
    RandomizedConfig cfg;
    cfg.unit_costs = unit_costs;
    cfg.seed = seed + shard;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
}

namespace {

std::size_t pool_threads(const ServiceConfig& config) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t want =
      config.threads > 0 ? config.threads : std::min(config.shards, hw);
  return std::max<std::size_t>(1, std::min(want, config.shards));
}

}  // namespace

AdmissionService::AdmissionService(const Graph& graph,
                                   ShardAlgorithmFactory factory,
                                   ServiceConfig config)
    : graph_(graph), config_(std::move(config)),
      pool_(pool_threads(config_)) {
  MINREJ_REQUIRE(config_.shards >= 1, "service needs at least one shard");
  MINREJ_REQUIRE(config_.batch >= 1, "batch must be positive");
  MINREJ_REQUIRE(static_cast<bool>(factory), "null algorithm factory");
  MINREJ_REQUIRE(graph_.edge_count() >= 1, "graph has no edges");
  shards_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_[s].algorithm = factory(graph_, s);
    MINREJ_REQUIRE(shards_[s].algorithm != nullptr,
                   "factory returned a null algorithm");
    MINREJ_REQUIRE(&shards_[s].algorithm->graph() == &graph_,
                   "shard algorithm must be built on the service graph");
  }
}

std::size_t AdmissionService::hash_edge_to_shard(
    EdgeId e, std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // splitmix64 of the edge id: spreads hot low-id edges (the Zipf head)
  // across shards instead of clustering them in shard 0.
  std::uint64_t state = static_cast<std::uint64_t>(e) + 1;
  return static_cast<std::size_t>(splitmix64(state) %
                                  static_cast<std::uint64_t>(shard_count));
}

std::size_t AdmissionService::shard_of_edge(EdgeId e) const {
  MINREJ_REQUIRE(e < graph_.edge_count(), "edge id out of range");
  if (!config_.partition) return hash_edge_to_shard(e, shards_.size());
  const std::size_t s = config_.partition(e);
  MINREJ_REQUIRE(s < shards_.size(),
                 "partition returned a shard out of range");
  return s;
}

std::size_t AdmissionService::shard_of_request(const Request& request) const {
  MINREJ_REQUIRE(!request.edges.empty(), "empty request");
  return shard_of_edge(request.edges.front());
}

std::vector<bool> AdmissionService::submit_batch(
    std::span<const Request> batch) {
  Timer wall;
  for (Shard& shard : shards_) shard.pending.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());

  // Route on the caller's thread: placement (shard + shard-local id) is
  // fully determined before any worker runs, so it never races and the
  // shard-local id sequence is arrival-ordered by construction.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s = shard_of_request(batch[i]);
    const auto local = static_cast<RequestId>(shards_[s].algorithm->arrivals() +
                                              shards_[s].pending.size());
    shards_[s].pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
  }

  decisions_.assign(batch.size(), 0);
  // Per-shard arrival counts before the pump: on a shard failure these
  // locate the first unprocessed arrival so its placement can be voided.
  std::vector<std::size_t> processed_before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    processed_before[s] = shards_[s].arrivals;
  }
  std::size_t busy_shards = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].pending.empty()) continue;
    ++busy_shards;
    pool_.submit([this, s, batch] {
      Shard& shard = shards_[s];
      try {
        Timer busy;
        Timer arrival_timer;
        for (const std::size_t idx : shard.pending) {
          if (config_.collect_latencies) arrival_timer.reset();
          const ArrivalResult result = shard.algorithm->process(batch[idx]);
          if (config_.collect_latencies) {
            shard.latencies_s.push_back(arrival_timer.elapsed_s());
          }
          decisions_[idx] = result.accepted ? 1 : 0;
          ++shard.arrivals;
        }
        shard.busy_seconds += busy.elapsed_s();
      } catch (...) {
        shard.error = std::current_exception();
      }
    });
  }
  if (busy_shards > 0) pool_.wait_idle();
  pumped_seconds_ += wall.elapsed_s();

  std::exception_ptr first_error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.error) continue;
    if (!first_error) first_error = shard.error;
    shard.error = nullptr;
    // The shard stopped mid-sub-batch: its algorithm never assigned ids
    // to the remaining arrivals.  Void their placements so a later batch
    // cannot alias those local ids onto the stale entries (is_accepted on
    // a voided arrival throws instead of answering for the wrong
    // request).
    const std::size_t processed = shard.arrivals - processed_before[s];
    for (std::size_t j = processed; j < shard.pending.size(); ++j) {
      placement_[base + shard.pending[j]].second = kInvalidId;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

ServiceStats AdmissionService::run(const AdmissionInstance& instance) {
  MINREJ_REQUIRE(instance.graph().edge_count() == graph_.edge_count(),
                 "instance graph does not match the service graph");
  Timer wall;
  const std::vector<Request>& requests = instance.requests();
  for (std::size_t offset = 0; offset < requests.size();
       offset += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, requests.size() - offset);
    submit_batch(std::span<const Request>(requests.data() + offset, count));
  }
  ServiceStats stats = aggregate();
  stats.seconds = wall.elapsed_s();
  return stats;
}

bool AdmissionService::is_accepted(std::size_t arrival_index) const {
  const auto [shard, local] = placement(arrival_index);
  MINREJ_REQUIRE(local != kInvalidId,
                 "arrival was never processed (its shard failed mid-batch)");
  return shards_[shard].algorithm->is_accepted(local);
}

std::pair<std::size_t, RequestId> AdmissionService::placement(
    std::size_t arrival_index) const {
  MINREJ_REQUIRE(arrival_index < placement_.size(),
                 "arrival index out of range");
  const auto& [shard, local] = placement_[arrival_index];
  return {static_cast<std::size_t>(shard), local};
}

const OnlineAdmissionAlgorithm& AdmissionService::shard_algorithm(
    std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return *shards_[shard].algorithm;
}

ShardStats AdmissionService::shard_stats(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  const Shard& s = shards_[shard];
  ShardStats stats;
  stats.shard = shard;
  stats.arrivals = s.arrivals;
  stats.rejected = s.algorithm->rejected_count();
  stats.accepted = s.arrivals - stats.rejected;
  stats.rejected_cost = s.algorithm->rejected_cost();
  stats.augmentation_steps = s.algorithm->augmentation_steps();
  stats.busy_seconds = s.busy_seconds;
  stats.latencies_s = s.latencies_s;
  return stats;
}

ServiceStats AdmissionService::aggregate() const {
  ServiceStats stats;
  stats.shards = shards_.size();
  stats.seconds = pumped_seconds_;
  std::vector<double> latencies;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    stats.arrivals += shard.arrivals;
    const std::size_t rejected = shard.algorithm->rejected_count();
    stats.rejected += rejected;
    stats.accepted += shard.arrivals - rejected;
    stats.rejected_cost += shard.algorithm->rejected_cost();
    stats.augmentation_steps += shard.algorithm->augmentation_steps();
    stats.max_shard_busy_s =
        std::max(stats.max_shard_busy_s, shard.busy_seconds);
    stats.total_busy_s += shard.busy_seconds;
    latencies.insert(latencies.end(), shard.latencies_s.begin(),
                     shard.latencies_s.end());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    stats.p50_arrival_s = quantile_sorted(latencies, 0.50);
    stats.p95_arrival_s = quantile_sorted(latencies, 0.95);
    stats.max_arrival_s = latencies.back();
  }
  return stats;
}

}  // namespace minrej

#include "service/admission_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string_view>
#include <thread>

#include "core/randomized_admission.h"
#include "core/run_budget.h"
#include "io/snapshot.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace minrej {

ShardAlgorithmFactory randomized_shard_factory(bool unit_costs,
                                               std::uint64_t seed) {
  return [unit_costs, seed](const Graph& graph, std::size_t shard) {
    RandomizedConfig cfg;
    cfg.unit_costs = unit_costs;
    cfg.seed = seed + shard;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
}

namespace {

std::size_t pool_threads(const ServiceConfig& config) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t want =
      config.threads > 0 ? config.threads : std::min(config.shards, hw);
  return std::max<std::size_t>(1, std::min(want, config.shards));
}

/// Stream kinds of the two nested snapshot formats (io/snapshot.h).
constexpr std::string_view kServiceSnapshotKind = "minrej.service";
constexpr std::string_view kAlgorithmSnapshotKind = "minrej.algorithm";
constexpr std::uint32_t kServiceSnapshotVersion = 1;
constexpr std::uint32_t kAlgorithmSnapshotVersion = 1;

/// Order-sensitive fingerprint of the capacity vector: snapshots refuse to
/// load onto a graph with the same edge count but different capacities.
std::uint64_t capacity_fingerprint(const Graph& graph) noexcept {
  std::uint64_t state = 0x6D696E72656A6670ULL;  // "minrejfp"
  for (const std::int64_t c : graph.capacities()) {
    state ^= static_cast<std::uint64_t>(c);
    splitmix64(state);
  }
  return splitmix64(state);
}

}  // namespace

AdmissionService::AdmissionService(const Graph& graph,
                                   ShardAlgorithmFactory factory,
                                   ServiceConfig config)
    : graph_(graph), factory_(std::move(factory)), config_(std::move(config)),
      pool_(pool_threads(config_)) {
  MINREJ_REQUIRE(config_.shards >= 1, "service needs at least one shard");
  MINREJ_REQUIRE(config_.batch >= 1, "batch must be positive");
  MINREJ_REQUIRE(static_cast<bool>(factory_), "null algorithm factory");
  MINREJ_REQUIRE(graph_.edge_count() >= 1, "graph has no edges");
  if (config_.partition) {
    // A partition that maps any edge out of range would fail mid-pump on
    // the first request touching that edge; surface it at construction
    // instead, where the error names the config, not the traffic.
    for (std::size_t e = 0; e < graph_.edge_count(); ++e) {
      MINREJ_REQUIRE(config_.partition(static_cast<EdgeId>(e)) <
                         config_.shards,
                     "partition maps an edge to a shard >= the shard count");
    }
  }
  const RetryPolicy& retry = config_.fault_tolerance.retry;
  MINREJ_REQUIRE(retry.backoff_base_s >= 0.0 && retry.backoff_max_s >= 0.0,
                 "retry backoff must be non-negative");
  MINREJ_REQUIRE(retry.jitter >= 0.0 && retry.jitter <= 1.0,
                 "retry jitter must be in [0, 1]");
  shards_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_[s].algorithm = factory_(graph_, s);
    MINREJ_REQUIRE(shards_[s].algorithm != nullptr,
                   "factory returned a null algorithm");
    MINREJ_REQUIRE(&shards_[s].algorithm->graph() == &graph_,
                   "shard algorithm must be built on the service graph");
  }
}

std::size_t AdmissionService::hash_edge_to_shard(
    EdgeId e, std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // splitmix64 of the edge id: spreads hot low-id edges (the Zipf head)
  // across shards instead of clustering them in shard 0.
  std::uint64_t state = static_cast<std::uint64_t>(e) + 1;
  return static_cast<std::size_t>(splitmix64(state) %
                                  static_cast<std::uint64_t>(shard_count));
}

std::size_t AdmissionService::shard_of_edge(EdgeId e) const {
  MINREJ_REQUIRE(e < graph_.edge_count(), "edge id out of range");
  if (!config_.partition) return hash_edge_to_shard(e, shards_.size());
  const std::size_t s = config_.partition(e);
  MINREJ_REQUIRE(s < shards_.size(),
                 "partition returned a shard out of range");
  return s;
}

std::size_t AdmissionService::shard_of_request(const Request& request) const {
  MINREJ_REQUIRE(!request.edges.empty(), "empty request");
  return shard_of_edge(request.edges.front());
}

std::vector<bool> AdmissionService::submit_batch(
    std::span<const Request> batch) {
  // One branch is the whole cost of the fault-tolerance layer when it is
  // disabled: the code below is the pre-existing fast path, untouched.
  if (config_.fault_tolerance.enabled) return submit_batch_ft(batch);
  Timer wall;
  for (Shard& shard : shards_) shard.pending.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());

  // Route on the caller's thread: placement (shard + shard-local id) is
  // fully determined before any worker runs, so it never races and the
  // shard-local id sequence is arrival-ordered by construction.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s = shard_of_request(batch[i]);
    const auto local = static_cast<RequestId>(shards_[s].algorithm->arrivals() +
                                              shards_[s].pending.size());
    shards_[s].pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
  }

  decisions_.assign(batch.size(), 0);
  // Per-shard arrival counts before the pump: on a shard failure these
  // locate the first unprocessed arrival so its placement can be voided.
  std::vector<std::size_t> processed_before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    processed_before[s] = shards_[s].arrivals;
  }
  std::size_t busy_shards = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].pending.empty()) continue;
    ++busy_shards;
    pool_.submit([this, s, batch] {
      Shard& shard = shards_[s];
      try {
        Timer busy;
        Timer arrival_timer;
        for (const std::size_t idx : shard.pending) {
          if (config_.collect_latencies) arrival_timer.reset();
          const ArrivalResult result = shard.algorithm->process(batch[idx]);
          if (config_.collect_latencies) {
            shard.latencies_s.push_back(arrival_timer.elapsed_s());
          }
          decisions_[idx] = result.accepted ? 1 : 0;
          ++shard.arrivals;
        }
        shard.busy_seconds += busy.elapsed_s();
      } catch (...) {
        shard.error = std::current_exception();
      }
    });
  }
  if (busy_shards > 0) pool_.wait_idle();
  pumped_seconds_ += wall.elapsed_s();

  std::exception_ptr first_error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.error) continue;
    if (!first_error) first_error = shard.error;
    shard.error = nullptr;
    // The shard stopped mid-sub-batch: its algorithm never assigned ids
    // to the remaining arrivals.  Void their placements so a later batch
    // cannot alias those local ids onto the stale entries (is_accepted on
    // a voided arrival throws instead of answering for the wrong
    // request).
    const std::size_t processed = shard.arrivals - processed_before[s];
    for (std::size_t j = processed; j < shard.pending.size(); ++j) {
      placement_[base + shard.pending[j]].second = kInvalidId;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

bool AdmissionService::request_well_formed(
    const Request& request) const noexcept {
  if (request.edges.empty()) return false;
  if (!(request.cost > 0.0) || !std::isfinite(request.cost)) return false;
  EdgeId prev = 0;
  for (std::size_t i = 0; i < request.edges.size(); ++i) {
    const EdgeId e = request.edges[i];
    if (e >= graph_.edge_count()) return false;
    if (i > 0 && e <= prev) return false;  // sorted + unique contract
    prev = e;
  }
  return true;
}

std::vector<bool> AdmissionService::submit_batch_ft(
    std::span<const Request> batch) {
  Timer wall;
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  const FaultInjector* injector = ft.injector.get();
  for (Shard& shard : shards_) shard.pending.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());
  modes_.reserve(base + batch.size());
  decisions_.assign(batch.size(), 0);

  // Route + admit-to-the-pump on the caller's thread.  Arrivals that are
  // malformed (or flagged corrupt by the injector), owned by a
  // quarantined shard, or beyond a shard's queue limit never reach an
  // algorithm: their decision stays "rejected", their placement is voided
  // (is_accepted throws instead of answering for the wrong request), and
  // the mode records why.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if ((injector && injector->corrupt(base + i)) ||
        !request_well_formed(request)) {
      // Attribute to the shard the first edge routes to when it is
      // routable at all; shard 0 is the catch-all for unroutable garbage.
      const std::size_t s =
          (!request.edges.empty() && request.edges.front() < graph_.edge_count())
              ? shard_of_edge(request.edges.front())
              : 0;
      ++shards_[s].malformed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kMalformed));
      continue;
    }
    const std::size_t s = shard_of_request(request);
    Shard& shard = shards_[s];
    if (shard.quarantined) {
      ++shard.shed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(
          static_cast<std::uint8_t>(DecisionMode::kQuarantineShed));
      continue;
    }
    if (ft.overload.max_shard_queue > 0 &&
        shard.pending.size() >= ft.overload.max_shard_queue) {
      ++shard.shed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kShed));
      continue;
    }
    const auto local = static_cast<RequestId>(shard.algorithm->arrivals() +
                                              shard.pending.size());
    shard.pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
    // Provisional; commit_shard_batch overwrites with the mode actually
    // used (kShed when the degraded rule handled it).
    modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kEngine));
  }

  // Attempt loop: run every busy shard, retry the failed ones with
  // exponential backoff (rebuilding their algorithms to the committed
  // pre-batch state first), quarantine the ones that exhaust retries.
  std::vector<std::size_t> to_run;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].pending.empty()) to_run.push_back(s);
  }
  std::uint64_t jitter_state =
      ft.retry.jitter_seed ^ (static_cast<std::uint64_t>(base) + 1);
  std::size_t attempt = 0;
  while (!to_run.empty()) {
    for (const std::size_t s : to_run) {
      Shard& shard = shards_[s];
      shard.error = nullptr;
      shard.mode_scratch.assign(shard.pending.size(), 0);
      shard.latency_scratch.clear();
      pool_.submit([this, s, batch, base, attempt, injector] {
        run_shard_task_ft(s, batch, base, attempt, injector);
      });
    }
    pool_.wait_idle();
    std::vector<std::size_t> retry_set;
    for (const std::size_t s : to_run) {
      Shard& shard = shards_[s];
      if (!shard.error) {
        commit_shard_batch(s, batch, base);
        continue;
      }
      shard.error = nullptr;
      ++shard.task_failures;
      if (attempt >= ft.retry.max_retries) {
        quarantine_shard(s, base);
      } else {
        rebuild_shard(s);
        ++shard.retries;
        retry_set.push_back(s);
      }
    }
    to_run = std::move(retry_set);
    if (!to_run.empty()) {
      const double doubling =
          static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(
                                  attempt, 30));
      double delay = std::min(ft.retry.backoff_max_s,
                              ft.retry.backoff_base_s * doubling);
      const double u =
          static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
      delay *= 1.0 + ft.retry.jitter * (2.0 * u - 1.0);
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      ++attempt;
    }
  }
  pumped_seconds_ += wall.elapsed_s();

  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

void AdmissionService::run_shard_task_ft(std::size_t shard_index,
                                         std::span<const Request> batch,
                                         std::size_t base, std::size_t attempt,
                                         const FaultInjector* injector) {
  Shard& shard = shards_[shard_index];
  try {
    Timer busy;
    Timer arrival_timer;
    const OverloadPolicy& overload = config_.fault_tolerance.overload;
    // Deadline shedding is per-batch: a slow sub-batch degrades its own
    // tail, the next batch starts fresh.  The budget latch is per-shard
    // and permanent until a rebuild re-derives it.
    bool deadline_shed = false;
    for (std::size_t j = 0; j < shard.pending.size(); ++j) {
      const std::size_t idx = shard.pending[j];
      if (injector) {
        // Probe on the service-global arrival index: it advances even when
        // the shard sheds, so a healed shard is not doomed to replay the
        // exact probe pattern that quarantined it.
        const std::size_t global_arrival = base + idx;
        switch (injector->probe(shard_index, global_arrival, attempt)) {
          case FaultAction::kException:
            throw InjectedFault("injected shard-task fault (shard " +
                                std::to_string(shard_index) + ", arrival " +
                                std::to_string(global_arrival) + ", attempt " +
                                std::to_string(attempt) + ")");
          case FaultAction::kDelay:
            std::this_thread::sleep_for(
                std::chrono::duration<double>(injector->delay_seconds()));
            ++shard.injected_delays;
            break;
          case FaultAction::kNone:
            break;
        }
      }
      if (overload.shard_deadline_s > 0.0 && !deadline_shed &&
          busy.elapsed_s() > overload.shard_deadline_s) {
        deadline_shed = true;
      }
      const bool shed_this = shard.degraded || deadline_shed;
      if (config_.collect_latencies) arrival_timer.reset();
      const ArrivalResult result =
          shed_this ? shard.algorithm->process_shed(batch[idx])
                    : shard.algorithm->process(batch[idx]);
      if (config_.collect_latencies) {
        shard.latency_scratch.push_back(arrival_timer.elapsed_s());
      }
      decisions_[idx] = result.accepted ? 1 : 0;
      shard.mode_scratch[j] = static_cast<std::uint8_t>(
          shed_this ? DecisionMode::kShed : DecisionMode::kEngine);
      if (overload.shed_on_budget && !shard.degraded) {
        const std::uint64_t budget = augmentation_step_budget(
            shard.algorithm->arrivals(), graph_.edge_count(),
            graph_.max_capacity());
        if (shard.algorithm->augmentation_steps() > budget) {
          shard.degraded = true;
        }
      }
    }
    shard.busy_seconds += busy.elapsed_s();
  } catch (...) {
    shard.error = std::current_exception();
  }
}

void AdmissionService::commit_shard_batch(std::size_t shard_index,
                                          std::span<const Request> batch,
                                          std::size_t base) {
  Shard& shard = shards_[shard_index];
  shard.log.reserve(shard.log.size() + shard.pending.size());
  for (std::size_t j = 0; j < shard.pending.size(); ++j) {
    const std::size_t idx = shard.pending[j];
    shard.log.push_back(LogEntry{batch[idx], shard.mode_scratch[j]});
    modes_[base + idx] = shard.mode_scratch[j];
  }
  shard.arrivals += shard.pending.size();
  shard.latencies_s.insert(shard.latencies_s.end(),
                           shard.latency_scratch.begin(),
                           shard.latency_scratch.end());
}

void AdmissionService::rebuild_shard(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  std::unique_ptr<OnlineAdmissionAlgorithm> fresh =
      factory_(graph_, shard_index);
  MINREJ_CHECK(fresh != nullptr, "factory returned a null algorithm");
  std::size_t replay_from = 0;
  bool degraded = false;
  if (!shard.checkpoint_blob.empty() && fresh->snapshot_supported()) {
    SnapshotReader r(shard.checkpoint_blob, kAlgorithmSnapshotKind);
    fresh->load_snapshot(r);
    r.expect_end();
    replay_from = shard.checkpoint_log_len;
    degraded = shard.checkpoint_degraded;
  }
  const OverloadPolicy& overload = config_.fault_tolerance.overload;
  for (std::size_t j = replay_from; j < shard.log.size(); ++j) {
    const LogEntry& entry = shard.log[j];
    // The logged mode is authoritative: replay calls exactly what the
    // live pump called, so the trajectory (weights, RNG draws, ids) is
    // reproduced bit-for-bit.
    if (entry.mode == static_cast<std::uint8_t>(DecisionMode::kShed)) {
      fresh->process_shed(entry.request);
    } else {
      fresh->process(entry.request);
    }
    // Re-derive the budget latch with the same per-arrival check the live
    // pump applies — deterministic in (steps, arrivals), both replayed.
    if (overload.shed_on_budget && !degraded) {
      const std::uint64_t budget = augmentation_step_budget(
          fresh->arrivals(), graph_.edge_count(), graph_.max_capacity());
      if (fresh->augmentation_steps() > budget) degraded = true;
    }
  }
  shard.algorithm = std::move(fresh);
  shard.degraded = degraded;
  ++shard.restores;
}

void AdmissionService::quarantine_shard(std::size_t shard_index,
                                        std::size_t base) {
  Shard& shard = shards_[shard_index];
  // The failed attempt may have left the algorithm mid-trajectory; roll it
  // back to the last committed state so stats read sane numbers while the
  // shard refuses traffic.
  rebuild_shard(shard_index);
  shard.quarantined = true;
  for (const std::size_t idx : shard.pending) {
    decisions_[idx] = 0;
    placement_[base + idx].second = kInvalidId;
    modes_[base + idx] =
        static_cast<std::uint8_t>(DecisionMode::kQuarantineShed);
    ++shard.shed;
  }
}

DecisionMode AdmissionService::decision_mode(
    std::size_t arrival_index) const {
  MINREJ_REQUIRE(arrival_index < placement_.size(),
                 "arrival index out of range");
  if (arrival_index >= modes_.size()) return DecisionMode::kEngine;
  return static_cast<DecisionMode>(modes_[arrival_index]);
}

bool AdmissionService::shard_quarantined(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard].quarantined;
}

bool AdmissionService::shard_degraded(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard].degraded;
}

void AdmissionService::checkpoint() {
  MINREJ_REQUIRE(config_.fault_tolerance.enabled,
                 "checkpoint() needs fault tolerance enabled (the recovery "
                 "replay consumes the per-shard arrival log)");
  for (Shard& shard : shards_) {
    if (!shard.algorithm->snapshot_supported()) {
      // Recovery falls back to full log replay for this shard.
      shard.checkpoint_blob.clear();
      shard.checkpoint_log_len = 0;
      shard.checkpoint_degraded = false;
      continue;
    }
    SnapshotWriter w(std::string(kAlgorithmSnapshotKind),
                     kAlgorithmSnapshotVersion);
    shard.algorithm->save_snapshot(w);
    shard.checkpoint_blob = w.finish();
    shard.checkpoint_log_len = shard.log.size();
    shard.checkpoint_degraded = shard.degraded;
  }
}

void AdmissionService::restore_shard(std::size_t shard) {
  MINREJ_REQUIRE(config_.fault_tolerance.enabled,
                 "restore_shard() needs fault tolerance enabled");
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  rebuild_shard(shard);
  shards_[shard].quarantined = false;
}

std::vector<std::uint8_t> AdmissionService::snapshot() const {
  for (const Shard& shard : shards_) {
    MINREJ_REQUIRE(shard.algorithm->snapshot_supported(),
                   "snapshot() requires every shard algorithm to support "
                   "snapshots (docs/API.md)");
  }
  SnapshotWriter w(std::string(kServiceSnapshotKind), kServiceSnapshotVersion);
  w.tag("SRVC");
  w.u64(shards_.size());
  w.u64(graph_.edge_count());
  w.u64(capacity_fingerprint(graph_));
  const bool has_log = config_.fault_tolerance.enabled;
  w.boolean(has_log);
  w.u64(placement_.size());
  for (const auto& [shard, local] : placement_) {
    w.u32(shard);
    w.u32(local);
  }
  w.vec(modes_);
  for (const Shard& shard : shards_) {
    w.tag("SHRD");
    w.u64(shard.arrivals);
    w.u64(shard.task_failures);
    w.u64(shard.retries);
    w.u64(shard.restores);
    w.u64(shard.shed);
    w.u64(shard.malformed);
    w.u64(shard.injected_delays);
    w.boolean(shard.quarantined);
    w.boolean(shard.degraded);
    w.u64(shard.log.size());
    for (const LogEntry& entry : shard.log) {
      w.vec(entry.request.edges);
      w.f64(entry.request.cost);
      w.boolean(entry.request.must_accept);
      w.u8(entry.mode);
    }
    SnapshotWriter algo(std::string(kAlgorithmSnapshotKind),
                        kAlgorithmSnapshotVersion);
    shard.algorithm->save_snapshot(algo);
    w.blob(algo.finish());
  }
  return w.finish();
}

void AdmissionService::restore(std::span<const std::uint8_t> blob) {
  MINREJ_REQUIRE(placement_.empty(),
                 "restore() requires a freshly constructed service");
  SnapshotReader r(blob, kServiceSnapshotKind);
  MINREJ_REQUIRE(r.version() == kServiceSnapshotVersion,
                 "unsupported service snapshot version");
  r.expect_tag("SRVC");
  const std::uint64_t source_shards = r.u64();
  MINREJ_REQUIRE(r.u64() == graph_.edge_count(),
                 "snapshot was taken on a graph with a different edge count");
  MINREJ_REQUIRE(r.u64() == capacity_fingerprint(graph_),
                 "snapshot was taken on a graph with different capacities");
  const bool has_log = r.boolean();
  const std::uint64_t arrival_count = r.u64();
  std::vector<std::pair<std::uint32_t, RequestId>> placements;
  placements.reserve(static_cast<std::size_t>(arrival_count));
  for (std::uint64_t i = 0; i < arrival_count; ++i) {
    const std::uint32_t shard = r.u32();
    const RequestId local = r.u32();
    placements.emplace_back(shard, local);
  }
  std::vector<std::uint8_t> modes = r.vec<std::uint8_t>();

  if (source_shards == shards_.size()) {
    // Same shard count: load every shard's algorithm snapshot directly.
    // The continuation is bit-identical to the uninterrupted run.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = shards_[s];
      r.expect_tag("SHRD");
      shard.arrivals = static_cast<std::size_t>(r.u64());
      shard.task_failures = static_cast<std::size_t>(r.u64());
      shard.retries = static_cast<std::size_t>(r.u64());
      shard.restores = static_cast<std::size_t>(r.u64());
      shard.shed = static_cast<std::size_t>(r.u64());
      shard.malformed = static_cast<std::size_t>(r.u64());
      shard.injected_delays = static_cast<std::size_t>(r.u64());
      shard.quarantined = r.boolean();
      shard.degraded = r.boolean();
      const std::uint64_t log_size = r.u64();
      shard.log.clear();
      shard.log.reserve(static_cast<std::size_t>(log_size));
      for (std::uint64_t j = 0; j < log_size; ++j) {
        LogEntry entry;
        entry.request.edges = r.vec<EdgeId>();
        entry.request.cost = r.f64();
        entry.request.must_accept = r.boolean();
        entry.mode = r.u8();
        shard.log.push_back(std::move(entry));
      }
      const std::vector<std::uint8_t> algo_blob = r.blob();
      std::unique_ptr<OnlineAdmissionAlgorithm> fresh = factory_(graph_, s);
      MINREJ_CHECK(fresh != nullptr, "factory returned a null algorithm");
      SnapshotReader algo(algo_blob, kAlgorithmSnapshotKind);
      fresh->load_snapshot(algo);
      algo.expect_end();
      shard.algorithm = std::move(fresh);
    }
    r.expect_end();
    placement_ = std::move(placements);
    modes_ = std::move(modes);
    return;
  }

  // Reshard-on-restore: replay the committed global arrival sequence
  // through this service's own routing.  Exact only when the source kept
  // logs, shed/voided nothing, and processed everything in engine mode —
  // i.e. the deterministic shard-disjoint regime DESIGN.md §6.1 pins down.
  MINREJ_REQUIRE(has_log,
                 "reshard-on-restore needs the source service's arrival log "
                 "(fault tolerance was disabled when the snapshot was taken)");
  std::vector<std::vector<Request>> logs(
      static_cast<std::size_t>(source_shards));
  for (std::uint64_t s = 0; s < source_shards; ++s) {
    r.expect_tag("SHRD");
    for (int skip = 0; skip < 7; ++skip) r.u64();  // counters
    r.boolean();  // quarantined
    r.boolean();  // degraded
    const std::uint64_t log_size = r.u64();
    logs[s].reserve(static_cast<std::size_t>(log_size));
    for (std::uint64_t j = 0; j < log_size; ++j) {
      Request request;
      request.edges = r.vec<EdgeId>();
      request.cost = r.f64();
      request.must_accept = r.boolean();
      const std::uint8_t mode = r.u8();
      MINREJ_REQUIRE(mode == static_cast<std::uint8_t>(DecisionMode::kEngine),
                     "reshard-on-restore requires an engine-mode-only "
                     "trajectory (the source load-shed arrivals)");
      logs[s].push_back(std::move(request));
    }
    r.blob();  // the source algorithm snapshot; replay rebuilds from logs
  }
  r.expect_end();
  std::vector<Request> sequence;
  sequence.reserve(placements.size());
  for (const auto& [shard, local] : placements) {
    MINREJ_REQUIRE(local != kInvalidId,
                   "reshard-on-restore cannot replay shed or malformed "
                   "arrivals — their requests were never logged");
    MINREJ_REQUIRE(shard < logs.size() && local < logs[shard].size(),
                   "snapshot placement points outside the shard log");
    sequence.push_back(logs[static_cast<std::size_t>(shard)][local]);
  }
  for (std::size_t offset = 0; offset < sequence.size();
       offset += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, sequence.size() - offset);
    submit_batch(std::span<const Request>(sequence.data() + offset, count));
  }
}

ServiceStats AdmissionService::run(const AdmissionInstance& instance) {
  MINREJ_REQUIRE(instance.graph().edge_count() == graph_.edge_count(),
                 "instance graph does not match the service graph");
  Timer wall;
  const std::vector<Request>& requests = instance.requests();
  for (std::size_t offset = 0; offset < requests.size();
       offset += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, requests.size() - offset);
    submit_batch(std::span<const Request>(requests.data() + offset, count));
  }
  ServiceStats stats = aggregate();
  stats.seconds = wall.elapsed_s();
  return stats;
}

bool AdmissionService::is_accepted(std::size_t arrival_index) const {
  const auto [shard, local] = placement(arrival_index);
  MINREJ_REQUIRE(local != kInvalidId,
                 "arrival was never processed (its shard failed mid-batch)");
  return shards_[shard].algorithm->is_accepted(local);
}

std::pair<std::size_t, RequestId> AdmissionService::placement(
    std::size_t arrival_index) const {
  MINREJ_REQUIRE(arrival_index < placement_.size(),
                 "arrival index out of range");
  const auto& [shard, local] = placement_[arrival_index];
  return {static_cast<std::size_t>(shard), local};
}

const OnlineAdmissionAlgorithm& AdmissionService::shard_algorithm(
    std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return *shards_[shard].algorithm;
}

ShardStats AdmissionService::shard_stats(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  const Shard& s = shards_[shard];
  ShardStats stats;
  stats.shard = shard;
  stats.arrivals = s.arrivals;
  stats.rejected = s.algorithm->rejected_count();
  stats.accepted = s.arrivals - stats.rejected;
  stats.rejected_cost = s.algorithm->rejected_cost();
  stats.augmentation_steps = s.algorithm->augmentation_steps();
  stats.busy_seconds = s.busy_seconds;
  stats.latencies_s = s.latencies_s;
  stats.augmentation_budget = augmentation_step_budget(
      s.arrivals, graph_.edge_count(), graph_.max_capacity());
  stats.augmentation_budget_exceeded =
      stats.augmentation_steps > stats.augmentation_budget;
  stats.task_failures = s.task_failures;
  stats.retries = s.retries;
  stats.restores = s.restores;
  stats.shed = s.shed;
  stats.malformed = s.malformed;
  stats.injected_delays = s.injected_delays;
  stats.quarantined = s.quarantined;
  stats.degraded = s.degraded;
  return stats;
}

ServiceStats AdmissionService::aggregate() const {
  ServiceStats stats;
  stats.shards = shards_.size();
  stats.seconds = pumped_seconds_;
  std::vector<double> latencies;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    stats.arrivals += shard.arrivals;
    const std::size_t rejected = shard.algorithm->rejected_count();
    stats.rejected += rejected;
    stats.accepted += shard.arrivals - rejected;
    stats.rejected_cost += shard.algorithm->rejected_cost();
    stats.augmentation_steps += shard.algorithm->augmentation_steps();
    stats.max_shard_busy_s =
        std::max(stats.max_shard_busy_s, shard.busy_seconds);
    stats.total_busy_s += shard.busy_seconds;
    latencies.insert(latencies.end(), shard.latencies_s.begin(),
                     shard.latencies_s.end());
    const std::uint64_t budget = augmentation_step_budget(
        shard.arrivals, graph_.edge_count(), graph_.max_capacity());
    if (shard.algorithm->augmentation_steps() > budget) {
      ++stats.budget_exceeded_shards;
    }
    stats.task_failures += shard.task_failures;
    stats.retries += shard.retries;
    stats.restores += shard.restores;
    stats.shed += shard.shed;
    stats.malformed += shard.malformed;
    stats.injected_delays += shard.injected_delays;
    if (shard.quarantined) ++stats.quarantined_shards;
    if (shard.degraded) ++stats.degraded_shards;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    stats.p50_arrival_s = quantile_sorted(latencies, 0.50);
    stats.p95_arrival_s = quantile_sorted(latencies, 0.95);
    stats.max_arrival_s = latencies.back();
  }
  return stats;
}

}  // namespace minrej

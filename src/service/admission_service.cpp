#include "service/admission_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string_view>
#include <thread>

#include "core/randomized_admission.h"
#include "core/run_budget.h"
#include "io/snapshot.h"
#include "util/build_info.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace minrej {

ShardAlgorithmFactory randomized_shard_factory(bool unit_costs,
                                               std::uint64_t seed) {
  return [unit_costs, seed](const Graph& graph, std::size_t shard) {
    RandomizedConfig cfg;
    cfg.unit_costs = unit_costs;
    cfg.seed = seed + shard;
    return std::make_unique<RandomizedAdmission>(graph, cfg);
  };
}

namespace {

std::size_t pump_workers(const ServiceConfig& config) {
  const std::size_t hw = hardware_concurrency();
  const std::size_t want =
      config.threads > 0 ? config.threads : std::min(config.shards, hw);
  return std::max<std::size_t>(1, std::min(want, config.shards));
}

/// Stream kinds of the two nested snapshot formats (io/snapshot.h).
constexpr std::string_view kServiceSnapshotKind = "minrej.service";
constexpr std::string_view kAlgorithmSnapshotKind = "minrej.algorithm";
constexpr std::uint32_t kServiceSnapshotVersion = 1;
constexpr std::uint32_t kAlgorithmSnapshotVersion = 1;

/// Order-sensitive fingerprint of the capacity vector: snapshots refuse to
/// load onto a graph with the same edge count but different capacities.
std::uint64_t capacity_fingerprint(const Graph& graph) noexcept {
  std::uint64_t state = 0x6D696E72656A6670ULL;  // "minrejfp"
  for (const std::int64_t c : graph.capacities()) {
    state ^= static_cast<std::uint64_t>(c);
    splitmix64(state);
  }
  return splitmix64(state);
}

}  // namespace

AdmissionService::AdmissionService(const Graph& graph,
                                   ShardAlgorithmFactory factory,
                                   ServiceConfig config)
    : graph_(graph), factory_(std::move(factory)), config_(std::move(config)) {
  MINREJ_REQUIRE(config_.shards >= 1, "service needs at least one shard");
  MINREJ_REQUIRE(config_.batch >= 1, "batch must be positive");
  MINREJ_REQUIRE(static_cast<bool>(factory_), "null algorithm factory");
  MINREJ_REQUIRE(graph_.edge_count() >= 1, "graph has no edges");
  MINREJ_REQUIRE(!(config_.lca_reconcile && config_.fault_tolerance.enabled),
                 "lca_reconcile is incompatible with fault tolerance: the "
                 "reconcile lane has no committed log to rebuild from");
  if (config_.partition) {
    // A partition that maps any edge out of range would fail mid-pump on
    // the first request touching that edge; surface it at construction
    // instead, where the error names the config, not the traffic.
    for (std::size_t e = 0; e < graph_.edge_count(); ++e) {
      MINREJ_REQUIRE(config_.partition(static_cast<EdgeId>(e)) <
                         config_.shards,
                     "partition maps an edge to a shard >= the shard count");
    }
  }
  const RetryPolicy& retry = config_.fault_tolerance.retry;
  MINREJ_REQUIRE(retry.backoff_base_s >= 0.0 && retry.backoff_max_s >= 0.0,
                 "retry backoff must be non-negative");
  MINREJ_REQUIRE(retry.jitter >= 0.0 && retry.jitter <= 1.0,
                 "retry jitter must be in [0, 1]");
  shards_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_[s].algorithm = factory_(graph_, s);
    MINREJ_REQUIRE(shards_[s].algorithm != nullptr,
                   "factory returned a null algorithm");
    MINREJ_REQUIRE(&shards_[s].algorithm->graph() == &graph_,
                   "shard algorithm must be built on the service graph");
  }
  if (config_.lca_reconcile) {
    // The reconcile lane is "shard K": its factory shard index is past the
    // real shards, so seeded factories give it an independent stream.
    lca_algorithm_ = factory_(graph_, config_.shards);
    MINREJ_REQUIRE(lca_algorithm_ != nullptr,
                   "factory returned a null algorithm");
    MINREJ_REQUIRE(&lca_algorithm_->graph() == &graph_,
                   "LCA lane algorithm must be built on the service graph");
  }
  if (config_.pump == PumpMode::kRings) {
    const std::size_t capacity =
        config_.ring_capacity > 0 ? config_.ring_capacity
                                  : std::max<std::size_t>(1024, config_.batch);
    lanes_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      lanes_.push_back(std::make_unique<Lane>(capacity));
    }
    start_workers();
  } else {
    pool_ = std::make_unique<ThreadPool>(pump_workers(config_));
  }
}

AdmissionService::~AdmissionService() { stop_workers(); }

std::size_t AdmissionService::worker_count() const noexcept {
  return config_.pump == PumpMode::kRings
             ? ring_workers_.size()
             : (pool_ ? pool_->thread_count() : 0);
}

void AdmissionService::start_workers() {
  const std::size_t workers = pump_workers(config_);
  ring_workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ring_workers_.emplace_back([this, w, workers] { worker_loop(w, workers); });
  }
}

void AdmissionService::stop_workers() {
  if (ring_workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    stop_workers_ = true;
    ++wake_epoch_;
  }
  cv_wake_.notify_all();
  // Legal only between batches (rings drained, job slots empty), so
  // joining here never abandons work.
  for (std::thread& t : ring_workers_) {
    if (t.joinable()) t.join();
  }
  ring_workers_.clear();
}

void AdmissionService::kick_workers() {
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    ++wake_epoch_;
  }
  cv_wake_.notify_all();
}

void AdmissionService::wait_for_workers(const std::function<bool()>& pred) {
  // Bounded spin first: on the pumping fast path the workers finish the
  // batch within the spin window and no lock is ever taken.
  for (int spin = 0; spin < 4096; ++spin) {
    if (pred()) return;
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(pump_mu_);
  while (!pred()) {
    // Timed wait: workers notify cv_done_ locklessly after each chunk, so
    // a notification racing past this thread costs one timeout, never a
    // hang.
    cv_done_.wait_for(lock, std::chrono::microseconds(200));
  }
}

void AdmissionService::worker_loop(std::size_t worker,
                                   std::size_t worker_total) {
  // Persistent consumer: owns shards worker, worker+W, worker+2W, …  Spins
  // over its lanes while work keeps arriving, yields through a bounded
  // grace window when idle, then sleeps on cv_wake_ with a short timeout
  // (the timeout caps the cost of a wakeup lost to the lock-free push
  // path; kick_workers cuts the common-case latency).
  constexpr int kIdleGracePolls = 256;
  std::uint64_t seen_epoch = 0;
  int idle_polls = 0;
  for (;;) {
    bool did_work = false;
    for (std::size_t s = worker; s < shards_.size(); s += worker_total) {
      if (run_lane_job(s)) did_work = true;
      if (drain_lane(s)) did_work = true;
    }
    if (did_work) {
      idle_polls = 0;
      cv_done_.notify_all();
      continue;
    }
    if (++idle_polls < kIdleGracePolls) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(pump_mu_);
    if (stop_workers_) return;
    cv_wake_.wait_for(lock, std::chrono::microseconds(500), [&] {
      return stop_workers_ || wake_epoch_ != seen_epoch;
    });
    seen_epoch = wake_epoch_;
    if (stop_workers_) return;
    lock.unlock();
    idle_polls = 0;
  }
}

bool AdmissionService::drain_lane(std::size_t s) {
  Lane& lane = *lanes_[s];
  std::uint32_t idx;
  if (!lane.ring.try_pop(idx)) return false;
  // The successful pop's acquire pairs with the routing thread's release
  // push: live_batch_ and the pre-batch shard state are visible from here.
  Shard& shard = shards_[s];
  const std::span<const Request> batch = live_batch_;
  constexpr std::size_t kChunk = 256;
  std::size_t consumed = 0;
  Timer busy;
  Timer arrival_timer;
  do {
    ++consumed;
    if (shard.error) continue;  // poisoned: discard the rest, but count it
    try {
      if (config_.collect_latencies) arrival_timer.reset();
      const ArrivalResult result = shard.algorithm->process(batch[idx]);
      if (config_.collect_latencies) {
        shard.latencies_s.push_back(arrival_timer.elapsed_s());
      }
      decisions_[idx] = result.accepted ? 1 : 0;
      ++shard.arrivals;
    } catch (...) {
      shard.error = std::current_exception();
    }
  } while (consumed < kChunk && lane.ring.try_pop(idx));
  shard.busy_seconds += busy.elapsed_s();
  // One release per chunk, not per arrival: publishes every shard write
  // above to the routing thread's acquire load in the completion wait.
  lane.consumed.fetch_add(consumed, std::memory_order_release);
  return true;
}

bool AdmissionService::run_lane_job(std::size_t s) {
  Lane& lane = *lanes_[s];
  const auto kind =
      static_cast<JobKind>(lane.job.load(std::memory_order_acquire));
  if (kind == JobKind::kNone) return false;
  switch (kind) {
    case JobKind::kFtAttempt:
      run_shard_task_ft(s, live_batch_, lane.job_base, lane.job_attempt,
                        lane.job_injector);
      break;
    case JobKind::kRebuild:
      try {
        rebuild_shard(s);
      } catch (...) {
        shards_[s].error = std::current_exception();
      }
      break;
    case JobKind::kNone:
      break;
  }
  lane.job.store(static_cast<std::uint8_t>(JobKind::kNone),
                 std::memory_order_release);
  return true;
}

std::size_t AdmissionService::hash_edge_to_shard(
    EdgeId e, std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // splitmix64 of the edge id: spreads hot low-id edges (the Zipf head)
  // across shards instead of clustering them in shard 0.
  std::uint64_t state = static_cast<std::uint64_t>(e) + 1;
  return static_cast<std::size_t>(splitmix64(state) %
                                  static_cast<std::uint64_t>(shard_count));
}

std::size_t AdmissionService::shard_of_edge(EdgeId e) const {
  MINREJ_REQUIRE(e < graph_.edge_count(), "edge id out of range");
  if (!config_.partition) return hash_edge_to_shard(e, shards_.size());
  const std::size_t s = config_.partition(e);
  MINREJ_REQUIRE(s < shards_.size(),
                 "partition returned a shard out of range");
  return s;
}

std::size_t AdmissionService::shard_of_request(const Request& request) const {
  MINREJ_REQUIRE(!request.edges.empty(), "empty request");
  return shard_of_edge(request.edges.front());
}

std::vector<bool> AdmissionService::submit_batch(
    std::span<const Request> batch) {
  // One branch each is the whole cost of the fault-tolerance layer and the
  // rings pump when they are off: the code below is the pre-existing fast
  // path, untouched.
  if (config_.fault_tolerance.enabled) return submit_batch_ft(batch);
  if (config_.pump == PumpMode::kRings) return submit_batch_rings(batch);
  Timer wall;
  for (Shard& shard : shards_) shard.pending.clear();
  lca_pending_.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());

  // Route on the caller's thread: placement (shard + shard-local id) is
  // fully determined before any worker runs, so it never races and the
  // shard-local id sequence is arrival-ordered by construction.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (lca_algorithm_ && request_crosses_shards(batch[i])) {
      // Cross-shard arrival: diverted to the reconcile lane; its placement
      // is filled in by reconcile_lca_pending after the shard work drains.
      lca_pending_.push_back(i);
      placement_.emplace_back(kLcaShardMarker, kInvalidId);
      continue;
    }
    const std::size_t s = shard_of_request(batch[i]);
    const auto local = static_cast<RequestId>(shards_[s].algorithm->arrivals() +
                                              shards_[s].pending.size());
    shards_[s].pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
  }

  decisions_.assign(batch.size(), 0);
  // Per-shard arrival counts before the pump: on a shard failure these
  // locate the first unprocessed arrival so its placement can be voided.
  std::vector<std::size_t> processed_before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    processed_before[s] = shards_[s].arrivals;
  }
  std::size_t busy_shards = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].pending.empty()) continue;
    ++busy_shards;
    pool_->submit([this, s, batch] {
      Shard& shard = shards_[s];
      try {
        Timer busy;
        Timer arrival_timer;
        for (const std::size_t idx : shard.pending) {
          if (config_.collect_latencies) arrival_timer.reset();
          const ArrivalResult result = shard.algorithm->process(batch[idx]);
          if (config_.collect_latencies) {
            shard.latencies_s.push_back(arrival_timer.elapsed_s());
          }
          decisions_[idx] = result.accepted ? 1 : 0;
          ++shard.arrivals;
        }
        shard.busy_seconds += busy.elapsed_s();
      } catch (...) {
        shard.error = std::current_exception();
      }
    });
  }
  if (busy_shards > 0) pool_->wait_idle();
  if (!lca_pending_.empty()) reconcile_lca_pending(batch, base);
  pumped_seconds_ += wall.elapsed_s();

  std::exception_ptr first_error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.error) continue;
    if (!first_error) first_error = shard.error;
    shard.error = nullptr;
    // The shard stopped mid-sub-batch: its algorithm never assigned ids
    // to the remaining arrivals.  Void their placements so a later batch
    // cannot alias those local ids onto the stale entries (is_accepted on
    // a voided arrival throws instead of answering for the wrong
    // request).
    const std::size_t processed = shard.arrivals - processed_before[s];
    for (std::size_t j = processed; j < shard.pending.size(); ++j) {
      placement_[base + shard.pending[j]].second = kInvalidId;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

std::vector<bool> AdmissionService::submit_batch_rings(
    std::span<const Request> batch) {
  Timer wall;
  for (Shard& shard : shards_) shard.pending.clear();
  lca_pending_.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());
  decisions_.assign(batch.size(), 0);

  // Between batches the workers are quiescent (the previous completion
  // wait saw every pushed index consumed), so these reads are stable.
  // local_base snapshots each algorithm's arrival count *now*, because by
  // the time a later arrival of this batch is routed the owning worker may
  // already be advancing it — the count at batch start plus the number of
  // already-routed arrivals reproduces the sequential pump's ids exactly.
  std::vector<std::size_t> processed_before(shards_.size());
  std::vector<std::size_t> local_base(shards_.size());
  std::vector<std::uint64_t> target(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    processed_before[s] = shards_[s].arrivals;
    local_base[s] = shards_[s].algorithm->arrivals();
    target[s] = lanes_[s]->consumed.load(std::memory_order_relaxed);
  }

  // Publish the batch, then stream indices into the shard rings as they
  // are routed: the ring push's release store is what makes live_batch_
  // (and decisions_) visible to the consuming worker, and workers overlap
  // with the rest of the routing loop.
  live_batch_ = batch;
  kick_workers();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (lca_algorithm_ && request_crosses_shards(batch[i])) {
      lca_pending_.push_back(i);
      placement_.emplace_back(kLcaShardMarker, kInvalidId);
      continue;
    }
    const std::size_t s = shard_of_request(batch[i]);
    Shard& shard = shards_[s];
    const auto local =
        static_cast<RequestId>(local_base[s] + shard.pending.size());
    shard.pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
    std::size_t spins = 0;
    while (!lanes_[s]->ring.try_push(static_cast<std::uint32_t>(i))) {
      // Ring full: the owning worker is behind.  Yield to it; kick
      // periodically in case it reached its idle sleep before our first
      // kick landed.
      if ((++spins & 0x3FFu) == 0) kick_workers();
      std::this_thread::yield();
    }
  }
  kick_workers();
  wait_for_workers([&] {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].pending.empty()) continue;
      if (lanes_[s]->consumed.load(std::memory_order_acquire) <
          target[s] + shards_[s].pending.size()) {
        return false;
      }
    }
    return true;
  });
  if (!lca_pending_.empty()) reconcile_lca_pending(batch, base);
  pumped_seconds_ += wall.elapsed_s();

  // Identical failure semantics to the kTasks pump: drain first, void the
  // failing shard's unprocessed placements, rethrow the first error.
  std::exception_ptr first_error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.error) continue;
    if (!first_error) first_error = shard.error;
    shard.error = nullptr;
    const std::size_t processed = shard.arrivals - processed_before[s];
    for (std::size_t j = processed; j < shard.pending.size(); ++j) {
      placement_[base + shard.pending[j]].second = kInvalidId;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

bool AdmissionService::request_crosses_shards(const Request& request) const {
  if (request.edges.size() <= 1) return false;
  const std::size_t first = shard_of_edge(request.edges.front());
  for (std::size_t i = 1; i < request.edges.size(); ++i) {
    if (shard_of_edge(request.edges[i]) != first) return true;
  }
  return false;
}

void AdmissionService::reconcile_lca_pending(std::span<const Request> batch,
                                             std::size_t base) {
  // Runs on the routing thread with the shard workers quiescent, so the
  // speculative would_overflow probes read a stable (and worker-count
  // independent) per-shard state: the one after this batch's shard-local
  // traffic.  The reconcile engine is authoritative; the speculation is
  // only scored, never trusted.
  for (const std::size_t idx : lca_pending_) {
    const Request& request = batch[idx];
    const std::size_t owner = shard_of_request(request);
    const bool speculative =
        !shards_[owner].algorithm->would_overflow(request);
    const auto local = static_cast<RequestId>(lca_algorithm_->arrivals());
    const ArrivalResult result = lca_algorithm_->process(request);
    decisions_[idx] = result.accepted ? 1 : 0;
    placement_[base + idx] = {kLcaShardMarker, local};
    if (speculative == result.accepted) ++lca_speculation_hits_;
  }
}

bool AdmissionService::request_well_formed(
    const Request& request) const noexcept {
  if (request.edges.empty()) return false;
  if (!(request.cost > 0.0) || !std::isfinite(request.cost)) return false;
  EdgeId prev = 0;
  for (std::size_t i = 0; i < request.edges.size(); ++i) {
    const EdgeId e = request.edges[i];
    if (e >= graph_.edge_count()) return false;
    if (i > 0 && e <= prev) return false;  // sorted + unique contract
    prev = e;
  }
  return true;
}

std::vector<bool> AdmissionService::submit_batch_ft(
    std::span<const Request> batch) {
  Timer wall;
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  const FaultInjector* injector = ft.injector.get();
  for (Shard& shard : shards_) shard.pending.clear();
  const std::size_t base = placement_.size();
  placement_.reserve(base + batch.size());
  modes_.reserve(base + batch.size());
  decisions_.assign(batch.size(), 0);

  // Route + admit-to-the-pump on the caller's thread.  Arrivals that are
  // malformed (or flagged corrupt by the injector), owned by a
  // quarantined shard, or beyond a shard's queue limit never reach an
  // algorithm: their decision stays "rejected", their placement is voided
  // (is_accepted throws instead of answering for the wrong request), and
  // the mode records why.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if ((injector && injector->corrupt(base + i)) ||
        !request_well_formed(request)) {
      // Attribute to the shard the first edge routes to when it is
      // routable at all; shard 0 is the catch-all for unroutable garbage.
      const std::size_t s =
          (!request.edges.empty() && request.edges.front() < graph_.edge_count())
              ? shard_of_edge(request.edges.front())
              : 0;
      ++shards_[s].malformed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kMalformed));
      continue;
    }
    const std::size_t s = shard_of_request(request);
    Shard& shard = shards_[s];
    if (shard.quarantined) {
      ++shard.shed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(
          static_cast<std::uint8_t>(DecisionMode::kQuarantineShed));
      continue;
    }
    if (ft.overload.max_shard_queue > 0 &&
        shard.pending.size() >= ft.overload.max_shard_queue) {
      ++shard.shed;
      placement_.emplace_back(static_cast<std::uint32_t>(s), kInvalidId);
      modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kShed));
      continue;
    }
    const auto local = static_cast<RequestId>(shard.algorithm->arrivals() +
                                              shard.pending.size());
    shard.pending.push_back(i);
    placement_.emplace_back(static_cast<std::uint32_t>(s), local);
    // Provisional; commit_shard_batch overwrites with the mode actually
    // used (kShed when the degraded rule handled it).
    modes_.push_back(static_cast<std::uint8_t>(DecisionMode::kEngine));
  }

  // Attempt loop: run every busy shard, retry the failed ones with
  // exponential backoff (rebuilding their algorithms to the committed
  // pre-batch state first), quarantine the ones that exhaust retries.
  std::vector<std::size_t> to_run;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].pending.empty()) to_run.push_back(s);
  }
  std::uint64_t jitter_state =
      ft.retry.jitter_seed ^ (static_cast<std::uint64_t>(base) + 1);
  std::size_t attempt = 0;
  while (!to_run.empty()) {
    for (const std::size_t s : to_run) {
      Shard& shard = shards_[s];
      shard.error = nullptr;
      shard.mode_scratch.assign(shard.pending.size(), 0);
      shard.latency_scratch.clear();
    }
    dispatch_ft_attempts(to_run, batch, base, attempt, injector);
    // Sort survivors from casualties first, then rebuild every casualty to
    // its committed state in one dispatch — in kRings mode the rebuilds
    // (factory + log replay) run as parallel lane jobs, so one shard's
    // replay never blocks a sibling's (DESIGN.md §11.5).
    std::vector<std::size_t> retry_set;
    std::vector<std::size_t> quarantine_set;
    std::vector<std::size_t> rebuild_set;
    for (const std::size_t s : to_run) {
      Shard& shard = shards_[s];
      if (!shard.error) {
        commit_shard_batch(s, batch, base);
        continue;
      }
      shard.error = nullptr;
      ++shard.task_failures;
      rebuild_set.push_back(s);
      if (attempt >= ft.retry.max_retries) {
        quarantine_set.push_back(s);
      } else {
        ++shard.retries;
        retry_set.push_back(s);
      }
    }
    dispatch_rebuilds(rebuild_set);
    for (const std::size_t s : quarantine_set) {
      // Exhausted retries: the shard is already rolled back to its last
      // committed state (above); mark it quarantined and shed its share
      // of this batch.
      Shard& shard = shards_[s];
      shard.quarantined = true;
      for (const std::size_t idx : shard.pending) {
        decisions_[idx] = 0;
        placement_[base + idx].second = kInvalidId;
        modes_[base + idx] =
            static_cast<std::uint8_t>(DecisionMode::kQuarantineShed);
        ++shard.shed;
      }
    }
    to_run = std::move(retry_set);
    if (!to_run.empty()) {
      const double doubling =
          static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(
                                  attempt, 30));
      double delay = std::min(ft.retry.backoff_max_s,
                              ft.retry.backoff_base_s * doubling);
      const double u =
          static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
      delay *= 1.0 + ft.retry.jitter * (2.0 * u - 1.0);
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      ++attempt;
    }
  }
  pumped_seconds_ += wall.elapsed_s();

  std::vector<bool> accepted(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    accepted[i] = decisions_[i] != 0;
  }
  return accepted;
}

void AdmissionService::run_shard_task_ft(std::size_t shard_index,
                                         std::span<const Request> batch,
                                         std::size_t base, std::size_t attempt,
                                         const FaultInjector* injector) {
  Shard& shard = shards_[shard_index];
  try {
    Timer busy;
    Timer arrival_timer;
    const OverloadPolicy& overload = config_.fault_tolerance.overload;
    // Deadline shedding is per-batch: a slow sub-batch degrades its own
    // tail, the next batch starts fresh.  The budget latch is per-shard
    // and permanent until a rebuild re-derives it.
    bool deadline_shed = false;
    for (std::size_t j = 0; j < shard.pending.size(); ++j) {
      const std::size_t idx = shard.pending[j];
      if (injector) {
        // Probe on the service-global arrival index: it advances even when
        // the shard sheds, so a healed shard is not doomed to replay the
        // exact probe pattern that quarantined it.
        const std::size_t global_arrival = base + idx;
        switch (injector->probe(shard_index, global_arrival, attempt)) {
          case FaultAction::kException:
            throw InjectedFault("injected shard-task fault (shard " +
                                std::to_string(shard_index) + ", arrival " +
                                std::to_string(global_arrival) + ", attempt " +
                                std::to_string(attempt) + ")");
          case FaultAction::kDelay:
            std::this_thread::sleep_for(
                std::chrono::duration<double>(injector->delay_seconds()));
            ++shard.injected_delays;
            break;
          case FaultAction::kNone:
            break;
        }
      }
      if (overload.shard_deadline_s > 0.0 && !deadline_shed &&
          busy.elapsed_s() > overload.shard_deadline_s) {
        deadline_shed = true;
      }
      const bool shed_this = shard.degraded || deadline_shed;
      if (config_.collect_latencies) arrival_timer.reset();
      const ArrivalResult result =
          shed_this ? shard.algorithm->process_shed(batch[idx])
                    : shard.algorithm->process(batch[idx]);
      if (config_.collect_latencies) {
        shard.latency_scratch.push_back(arrival_timer.elapsed_s());
      }
      decisions_[idx] = result.accepted ? 1 : 0;
      shard.mode_scratch[j] = static_cast<std::uint8_t>(
          shed_this ? DecisionMode::kShed : DecisionMode::kEngine);
      if (overload.shed_on_budget && !shard.degraded) {
        const std::uint64_t budget = augmentation_step_budget(
            shard.algorithm->arrivals(), graph_.edge_count(),
            graph_.max_capacity());
        if (shard.algorithm->augmentation_steps() > budget) {
          shard.degraded = true;
        }
      }
    }
    shard.busy_seconds += busy.elapsed_s();
  } catch (...) {
    shard.error = std::current_exception();
  }
}

void AdmissionService::commit_shard_batch(std::size_t shard_index,
                                          std::span<const Request> batch,
                                          std::size_t base) {
  Shard& shard = shards_[shard_index];
  shard.log.reserve(shard.log.size() + shard.pending.size());
  for (std::size_t j = 0; j < shard.pending.size(); ++j) {
    const std::size_t idx = shard.pending[j];
    shard.log.push_back(LogEntry{batch[idx], shard.mode_scratch[j]});
    modes_[base + idx] = shard.mode_scratch[j];
  }
  shard.arrivals += shard.pending.size();
  shard.latencies_s.insert(shard.latencies_s.end(),
                           shard.latency_scratch.begin(),
                           shard.latency_scratch.end());
}

void AdmissionService::rebuild_shard(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  std::unique_ptr<OnlineAdmissionAlgorithm> fresh =
      factory_(graph_, shard_index);
  MINREJ_CHECK(fresh != nullptr, "factory returned a null algorithm");
  std::size_t replay_from = 0;
  bool degraded = false;
  if (!shard.checkpoint_blob.empty() && fresh->snapshot_supported()) {
    SnapshotReader r(shard.checkpoint_blob, kAlgorithmSnapshotKind);
    fresh->load_snapshot(r);
    r.expect_end();
    replay_from = shard.checkpoint_log_len;
    degraded = shard.checkpoint_degraded;
  }
  const OverloadPolicy& overload = config_.fault_tolerance.overload;
  for (std::size_t j = replay_from; j < shard.log.size(); ++j) {
    const LogEntry& entry = shard.log[j];
    // The logged mode is authoritative: replay calls exactly what the
    // live pump called, so the trajectory (weights, RNG draws, ids) is
    // reproduced bit-for-bit.
    if (entry.mode == static_cast<std::uint8_t>(DecisionMode::kShed)) {
      fresh->process_shed(entry.request);
    } else {
      fresh->process(entry.request);
    }
    // Re-derive the budget latch with the same per-arrival check the live
    // pump applies — deterministic in (steps, arrivals), both replayed.
    if (overload.shed_on_budget && !degraded) {
      const std::uint64_t budget = augmentation_step_budget(
          fresh->arrivals(), graph_.edge_count(), graph_.max_capacity());
      if (fresh->augmentation_steps() > budget) degraded = true;
    }
  }
  shard.algorithm = std::move(fresh);
  shard.degraded = degraded;
  ++shard.restores;
}

void AdmissionService::dispatch_ft_attempts(
    const std::vector<std::size_t>& to_run, std::span<const Request> batch,
    std::size_t base, std::size_t attempt, const FaultInjector* injector) {
  if (to_run.empty()) return;
  if (config_.pump == PumpMode::kTasks) {
    for (const std::size_t s : to_run) {
      pool_->submit([this, s, batch, base, attempt, injector] {
        run_shard_task_ft(s, batch, base, attempt, injector);
      });
    }
    pool_->wait_idle();
    return;
  }
  // kRings: post one job per shard to its owning persistent worker.  The
  // release store into the job slot publishes live_batch_ and the job
  // parameters; the worker's acquire pairs with it, and its kNone release
  // store publishes the attempt's results back to this thread's acquire.
  live_batch_ = batch;
  for (const std::size_t s : to_run) {
    Lane& lane = *lanes_[s];
    lane.job_base = base;
    lane.job_attempt = attempt;
    lane.job_injector = injector;
    lane.job.store(static_cast<std::uint8_t>(JobKind::kFtAttempt),
                   std::memory_order_release);
  }
  kick_workers();
  wait_for_workers([&] {
    for (const std::size_t s : to_run) {
      if (lanes_[s]->job.load(std::memory_order_acquire) !=
          static_cast<std::uint8_t>(JobKind::kNone)) {
        return false;
      }
    }
    return true;
  });
}

void AdmissionService::dispatch_rebuilds(
    const std::vector<std::size_t>& failed) {
  if (failed.empty()) return;
  if (config_.pump == PumpMode::kTasks || failed.size() == 1) {
    // Serial: the kTasks contract keeps the factory on the caller thread,
    // and a single rebuild has no siblings to block.
    for (const std::size_t s : failed) rebuild_shard(s);
    return;
  }
  for (const std::size_t s : failed) {
    lanes_[s]->job.store(static_cast<std::uint8_t>(JobKind::kRebuild),
                         std::memory_order_release);
  }
  kick_workers();
  wait_for_workers([&] {
    for (const std::size_t s : failed) {
      if (lanes_[s]->job.load(std::memory_order_acquire) !=
          static_cast<std::uint8_t>(JobKind::kNone)) {
        return false;
      }
    }
    return true;
  });
  // A rebuild that threw (corrupt checkpoint, factory failure) parked its
  // exception in shard.error; surface the first one like the serial path
  // would have.
  std::exception_ptr first_error;
  for (const std::size_t s : failed) {
    if (!shards_[s].error) continue;
    if (!first_error) first_error = shards_[s].error;
    shards_[s].error = nullptr;
  }
  if (first_error) std::rethrow_exception(first_error);
}

DecisionMode AdmissionService::decision_mode(
    std::size_t arrival_index) const {
  MINREJ_REQUIRE(arrival_index < placement_.size(),
                 "arrival index out of range");
  if (arrival_index >= modes_.size()) return DecisionMode::kEngine;
  return static_cast<DecisionMode>(modes_[arrival_index]);
}

bool AdmissionService::shard_quarantined(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard].quarantined;
}

bool AdmissionService::shard_degraded(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard].degraded;
}

void AdmissionService::checkpoint() {
  MINREJ_REQUIRE(config_.fault_tolerance.enabled,
                 "checkpoint() needs fault tolerance enabled (the recovery "
                 "replay consumes the per-shard arrival log)");
  for (Shard& shard : shards_) {
    if (!shard.algorithm->snapshot_supported()) {
      // Recovery falls back to full log replay for this shard.
      shard.checkpoint_blob.clear();
      shard.checkpoint_log_len = 0;
      shard.checkpoint_degraded = false;
      continue;
    }
    SnapshotWriter w(std::string(kAlgorithmSnapshotKind),
                     kAlgorithmSnapshotVersion);
    shard.algorithm->save_snapshot(w);
    shard.checkpoint_blob = w.finish();
    shard.checkpoint_log_len = shard.log.size();
    shard.checkpoint_degraded = shard.degraded;
  }
}

void AdmissionService::restore_shard(std::size_t shard) {
  MINREJ_REQUIRE(config_.fault_tolerance.enabled,
                 "restore_shard() needs fault tolerance enabled");
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  rebuild_shard(shard);
  shards_[shard].quarantined = false;
}

std::vector<std::uint8_t> AdmissionService::snapshot() const {
  MINREJ_REQUIRE(!config_.lca_reconcile,
                 "snapshot() does not cover the LCA reconcile lane");
  for (const Shard& shard : shards_) {
    MINREJ_REQUIRE(shard.algorithm->snapshot_supported(),
                   "snapshot() requires every shard algorithm to support "
                   "snapshots (docs/API.md)");
  }
  SnapshotWriter w(std::string(kServiceSnapshotKind), kServiceSnapshotVersion);
  w.tag("SRVC");
  w.u64(shards_.size());
  w.u64(graph_.edge_count());
  w.u64(capacity_fingerprint(graph_));
  const bool has_log = config_.fault_tolerance.enabled;
  w.boolean(has_log);
  w.u64(placement_.size());
  for (const auto& [shard, local] : placement_) {
    w.u32(shard);
    w.u32(local);
  }
  w.vec(modes_);
  for (const Shard& shard : shards_) {
    w.tag("SHRD");
    w.u64(shard.arrivals);
    w.u64(shard.task_failures);
    w.u64(shard.retries);
    w.u64(shard.restores);
    w.u64(shard.shed);
    w.u64(shard.malformed);
    w.u64(shard.injected_delays);
    w.boolean(shard.quarantined);
    w.boolean(shard.degraded);
    w.u64(shard.log.size());
    for (const LogEntry& entry : shard.log) {
      w.vec(entry.request.edges);
      w.f64(entry.request.cost);
      w.boolean(entry.request.must_accept);
      w.u8(entry.mode);
    }
    SnapshotWriter algo(std::string(kAlgorithmSnapshotKind),
                        kAlgorithmSnapshotVersion);
    shard.algorithm->save_snapshot(algo);
    w.blob(algo.finish());
  }
  return w.finish();
}

void AdmissionService::restore(std::span<const std::uint8_t> blob) {
  MINREJ_REQUIRE(placement_.empty(),
                 "restore() requires a freshly constructed service");
  MINREJ_REQUIRE(!config_.lca_reconcile,
                 "restore() does not cover the LCA reconcile lane");
  SnapshotReader r(blob, kServiceSnapshotKind);
  MINREJ_REQUIRE(r.version() == kServiceSnapshotVersion,
                 "unsupported service snapshot version");
  r.expect_tag("SRVC");
  const std::uint64_t source_shards = r.u64();
  MINREJ_REQUIRE(r.u64() == graph_.edge_count(),
                 "snapshot was taken on a graph with a different edge count");
  MINREJ_REQUIRE(r.u64() == capacity_fingerprint(graph_),
                 "snapshot was taken on a graph with different capacities");
  const bool has_log = r.boolean();
  const std::uint64_t arrival_count = r.u64();
  std::vector<std::pair<std::uint32_t, RequestId>> placements;
  placements.reserve(static_cast<std::size_t>(arrival_count));
  for (std::uint64_t i = 0; i < arrival_count; ++i) {
    const std::uint32_t shard = r.u32();
    const RequestId local = r.u32();
    placements.emplace_back(shard, local);
  }
  std::vector<std::uint8_t> modes = r.vec<std::uint8_t>();

  if (source_shards == shards_.size()) {
    // Same shard count: load every shard's algorithm snapshot directly.
    // The continuation is bit-identical to the uninterrupted run.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = shards_[s];
      r.expect_tag("SHRD");
      shard.arrivals = static_cast<std::size_t>(r.u64());
      shard.task_failures = static_cast<std::size_t>(r.u64());
      shard.retries = static_cast<std::size_t>(r.u64());
      shard.restores = static_cast<std::size_t>(r.u64());
      shard.shed = static_cast<std::size_t>(r.u64());
      shard.malformed = static_cast<std::size_t>(r.u64());
      shard.injected_delays = static_cast<std::size_t>(r.u64());
      shard.quarantined = r.boolean();
      shard.degraded = r.boolean();
      const std::uint64_t log_size = r.u64();
      shard.log.clear();
      shard.log.reserve(static_cast<std::size_t>(log_size));
      for (std::uint64_t j = 0; j < log_size; ++j) {
        LogEntry entry;
        entry.request.edges = r.vec<EdgeId>();
        entry.request.cost = r.f64();
        entry.request.must_accept = r.boolean();
        entry.mode = r.u8();
        shard.log.push_back(std::move(entry));
      }
      const std::vector<std::uint8_t> algo_blob = r.blob();
      std::unique_ptr<OnlineAdmissionAlgorithm> fresh = factory_(graph_, s);
      MINREJ_CHECK(fresh != nullptr, "factory returned a null algorithm");
      SnapshotReader algo(algo_blob, kAlgorithmSnapshotKind);
      fresh->load_snapshot(algo);
      algo.expect_end();
      shard.algorithm = std::move(fresh);
    }
    r.expect_end();
    placement_ = std::move(placements);
    modes_ = std::move(modes);
    return;
  }

  // Reshard-on-restore: replay the committed global arrival sequence
  // through this service's own routing.  Exact only when the source kept
  // logs, shed/voided nothing, and processed everything in engine mode —
  // i.e. the deterministic shard-disjoint regime DESIGN.md §6.1 pins down.
  MINREJ_REQUIRE(has_log,
                 "reshard-on-restore needs the source service's arrival log "
                 "(fault tolerance was disabled when the snapshot was taken)");
  std::vector<std::vector<Request>> logs(
      static_cast<std::size_t>(source_shards));
  for (std::uint64_t s = 0; s < source_shards; ++s) {
    r.expect_tag("SHRD");
    for (int skip = 0; skip < 7; ++skip) r.u64();  // counters
    r.boolean();  // quarantined
    r.boolean();  // degraded
    const std::uint64_t log_size = r.u64();
    logs[s].reserve(static_cast<std::size_t>(log_size));
    for (std::uint64_t j = 0; j < log_size; ++j) {
      Request request;
      request.edges = r.vec<EdgeId>();
      request.cost = r.f64();
      request.must_accept = r.boolean();
      const std::uint8_t mode = r.u8();
      MINREJ_REQUIRE(mode == static_cast<std::uint8_t>(DecisionMode::kEngine),
                     "reshard-on-restore requires an engine-mode-only "
                     "trajectory (the source load-shed arrivals)");
      logs[s].push_back(std::move(request));
    }
    r.blob();  // the source algorithm snapshot; replay rebuilds from logs
  }
  r.expect_end();
  std::vector<Request> sequence;
  sequence.reserve(placements.size());
  for (const auto& [shard, local] : placements) {
    MINREJ_REQUIRE(local != kInvalidId,
                   "reshard-on-restore cannot replay shed or malformed "
                   "arrivals — their requests were never logged");
    MINREJ_REQUIRE(shard < logs.size() && local < logs[shard].size(),
                   "snapshot placement points outside the shard log");
    sequence.push_back(logs[static_cast<std::size_t>(shard)][local]);
  }
  for (std::size_t offset = 0; offset < sequence.size();
       offset += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, sequence.size() - offset);
    submit_batch(std::span<const Request>(sequence.data() + offset, count));
  }
}

ServiceStats AdmissionService::run(const AdmissionInstance& instance) {
  MINREJ_REQUIRE(instance.graph().edge_count() == graph_.edge_count(),
                 "instance graph does not match the service graph");
  Timer wall;
  const std::vector<Request>& requests = instance.requests();
  for (std::size_t offset = 0; offset < requests.size();
       offset += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, requests.size() - offset);
    submit_batch(std::span<const Request>(requests.data() + offset, count));
  }
  ServiceStats stats = aggregate();
  stats.seconds = wall.elapsed_s();
  return stats;
}

bool AdmissionService::is_accepted(std::size_t arrival_index) const {
  const auto [shard, local] = placement(arrival_index);
  MINREJ_REQUIRE(local != kInvalidId,
                 "arrival was never processed (its shard failed mid-batch)");
  if (shard == kLcaLane) return lca_algorithm_->is_accepted(local);
  return shards_[shard].algorithm->is_accepted(local);
}

std::pair<std::size_t, RequestId> AdmissionService::placement(
    std::size_t arrival_index) const {
  MINREJ_REQUIRE(arrival_index < placement_.size(),
                 "arrival index out of range");
  const auto& [shard, local] = placement_[arrival_index];
  if (shard == kLcaShardMarker) return {kLcaLane, local};
  return {static_cast<std::size_t>(shard), local};
}

const OnlineAdmissionAlgorithm& AdmissionService::lca_algorithm() const {
  MINREJ_REQUIRE(lca_algorithm_ != nullptr,
                 "lca_algorithm() requires ServiceConfig::lca_reconcile");
  return *lca_algorithm_;
}

std::size_t AdmissionService::lca_arrivals() const noexcept {
  return lca_algorithm_ ? lca_algorithm_->arrivals() : 0;
}

std::size_t AdmissionService::lca_speculation_hits() const noexcept {
  return lca_speculation_hits_;
}

const OnlineAdmissionAlgorithm& AdmissionService::shard_algorithm(
    std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  return *shards_[shard].algorithm;
}

ShardStats AdmissionService::shard_stats(std::size_t shard) const {
  MINREJ_REQUIRE(shard < shards_.size(), "shard index out of range");
  const Shard& s = shards_[shard];
  ShardStats stats;
  stats.shard = shard;
  stats.arrivals = s.arrivals;
  stats.rejected = s.algorithm->rejected_count();
  stats.accepted = s.arrivals - stats.rejected;
  stats.rejected_cost = s.algorithm->rejected_cost();
  stats.augmentation_steps = s.algorithm->augmentation_steps();
  stats.busy_seconds = s.busy_seconds;
  stats.latencies_s = s.latencies_s;
  stats.augmentation_budget = augmentation_step_budget(
      s.arrivals, graph_.edge_count(), graph_.max_capacity());
  stats.augmentation_budget_exceeded =
      stats.augmentation_steps > stats.augmentation_budget;
  stats.task_failures = s.task_failures;
  stats.retries = s.retries;
  stats.restores = s.restores;
  stats.shed = s.shed;
  stats.malformed = s.malformed;
  stats.injected_delays = s.injected_delays;
  stats.quarantined = s.quarantined;
  stats.degraded = s.degraded;
  return stats;
}

ServiceStats AdmissionService::aggregate() const {
  ServiceStats stats;
  stats.shards = shards_.size();
  stats.seconds = pumped_seconds_;
  std::vector<double> latencies;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    stats.arrivals += shard.arrivals;
    const std::size_t rejected = shard.algorithm->rejected_count();
    stats.rejected += rejected;
    stats.accepted += shard.arrivals - rejected;
    stats.rejected_cost += shard.algorithm->rejected_cost();
    stats.augmentation_steps += shard.algorithm->augmentation_steps();
    stats.max_shard_busy_s =
        std::max(stats.max_shard_busy_s, shard.busy_seconds);
    stats.total_busy_s += shard.busy_seconds;
    latencies.insert(latencies.end(), shard.latencies_s.begin(),
                     shard.latencies_s.end());
    const std::uint64_t budget = augmentation_step_budget(
        shard.arrivals, graph_.edge_count(), graph_.max_capacity());
    if (shard.algorithm->augmentation_steps() > budget) {
      ++stats.budget_exceeded_shards;
    }
    stats.task_failures += shard.task_failures;
    stats.retries += shard.retries;
    stats.restores += shard.restores;
    stats.shed += shard.shed;
    stats.malformed += shard.malformed;
    stats.injected_delays += shard.injected_delays;
    if (shard.quarantined) ++stats.quarantined_shards;
    if (shard.degraded) ++stats.degraded_shards;
  }
  if (lca_algorithm_) {
    // Fold the reconcile lane into the totals (it owns real arrivals) and
    // report it separately too.
    const std::size_t lane_arrivals = lca_algorithm_->arrivals();
    const std::size_t lane_rejected = lca_algorithm_->rejected_count();
    stats.arrivals += lane_arrivals;
    stats.rejected += lane_rejected;
    stats.accepted += lane_arrivals - lane_rejected;
    stats.rejected_cost += lca_algorithm_->rejected_cost();
    stats.augmentation_steps += lca_algorithm_->augmentation_steps();
    stats.lca_arrivals = lane_arrivals;
    stats.lca_speculation_hits = lca_speculation_hits_;
  }
  if (!latencies.empty()) {
    // Sorting the merged samples before taking quantiles makes the result
    // invariant to shard merge order (§11.2).
    std::sort(latencies.begin(), latencies.end());
    stats.p50_arrival_s = quantile_sorted(latencies, 0.50);
    stats.p95_arrival_s = quantile_sorted(latencies, 0.95);
    stats.max_arrival_s = latencies.back();
  }
  return stats;
}

}  // namespace minrej

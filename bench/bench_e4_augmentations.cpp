// E4 — Lemma 1 and Lemma 5: the number of weight augmentations is
// O(α·log(gc)) for the admission engine and O(α·log m) for the bicriteria
// set cover algorithm.
//
// Instruments the augmentation counters over growing instances and
// reports augmentations / (α · log) — a flat column confirms the lemma's
// shape.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/bicriteria_setcover.h"
#include "core/fractional_admission.h"
#include "lp/covering_lp.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

void lemma1_sweep(std::size_t trials, const std::string& csv_dir) {
  Table table("E4a — Lemma 1: engine augmentations vs α·log2(2gc) "
              "(unit-cost bursts, g=1)",
              {"c", "alpha", "augmentations (mean±ci)", "alpha·log2(2c)",
               "augs/(alpha·log)"});
  std::vector<double> xs, ys;
  for (std::int64_t c : {2, 4, 8, 16, 32, 64}) {
    RunningStats augs;
    double alpha = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(8000 + 3 * t + static_cast<std::uint64_t>(c));
      AdmissionInstance inst = make_single_edge_burst(
          c, static_cast<std::size_t>(4 * c), CostModel::unit_costs(), rng);
      alpha = burst_opt(inst);
      FractionalConfig cfg;
      cfg.unit_costs = true;
      FractionalAdmission alg(inst.graph(), cfg);
      for (const Request& r : inst.requests()) alg.on_request(r);
      augs.add(static_cast<double>(alg.augmentations()));
    }
    const double bound = alpha * clog2(2.0 * static_cast<double>(c));
    table.add_row({static_cast<long long>(c), Cell(alpha, 0),
                   pm(augs.mean(), augs.ci95_half_width(), 1),
                   Cell(bound, 1), Cell(augs.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(augs.mean());
  }
  emit(table, "e4a_lemma1", csv_dir);
  std::cout << "fit augs ~ alpha·log2(2c): " << fit_line(fit_linear(xs, ys))
            << "\n\n";
}

void lemma1_weighted(std::size_t trials, const std::string& csv_dir) {
  Table table("E4b — Lemma 1 weighted: augmentations vs α·log2(2gc) on "
              "line workloads (g≤2mc)",
              {"m", "lp_alpha", "augmentations (mean±ci)",
               "alpha·log2(4mc²)", "augs/bound"});
  const std::int64_t c = 2;
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    RunningStats augs, alphas;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(9000 + 5 * t + m);
      AdmissionInstance inst = make_line_workload(
          m, c, 5 * m, 1, std::max<std::size_t>(2, m / 4),
          CostModel::spread(1.0, 16.0), rng);
      const LpSolution lp = solve_admission_lp(inst);
      if (!lp.optimal() || lp.objective <= 1e-9) continue;
      FractionalAdmission alg(inst.graph());
      for (const Request& r : inst.requests()) alg.on_request(r);
      augs.add(static_cast<double>(alg.augmentations()));
      alphas.add(lp.objective);
    }
    if (augs.count() == 0) continue;
    // g ≤ 2mc after normalization, so log2(2gc) ≤ log2(4mc²).
    const double bound =
        alphas.mean() * clog2(4.0 * static_cast<double>(m) *
                              static_cast<double>(c) *
                              static_cast<double>(c));
    table.add_row({m, Cell(alphas.mean(), 1),
                   pm(augs.mean(), augs.ci95_half_width(), 1),
                   Cell(bound, 1), Cell(augs.mean() / bound, 3)});
  }
  emit(table, "e4b_lemma1_weighted", csv_dir);
}

void lemma5_sweep(std::size_t trials, const std::string& csv_dir) {
  Table table("E4c — Lemma 5: bicriteria augmentations vs α·log m "
              "(random systems, ε=0.5)",
              {"n=m", "opt", "augmentations (mean±ci)", "alpha·log2(m)",
               "augs/bound"});
  std::vector<double> xs, ys;
  for (std::size_t nm : {8u, 12u, 16u, 24u, 32u}) {
    RunningStats augs, opts;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(10000 + 11 * t + nm);
      SetSystem sys = random_uniform_system(nm, nm, 4, 3, rng);
      const auto arrivals = arrivals_each_k_times(nm, 2, true, rng);
      CoverInstance inst(sys, arrivals);
      const MulticoverResult opt = solve_multicover_opt(inst, 5'000'000);
      if (!opt.exact) continue;
      BicriteriaSetCover alg(sys, BicriteriaConfig{0.5});
      for (ElementId j : arrivals) alg.on_element(j);
      augs.add(static_cast<double>(alg.augmentations()));
      opts.add(opt.cost);
    }
    if (augs.count() == 0) continue;
    const double bound = opts.mean() * clog2(static_cast<double>(nm));
    table.add_row({nm, Cell(opts.mean(), 1),
                   pm(augs.mean(), augs.ci95_half_width(), 1),
                   Cell(bound, 1), Cell(augs.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(augs.mean());
  }
  emit(table, "e4c_lemma5", csv_dir);
  if (xs.size() >= 2) {
    std::cout << "fit augs ~ alpha·log2(m): " << fit_line(fit_linear(xs, ys))
              << "\n\n";
  }
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"trials", "csv_dir"});
  const auto trials = static_cast<std::size_t>(flags.get_int("trials", 8));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E4: Lemmas 1 & 5 — weight augmentation counts ===\n\n";
  lemma1_sweep(trials, csv_dir);
  lemma1_weighted(trials, csv_dir);
  lemma5_sweep(trials, csv_dir);
  return EXIT_SUCCESS;
}

// E11 — the paper's motivating observation (§1): "even algorithms with
// optimal competitive ratios [for the benefit objective] may reject almost
// all of the requests, when it would have been possible to reject only a
// few."
//
// Pits an AAP-style throughput-competitive algorithm against the §3
// randomized rejection-minimizing algorithm on the same streams, scoring
// BOTH objectives: accepted benefit vs the acceptance optimum, and
// rejected cost vs the rejection optimum.  The throughput algorithm is
// fine on the first metric and catastrophic on the second — the gap that
// motivates studying rejections directly.
#include <cstdlib>
#include <iostream>
#include <limits>

#include "bench_common.h"
#include "core/randomized_admission.h"
#include "core/throughput_admission.h"
#include "graph/generators.h"
#include "offline/admission_opt.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

std::string ratio_str(double cost, double opt) {
  if (opt <= 0.0) return cost <= 0.0 ? "1.00" : "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", cost / opt);
  return buf;
}

/// Stream of spanning requests on a line: `fitting` of them fit exactly,
/// then `extra` more arrive (OPT rejects exactly `extra`).
AdmissionInstance spanning_stream(std::size_t m, std::int64_t capacity,
                                  std::int64_t extra) {
  Graph graph = make_line_graph(m, capacity);
  std::vector<Request> requests;
  for (std::int64_t i = 0; i < capacity + extra; ++i) {
    requests.push_back(make_line_request(graph, 0, m, 1.0));
  }
  return AdmissionInstance(std::move(graph), std::move(requests));
}

void spanning_table(const std::string& csv_dir) {
  Table table("E11a — spanning streams (unit benefit): both objectives, "
              "both algorithms",
              {"m", "c", "extra", "opt-rej", "aap rejected", "aap rej-ratio",
               "aap acc/OPTacc", "minrej rejected", "minrej rej-ratio",
               "minrej acc/OPTacc"});
  for (std::size_t m : {8u, 32u, 128u}) {
    for (std::int64_t extra : {0, 2}) {
      const std::int64_t c = 8;
      AdmissionInstance inst = spanning_stream(m, c, extra);
      const double opt_reject = static_cast<double>(extra);
      const double opt_accept = static_cast<double>(c);

      ThroughputAdmission aap(inst.graph());
      run_admission(aap, inst);

      RunningStats minrej_rej, minrej_acc;
      for (std::uint64_t seed = 0; seed < 8; ++seed) {
        RandomizedConfig cfg;
        cfg.unit_costs = true;
        cfg.seed = seed;
        RandomizedAdmission alg(inst.graph(), cfg);
        run_admission(alg, inst);
        minrej_rej.add(alg.rejected_cost());
        minrej_acc.add(static_cast<double>(inst.request_count()) -
                       static_cast<double>(alg.rejected_count()));
      }

      table.add_row(
          {m, static_cast<long long>(c), static_cast<long long>(extra),
           Cell(opt_reject, 0), Cell(aap.rejected_cost(), 0),
           ratio_str(aap.rejected_cost(), opt_reject),
           Cell(aap.accepted_benefit() / opt_accept, 2),
           Cell(minrej_rej.mean(), 1),
           ratio_str(minrej_rej.mean(), opt_reject),
           Cell(minrej_acc.mean() / opt_accept, 2)});
    }
  }
  emit(table, "e11a_spanning", csv_dir);
  std::cout << "reading: the throughput algorithm keeps its acceptance "
               "ratio near 1 but its rejection ratio explodes (rejecting "
               "when OPT rejects 0 or few); the paper's algorithm keeps "
               "the rejection ratio polylog.\n\n";
}

void mixed_table(const std::string& csv_dir) {
  // Unit costs, so the paper's Q = max edge excess lower-bounds OPT; using
  // Q as the denominator overestimates both algorithms' ratios equally and
  // scales to sizes the branch-and-bound cannot.
  Table table("E11b — mixed random workloads (unit costs): rejection ratio "
              "vs the Q lower bound",
              {"m", "c", "Q", "aap rej-ratio", "minrej rej-ratio",
               "aap acceptance", "minrej acceptance"});
  for (std::size_t m : {16u, 32u, 64u}) {
    const std::int64_t c = 4;
    Rng rng(23000 + m);
    AdmissionInstance inst = make_line_workload(
        m, c, 6 * m, 1, std::max<std::size_t>(2, m / 2),
        CostModel::unit_costs(), rng);
    const double q = static_cast<double>(inst.max_excess());
    if (q <= 0) continue;

    ThroughputAdmission aap(inst.graph());
    run_admission(aap, inst);

    RunningStats rej, acc;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      RandomizedConfig cfg;
      cfg.unit_costs = true;
      cfg.seed = seed;
      RandomizedAdmission alg(inst.graph(), cfg);
      run_admission(alg, inst);
      rej.add(alg.rejected_cost());
      acc.add(static_cast<double>(inst.request_count()) -
              static_cast<double>(alg.rejected_count()));
    }
    const double total = static_cast<double>(inst.request_count());
    table.add_row({m, static_cast<long long>(c), Cell(q, 0),
                   ratio_str(aap.rejected_cost(), q),
                   ratio_str(rej.mean(), q),
                   Cell(static_cast<double>(aap.accepted_count()) / total, 2),
                   Cell(acc.mean() / total, 2)});
  }
  emit(table, "e11b_mixed", csv_dir);
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"csv_dir"});
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E11: motivation — throughput-competitive is not "
               "rejection-competitive (§1) ===\n\n";
  spanning_table(csv_dir);
  mixed_table(csv_dir);
  return EXIT_SUCCESS;
}

// E12 — ablation of the §3 randomized algorithm's design choices (the
// knobs DESIGN.md calls out):
//   (a) the factor F in the threshold 1/(F·L) and probability F·δ·L;
//   (b) the two rejection rules — deterministic threshold (step 2) vs
//       randomized rounding (step 3) — each disabled in turn;
//   (c) the victim policy used when a pinned arrival must preempt.
// Run on the greedy-killer family (OPT known exactly) and a random
// workload; the full algorithm should dominate each crippled variant.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/randomized_admission.h"
#include "graph/generators.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

RunningStats run_config(const AdmissionInstance& inst,
                        const RandomizedConfig& base, std::size_t seeds) {
  RunningStats stats;
  const auto costs = parallel_trials(seeds, [&](std::size_t s) {
    RandomizedConfig cfg = base;
    cfg.seed = 0xE12 + 7 * s;
    RandomizedAdmission alg(inst.graph(), cfg);
    return run_admission(alg, inst).rejected_cost;
  });
  for (double c : costs) stats.add(c);
  return stats;
}

void factor_sweep(std::size_t seeds, const std::string& csv_dir) {
  // Unit-cost random lines with moderate overload: the weight increments
  // are fractional here, so F actually moves the threshold/probability
  // trade-off (single-edge bursts are classification-dominated and blind
  // to F).  Denominator: the Q lower bound (unit costs).
  Table table("E12a — factor F sweep (random line m=32 c=4, unit costs, "
              "ratio vs Q)",
              {"F", "rejected (mean±ci)", "ratio vs Q"});
  Rng rng(32000);
  AdmissionInstance inst = make_line_workload(
      32, 4, 160, 1, 8, CostModel::unit_costs(), rng);
  const double q = static_cast<double>(inst.max_excess());
  for (double f : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 12.0}) {
    RandomizedConfig cfg;
    cfg.unit_costs = true;
    cfg.factor = f;
    const RunningStats stats = run_config(inst, cfg, seeds);
    table.add_row({Cell(f, 2), pm(stats.mean(), stats.ci95_half_width(), 1),
                   Cell(stats.mean() / q, 2)});
  }
  emit(table, "e12a_factor", csv_dir);
  std::cout << "reading: beyond F≈1 the rejection probabilities clamp to 1 "
               "and the curve saturates; smaller F rejects less eagerly and "
               "does slightly better here — the paper's constant buys the "
               "worst-case Chernoff guarantee, not average-case optimality."
               "\n\n";
}

void step_ablation(std::size_t seeds, const std::string& csv_dir) {
  Table table("E12b — rejection-rule ablation",
              {"workload", "full", "no-step2 (threshold off)",
               "no-step3 (random off)", "neither (≈greedy)"});
  struct Case {
    const char* name;
    AdmissionInstance inst;
  };
  Rng rng(31000);
  std::vector<Case> cases;
  cases.push_back({"killer m=64 c=2", make_greedy_killer(64, 2)});
  cases.push_back({"random line m=16 c=4",
                   make_line_workload(16, 4, 96, 1, 8,
                                      CostModel::unit_costs(), rng)});
  for (const Case& c : cases) {
    auto run_variant = [&](bool step2, bool step3) {
      RandomizedConfig cfg;
      cfg.unit_costs = true;
      cfg.step2_threshold = step2;
      cfg.step3_random = step3;
      return run_config(c.inst, cfg, seeds).mean();
    };
    table.add_row({c.name, Cell(run_variant(true, true), 1),
                   Cell(run_variant(false, true), 1),
                   Cell(run_variant(true, false), 1),
                   Cell(run_variant(false, false), 1)});
  }
  emit(table, "e12b_steps", csv_dir);
  std::cout << "reading: with both rules off the algorithm degenerates to "
               "greedy-no-preempt (weights computed, never acted on) and "
               "pays the Omega(m) price on the killer.\n\n";
}

void victim_ablation(std::size_t seeds, const std::string& csv_dir) {
  // Victim policies only matter when pinned arrivals preempt — use the
  // reduction-style stream: big requests then must_accept singletons.
  Table table("E12c — victim-policy ablation (weighted, pinned arrivals)",
              {"policy", "rejected (mean±ci)"});
  Graph g = make_star_graph(8, 2);
  std::vector<Request> requests;
  Rng wrng(31001);
  // Fill each spoke to capacity with weighted requests...
  for (EdgeId e = 0; e < 8; ++e) {
    for (int k = 0; k < 2; ++k) {
      requests.push_back(
          Request({e}, wrng.log_uniform(1.0, 16.0)));
    }
  }
  // ...then must_accept arrivals force one preemption per spoke.
  for (EdgeId e = 0; e < 8; ++e) {
    requests.push_back(Request({e}, 1.0, /*must_accept=*/true));
  }
  AdmissionInstance inst(std::move(g), std::move(requests));

  for (VictimPolicy policy : {VictimPolicy::kMaxWeight, VictimPolicy::kRandom,
                              VictimPolicy::kCheapest}) {
    RandomizedConfig cfg;
    cfg.victim_policy = policy;
    // Disable steps 2/3 so every preemption flows through the step-4
    // victim selection — the axis under test.
    cfg.step2_threshold = false;
    cfg.step3_random = false;
    const RunningStats stats = run_config(inst, cfg, seeds);
    const char* name = policy == VictimPolicy::kMaxWeight ? "max-weight"
                       : policy == VictimPolicy::kRandom  ? "random"
                                                          : "cheapest";
    table.add_row({name, pm(stats.mean(), stats.ci95_half_width(), 2)});
  }
  emit(table, "e12c_victim", csv_dir);
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"seeds", "csv_dir"});
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 12));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E12: ablations of the §3 algorithm ===\n\n";
  factor_sweep(seeds, csv_dir);
  step_ablation(seeds, csv_dir);
  victim_ablation(seeds, csv_dir);
  return EXIT_SUCCESS;
}

// E7 — the α-doubling argument of §2: learning α online ("forgetting"
// the rejected fractions and doubling on each guard trip) costs only a
// constant factor over running with the optimal α known in advance.
//
// For each instance, runs the fractional algorithm (a) with
// fixed_alpha = fractional OPT (the oracle the analysis assumes) and
// (b) with the online doubling wrapper, on the identical stream, and
// reports the overhead distribution and phase counts.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/fractional_admission.h"
#include "lp/covering_lp.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

struct PairResult {
  double oracle = 0.0;
  double doubling = 0.0;
  std::uint64_t phases = 0;
};

PairResult run_pair(const AdmissionInstance& inst, double alpha) {
  PairResult result;
  {
    FractionalConfig cfg;
    cfg.fixed_alpha = alpha;
    FractionalAdmission alg(inst.graph(), cfg);
    for (const Request& r : inst.requests()) alg.on_request(r);
    result.oracle = alg.fractional_cost();
  }
  {
    FractionalAdmission alg(inst.graph());
    for (const Request& r : inst.requests()) alg.on_request(r);
    result.doubling = alg.fractional_cost();
    result.phases = alg.phase_count();
  }
  return result;
}

void overhead_table(std::size_t trials, const std::string& csv_dir) {
  Table table("E7a — α known (oracle) vs α doubled online: cost overhead",
              {"workload", "m", "c", "lp_opt", "oracle-cost",
               "doubling-cost", "overhead", "phases"});
  struct Family {
    const char* name;
    std::size_t m;
    std::int64_t c;
  };
  for (const Family& f : {Family{"line", 8, 2}, Family{"line", 16, 2},
                          Family{"line", 32, 4}, Family{"star", 16, 2}}) {
    RunningStats oracle, doubling, lp_opt, phases;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(15000 + 3 * t + f.m);
      AdmissionInstance inst =
          std::string(f.name) == "line"
              ? make_line_workload(f.m, f.c, 5 * f.m, 1, 4,
                                   CostModel::spread(1.0, 32.0), rng)
              : make_star_workload(f.m, f.c, 5 * f.m, 3,
                                   CostModel::spread(1.0, 32.0), rng);
      const LpSolution lp = solve_admission_lp(inst);
      if (!lp.optimal() || lp.objective <= 1e-9) continue;
      const PairResult pair = run_pair(inst, lp.objective);
      oracle.add(pair.oracle);
      doubling.add(pair.doubling);
      lp_opt.add(lp.objective);
      phases.add(static_cast<double>(pair.phases));
    }
    if (oracle.count() == 0) continue;
    table.add_row({f.name, f.m, static_cast<long long>(f.c),
                   Cell(lp_opt.mean(), 1), Cell(oracle.mean(), 1),
                   Cell(doubling.mean(), 1),
                   Cell(doubling.mean() / std::max(1e-9, oracle.mean()), 2),
                   Cell(phases.mean(), 1)});
  }
  emit(table, "e7a_overhead", csv_dir);
  std::cout << "reading: the doubling column stays within a small constant "
               "of the oracle column (the §2 geometric-series argument), "
               "with O(log) phases.\n\n";
}

void guard_sensitivity(std::size_t trials, const std::string& csv_dir) {
  Table table("E7b — guard-factor sensitivity (line m=16, c=2)",
              {"guard_factor", "cost (mean±ci)", "phases (mean)",
               "ratio-vs-lp"});
  for (double guard : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    RunningStats cost, phases, ratio;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(16000 + 7 * t);
      AdmissionInstance inst = make_line_workload(
          16, 2, 80, 1, 4, CostModel::spread(1.0, 32.0), rng);
      const LpSolution lp = solve_admission_lp(inst);
      if (!lp.optimal() || lp.objective <= 1e-9) continue;
      FractionalConfig cfg;
      cfg.guard_factor = guard;
      FractionalAdmission alg(inst.graph(), cfg);
      for (const Request& r : inst.requests()) alg.on_request(r);
      cost.add(alg.fractional_cost());
      phases.add(static_cast<double>(alg.phase_count()));
      ratio.add(alg.fractional_cost() / lp.objective);
    }
    if (cost.count() == 0) continue;
    table.add_row({Cell(guard, 1), pm(cost.mean(), cost.ci95_half_width(), 1),
                   Cell(phases.mean(), 1), Cell(ratio.mean(), 2)});
  }
  emit(table, "e7b_guard", csv_dir);
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"trials", "csv_dir"});
  const auto trials = static_cast<std::size_t>(flags.get_int("trials", 10));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E7: α-doubling wrapper overhead (§2) ===\n\n";
  overhead_table(trials, csv_dir);
  guard_sensitivity(trials, csv_dir);
  return EXIT_SUCCESS;
}

// E6 — the O(log m log n) randomized online set cover with repetitions
// (§4 reduction + Theorem 4), matching the Feige–Korman Ω(log m log n)
// lower bound.
//
// Tables: (a) sweep n=m on random systems against exact OPT;
// (b) repetition depth k sweep; (c) planted-cover instances at sizes the
// exact solver cannot reach, using the planted optimum as the
// denominator's upper bound; (d) the adaptive adversary on the dyadic
// family.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/online_setcover.h"
#include "offline/multicover.h"
#include "setcover/generators.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

RunningStats ratio_over_seeds(const SetSystem& sys,
                              const std::vector<ElementId>& arrivals,
                              double opt, std::size_t seeds) {
  RunningStats stats;
  const auto ratios = parallel_trials(seeds, [&](std::size_t s) {
    RandomizedConfig cfg;
    cfg.seed = 0xE6 + 13 * s;
    ReductionSetCover alg(sys, cfg);
    return competitive_ratio(run_setcover(alg, arrivals).cost, opt);
  });
  for (double r : ratios) stats.add(r);
  return stats;
}

void size_sweep(std::size_t seeds, const std::string& csv_dir) {
  Table table("E6a — OSCR randomized, sweep n=m (random systems, k=2): "
              "ratio vs exact OPT",
              {"n", "m", "opt", "ratio (mean±ci)", "logm·logn",
               "ratio/bound"});
  std::vector<double> xs, ys;
  for (std::size_t nm : {8u, 12u, 16u, 24u, 32u}) {
    Rng rng(12000 + nm);
    SetSystem sys = random_uniform_system(nm, nm, 4, 3, rng);
    const auto arrivals = arrivals_each_k_times(nm, 2, true, rng);
    CoverInstance inst(sys, arrivals);
    const MulticoverResult opt = solve_multicover_opt(inst, 10'000'000);
    if (!opt.exact || opt.cost <= 0) continue;
    const RunningStats stats =
        ratio_over_seeds(sys, arrivals, opt.cost, seeds);
    const double bound = clog2(static_cast<double>(nm)) *
                         clog2(static_cast<double>(nm));
    table.add_row({nm, nm, Cell(opt.cost, 0),
                   pm(stats.mean(), stats.ci95_half_width()),
                   Cell(bound, 2), Cell(stats.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(stats.mean());
  }
  emit(table, "e6a_size", csv_dir);
  if (xs.size() >= 2) {
    std::cout << "fit ratio ~ logm·logn: " << fit_line(fit_linear(xs, ys))
              << "\n\n";
  }
}

void repetition_sweep(std::size_t seeds, const std::string& csv_dir) {
  Table table("E6b — OSCR randomized, repetition depth sweep (n=m=16)",
              {"k", "opt", "ratio (mean±ci)", "chosen/|S| (mean)"});
  const std::size_t nm = 16;
  for (std::size_t k : {1u, 2u, 4u, 6u}) {
    Rng rng(13000 + k);
    SetSystem sys = random_uniform_system(nm, nm, 4,
                                          std::max<std::size_t>(3, k), rng);
    const auto arrivals = arrivals_each_k_times(nm, k, true, rng);
    CoverInstance inst(sys, arrivals);
    const MulticoverResult opt = solve_multicover_opt(inst, 10'000'000);
    if (!opt.exact || opt.cost <= 0) continue;
    const RunningStats ratio =
        ratio_over_seeds(sys, arrivals, opt.cost, seeds);
    RunningStats frac_chosen;
    for (std::size_t s = 0; s < seeds; ++s) {
      RandomizedConfig cfg;
      cfg.seed = 0xE6B + s;
      ReductionSetCover alg(sys, cfg);
      run_setcover(alg, arrivals);
      frac_chosen.add(static_cast<double>(alg.chosen_count()) /
                      static_cast<double>(sys.set_count()));
    }
    table.add_row({k, Cell(opt.cost, 0),
                   pm(ratio.mean(), ratio.ci95_half_width()),
                   Cell(frac_chosen.mean(), 2)});
  }
  emit(table, "e6b_repetitions", csv_dir);
}

void planted_sweep(std::size_t seeds, const std::string& csv_dir) {
  Table table("E6c — OSCR randomized, planted instances (OPT ≤ planted): "
              "large sizes",
              {"n", "m", "planted_opt", "ratio-vs-planted (mean±ci)",
               "logm·logn"});
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    const std::size_t m = n;
    const std::size_t k_opt = std::max<std::size_t>(2, n / 16);
    Rng rng(14000 + n);
    SetSystem sys = planted_cover_system(n, m, k_opt, 2, 4, rng);
    const auto arrivals = arrivals_each_k_times(n, 2, true, rng);
    // Planted guarantee: the 2 copies of each of the k_opt blocks cover
    // demand 2 exactly, so OPT <= 2·k_opt.
    const double planted = 2.0 * static_cast<double>(k_opt);
    const RunningStats stats = ratio_over_seeds(sys, arrivals, planted, seeds);
    table.add_row({n, m, Cell(planted, 0),
                   pm(stats.mean(), stats.ci95_half_width()),
                   Cell(clog2(static_cast<double>(m)) *
                            clog2(static_cast<double>(n)),
                        2)});
  }
  emit(table, "e6c_planted", csv_dir);
}

void weighted_sweep(std::size_t seeds, const std::string& csv_dir) {
  // The paper: the reduction "implies an O(log²(mn))-competitive
  // randomized algorithm for the online set cover with repetitions
  // problem" in the weighted case.
  Table table("E6e — weighted OSCR via reduction: ratio vs exact OPT and "
              "O(log²(mn))",
              {"n=m", "opt", "ratio (mean±ci)", "log²(mn)", "ratio/bound"});
  for (std::size_t nm : {8u, 12u, 16u, 24u}) {
    Rng rng(15000 + nm);
    SetSystem sys = with_random_costs(
        random_uniform_system(nm, nm, 4, 3, rng), 1.0, 16.0, rng);
    const auto arrivals = arrivals_each_k_times(nm, 2, true, rng);
    CoverInstance inst(sys, arrivals);
    const MulticoverResult opt = solve_multicover_opt(inst, 10'000'000);
    if (!opt.exact || opt.cost <= 0) continue;
    const RunningStats stats =
        ratio_over_seeds(sys, arrivals, opt.cost, seeds);
    const double lognm = clog2(static_cast<double>(nm) *
                               static_cast<double>(nm));
    table.add_row({nm, Cell(opt.cost, 1),
                   pm(stats.mean(), stats.ci95_half_width()),
                   Cell(lognm * lognm, 2),
                   Cell(stats.mean() / (lognm * lognm), 3)});
  }
  emit(table, "e6e_weighted", csv_dir);
}

void adversarial(std::size_t seeds, const std::string& csv_dir) {
  Table table("E6d — OSCR randomized vs adaptive adversary (dyadic family)",
              {"n", "m", "arrivals", "opt", "ratio (mean±ci)",
               "logm·logn"});
  for (std::size_t n : {8u, 16u, 32u}) {
    const std::size_t m = 2 * n - 1;
    RunningStats ratios;
    double opt_cost = 0.0;
    std::size_t played_count = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      SetSystem sys = dyadic_interval_system(n);
      RandomizedConfig cfg;
      cfg.seed = 0xE6D + 3 * s;
      ReductionSetCover alg(sys, cfg);
      const auto played =
          run_adaptive_adversary(alg, 2 * n);
      if (played.empty()) continue;
      CoverInstance inst(sys, played);
      const MulticoverResult opt = solve_multicover_opt(inst, 10'000'000);
      if (!opt.exact || opt.cost <= 0) continue;
      ratios.add(competitive_ratio(alg.cost(), opt.cost));
      opt_cost = opt.cost;
      played_count = played.size();
    }
    if (ratios.count() == 0) continue;
    table.add_row({n, m, played_count, Cell(opt_cost, 0),
                   pm(ratios.mean(), ratios.ci95_half_width()),
                   Cell(clog2(static_cast<double>(m)) *
                            clog2(static_cast<double>(n)),
                        2)});
  }
  emit(table, "e6d_adversarial", csv_dir);
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"seeds", "csv_dir"});
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 12));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E6: OSCR randomized — O(log m log n), matching "
               "Feige–Korman ===\n\n";
  size_sweep(seeds, csv_dir);
  repetition_sweep(seeds, csv_dir);
  planted_sweep(seeds, csv_dir);
  adversarial(seeds, csv_dir);
  weighted_sweep(seeds, csv_dir);
  return EXIT_SUCCESS;
}

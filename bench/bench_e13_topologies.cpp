// E13 — topology robustness: the §2/§3 guarantees are stated for general
// graphs, so the measured ratio should not depend on the network shape.
// Runs the fractional and randomized algorithms over six topologies at
// comparable size/overload (line, star, binary tree, grid, hypercube,
// random 4-regular) against the fractional LP.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/fractional_admission.h"
#include "core/randomized_admission.h"
#include "graph/generators.h"
#include "lp/covering_lp.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

struct Topology {
  std::string name;
  AdmissionInstance instance;
};

std::vector<Topology> build_topologies(std::int64_t capacity, Rng& rng) {
  std::vector<Topology> out;
  const CostModel costs = CostModel::spread(1.0, 16.0);

  out.push_back({"line (m=24)",
                 make_line_workload(24, capacity, 120, 1, 6, costs, rng)});
  out.push_back({"star (m=24)",
                 make_star_workload(24, capacity, 120, 3, costs, rng)});
  out.push_back({"tree (d=4, m=30)",
                 make_tree_workload(4, capacity, 120, costs, rng)});
  out.push_back({"grid 4x5 (m=31)",
                 make_grid_workload(4, 5, capacity, 120, costs, rng)});
  {
    Graph g = make_hypercube_graph(3, capacity);  // m = 24
    std::vector<Request> requests;
    for (int i = 0; i < 120; ++i) {
      requests.push_back(random_walk_request(g, rng, 3, costs.sample(rng)));
    }
    out.push_back({"hypercube d=3 (m=24)",
                   AdmissionInstance(std::move(g), std::move(requests))});
  }
  {
    Graph g = make_regular_graph(8, 3, capacity, rng);  // m = 24
    std::vector<Request> requests;
    for (int i = 0; i < 120; ++i) {
      requests.push_back(random_walk_request(g, rng, 3, costs.sample(rng)));
    }
    out.push_back({"random 3-regular (m=24)",
                   AdmissionInstance(std::move(g), std::move(requests))});
  }
  return out;
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"seeds", "csv_dir"});
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 12));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E13: topology robustness (weighted, vs fractional LP) "
               "===\n\n";
  Table table("E13 — same algorithms, six topologies, comparable overload",
              {"topology", "Q", "lp_opt", "fractional ratio",
               "randomized ratio (mean±ci)"});

  Rng rng(41000);
  for (Topology& topo : build_topologies(2, rng)) {
    const LpSolution lp = solve_admission_lp(topo.instance);
    if (!lp.optimal() || lp.objective <= 1e-9) continue;

    FractionalAdmission frac(topo.instance.graph());
    for (const Request& r : topo.instance.requests()) frac.on_request(r);

    RunningStats randomized;
    const auto ratios = parallel_trials(seeds, [&](std::size_t s) {
      RandomizedConfig cfg;
      cfg.seed = 0xE13 + 3 * s;
      RandomizedAdmission alg(topo.instance.graph(), cfg);
      return competitive_ratio(
          run_admission(alg, topo.instance).rejected_cost, lp.objective);
    });
    for (double r : ratios) randomized.add(r);

    table.add_row({topo.name,
                   static_cast<long long>(topo.instance.max_excess()),
                   Cell(lp.objective, 1),
                   Cell(frac.fractional_cost() / lp.objective, 2),
                   pm(randomized.mean(), randomized.ci95_half_width())});
  }
  emit(table, "e13_topologies", csv_dir);
  std::cout << "reading: the ratios sit in the same small band on every "
               "topology — the guarantees are shape-free, as §6 notes "
               "(requests are just edge subsets).\n";
  return EXIT_SUCCESS;
}

// E17 — competitive-ratio verification: every catalog scenario, measured
// ratio against a machine-checked offline lower bound, gated in CI.
//
// Ground truth per scenario:
//  * single-edge-disjoint scenarios (maxflow_solvable) — exact OPT from
//    the Dinic reduction (offline/admission_opt.h, DESIGN.md §10.1);
//  * everything else — the LP-duality certificate's value
//    (offline/certificate.h, §10.2), a sound lower bound on OPT by weak
//    duality, so the reported ratio is an upper bound on the true one.
// Either way a certificate is built and verified, so the JSON row carries
// a lower bound whose soundness was checked, not assumed.
//
// The BENCH_e17.json "gates" block asks tools/check_bench_ratios.py to
// enforce measured_ratio ≤ ratio_envelope per row: the envelope is the
// paper's O(log m · log c) guarantee with a generous fixed constant
// (doubled again where the lower bound is a certificate rather than exact
// OPT, absorbing certificate slack).  Fixed seed, so a gate failure means
// the engine's ratio regressed, not that a coin flipped.
//
// A final section times the flow OPT on a 10⁶-request dense burst — the
// at-scale exactness claim of §10.1 (info only, not gated: CI hosts vary).
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/randomized_admission.h"
#include "offline/admission_opt.h"
#include "offline/certificate.h"
#include "sim/workloads.h"
#include "util/rng.h"
#include "util/timer.h"

namespace minrej::bench {
namespace {

// Paper guarantee with the harness's generous fixed constant (the same
// shape the pin test in tests/opt_differential_test.cpp uses).
double paper_bound(double edges, double max_capacity) {
  return 8.0 * clog2(edges) * clog2(2.0 * max_capacity);
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(
      argc, argv, {"requests", "opt_requests", "seed", "csv_dir", "json"});
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 20000));
  const auto opt_requests =
      static_cast<std::size_t>(flags.get_int("opt_requests", 1000000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1707));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E17: measured ratio vs certified lower bound, every "
               "catalog scenario ===\n\n";
  Table table("E17 — §3 randomized engine vs machine-checked offline bound",
              {"scenario", "n", "m", "backend", "lower bound", "rejected",
               "ratio", "envelope"});

  JsonObject root = bench_root("e17", "catalog");
  root.field("requests", requests).field("seed", seed);

  std::vector<std::string> rows;
  bool sound = true;
  for (const ScenarioInfo& info : scenario_catalog()) {
    ScenarioParams params;
    params.requests = requests;
    Rng rng(seed);
    const AdmissionInstance inst = make_scenario(info.name, params, rng);

    // Certificate first: built and verified on every scenario, so each
    // row's lower bound is accompanied by a checked dual feasibility
    // proof even when exact flow OPT supersedes it as the denominator.
    const DualCertificate cert = build_dual_certificate(inst);
    const CertificateVerdict verdict = verify_certificate(inst, cert);
    sound = sound && verdict.feasible && verdict.claim_ok;

    const bool exact = maxflow_solvable(inst);
    double lower = verdict.value;
    std::uint64_t flow_augmentations = 0;
    if (exact) {
      const AdmissionOpt opt =
          solve_admission_opt(inst, OptBackend::kMaxFlow);
      lower = opt.rejected_cost;
      flow_augmentations = opt.nodes;
      // Weak duality end-to-end: the verified certificate may never claim
      // more than the exact optimum.
      sound = sound && verdict.value <= lower + 1e-6 * (1.0 + lower);
    }

    RandomizedConfig cfg;
    cfg.unit_costs = all_unit_costs(inst);
    cfg.seed = seed;
    RandomizedAdmission alg(inst.graph(), cfg);
    const AdmissionRun run = run_admission(alg, inst);

    const double ratio = competitive_ratio(run.rejected_cost, lower);
    const auto m = static_cast<double>(inst.graph().edge_count());
    const auto c = static_cast<double>(inst.graph().max_capacity());
    const double bound = paper_bound(m, c);
    // Exact OPT in the denominator → the guarantee applies verbatim; a
    // certificate denominator understates OPT, so the envelope doubles to
    // absorb the duality gap before a regression trips the gate.
    const double envelope = exact ? bound : 2.0 * bound;

    table.add_row({info.name, static_cast<long long>(requests),
                   static_cast<long long>(inst.graph().edge_count()),
                   exact ? "maxflow" : "certificate", Cell(lower, 1),
                   Cell(run.rejected_cost, 1), Cell(ratio, 2),
                   Cell(envelope, 1)});

    JsonObject row;
    row.field("scenario", info.name)
        .field("requests", requests)
        .field("edges", inst.graph().edge_count())
        .field("max_capacity", inst.graph().max_capacity())
        .field("opt_backend", exact ? "maxflow" : "certificate")
        .field("opt_lower_bound", lower)
        .field("certificate_value", verdict.value)
        .field("certificate_feasible", verdict.feasible)
        .field("flow_augmentations", flow_augmentations)
        .field("rejected_cost", run.rejected_cost)
        .field("rejected_count", run.rejected_count)
        .field("measured_ratio", ratio)
        .field("ratio_envelope", envelope)
        .field("paper_bound", bound);
    rows.push_back(row.dump());
  }
  emit(table, "e17_ratio", csv_dir);
  std::cout << (sound ? "all certificates verified feasible and consistent "
                        "with exact OPT where available.\n"
                      : "CERTIFICATE SOUNDNESS VIOLATION — see rows above.\n");

  // §10.1 at scale: exact OPT on a 10⁶-request dense burst in seconds,
  // the regime the B&B cannot touch.
  JsonObject at_scale;
  {
    ScenarioParams params;
    params.requests = opt_requests;
    Rng rng(seed);
    const AdmissionInstance inst = make_scenario("dense_burst", params, rng);
    Timer timer;
    const AdmissionOpt opt = solve_admission_opt(inst, OptBackend::kMaxFlow);
    const double seconds = timer.elapsed_s();
    std::cout << "\nflow OPT at scale: dense_burst n=" << opt_requests
              << " solved exactly in " << seconds << " s (rejected cost "
              << opt.rejected_cost << ", " << opt.nodes
              << " augmenting paths)\n";
    at_scale.field("scenario", "dense_burst")
        .field("requests", opt_requests)
        .field("seconds", seconds)
        .field("rejected_cost", opt.rejected_cost)
        .field("flow_augmentations", opt.nodes);
  }

  // Schema-driven gate: CI fails if any row's measured_ratio exceeds its
  // ratio_envelope (tools/check_bench_ratios.py, docs/SCENARIOS.md).
  JsonObject gate;
  gate.field("array", "ratios")
      .field("field", "measured_ratio")
      .field("max_field", "ratio_envelope");
  root.raw("ratios", json_array(rows))
      .raw("opt_at_scale", at_scale.dump())
      .field("certificates_sound", sound)
      .raw("gates", json_array({gate.dump()}));
  emit_json(flags, "e17", root.dump());

  return sound ? EXIT_SUCCESS : EXIT_FAILURE;
}

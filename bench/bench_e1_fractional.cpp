// E1 — Theorem 2: the fractional algorithm is O(log(mc))-competitive in
// the weighted case and O(log c)-competitive for unit costs, even versus
// the *fractional* optimum.
//
// Tables:
//   (a) unit costs, sweep c on a single edge — ratio vs log2(2c);
//   (b) unit costs, sweep m on line workloads — ratio vs fractional LP;
//   (c) weighted, sweep m — ratio vs log2(2mc);
//   (d) weighted, sweep c — ratio vs log2(2mc).
// Each table row reports the measured ratio and ratio/bound; a flat
// ratio/bound column across the sweep is the "shape holds" signal, and a
// least-squares fit of ratio against the bound is printed per table.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "core/fractional_admission.h"
#include "lp/covering_lp.h"
#include "sim/workloads.h"
#include "util/cli.h"
#include "util/rng.h"

namespace minrej::bench {
namespace {

double fractional_cost_on(const AdmissionInstance& inst,
                          const FractionalConfig& cfg) {
  FractionalAdmission alg(inst.graph(), cfg);
  for (const Request& r : inst.requests()) alg.on_request(r);
  return alg.fractional_cost();
}

void sweep_capacity_unit(std::size_t trials, const std::string& csv_dir) {
  Table table("E1a — fractional, unit costs, single edge: ratio vs O(log c)",
              {"c", "requests", "opt", "cost (mean±ci)", "ratio", "log2(2c)",
               "ratio/log2(2c)"});
  std::vector<double> xs, ys;
  for (std::int64_t c : {2, 4, 8, 16, 32, 64, 128}) {
    RunningStats cost_stats, ratio_stats;
    const std::size_t requests = static_cast<std::size_t>(4 * c);
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(1000 + 17 * t + static_cast<std::uint64_t>(c));
      AdmissionInstance inst =
          make_single_edge_burst(c, requests, CostModel::unit_costs(), rng);
      FractionalConfig cfg;
      cfg.unit_costs = true;
      const double cost = fractional_cost_on(inst, cfg);
      const double opt = burst_opt(inst);
      cost_stats.add(cost);
      ratio_stats.add(competitive_ratio(cost, opt));
    }
    const double bound = clog2(2.0 * static_cast<double>(c));
    const double opt =
        static_cast<double>(requests) - static_cast<double>(c);
    table.add_row({static_cast<long long>(c), requests, Cell(opt, 0),
                   pm(cost_stats.mean(), cost_stats.ci95_half_width()),
                   Cell(ratio_stats.mean(), 3), Cell(bound, 2),
                   Cell(ratio_stats.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(ratio_stats.mean());
  }
  emit(table, "e1a_unit_capacity", csv_dir);
  std::cout << "fit ratio ~ log2(2c): " << fit_line(fit_linear(xs, ys))
            << "\n\n";
}

void sweep_edges(bool unit, std::size_t trials, const std::string& csv_dir) {
  const std::string label = unit ? "unit" : "weighted";
  Table table("E1" + std::string(unit ? "b" : "c") + " — fractional, " +
                  label + " costs, line graphs: ratio vs fractional LP",
              {"m", "c", "requests", "lp_opt", "ratio (mean±ci)",
               "log2(2mc)", "ratio/log"});
  std::vector<double> xs, ys;
  const std::int64_t c = 2;
  for (std::size_t m : {4u, 8u, 16u, 32u, 64u}) {
    RunningStats ratio_stats;
    RunningStats lp_stats;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(2000 + 13 * t + m);
      const CostModel costs =
          unit ? CostModel::unit_costs() : CostModel::spread(1.0, 32.0);
      AdmissionInstance inst = make_line_workload(
          m, c, 5 * m, 1, std::max<std::size_t>(2, m / 4), costs, rng);
      const LpSolution lp = solve_admission_lp(inst);
      if (!lp.optimal() || lp.objective <= 1e-9) continue;
      FractionalConfig cfg;
      cfg.unit_costs = unit;
      const double cost = fractional_cost_on(inst, cfg);
      ratio_stats.add(competitive_ratio(cost, lp.objective));
      lp_stats.add(lp.objective);
    }
    if (ratio_stats.count() == 0) continue;
    const double bound =
        clog2(2.0 * static_cast<double>(m) * static_cast<double>(c));
    table.add_row({m, static_cast<long long>(c), 5 * m,
                   Cell(lp_stats.mean(), 1),
                   pm(ratio_stats.mean(), ratio_stats.ci95_half_width()),
                   Cell(bound, 2), Cell(ratio_stats.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(ratio_stats.mean());
  }
  emit(table, std::string("e1") + (unit ? "b" : "c") + "_edges", csv_dir);
  if (xs.size() >= 2) {
    std::cout << "fit ratio ~ log2(2mc): " << fit_line(fit_linear(xs, ys))
              << "\n\n";
  }
}

void sweep_capacity_weighted(std::size_t trials, const std::string& csv_dir) {
  Table table("E1d — fractional, weighted costs, capacity sweep (line, m=8)",
              {"m", "c", "lp_opt", "ratio (mean±ci)", "log2(2mc)",
               "ratio/log"});
  const std::size_t m = 8;
  std::vector<double> xs, ys;
  for (std::int64_t c : {1, 2, 4, 8, 16}) {
    RunningStats ratio_stats, lp_stats;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(3000 + 7 * t + static_cast<std::uint64_t>(c));
      AdmissionInstance inst = make_line_workload(
          m, c, static_cast<std::size_t>(5 * c) * m / 2 + 10, 1, 4,
          CostModel::spread(1.0, 32.0), rng);
      const LpSolution lp = solve_admission_lp(inst);
      if (!lp.optimal() || lp.objective <= 1e-9) continue;
      const double cost = fractional_cost_on(inst, FractionalConfig{});
      ratio_stats.add(competitive_ratio(cost, lp.objective));
      lp_stats.add(lp.objective);
    }
    if (ratio_stats.count() == 0) continue;
    const double bound =
        clog2(2.0 * static_cast<double>(m) * static_cast<double>(c));
    table.add_row({m, static_cast<long long>(c), Cell(lp_stats.mean(), 1),
                   pm(ratio_stats.mean(), ratio_stats.ci95_half_width()),
                   Cell(bound, 2), Cell(ratio_stats.mean() / bound, 3)});
    xs.push_back(bound);
    ys.push_back(ratio_stats.mean());
  }
  emit(table, "e1d_weighted_capacity", csv_dir);
  if (xs.size() >= 2) {
    std::cout << "fit ratio ~ log2(2mc): " << fit_line(fit_linear(xs, ys))
              << "\n\n";
  }
}

}  // namespace
}  // namespace minrej::bench

int main(int argc, char** argv) {
  using namespace minrej;
  using namespace minrej::bench;
  const CliFlags flags = CliFlags::parse(argc, argv, {"trials", "csv_dir"});
  const auto trials =
      static_cast<std::size_t>(flags.get_int("trials", 8));
  const std::string csv_dir = flags.get_string("csv_dir", "");

  std::cout << "=== E1: Theorem 2 — fractional algorithm competitiveness "
               "===\n\n";
  sweep_capacity_unit(trials, csv_dir);
  sweep_edges(/*unit=*/true, trials, csv_dir);
  sweep_edges(/*unit=*/false, trials, csv_dir);
  sweep_capacity_weighted(trials, csv_dir);
  return EXIT_SUCCESS;
}
